#!/usr/bin/env python3
"""Scenario: when does it pay to ship requests to the server room?

Section VI-C of the paper argues HPC platforms are throughput machines:
they only look good when requests can be batched.  This example quantifies
that by sweeping batch size on edge and HPC platforms and locating the
crossover where each HPC platform's *per-inference* cost drops below the
Jetson TX2's.

Run:  python examples/batch_crossover_study.py [model]
"""

import sys

from repro import render_table
from repro.analysis import batch_size_sweep

PLATFORMS = ("Jetson TX2", "Jetson Nano", "Xeon E5-2696 v4",
             "GTX Titan X", "Titan Xp", "RTX 2080")
BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def main(model_name: str = "ResNet-50") -> None:
    table = batch_size_sweep(model_name, PLATFORMS, batches=BATCHES)
    print(render_table(table))
    print()
    tx2 = {column: table.row("Jetson TX2")[column] for column in table.columns}
    print("Crossover vs Jetson TX2 (first batch where the platform's")
    print("per-inference latency drops below the TX2's):")
    for platform in PLATFORMS[1:]:
        row = table.row(platform)
        crossover = next(
            (column for column in table.columns
             if row[column] is not None and row[column] < tx2[column]),
            None,
        )
        verdict = crossover if crossover else "never (within the sweep)"
        print(f"  {platform:18s}: {verdict}")
    print()
    print("Reading: at batch 1 (the edge regime the paper studies) only the")
    print("HPC GPUs beat the TX2, and only by the modest ~3x geomean of")
    print("Figure 10; with batching the gap widens into the throughput")
    print("numbers data centers advertise.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
