#!/usr/bin/env python3
"""Deep-dive profiling of one deployment, Figure 5 style and beyond.

Reproduces the paper's software-stack analysis for any (model, device,
framework) combination and goes one level deeper: per-layer roofline
breakdown, bound classification, and a Chrome trace you can open in
chrome://tracing or Perfetto.

Run:  python examples/profile_deep_dive.py [model] [device] [framework]
"""

import sys

from repro import InferenceSession, load_device, load_framework, load_model, render_table
from repro.engine.trace import layer_table, save_chrome_trace
from repro.profiling import profile_stack


def main(model_name: str = "ResNet-18", device_name: str = "Jetson TX2",
         framework_name: str = "PyTorch") -> None:
    deployed = load_framework(framework_name).deploy(
        load_model(model_name), load_device(device_name))
    session = InferenceSession(deployed)

    # 1. The paper's view: grouped software-stack profile over many runs.
    n_runs = 30 if "Pi" in device_name else 1000
    print(profile_stack(session, n_runs).render())
    print()

    # 2. One level deeper: where do the per-inference milliseconds live?
    print(render_table(layer_table(session, top=12)))
    print()
    plan = session.plan
    print(f"Roofline balance: {plan.bound_fraction('compute'):.0%} of op time "
          f"compute-bound, {plan.bound_fraction('memory'):.0%} memory-bound; "
          f"dispatch adds {plan.dispatch_s * 1e3:.2f} ms per inference.")

    # 3. A trace for the humans: open in chrome://tracing.
    trace_path = "inference_trace.json"
    save_chrome_trace(session, trace_path)
    print(f"Chrome trace written to {trace_path} "
          f"({session.latency_s * 1e3:.1f} ms of simulated timeline).")


if __name__ == "__main__":
    main(*sys.argv[1:4])
