#!/usr/bin/env python3
"""Model exchange: the Section III-B compatibility maze, walked.

A team trains in PyTorch and wants the fastest deployment on each device
they own.  Which toolchains can even ingest the model, and what does each
converted deployment cost?  This example walks the conversion matrix,
converts where possible, and times every resulting deployment.

Run:  python examples/model_exchange.py [model]
"""

import sys

from repro import InferenceSession, ReproError, load_device, load_framework, load_model
from repro.frameworks.exchange import can_convert, compatibility_scores, convert

SOURCE = "PyTorch"
TARGETS = (
    ("TensorRT", "Jetson Nano"),
    ("TFLite", "Raspberry Pi 3B"),
    ("NCSDK", "Movidius NCS"),
    ("TVM VTA", "PYNQ-Z1"),
    ("Caffe", "Jetson TX2"),
    ("DarkNet", "Jetson TX2"),
)


def main(model_name: str = "ResNet-50") -> None:
    graph = load_model(model_name)
    print(f"Source: {model_name} trained in {SOURCE}")
    print()
    print("Importer friendliness (count of source frameworks each accepts):")
    for name, score in sorted(compatibility_scores().items(), key=lambda kv: -kv[1]):
        print(f"  {name:11s}: {score}")
    print()

    for framework_name, device_name in TARGETS:
        path = can_convert(SOURCE, framework_name)
        if path is None:
            print(f"{framework_name:9s} on {device_name:16s}: NO IMPORT PATH "
                  f"from {SOURCE} (reimplement by hand)")
            continue
        converted = convert(graph, SOURCE, framework_name)
        try:
            deployed = load_framework(framework_name).deploy(
                converted, load_device(device_name))
        except ReproError as error:
            print(f"{framework_name:9s} on {device_name:16s}: imported via "
                  f"{path.via}, but deployment failed "
                  f"({type(error).__name__})")
            continue
        session = InferenceSession(deployed)
        print(f"{framework_name:9s} on {device_name:16s}: via {path.via:12s} "
              f"-> {session.latency_s * 1e3:8.1f} ms "
              f"[{deployed.weight_dtype.value}, {deployed.storage_mode}]")
    print()
    print("TensorRT's broad importer set is exactly why the paper calls it")
    print("the most compatible framework (Table II) — and DarkNet's empty")
    print("one is why Figures 3/4 show 'Not Available' bars.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
