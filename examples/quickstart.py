#!/usr/bin/env python3
"""Quickstart: deploy one model on one device and read every metric.

Mirrors the paper's basic workflow (Section V): deploy, time the inference
loop, measure energy, and inspect what the deployment actually did.

Run:  python examples/quickstart.py [model] [device] [framework]
"""

import sys

from repro import InferenceSession, load_device, load_framework, load_model
from repro.measurement import InferenceTimer
from repro.measurement.energy import active_power_w, measure_energy_per_inference


def main(model_name: str = "ResNet-18", device_name: str = "Jetson Nano",
         framework_name: str = "TensorRT") -> None:
    model = load_model(model_name)
    device = load_device(device_name)
    framework = load_framework(framework_name)

    print(f"Model:     {model.summary()}")
    print(f"Device:    {device.name} ({device.category.value}), "
          f"{device.memory.describe()}")
    print(f"Framework: {framework.name}")
    print()

    deployed = framework.deploy(model, device)
    print(f"Deployment: {deployed.describe()}")
    for note in deployed.notes:
        print(f"  note: {note}")

    session = InferenceSession(deployed)
    init_s, timing = InferenceTimer(seed=0).measure_with_init(session)
    energy = measure_energy_per_inference(session)

    print()
    print(f"One-time setup:       {init_s:8.2f} s  (excluded from the loop)")
    print(f"Time per inference:   {timing.value * 1e3:8.1f} ms  "
          f"(median of {timing.samples} runs, sd {timing.stddev * 1e3:.2f} ms)")
    print(f"Active power:         {active_power_w(session):8.2f} W")
    print(f"Energy per inference: {energy.value * 1e3:8.1f} mJ")
    print(f"Compute utilization:  {session.utilization:8.1%}")
    print()
    print("Latency decomposition:")
    plan = session.plan
    print(f"  compute  {plan.compute_s * 1e3:8.2f} ms "
          f"({plan.bound_fraction('compute'):.0%} of roofline time compute-bound)")
    print(f"  memory   {plan.memory_s * 1e3:8.2f} ms")
    print(f"  dispatch {plan.dispatch_s * 1e3:8.2f} ms over "
          f"{len(plan.timings)} kernels")


if __name__ == "__main__":
    main(*sys.argv[1:4])
