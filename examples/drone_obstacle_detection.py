#!/usr/bin/env python3
"""Scenario: object detection on a battery-powered UAV.

The paper's introduction motivates in-the-edge inference with drones that
cannot offload to the cloud.  This example sweeps every (device, framework,
detector) combination and reports which deployments satisfy a UAV's
constraints: a frame deadline, a power ceiling, and a payload-friendly
device class — then ranks the feasible ones by energy per frame.

Run:  python examples/drone_obstacle_detection.py [fps] [power_budget_w]
"""

import sys

from repro import InferenceSession, ReproError, load_device, load_framework, load_model
from repro.harness.figures import BEST_FRAMEWORK_CANDIDATES
from repro.measurement.energy import active_power_w, measure_energy_per_inference

DETECTORS = ("TinyYolo", "SSD MobileNet-v1", "YOLOv3")
EDGE_DEVICES = ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano", "EdgeTPU",
                "Movidius NCS", "PYNQ-Z1")


def sweep(fps: float, power_budget_w: float):
    deadline_s = 1.0 / fps
    feasible, rejected = [], []
    for device_name in EDGE_DEVICES:
        device = load_device(device_name)
        for framework_name in BEST_FRAMEWORK_CANDIDATES[device_name]:
            framework = load_framework(framework_name)
            for detector in DETECTORS:
                try:
                    deployed = framework.deploy(load_model(detector), device)
                except ReproError as error:
                    rejected.append((detector, device_name, framework_name,
                                     type(error).__name__))
                    continue
                session = InferenceSession(deployed)
                power = active_power_w(session)
                entry = {
                    "detector": detector,
                    "device": device_name,
                    "framework": framework_name,
                    "latency_ms": session.latency_s * 1e3,
                    "power_w": power,
                    "energy_mj": float(measure_energy_per_inference(session)) * 1e3,
                }
                if session.latency_s <= deadline_s and power <= power_budget_w:
                    feasible.append(entry)
                else:
                    reason = "deadline" if session.latency_s > deadline_s else "power"
                    rejected.append((detector, device_name, framework_name, reason))
    return feasible, rejected


def main(fps: float = 10.0, power_budget_w: float = 7.5) -> None:
    print(f"UAV constraints: {fps:.0f} fps deadline "
          f"({1e3 / fps:.0f} ms/frame), <= {power_budget_w} W payload power")
    print()
    feasible, rejected = sweep(fps, power_budget_w)
    if not feasible:
        print("No deployment satisfies the constraints; the rejections below "
              "show what to relax.")
    else:
        print(f"{len(feasible)} feasible deployments, best energy first:")
        feasible.sort(key=lambda e: e["energy_mj"])
        for entry in feasible:
            print(f"  {entry['detector']:18s} on {entry['device']:16s} via "
                  f"{entry['framework']:9s}: {entry['latency_ms']:7.1f} ms, "
                  f"{entry['power_w']:5.2f} W, {entry['energy_mj']:7.1f} mJ/frame")
    print()
    print(f"{len(rejected)} rejected combinations (first 12 shown):")
    for detector, device, framework, reason in rejected[:12]:
        print(f"  {detector:18s} on {device:16s} via {framework:9s}: {reason}")


if __name__ == "__main__":
    args = [float(a) for a in sys.argv[1:3]]
    main(*args)
