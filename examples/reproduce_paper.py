#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the whole-paper harness: it executes each registered experiment and
prints the rendered paper-vs-measured table, in paper order.

Run:  python examples/reproduce_paper.py [experiment_id ...]
e.g.  python examples/reproduce_paper.py fig07 fig08
"""

import sys
import time

from repro import list_experiments, render_table, run_experiment


def main(selected: list[str]) -> None:
    experiment_ids = selected or list_experiments()
    total_start = time.perf_counter()
    for experiment_id in experiment_ids:
        start = time.perf_counter()
        table = run_experiment(experiment_id)
        elapsed = time.perf_counter() - start
        print(render_table(table))
        print(f"[{experiment_id} regenerated in {elapsed:.2f} s]")
        print()
    print(f"Reproduced {len(experiment_ids)} artifacts in "
          f"{time.perf_counter() - total_start:.1f} s.")


if __name__ == "__main__":
    main(sys.argv[1:])
