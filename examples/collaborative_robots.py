#!/usr/bin/env python3
"""Scenario: a swarm of inexpensive robots sharing one DNN.

The paper's introduction motivates edge inference with "inexpensive robots"
and its related work covers the authors' collaborative distribution of DNNs
across IoT devices.  This example asks two questions for a Raspberry
Pi-based robot team:

1. Offload or not?  A Neurosurgeon-style split against a base-station GPU
   under different radio conditions.
2. Collaborate!  When the base station is unreachable, pipeline the model
   across teammates and see how throughput scales.

Run:  python examples/collaborative_robots.py [model]
"""

import sys

from repro import load_device, load_framework, load_model
from repro.distribution import SplitPlanner, load_link, partition_pipeline


def main(model_name: str = "TinyYolo") -> None:
    graph = load_model(model_name)
    print(f"Model: {graph.summary()}")
    print()

    # Part 1: offloading decision against a base-station GPU.
    edge = load_framework("TensorFlow").deploy(graph, load_device("Raspberry Pi 3B"))
    remote = load_framework("PyTorch").deploy(graph, load_device("GTX Titan X"))
    print("Offloading decision (robot = RPi 3B, base station = GTX Titan X):")
    for link_name in ("ethernet", "wifi", "wifi-congested", "lte", "bluetooth"):
        planner = SplitPlanner(edge, remote, load_link(link_name))
        best = planner.best()
        print(f"  {link_name:15s}: {best.describe()}")
        print(f"  {'':15s}  (fully local would take "
              f"{planner.all_edge().total_s:.2f} s, "
              f"speedup {planner.offload_speedup():.1f}x)")
    print()

    # Part 2: no base station — pipeline across teammates.
    print("Collaborative pipeline across robot teammates (WiFi between them):")
    link = load_link("wifi")
    baseline_fps = partition_pipeline(edge, 1, link).throughput_fps
    for team_size in (1, 2, 3, 4, 6):
        plan = partition_pipeline(edge, team_size, link)
        print(f"  {team_size} robot(s): {plan.throughput_fps:6.2f} fps "
              f"({plan.throughput_fps / baseline_fps:4.2f}x), "
              f"bottleneck stage {plan.bottleneck_s * 1e3:6.0f} ms, "
              f"per-frame latency {plan.pipeline_latency_s * 1e3:6.0f} ms")
    print()
    print("Scaling saturates when one indivisible layer owns the bottleneck")
    print("stage — the same sub-linear behaviour the collaborative-IoT papers")
    print("report on physical Pi clusters.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
