#!/usr/bin/env python3
"""Scenario: an on-device language model (the paper's future work, built).

Section II: "We plan to extend our models to include more varieties of DNN
models, such as RNNs and LSTMs."  This example deploys the recurrent zoo
across the study's platforms and shows the structural story: sequential
recurrence exposes one timestep of work at a time, so wide accelerators run
LSTMs at a few percent of peak — and several toolchains cannot deploy them
at all.

Run:  python examples/rnn_language_model_edge.py
"""

from repro import InferenceSession, ReproError, load_device, load_framework, load_model

MODELS = ("CharRNN-LSTM", "LSTM-PTB", "GRU-Encoder")
TARGETS = (
    ("Raspberry Pi 3B", "TFLite"),
    ("Raspberry Pi 3B", "TensorFlow"),
    ("Jetson TX2", "PyTorch"),
    ("Jetson Nano", "TensorRT"),
    ("EdgeTPU", "TFLite"),
    ("Movidius NCS", "NCSDK"),
    ("Jetson TX2", "Caffe"),
    ("RTX 2080", "PyTorch"),
)


def main() -> None:
    for model_name in MODELS:
        graph = load_model(model_name)
        print(f"{model_name}: {graph.total_params / 1e6:.2f} M params, "
              f"{graph.total_macs / 1e6:.0f} MMACs per sequence")
        for device_name, framework_name in TARGETS:
            try:
                deployed = load_framework(framework_name).deploy(
                    graph, load_device(device_name))
            except ReproError as error:
                print(f"  {device_name:16s} via {framework_name:10s}: "
                      f"UNDEPLOYABLE ({type(error).__name__})")
                continue
            session = InferenceSession(deployed)
            rate = graph.total_macs / session.latency_s
            peak = deployed.unit.peak(deployed.weight_dtype)
            print(f"  {device_name:16s} via {framework_name:10s}: "
                  f"{session.latency_s * 1e3:8.1f} ms/seq, "
                  f"{rate / 1e9:7.2f} GMAC/s ({rate / peak:6.2%} of peak)")
        print()
    print("Compare the peak fractions with the ~10-45% the same stacks reach")
    print("on CNNs: recurrence, not kernel quality, is the bottleneck.")


if __name__ == "__main__":
    main()
