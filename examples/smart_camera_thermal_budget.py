#!/usr/bin/env python3
"""Scenario: a privacy-preserving home camera running continuous inference.

The paper motivates edge inference with privacy (home video never leaves
the device) and closes with temperature behaviour (Figure 14).  This
example runs a continuous-classification workload on each edge device,
soaks the thermal model to steady state, and reports whether the device
survives a 24/7 duty cycle — plus how many hours a 20 Wh battery pack
would last.

Run:  python examples/smart_camera_thermal_budget.py [model]
"""

import sys

from repro import InferenceSession, ReproError, load_device, load_framework, load_model
from repro.harness.figures import BEST_FRAMEWORK_CANDIDATES
from repro.measurement import ThermalCamera
from repro.measurement.energy import active_power_w

BATTERY_WH = 20.0
EDGE_DEVICES = ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano", "EdgeTPU",
                "Movidius NCS")


def best_session(model_name: str, device_name: str):
    device = load_device(device_name)
    for framework_name in BEST_FRAMEWORK_CANDIDATES[device_name]:
        try:
            deployed = load_framework(framework_name).deploy(load_model(model_name), device)
        except ReproError:
            continue
        return framework_name, InferenceSession(deployed)
    return None


def main(model_name: str = "MobileNet-v2") -> None:
    print(f"Continuous {model_name} inference, ambient 22 degC, "
          f"{BATTERY_WH:.0f} Wh battery")
    print()
    header = (f"{'device':16s} {'framework':10s} {'fps':>6s} {'power':>7s} "
              f"{'steady':>7s} {'verdict':>18s} {'battery':>8s}")
    print(header)
    print("-" * len(header))
    for device_name in EDGE_DEVICES:
        entry = best_session(model_name, device_name)
        if entry is None:
            print(f"{device_name:16s} {'-':10s} {'-':>6s}  (no deployable framework)")
            continue
        framework_name, session = entry
        device = session.deployed.device
        power = active_power_w(session)
        simulator = device.thermal_simulator()
        simulator.temperature_c = device.thermal.steady_state_c(device.power.idle_w)
        camera = ThermalCamera(seed=0)
        readings = camera.record_soak(simulator, power)
        if simulator.shutdown:
            verdict = "THERMAL SHUTDOWN"
        elif simulator.fan_on:
            verdict = "ok (fan running)"
        else:
            verdict = "ok (passive)"
        fps = 1.0 / session.latency_s
        battery_h = BATTERY_WH / power
        print(f"{device_name:16s} {framework_name:10s} {fps:6.1f} {power:6.2f}W "
              f"{readings[-1].surface_c:6.1f}C {verdict:>18s} {battery_h:7.1f}h")
    print()
    print("Notes: steady = camera-visible surface temperature at equilibrium;")
    print("the Raspberry Pi reproduces Figure 14's thermal shutdown under")
    print("sustained load, while the fan-equipped Jetsons stay in budget.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
