"""Shared fixtures.

Devices and frameworks are cheap to construct; model graphs are rebuilt per
test to guarantee isolation (transforms clone, but tests may annotate).
Session-scoped fixtures exist only for read-only heavyweight objects.
"""

from __future__ import annotations

import pytest

from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


@pytest.fixture
def rpi():
    return load_device("Raspberry Pi 3B")


@pytest.fixture
def tx2():
    return load_device("Jetson TX2")


@pytest.fixture
def nano():
    return load_device("Jetson Nano")


@pytest.fixture
def edgetpu():
    return load_device("EdgeTPU")


@pytest.fixture
def movidius():
    return load_device("Movidius NCS")


@pytest.fixture
def pynq():
    return load_device("PYNQ-Z1")


@pytest.fixture
def resnet18():
    return load_model("ResNet-18")


@pytest.fixture
def mobilenet_v2():
    return load_model("MobileNet-v2")


@pytest.fixture
def vgg16():
    return load_model("VGG16")


def make_session(model_name: str, device_name: str, framework_name: str) -> InferenceSession:
    """Deploy + build a session; helper shared by many tests."""
    framework = load_framework(framework_name)
    deployed = framework.deploy(load_model(model_name), load_device(device_name))
    return InferenceSession(deployed)


@pytest.fixture
def session_factory():
    return make_session
