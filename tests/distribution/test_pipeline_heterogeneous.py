"""Heterogeneous pipeline partitioning."""

import pytest

from repro.distribution import (
    load_link,
    partition_pipeline,
    partition_pipeline_heterogeneous,
)
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _deploy(device_name: str, framework_name: str = "TensorFlow",
            model: str = "TinyYolo"):
    return load_framework(framework_name).deploy(load_model(model),
                                                 load_device(device_name))


class TestHeterogeneous:
    def test_matches_homogeneous_for_identical_devices(self):
        link = load_link("wifi")
        homogeneous = partition_pipeline(_deploy("Raspberry Pi 3B"), 3, link)
        hetero = partition_pipeline_heterogeneous(
            [_deploy("Raspberry Pi 3B") for _ in range(3)], link)
        assert hetero.bottleneck_s == pytest.approx(homogeneous.bottleneck_s)

    def test_fast_device_takes_the_heavy_stage(self):
        """RPi + TX2 team: the DP hands the TX2 most of the work."""
        link = load_link("wifi")
        rpi = _deploy("Raspberry Pi 3B", "PyTorch")
        tx2 = _deploy("Jetson TX2", "PyTorch")
        plan = partition_pipeline_heterogeneous([rpi, tx2], link)
        rpi_stage, tx2_stage = plan.stages
        assert len(tx2_stage.op_names) > len(rpi_stage.op_names)

    def test_adding_a_tx2_beats_adding_an_rpi(self):
        link = load_link("wifi")
        rpi = _deploy("Raspberry Pi 3B", "PyTorch")
        tx2 = _deploy("Jetson TX2", "PyTorch")
        two_rpis = partition_pipeline_heterogeneous(
            [rpi, _deploy("Raspberry Pi 3B", "PyTorch")], link)
        rpi_plus_tx2 = partition_pipeline_heterogeneous([rpi, tx2], link)
        assert rpi_plus_tx2.throughput_fps > two_rpis.throughput_fps

    def test_device_order_matters(self):
        """The pipeline is ordered: input arrives at stage 0, so putting
        the slow device late changes which stage pays transfers."""
        link = load_link("bluetooth")
        rpi_first = partition_pipeline_heterogeneous(
            [_deploy("Raspberry Pi 3B", "PyTorch"), _deploy("Jetson TX2", "PyTorch")],
            link)
        tx2_first = partition_pipeline_heterogeneous(
            [_deploy("Jetson TX2", "PyTorch"), _deploy("Raspberry Pi 3B", "PyTorch")],
            link)
        # Both are valid plans over the same resources; they need not tie.
        assert rpi_first.stages[0].op_names != tx2_first.stages[0].op_names

    def test_stage_coverage_contiguous(self):
        link = load_link("wifi")
        plan = partition_pipeline_heterogeneous(
            [_deploy("Raspberry Pi 3B"), _deploy("Jetson TX2", "TensorFlow"),
             _deploy("Jetson Nano", "TensorFlow")], link)
        deployed = _deploy("Raspberry Pi 3B")
        flattened = [name for stage in plan.stages for name in stage.op_names]
        assert flattened == [op.name for op in deployed.graph.schedulable_ops()]

    def test_mixed_models_rejected(self):
        link = load_link("wifi")
        with pytest.raises(ValueError, match="share one model"):
            partition_pipeline_heterogeneous(
                [_deploy("Raspberry Pi 3B"),
                 _deploy("Jetson TX2", model="ResNet-18")], link)

    def test_mixed_fusion_rejected(self):
        """TFLite fuses, TensorFlow does not: schedules diverge."""
        link = load_link("wifi")
        with pytest.raises(ValueError, match="op schedule"):
            partition_pipeline_heterogeneous(
                [_deploy("Raspberry Pi 3B", "TensorFlow"),
                 _deploy("Raspberry Pi 3B", "TFLite")], link)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            partition_pipeline_heterogeneous([], load_link("wifi"))
