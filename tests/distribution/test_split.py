"""Neurosurgeon-style split planner."""

import pytest

from repro.distribution import SplitPlanner, load_link
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _planner(model="MobileNet-v2", edge_device="Jetson TX2",
             remote_device="GTX Titan X", link="wifi",
             edge_framework="PyTorch") -> SplitPlanner:
    graph = load_model(model)
    edge = load_framework(edge_framework).deploy(graph, load_device(edge_device))
    remote = load_framework("PyTorch").deploy(graph, load_device(remote_device))
    return SplitPlanner(edge, remote, load_link(link))


class TestSweep:
    def test_covers_all_cuts(self):
        planner = _planner()
        plans = planner.sweep()
        assert len(plans) == len(planner.edge.graph.schedulable_ops()) + 1

    def test_endpoints(self):
        planner = _planner()
        all_remote = planner.all_remote()
        all_edge = planner.all_edge()
        assert all_remote.edge_s == 0.0
        assert all_remote.transfer_s > 0.0
        assert all_edge.remote_s == 0.0
        assert all_edge.transfer_s == 0.0

    def test_edge_time_monotone_in_cut_depth(self):
        plans = _planner().sweep()
        edge_times = [plan.edge_s for plan in plans]
        assert edge_times == sorted(edge_times)

    def test_mismatched_models_rejected(self):
        a = load_framework("PyTorch").deploy(load_model("ResNet-18"),
                                             load_device("Jetson TX2"))
        b = load_framework("PyTorch").deploy(load_model("ResNet-50"),
                                             load_device("GTX Titan X"))
        with pytest.raises(ValueError, match="one model"):
            SplitPlanner(a, b, load_link("wifi"))


class TestBestPlan:
    def test_slow_edge_offloads_everything(self):
        """RPi-class edge: any remote plan beats 45 s of local VGG16."""
        planner = _planner("VGG16", edge_device="Raspberry Pi 3B",
                           remote_device="GTX Titan X", link="wifi")
        best = planner.best()
        assert best.cut.index == 0
        assert planner.offload_speedup() > 50

    def test_fast_edge_slow_link_stays_local(self):
        """TX2 over bluetooth: shipping 600 KB of input costs seconds."""
        planner = _planner("MobileNet-v2", link="bluetooth")
        best = planner.best()
        assert best.is_all_edge
        assert planner.offload_speedup() == pytest.approx(1.0)

    def test_fast_link_flips_the_decision(self):
        local = _planner("ResNet-50", link="bluetooth").best()
        remote = _planner("ResNet-50", link="ethernet").best()
        assert local.is_all_edge
        assert not remote.is_all_edge

    def test_best_never_worse_than_endpoints(self):
        for link in ("wifi", "lte", "ethernet"):
            planner = _planner("ResNet-50", link=link)
            best = planner.best().total_s
            assert best <= planner.all_edge().total_s + 1e-12
            assert best <= planner.all_remote().total_s + 1e-12

    def test_describe(self):
        plan = _planner().best()
        assert "ms" in plan.describe()
