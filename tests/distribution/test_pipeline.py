"""Collaborative pipeline partitioning."""

import pytest

from repro.distribution import load_link, partition_pipeline
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _deployed(model="TinyYolo", device="Raspberry Pi 3B", framework="TensorFlow"):
    return load_framework(framework).deploy(load_model(model), load_device(device))


class TestPartition:
    def test_single_device_is_the_whole_model(self):
        deployed = _deployed()
        plan = partition_pipeline(deployed, 1, load_link("wifi"))
        assert len(plan.stages) == 1
        assert plan.stages[0].outgoing_transfer_s == 0.0
        session_free = sum(
            t.latency_s for t in InferenceSession(deployed).plan.timings)
        assert plan.stages[0].compute_s == pytest.approx(session_free)

    def test_stages_cover_all_ops_contiguously(self):
        deployed = _deployed()
        plan = partition_pipeline(deployed, 3, load_link("wifi"))
        flattened = [name for stage in plan.stages for name in stage.op_names]
        assert flattened == [op.name for op in deployed.graph.schedulable_ops()]

    def test_throughput_improves_with_devices(self):
        deployed = _deployed()
        fps = [partition_pipeline(deployed, n, load_link("wifi")).throughput_fps
               for n in (1, 2, 3)]
        assert fps[1] > fps[0]
        assert fps[2] >= fps[1]

    def test_scaling_saturates_at_the_largest_op(self):
        """An indivisible op bounds the bottleneck no matter how many
        devices join — the sublinear scaling the collaborative papers see."""
        deployed = _deployed()
        timings = InferenceSession(deployed).plan.timings
        largest_op = max(t.latency_s for t in timings)
        plan = partition_pipeline(deployed, 8, load_link("wifi"))
        assert plan.bottleneck_s >= largest_op

    def test_latency_grows_while_throughput_improves(self):
        deployed = _deployed()
        one = partition_pipeline(deployed, 1, load_link("wifi"))
        three = partition_pipeline(deployed, 3, load_link("wifi"))
        assert three.throughput_fps > one.throughput_fps
        assert three.pipeline_latency_s > one.pipeline_latency_s

    def test_slow_links_penalize_deep_pipelines(self):
        deployed = _deployed()
        fast = partition_pipeline(deployed, 4, load_link("ethernet"))
        slow = partition_pipeline(deployed, 4, load_link("bluetooth"))
        assert slow.bottleneck_s > fast.bottleneck_s

    def test_invalid_device_counts(self):
        deployed = _deployed()
        with pytest.raises(ValueError):
            partition_pipeline(deployed, 0, load_link("wifi"))
        with pytest.raises(ValueError):
            partition_pipeline(deployed, 10_000, load_link("wifi"))

    def test_describe(self):
        plan = partition_pipeline(_deployed(), 2, load_link("wifi"))
        text = plan.describe()
        assert "2-stage pipeline" in text
        assert "device 0" in text and "device 1" in text
