"""Lowering rules: split/pipeline plans and Deployments agree exactly.

The legacy planners are the ground truth; the lowered Deployments must
project back onto them by dataclass equality at ZERO float tolerance —
that exactness is what lets the fleet serve what the planners price.
"""

import pytest

from repro.distribution import (
    SplitPlanner,
    as_pipeline_plan,
    as_split_plan,
    load_link,
    lower_pipeline,
    lower_split,
    partition_pipeline_heterogeneous,
    split_deployments,
)
from repro.placement import Deployment
from repro.runtime import Scenario, default_runner

EDGE = Scenario("MobileNet-v2", "Raspberry Pi 3B", "TFLite")
REMOTE = Scenario("MobileNet-v2", "GTX Titan X", "PyTorch")


@pytest.fixture(scope="module")
def runner():
    return default_runner()


@pytest.fixture(scope="module")
def reference_plans(runner):
    planner = SplitPlanner(runner.session(EDGE).deployed,
                           runner.session(REMOTE).deployed, load_link("wifi"))
    return planner.sweep()


class TestSplitLowering:
    def test_every_cut_projects_back_exactly(self, runner, reference_plans):
        """All cuts, zero tolerance: the deployment IS the plan."""
        lowered = split_deployments(EDGE, REMOTE, "wifi", runner=runner)
        assert len(lowered) == len(reference_plans)
        for cut_index, deployment in enumerate(lowered[:-1]):
            assert as_split_plan(deployment) == reference_plans[cut_index]

    def test_default_cut_is_the_latency_optimal_one(self, runner,
                                                    reference_plans):
        deployment = lower_split(EDGE, REMOTE, "wifi", runner=runner)
        best = min(reference_plans, key=lambda plan: plan.total_s)
        if deployment.kind == "split":
            assert as_split_plan(deployment) == best
        else:  # all-edge optimum normalizes to a single-node deployment
            assert best.cut.index == len(reference_plans) - 1

    def test_all_edge_cut_normalizes_to_single_node(self, runner,
                                                    reference_plans):
        all_edge = lower_split(EDGE, REMOTE, "wifi",
                               cut_index=len(reference_plans) - 1,
                               runner=runner)
        assert all_edge.kind == "single"
        assert all_edge.devices == ("Raspberry Pi 3B",)
        with pytest.raises(ValueError, match="two-stage split"):
            as_split_plan(all_edge)

    def test_all_remote_cut_ships_the_input(self, runner):
        all_remote = lower_split(EDGE, REMOTE, "wifi", cut_index=0,
                                 runner=runner)
        assert all_remote.kind == "split"
        head, tail = all_remote.stages
        assert head.op_names == () and head.compute_s == pytest.approx(0.0)
        assert head.transfer_bytes > 0
        assert tail.scenario.device == "GTX Titan X"

    def test_stages_carry_power_and_init_pricing(self, runner):
        deployment = lower_split(EDGE, REMOTE, "wifi", cut_index=5,
                                 runner=runner)
        for stage in deployment.stages:
            assert stage.power_w > 0
            assert stage.idle_w > 0
            assert stage.init_time_s > 0

    def test_lowered_deployment_survives_json(self, runner):
        deployment = lower_split(EDGE, REMOTE, "lte", cut_index=3,
                                 runner=runner)
        clone = Deployment.from_dict(deployment.to_dict())
        assert clone == deployment
        assert as_split_plan(clone) == as_split_plan(deployment)


class TestPipelineLowering:
    CHAIN = (Scenario("MobileNet-v2", "Raspberry Pi 3B", "TFLite"),
             Scenario("MobileNet-v2", "Raspberry Pi 3B", "TFLite"))

    def test_projection_equals_the_partitioner_exactly(self, runner):
        deployment = lower_pipeline(self.CHAIN, "lan", runner=runner)
        reference = partition_pipeline_heterogeneous(
            [runner.session(s).deployed for s in self.CHAIN],
            load_link("lan"))
        assert as_pipeline_plan(deployment) == reference

    def test_heterogeneous_chain_lowerable(self, runner):
        chain = (Scenario("MobileNet-v2", "Jetson Nano", "PyTorch"),
                 Scenario("MobileNet-v2", "Jetson TX2", "PyTorch"))
        deployment = lower_pipeline(chain, "wifi", runner=runner)
        assert deployment.kind == "pipeline"
        assert deployment.devices == ("Jetson Nano", "Jetson TX2")
        reference = partition_pipeline_heterogeneous(
            [runner.session(s).deployed for s in chain], load_link("wifi"))
        assert as_pipeline_plan(deployment) == reference

    def test_interior_stages_record_crossing_bytes(self, runner):
        deployment = lower_pipeline(self.CHAIN, "lan", runner=runner)
        assert deployment.stages[0].transfer_bytes > 0
        assert deployment.stages[-1].transfer_bytes == 0

    def test_single_scenario_chain_rejected(self, runner):
        with pytest.raises(ValueError, match="at least two"):
            lower_pipeline(self.CHAIN[:1], "lan", runner=runner)

    def test_as_pipeline_plan_rejects_other_kinds(self, runner):
        deployment = lower_split(EDGE, REMOTE, "wifi", cut_index=0,
                                 runner=runner)
        with pytest.raises(ValueError, match="pipeline deployment"):
            as_pipeline_plan(deployment)
