"""Cut-point analysis on real graphs."""

import pytest

from repro.distribution.partition import cut_points, narrowest_cut
from repro.graphs import GraphBuilder
from repro.graphs.transforms import fuse_graph
from repro.models import load_model


class TestLinearChain:
    def _chain(self):
        b = GraphBuilder("chain")
        x = b.input((1, 4, 4))  # 64 B
        x = b.conv2d(x, 2, 1, use_bias=False)  # out 128 B
        x = b.conv2d(x, 4, 1, use_bias=False)  # out 256 B
        return b.build()

    def test_cut_count(self):
        graph = self._chain()
        assert len(cut_points(graph)) == len(graph.schedulable_ops()) + 1

    def test_crossing_bytes_are_single_tensors(self):
        points = cut_points(self._chain())
        assert [p.transfer_bytes for p in points] == [64, 128, 256]

    def test_after_op_labels(self):
        points = cut_points(self._chain())
        assert points[0].after_op == ""
        assert points[1].after_op == "conv_1"


class TestResidualGraph:
    def test_cut_inside_block_ships_both_paths(self):
        b = GraphBuilder("res")
        x = b.input((1, 4, 4))  # 64 B
        branch = b.conv2d(x, 1, 1, use_bias=False)  # 64 B
        branch = b.conv2d(branch, 1, 1, use_bias=False, name="mid")  # 64 B
        b.add(branch, x)
        points = cut_points(b.build())
        # Cut after the first conv: conv output AND the input skip cross.
        assert points[1].transfer_bytes == 128
        # Cut after "mid": mid output AND skip cross.
        assert points[2].transfer_bytes == 128
        # Final cut: only the add output.
        assert points[3].transfer_bytes == 64

    def test_resnet18_cuts_account_for_shortcuts(self):
        graph = load_model("ResNet-18")
        points = cut_points(graph)
        # Transfer sizes inside residual stages exceed the trunk tensor
        # alone at least somewhere.
        trunk_only = graph.op("conv_2").output_bytes()
        inside = [p for p in points if p.transfer_bytes > trunk_only]
        assert inside


class TestFusionInteraction:
    def test_fused_ops_cannot_host_cuts(self):
        graph = load_model("ResNet-18")
        fused = fuse_graph(graph)
        assert len(cut_points(fused)) < len(cut_points(graph))
        names = {p.after_op for p in cut_points(fused)}
        bn_names = {op.name for op in fused.ops if op.is_fused_away}
        assert not names & bn_names


class TestNarrowestCut:
    def test_picks_minimum_interior(self):
        graph = load_model("VGG16")
        best = narrowest_cut(graph)
        interior = cut_points(graph)[1:-1]
        assert best.transfer_bytes == min(p.transfer_bytes for p in interior)

    def test_vgg_narrowest_is_deep(self):
        """VGG's activations shrink monotonically: the narrowest interior
        point sits in the classifier, far from the input."""
        graph = load_model("VGG16")
        best = narrowest_cut(graph)
        total = len(graph.schedulable_ops())
        assert best.index > total // 2

    def test_chain_too_short(self):
        b = GraphBuilder("short")
        x = b.input((4,))
        b.relu(x)
        with pytest.raises(ValueError, match="interior"):
            narrowest_cut(b.build())
