"""Network link model."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.distribution.network import LINK_PRESETS, NetworkLink, load_link


class TestNetworkLink:
    def test_transfer_time(self):
        link = NetworkLink("test", bandwidth_bytes_per_s=1e6, latency_s=0.01)
        assert link.transfer_time_s(1e6) == pytest.approx(1.01)

    def test_zero_payload_costs_latency(self):
        link = NetworkLink("test", bandwidth_bytes_per_s=1e6, latency_s=0.01)
        assert link.transfer_time_s(0) == pytest.approx(0.01)

    def test_reliability_inflates_time(self):
        perfect = NetworkLink("a", 1e6, 0.0, reliability=1.0)
        lossy = NetworkLink("b", 1e6, 0.0, reliability=0.5)
        assert lossy.transfer_time_s(1e6) == pytest.approx(2 * perfect.transfer_time_s(1e6))

    @pytest.mark.parametrize("kwargs", [
        {"bandwidth_bytes_per_s": 0, "latency_s": 0},
        {"bandwidth_bytes_per_s": 1e6, "latency_s": -1},
        {"bandwidth_bytes_per_s": 1e6, "latency_s": 0, "reliability": 0.0},
        {"bandwidth_bytes_per_s": 1e6, "latency_s": 0, "reliability": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetworkLink("bad", **kwargs)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            load_link("wifi").transfer_time_s(-1)


class TestPresets:
    def test_expected_presets_exist(self):
        for name in ("wifi", "ethernet", "lte", "bluetooth", "loopback"):
            assert name in LINK_PRESETS

    def test_speed_ordering(self):
        assert (load_link("loopback").bandwidth_bytes_per_s
                > load_link("ethernet").bandwidth_bytes_per_s
                > load_link("wifi").bandwidth_bytes_per_s
                > load_link("lte").bandwidth_bytes_per_s
                > load_link("bluetooth").bandwidth_bytes_per_s)

    def test_unknown_preset(self):
        with pytest.raises(UnknownEntryError, match="options"):
            load_link("carrier-pigeon")
