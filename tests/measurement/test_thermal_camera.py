"""Thermal camera model tests (Figure 14 instrumentation)."""

import pytest

from repro.hardware import load_device
from repro.measurement.thermal_camera import ThermalCamera


class TestThermalCamera:
    def test_reads_surface_not_junction(self):
        device = load_device("Jetson TX2")
        sim = device.thermal_simulator()
        sim.temperature_c = 50.0
        reading = ThermalCamera(seed=0).read(sim)
        assert reading.surface_c == pytest.approx(
            50.0 - device.thermal.surface_offset_c, abs=ThermalCamera.repeatability_c)

    def test_noise_bounded_by_repeatability(self):
        device = load_device("Jetson Nano")
        sim = device.thermal_simulator()
        camera = ThermalCamera(seed=1)
        for _ in range(100):
            reading = camera.read(sim)
            assert abs(reading.surface_c - sim.surface_temperature_c) <= camera.repeatability_c

    def test_soak_reaches_steady_state(self):
        device = load_device("EdgeTPU")
        sim = device.thermal_simulator()
        readings = ThermalCamera(seed=2).record_soak(sim, device.average_power_w())
        assert len(readings) > 2
        steady = device.thermal.steady_state_c(device.average_power_w())
        assert sim.temperature_c == pytest.approx(steady, abs=1.0)

    def test_soak_stops_on_shutdown(self):
        device = load_device("Raspberry Pi 3B")
        sim = device.thermal_simulator()
        ThermalCamera(seed=3).record_soak(sim, device.average_power_w())
        assert sim.shutdown

    def test_readings_carry_timestamps(self):
        device = load_device("Movidius NCS")
        sim = device.thermal_simulator()
        readings = ThermalCamera(seed=4).record_soak(sim, device.average_power_w())
        times = [r.time_s for r in readings]
        assert times == sorted(times)
