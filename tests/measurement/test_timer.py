"""Timing-loop methodology tests (Section V)."""

import pytest

from repro.measurement.timer import (
    InferenceTimer,
    MAX_RUNS,
    MIN_RUNS,
    choose_run_count,
)


class TestChooseRunCount:
    def test_fast_models_get_max_runs(self):
        assert choose_run_count(0.003) == MAX_RUNS

    def test_slow_models_get_min_runs(self):
        assert choose_run_count(16.5) == MIN_RUNS

    def test_mid_range_scales_with_budget(self):
        count = choose_run_count(0.1)  # 60s budget -> 600 runs
        assert MIN_RUNS < count < MAX_RUNS
        assert count == 600

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_run_count(0.0)


class TestInferenceTimer:
    def test_measurement_close_to_model_latency(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        measurement = InferenceTimer(seed=1).measure(session)
        assert float(measurement) == pytest.approx(session.latency_s, rel=0.05)

    def test_deterministic_for_same_seed(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        first = InferenceTimer(seed=42).measure(session, n_runs=200)
        second = InferenceTimer(seed=42).measure(session, n_runs=200)
        assert float(first) == float(second)

    def test_different_seeds_differ(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        first = InferenceTimer(seed=1).measure(session, n_runs=200)
        second = InferenceTimer(seed=2).measure(session, n_runs=200)
        assert float(first) != float(second)

    def test_jitter_has_expected_spread(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        measurement = InferenceTimer(seed=0, jitter_fraction=0.02).measure(
            session, n_runs=1000)
        assert measurement.stddev / measurement.value == pytest.approx(0.02, rel=0.3)

    def test_run_count_respects_section_v_range(self, session_factory):
        session = session_factory("VGG16", "Raspberry Pi 3B", "PyTorch")
        measurement = InferenceTimer(seed=0).measure(session)
        assert MIN_RUNS <= measurement.samples <= MAX_RUNS

    def test_invalid_run_count(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        with pytest.raises(ValueError):
            InferenceTimer().measure(session, n_runs=0)

    def test_measure_with_init_separates_one_time_cost(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        init_s, measurement = InferenceTimer(seed=0).measure_with_init(session)
        assert init_s == session.init_time_s
        assert init_s > float(measurement)  # init excluded from the loop
