"""Energy-per-inference measurement (Figure 11 mechanics)."""

import pytest

from repro.measurement.energy import (
    EnergyMeter,
    active_power_w,
    measure_energy_per_inference,
)
from repro.measurement.power_meter import PowerAnalyzer, USBMultimeter


class TestInstrumentSelection:
    def test_usb_devices_use_multimeter(self):
        meter = EnergyMeter()
        assert isinstance(meter.instrument_for("Raspberry Pi 3B"), USBMultimeter)
        assert isinstance(meter.instrument_for("EdgeTPU"), USBMultimeter)
        assert isinstance(meter.instrument_for("Movidius NCS"), USBMultimeter)

    def test_outlet_devices_use_analyzer(self):
        meter = EnergyMeter()
        assert isinstance(meter.instrument_for("Jetson TX2"), PowerAnalyzer)
        assert isinstance(meter.instrument_for("GTX Titan X"), PowerAnalyzer)


class TestEnergyValues:
    def test_energy_equals_power_times_latency(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        energy = measure_energy_per_inference(session)
        expected = active_power_w(session) * session.latency_s
        assert float(energy) == pytest.approx(expected, rel=0.02)

    def test_edgetpu_mobilenet_matches_paper_order(self, session_factory):
        """EdgeTPU MobileNet-v2: the paper reports 11 mJ; power x time gives
        ~12 mJ — we must land in that band."""
        session = session_factory("MobileNet-v2", "EdgeTPU", "TFLite")
        energy_mj = float(measure_energy_per_inference(session)) * 1e3
        assert 8.0 < energy_mj < 16.0

    def test_rpi_consumes_joules_not_millijoules(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        assert float(measure_energy_per_inference(session)) > 1.0

    def test_active_power_between_idle_and_max(self, session_factory):
        session = session_factory("ResNet-50", "Jetson Nano", "TensorRT")
        device = session.deployed.device
        power = active_power_w(session)
        assert device.power.idle_w < power <= device.power.active_w

    def test_seeded_reproducibility(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        first = float(EnergyMeter(seed=3).measure(session))
        second = float(EnergyMeter(seed=3).measure(session))
        assert first == second
