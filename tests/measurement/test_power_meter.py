"""Power instrument accuracy models."""

import pytest

from repro.measurement.power_meter import (
    PowerAnalyzer,
    USBMultimeter,
    average_power_w,
)


class TestUSBMultimeter:
    def test_reading_within_datasheet_bounds(self):
        meter = USBMultimeter(seed=0)
        true_power = 2.73
        for _ in range(200):
            sample = meter.sample(true_power)
            # Worst case: voltage and current bounds compound.
            assert sample.power_w == pytest.approx(true_power, abs=0.05)

    def test_one_hertz_sampling(self):
        samples = USBMultimeter(seed=0).record(lambda t: 1.0, duration_s=10.0)
        assert len(samples) == 10
        assert [s.time_s for s in samples] == pytest.approx(list(range(10)))

    def test_tracks_time_varying_power(self):
        samples = USBMultimeter(seed=0).record(lambda t: 1.0 + t, duration_s=5.0)
        powers = [s.power_w for s in samples]
        assert powers == sorted(powers)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            USBMultimeter().sample(-1.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            USBMultimeter().record(lambda t: 1.0, duration_s=0.0)

    def test_seeded_reproducibility(self):
        a = USBMultimeter(seed=5).sample(2.0).power_w
        b = USBMultimeter(seed=5).sample(2.0).power_w
        assert a == b


class TestPowerAnalyzer:
    def test_five_milliwatt_accuracy(self):
        meter = PowerAnalyzer(seed=0)
        for _ in range(200):
            assert meter.sample(100.0).power_w == pytest.approx(100.0, abs=0.005)

    def test_ten_hertz_sampling(self):
        samples = PowerAnalyzer(seed=0).record(lambda t: 1.0, duration_s=1.0)
        assert len(samples) == 10

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerAnalyzer().sample(-0.1)


class TestAveragePower:
    def test_mean_of_recording(self):
        samples = PowerAnalyzer(seed=0).record(lambda t: 10.0, duration_s=5.0)
        assert average_power_w(samples) == pytest.approx(10.0, abs=0.01)

    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            average_power_w([])
