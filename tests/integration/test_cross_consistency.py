"""Cross-module consistency: harness outputs must equal first-principles
recomputation through the public API.

These tests catch the failure mode where a figure generator and the engine
drift apart — every number the harness prints must be reconstructible from
a session built by hand.
"""

import pytest

from repro import InferenceSession, load_device, load_framework, load_model
from repro.frameworks.compat import compatibility_matrix
from repro.harness import run_experiment
from repro.harness.figures import (
    BEST_FRAMEWORK_CANDIDATES,
    best_framework_latency,
    build_session,
    cell_timer,
)
from repro.measurement.energy import active_power_w


class TestFig2Consistency:
    def test_best_framework_is_really_the_minimum(self):
        """fig02's winner must beat every other deployable candidate."""
        for model, device in (("ResNet-50", "Raspberry Pi 3B"),
                              ("MobileNet-v2", "Jetson Nano"),
                              ("VGG16", "Jetson TX2")):
            winner, latency = best_framework_latency(model, device)
            for candidate in BEST_FRAMEWORK_CANDIDATES[device]:
                try:
                    session = build_session(model, device, candidate)
                except Exception:
                    continue
                candidate_latency = float(
                    cell_timer(model, device, candidate).measure(session))
                assert latency <= candidate_latency + 1e-12, (candidate, winner)

    def test_fig2_cells_match_direct_measurement(self):
        table = run_experiment("fig02")
        row = table.row("Jetson Nano / ResNet-50")
        session = build_session("ResNet-50", "Jetson Nano", row["framework"])
        direct = float(
            cell_timer("ResNet-50", "Jetson Nano", row["framework"])
            .measure(session)) * 1e3
        assert row["measured_ms"] == pytest.approx(direct, rel=1e-9)


class TestEnergyConsistency:
    def test_fig12_points_equal_power_times_utilization(self):
        table = run_experiment("fig12")
        row = table.row("Jetson TX2 / ResNet-50")
        session = build_session("ResNet-50", "Jetson TX2", row["framework"])
        assert row["power_w"] == pytest.approx(active_power_w(session), rel=1e-9)
        assert row["latency_ms"] == pytest.approx(session.latency_s * 1e3, rel=1e-9)

    def test_fig11_energy_consistent_with_fig12_point(self):
        """Energy-per-inference must equal the scatter's power x latency,
        up to the simulated instrument accuracy."""
        fig11 = run_experiment("fig11")
        fig12 = run_experiment("fig12")
        for label in ("Jetson TX2 / ResNet-50", "EdgeTPU / MobileNet-v2"):
            energy_mj = fig11.row(label)["energy_mj"]
            point = fig12.row(label)
            expected = point["power_w"] * point["latency_ms"]  # W * ms = mJ
            assert energy_mj == pytest.approx(expected, rel=0.02), label


class TestTable5Consistency:
    def test_runnable_cells_produce_fig2_latencies(self):
        """Every runnable Table V cell has a (finite) fig02 latency, and
        every failing cell is marked '(fails)'."""
        matrix = compatibility_matrix()
        fig2 = run_experiment("fig02")
        for model, row in matrix.items():
            for device, result in row.items():
                cell = fig2.row(f"{device} / {model}")
                if result.status.runnable:
                    assert cell["measured_ms"] is not None, (model, device)
                    assert cell["measured_ms"] > 0
                else:
                    assert cell["framework"] == "(fails)", (model, device)


class TestProfileConsistency:
    def test_stack_run_bucket_equals_n_times_latency(self):
        from repro.profiling import profile_stack

        session = build_session("ResNet-18", "Jetson TX2", "TensorFlow")
        profile = profile_stack(session, 500)
        run_bucket = next(e for e in profile.entries
                          if e.function == "TF_SessionRunCallable")
        assert run_bucket.total_s == pytest.approx(500 * session.latency_s)
        assert run_bucket.calls == 500

    def test_pytorch_compute_buckets_sum_to_roofline(self):
        from repro.profiling import profile_stack

        session = build_session("ResNet-18", "Jetson TX2", "PyTorch")
        profile = profile_stack(session, 100)
        per_inference = sum(
            e.total_s for e in profile.entries if e.group == "per-inference"
        ) / 100
        assert per_inference == pytest.approx(session.latency_s, rel=1e-9)


class TestCalibrationConsistency:
    def test_anchored_pairs_reproduce_their_paper_numbers(self):
        """Deploying an anchor's exact (model, device, framework) triple via
        the public API must land on the paper latency."""
        from repro.engine.calibration import ANCHORS

        for (framework, device), (model, target_s, _src) in list(ANCHORS.items())[:8]:
            deployed = load_framework(framework).deploy(
                load_model(model), load_device(device))
            session = InferenceSession(deployed)
            assert session.latency_s == pytest.approx(target_s, rel=0.02), (
                framework, device)
