"""Failure injection: every error path fails loudly and specifically.

A simulation substrate is only trustworthy if broken inputs cannot produce
quietly-wrong numbers.  These tests inject faults at each layer and assert
the library refuses with the right exception and message — never a silent
fallback.
"""


import numpy as np
import pytest

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    UnknownEntryError,
)
from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


class TestRegistryFaults:
    @pytest.mark.parametrize("loader,bogus", [
        (load_model, "ResNet-9000"),
        (load_device, "Jetson Orin"),
        (load_framework, "TensorFlow 2"),
    ])
    def test_unknown_names_raise_with_suggestions(self, loader, bogus):
        with pytest.raises(UnknownEntryError):
            loader(bogus)


class TestGraphFaults:
    def test_cycle_free_by_construction(self):
        """The IR cannot express a cycle: consuming an undefined op fails."""
        from repro.graphs import Graph, ops as O
        from repro.graphs.tensor import TensorShape

        inp = O.Input("in", TensorShape(4))
        dense = O.Dense("d", [inp], 4)
        late = O.Dense("late", [dense], 4)
        with pytest.raises(ValueError, match="topologically"):
            Graph("bad", [inp, late, dense])

    def test_corrupted_serialization_rejected(self):
        from repro.graphs.serialize import graph_from_dict, graph_to_dict

        payload = graph_to_dict(load_model("ResNet-18"))
        conv = next(entry for entry in payload["ops"] if entry["type"] == "Conv2D")
        conv["attrs"]["out_channels"] = -1
        with pytest.raises((ValueError, KeyError)):
            graph_from_dict(payload)


class TestDeploymentFaults:
    def test_every_table_v_failure_is_typed(self):
        cases = [
            ("VGG16", "Raspberry Pi 3B", "TensorFlow", OutOfMemoryError),
            ("SSD MobileNet-v1", "Raspberry Pi 3B", "TFLite", IncompatibleModelError),
            ("ResNet-18", "EdgeTPU", "TFLite", ConversionError),
            ("C3D", "Movidius NCS", "NCSDK", IncompatibleModelError),
            ("CifarNet 32x32", "EdgeTPU", "PyTorch", CompatibilityError),
        ]
        for model, device, framework, expected in cases:
            with pytest.raises(expected):
                load_framework(framework).deploy(load_model(model), load_device(device))

    def test_failure_messages_cite_the_paper_mechanism(self):
        with pytest.raises(OutOfMemoryError, match="static graph"):
            load_framework("TensorFlow").deploy(load_model("VGG16"),
                                                load_device("Raspberry Pi 3B"))
        with pytest.raises(ConversionError, match="EdgeTPU compiler"):
            load_framework("TFLite").deploy(load_model("AlexNet"),
                                            load_device("EdgeTPU"))

    def test_all_failures_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            load_framework("TensorRT").deploy(load_model("ResNet-18"),
                                              load_device("Raspberry Pi 3B"))


class TestEngineFaults:
    def test_poisoned_efficiency_rejected(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        with pytest.raises(ValueError, match="efficiency"):
            InferenceSession(session.deployed, efficiency_scale=0.0)

    def test_batch_oom_names_the_batch(self):
        deployed = load_framework("PyTorch").deploy(load_model("VGG16"),
                                                    load_device("GTX Titan X"))
        with pytest.raises(OutOfMemoryError, match="batch 100000"):
            InferenceSession(deployed, config=EngineConfig(batch_size=100000))


class TestInstrumentFaults:
    def test_meters_reject_impossible_power(self):
        from repro.measurement.power_meter import PowerAnalyzer, USBMultimeter

        with pytest.raises(ValueError):
            USBMultimeter().sample(-2.0)
        with pytest.raises(ValueError):
            PowerAnalyzer().record(lambda t: 1.0, duration_s=-5.0)

    def test_thermal_runaway_is_latched_not_hidden(self):
        """Once a device trips, it stays tripped and stops drawing power."""
        device = load_device("Raspberry Pi 3B")
        simulator = device.thermal_simulator()
        simulator.step(50.0, 1e6)  # absurd power injection
        assert simulator.shutdown
        before = simulator.temperature_c
        simulator.step(50.0, 100.0)  # power is ignored after shutdown
        assert simulator.temperature_c < before


class TestServingFaults:
    def test_unsorted_arrivals_rejected(self):
        from repro.workloads import simulate_serving

        with pytest.raises(ValueError, match="sorted"):
            simulate_serving(np.array([1.0, 0.1]), 0.01)

    def test_link_with_total_loss_unrepresentable(self):
        from repro.distribution.network import NetworkLink

        with pytest.raises(ValueError):
            NetworkLink("dead", 1e6, 0.0, reliability=0.0)
