"""Every example script must run end-to-end.

Examples are a deliverable, not decoration: each is imported and its
``main`` executed with defaults, and key output markers are asserted.
"""

import importlib.util
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "Time per inference" in out
        assert "Energy per inference" in out

    def test_drone_obstacle_detection(self, capsys):
        _load("drone_obstacle_detection").main()
        out = capsys.readouterr().out
        assert "feasible deployments" in out
        assert "EdgeTPU" in out

    def test_smart_camera_thermal_budget(self, capsys):
        _load("smart_camera_thermal_budget").main()
        out = capsys.readouterr().out
        assert "THERMAL SHUTDOWN" in out
        assert "fan running" in out

    def test_batch_crossover_study(self, capsys):
        _load("batch_crossover_study").main()
        out = capsys.readouterr().out
        assert "Crossover vs Jetson TX2" in out
        assert "batch" in out

    def test_rnn_language_model_edge(self, capsys):
        _load("rnn_language_model_edge").main()
        out = capsys.readouterr().out
        assert "UNDEPLOYABLE" in out
        assert "% of peak" in out

    def test_collaborative_robots(self, capsys):
        _load("collaborative_robots").main()
        out = capsys.readouterr().out
        assert "Offloading decision" in out
        assert "robot(s)" in out

    def test_model_exchange(self, capsys):
        _load("model_exchange").main()
        out = capsys.readouterr().out
        assert "NO IMPORT PATH" in out
        assert "via onnx" in out

    def test_profile_deep_dive(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _load("profile_deep_dive").main()
        out = capsys.readouterr().out
        assert "Stack profile" in out
        assert (tmp_path / "inference_trace.json").exists()

    def test_reproduce_paper_subset(self, capsys):
        _load("reproduce_paper").main(["table6", "fig13"])
        out = capsys.readouterr().out
        assert "Table VI" in out and "Figure 13" in out
        assert "Reproduced 2 artifacts" in out

    def test_every_example_has_a_docstring_and_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            module = _load(path.stem)
            assert module.__doc__, path.name
            assert hasattr(module, "main"), path.name
