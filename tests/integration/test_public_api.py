"""Public-API hygiene: exports resolve, docs exist, registries align."""

import importlib
import inspect

import pytest

import repro

PUBLIC_PACKAGES = (
    "repro.core", "repro.graphs", "repro.models", "repro.hardware",
    "repro.frameworks", "repro.engine", "repro.measurement",
    "repro.profiling", "repro.virtualization", "repro.distribution",
    "repro.workloads", "repro.analysis", "repro.harness",
)


class TestTopLevel:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_is_runnable_shape(self):
        assert "load_framework" in repro.__doc__
        assert "run_experiment" in repro.__doc__


class TestPackages:
    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_importable_with_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, package

    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PUBLIC_PACKAGES)
    def test_public_callables_documented(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


class TestRegistryAlignment:
    def test_experiment_ids_cover_every_paper_artifact(self):
        ids = set(repro.list_experiments())
        for n in (1, 2, 3, 5, 6):
            assert f"table{n}" in ids
        for n in range(1, 15):
            assert f"fig{n:02d}" in ids

    def test_every_model_deploys_somewhere(self):
        """No zoo entry is unreachable: each model runs on at least one
        (device, framework) combination."""
        from repro.core.errors import ReproError
        from repro.engine import InferenceSession

        combos = (("Jetson TX2", "PyTorch"), ("Jetson TX2", "TensorFlow"),
                  ("Raspberry Pi 3B", "TFLite"), ("Jetson Nano", "TensorRT"),
                  ("PYNQ-Z1", "FINN"))
        for model_name in repro.list_models():
            deployable = False
            for device_name, framework_name in combos:
                try:
                    deployed = repro.load_framework(framework_name).deploy(
                        repro.load_model(model_name),
                        repro.load_device(device_name))
                    InferenceSession(deployed)
                    deployable = True
                    break
                except ReproError:
                    continue
            assert deployable, model_name

    def test_device_and_framework_registries_nonempty(self):
        assert len(repro.list_devices()) == 10
        assert len(repro.list_frameworks()) == 10
        assert len(repro.list_models()) >= 20
