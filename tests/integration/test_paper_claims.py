"""Integration tests: the paper's headline findings must reproduce.

These are shape-level assertions (who wins, by roughly what factor, where
crossovers fall), not absolute-number matches — the substrate is a
simulator, not the authors' testbed.  Each test quotes the claim it checks.
"""


from repro.core.result import geometric_mean
from repro.harness import run_experiment
from repro.harness.figures import best_framework_latency, measure_latency_s
from repro.harness.paper_data import FIG9_MODELS


class TestSectionVIA:
    """Figure 2: per-device best configuration."""

    def test_gpu_or_edgetpu_usually_wins(self):
        """'In most cases, either GPU-based devices or EdgeTPU provides the
        best performance.'"""
        for model in ("ResNet-50", "MobileNet-v2", "Inception-v4", "VGG16"):
            winner = min(
                (best_framework_latency(model, device) + (device,)
                 for device in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                                "EdgeTPU", "Movidius NCS")
                 if best_framework_latency(model, device) is not None),
                key=lambda entry: entry[1],
            )
            assert winner[2] in ("Jetson TX2", "Jetson Nano", "EdgeTPU"), (model, winner)

    def test_rpi_is_slowest_edge_device(self):
        """Figure 2: the RPi bars are orders of magnitude above the rest."""
        for model in ("ResNet-18", "ResNet-50", "Inception-v4"):
            rpi = best_framework_latency(model, "Raspberry Pi 3B")[1]
            for device in ("Jetson TX2", "Jetson Nano", "Movidius NCS"):
                assert rpi > 4 * best_framework_latency(model, device)[1], (model, device)

    def test_movidius_uneven_across_models(self):
        """Figure 2: against the Jetson TX2 baseline, Movidius is within a
        small factor for MobileNet-v2 (paper: 51 vs 40 ms) but several times
        off for Inception-v4 (paper: 633 vs 106 ms)."""
        def gap_vs_tx2(model):
            movidius = best_framework_latency(model, "Movidius NCS")[1]
            tx2 = best_framework_latency(model, "Jetson TX2")[1]
            return movidius / tx2

        assert gap_vs_tx2("Inception-v4") > 2 * gap_vs_tx2("MobileNet-v2")


class TestSectionVIB:
    """Framework analysis."""

    def test_tensorflow_fastest_on_rpi_among_general_frameworks(self):
        """'The results on RPi show that TensorFlow is the fastest among the
        frameworks' (general-purpose ones; TFLite is treated separately)."""
        for model in ("ResNet-18", "ResNet-50", "MobileNet-v2"):
            tf = measure_latency_s(model, "Raspberry Pi 3B", "TensorFlow")
            for other in ("PyTorch", "Caffe"):
                assert tf < measure_latency_s(model, "Raspberry Pi 3B", other), (model, other)

    def test_pytorch_faster_than_tensorflow_on_gpu(self):
        """'On our GPU platform, Jetson TX2, PyTorch performs faster than
        TensorFlow' — and the same inversion holds on the HPC GPU (Fig. 6)."""
        for device in ("Jetson TX2", "GTX Titan X"):
            for model in ("ResNet-18", "ResNet-50", "VGG16"):
                pt = measure_latency_s(model, device, "PyTorch")
                tf = measure_latency_s(model, device, "TensorFlow")
                assert pt < tf, (device, model)

    def test_caffe_beats_tensorflow_on_tx2_except_mobilenet(self):
        """'The performance of Caffe is always better than that of
        TensorFlow, except for MobileNet-v2' (Figure 4)."""
        for model in ("ResNet-50", "ResNet-101", "Inception-v4", "AlexNet", "VGG16"):
            caffe = measure_latency_s(model, "Jetson TX2", "Caffe")
            tf = measure_latency_s(model, "Jetson TX2", "TensorFlow")
            assert caffe < tf, model
        assert (measure_latency_s("MobileNet-v2", "Jetson TX2", "Caffe")
                > measure_latency_s("MobileNet-v2", "Jetson TX2", "TensorFlow"))

    def test_tensorrt_speedup_band_on_nano(self):
        """Figure 7: 'an average of 4.1x speedup using TensorRT on Jetson
        Nano compared to PyTorch'."""
        table = run_experiment("fig07")
        speedups = table.column("speedup")
        average = sum(speedups) / len(speedups)
        assert 3.0 < average < 8.0
        assert all(s > 1.5 for s in speedups)

    def test_memory_heavy_models_gain_least_from_tensorrt(self):
        """'Models with large memory footprints (AlexNet and VGG16) ...
        achieve smaller speedups compared to other models.'"""
        table = run_experiment("fig07")
        alexnet = table.row("AlexNet")["speedup"]
        others = [row["speedup"] for row in table
                  if row.label not in ("AlexNet", "VGG16")]
        assert alexnet < min(others)

    def test_tflite_speedup_bands_on_rpi(self):
        """Figure 8: TFLite beats TensorFlow (paper: 1.58x average) and
        PyTorch (paper: 4.53x average) on the RPi."""
        table = run_experiment("fig08")
        tf_speedups = table.column("speedup_vs_tf")
        pt_speedups = table.column("speedup_vs_pt")
        assert all(s > 1.0 for s in tf_speedups)
        assert 1.1 < sum(tf_speedups) / len(tf_speedups) < 2.5
        assert 3.0 < sum(pt_speedups) / len(pt_speedups) < 12.0

    def test_tflite_gain_smaller_than_tensorrt_gain(self):
        """'The achieved gain for TFLite is smaller than that for TensorRT
        since TensorFlow already does several optimizations.'"""
        fig7 = run_experiment("fig07").column("speedup")
        fig8 = run_experiment("fig08").column("speedup_vs_tf")
        assert sum(fig8) / len(fig8) < sum(fig7) / len(fig7)


class TestSectionVIB3:
    """Figure 5: software stacks."""

    def test_pytorch_rpi_dominated_by_compute(self, session_factory):
        """'PyTorch spends 96.15% on compute-related functions' on RPi."""
        from repro.profiling import profile_stack

        session = session_factory("ResNet-18", "Raspberry Pi 3B", "PyTorch")
        fractions = profile_stack(session, 30).fractions()
        compute = sum(fractions.get(b, 0) for b in
                      ("conv2d", "batch_norm", "linear", "activation", "forward"))
        assert compute > 0.85

    def test_tensorflow_rpi_dominated_by_graph_setup(self, session_factory):
        """'The graph construction time in TensorFlow (base_layer) accounts
        for 38.22% [TX2] / 50.7% [RPi] of the total time.'"""
        from repro.profiling import profile_stack

        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        fractions = profile_stack(session, 30).fractions()
        assert 0.3 < fractions["base_layer"] < 0.7

    def test_gpu_shifts_pytorch_time_to_staging(self, session_factory):
        """'Adding a GPU ... PyTorch and TensorFlow spend a notable portion
        of the total time on computation graph setup' (Fig. 5c/d)."""
        from repro.profiling import profile_stack

        rpi = profile_stack(session_factory("ResNet-18", "Raspberry Pi 3B", "PyTorch"), 30)
        tx2 = profile_stack(session_factory("ResNet-18", "Jetson TX2", "PyTorch"), 1000)
        assert tx2.fraction("_C._TensorBase.to()") > 0.25
        assert rpi.fraction("conv2d") > tx2.fraction("conv2d")


class TestSectionVIC:
    """Edge vs HPC (Figures 9, 10)."""

    def test_geomean_speedup_near_three(self):
        """'The average speedup over Jetson TX2 on all benchmarks is only 3x.'"""
        speedups = []
        for model in FIG9_MODELS:
            tx2 = measure_latency_s(model, "Jetson TX2", "PyTorch")
            for platform in ("Xeon E5-2696 v4", "GTX Titan X", "Titan Xp", "RTX 2080"):
                speedups.append(tx2 / measure_latency_s(model, platform, "PyTorch"))
        assert 2.0 < geometric_mean(speedups) < 5.0

    def test_xeon_loses_on_compute_bound_models(self):
        """'On several benchmarks, the Xeon CPU performance is lower than
        that of all platforms' — the compute-bound ResNets."""
        for model in ("ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2"):
            xeon = measure_latency_s(model, "Xeon E5-2696 v4", "PyTorch")
            assert xeon > measure_latency_s(model, "Jetson TX2", "PyTorch"), model
            assert xeon > measure_latency_s(model, "GTX Titan X", "PyTorch"), model

    def test_xeon_competitive_on_memory_bound_vgg(self):
        """'Only for memory-bounded benchmarks (e.g., VGG16 and VGG19) does
        Xeon CPU perform similarly to TX2.'"""
        for model in ("VGG16", "VGG19"):
            xeon = measure_latency_s(model, "Xeon E5-2696 v4", "PyTorch")
            tx2 = measure_latency_s(model, "Jetson TX2", "PyTorch")
            assert 0.3 < xeon / tx2 < 1.3, model

    def test_memory_heavy_models_gain_most_on_hpc_gpus(self):
        """'Benchmarks with large memory footprint such as VGG models and
        C3D generally achieve higher speedups ... ResNet models benefit
        less from HPC GPUs.'"""
        def speedup(model):
            return (measure_latency_s(model, "Jetson TX2", "PyTorch")
                    / measure_latency_s(model, "RTX 2080", "PyTorch"))

        vgg = min(speedup("VGG16"), speedup("VGG19"), speedup("C3D"))
        resnet = max(speedup("ResNet-18"), speedup("ResNet-50"), speedup("ResNet-101"))
        assert vgg > resnet


class TestSectionVID:
    """Figure 13: virtualization."""

    def test_docker_overhead_negligible(self):
        """'The overhead is almost negligible, within 5%, in all cases.'"""
        table = run_experiment("fig13")
        assert all(0 <= row["slowdown"] <= 0.05 + 1e-9 for row in table)


class TestSectionVIE:
    """Figures 11, 12: energy."""

    def test_rpi_worst_energy_per_inference(self):
        """'RPi has the highest energy per inference value.'"""
        table = run_experiment("fig11")
        for model in ("ResNet-18", "ResNet-50", "Inception-v4"):
            rpi = table.row(f"Raspberry Pi 3B / {model}")["energy_mj"]
            for device in ("Jetson TX2", "Jetson Nano", "Movidius NCS"):
                other = table.row(f"{device} / {model}")["energy_mj"]
                assert rpi > other, (model, device)

    def test_tx2_saves_energy_vs_gtx(self):
        """'This is an average of a 5x energy savings with respect to GTX
        Titan X' for Jetson TX2."""
        table = run_experiment("fig11")
        ratios = []
        for model in ("ResNet-18", "ResNet-50", "Inception-v4"):
            gtx = table.row(f"GTX Titan X / {model}")["energy_mj"]
            tx2 = table.row(f"Jetson TX2 / {model}")["energy_mj"]
            ratios.append(gtx / tx2)
        assert 2.0 < sum(ratios) / len(ratios) < 12.0

    def test_edgetpu_millijoule_class(self):
        """'Edge-specific devices lower the energy consumption to as low as
        11 mJ per inference (MobileNet-v2 on EdgeTPU).'"""
        table = run_experiment("fig11")
        assert table.row("EdgeTPU / MobileNet-v2")["energy_mj"] < 20

    def test_fig12_pareto_positions(self):
        """Figure 12: Movidius has the lowest active power; EdgeTPU the
        lowest inference time (among its runnable models)."""
        table = run_experiment("fig12")
        by_device: dict[str, list] = {}
        for row in table:
            device = row.label.split(" / ")[0]
            by_device.setdefault(device, []).append(row)
        min_power_device = min(by_device, key=lambda d: min(r["power_w"] for r in by_device[d]))
        assert min_power_device == "Movidius NCS"
        fastest_device = min(by_device, key=lambda d: min(r["latency_ms"] for r in by_device[d]))
        assert fastest_device == "EdgeTPU"


class TestSectionVIF:
    """Figure 14: temperature."""

    def test_rpi_thermal_shutdown(self):
        table = run_experiment("fig14")
        assert "shutdown" in table.row("Raspberry Pi 3B")["events"]

    def test_fans_control_jetson_temperatures(self):
        table = run_experiment("fig14")
        for device in ("Jetson TX2", "Jetson Nano"):
            assert "fan_on" in table.row(device)["events"]

    def test_movidius_lowest_temperature_variation(self):
        """'The temperature variation of Movidius is the lowest even though
        it is not equipped with a fan.'"""
        table = run_experiment("fig14")
        variations = {
            row.label: row["steady_surface_c"] - row["idle_surface_c"]
            for row in table
        }
        assert variations["Movidius NCS"] == min(variations.values())

    def test_tx2_cooler_than_nano_despite_more_power(self):
        """'The power usage of Jetson TX2 is higher than that of Jetson
        Nano, while their temperatures are opposite.'"""
        table = run_experiment("fig14")
        assert (table.row("Jetson TX2")["steady_surface_c"]
                < table.row("Jetson Nano")["steady_surface_c"])
