"""Deployment pipeline behaviour across frameworks and devices."""

import pytest

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    IncompatibleModelError,
    OutOfMemoryError,
)
from repro.frameworks import load_framework
from repro.graphs.tensor import DType
from repro.hardware import ComputeKind, load_device
from repro.models import load_model


class TestUnitSelection:
    def test_gpu_frameworks_prefer_gpu(self, tx2):
        deployed = load_framework("PyTorch").deploy(load_model("ResNet-18"), tx2)
        assert deployed.unit.kind is ComputeKind.GPU

    def test_cpu_fallback_on_rpi(self, rpi):
        deployed = load_framework("PyTorch").deploy(load_model("ResNet-18"), rpi)
        assert deployed.unit.kind is ComputeKind.CPU

    def test_tensorrt_requires_gpu(self, rpi):
        with pytest.raises(CompatibilityError, match="gpu"):
            load_framework("TensorRT").deploy(load_model("ResNet-18"), rpi)

    def test_tflite_targets_edgetpu_asic(self, edgetpu):
        deployed = load_framework("TFLite").deploy(load_model("MobileNet-v2"), edgetpu)
        assert deployed.unit.kind is ComputeKind.ASIC

    def test_locked_platform_rejects_other_frameworks(self, edgetpu):
        with pytest.raises(CompatibilityError, match="only runs"):
            load_framework("PyTorch").deploy(load_model("MobileNet-v2"), edgetpu)


class TestDtypeSelection:
    def test_tflite_quantizes_to_int8(self, rpi):
        deployed = load_framework("TFLite").deploy(load_model("ResNet-18"), rpi)
        assert deployed.weight_dtype is DType.INT8

    def test_ncsdk_uses_fp16(self, movidius):
        deployed = load_framework("NCSDK").deploy(load_model("MobileNet-v2"), movidius)
        assert deployed.weight_dtype is DType.FP16

    def test_tensorrt_picks_fastest_supported(self, nano):
        deployed = load_framework("TensorRT").deploy(load_model("ResNet-18"), nano)
        assert deployed.weight_dtype is DType.FP16  # Maxwell: fp16 2x, no int8 gain

    def test_finn_binarizes(self, pynq):
        deployed = load_framework("FINN").deploy(load_model("CifarNet 32x32"), pynq)
        assert deployed.weight_dtype is DType.BINARY
        assert deployed.act_dtype is DType.INT8

    def test_explicit_dtype_override(self, tx2):
        deployed = load_framework("PyTorch").deploy(load_model("ResNet-18"), tx2,
                                                    dtype=DType.FP16)
        assert deployed.weight_dtype is DType.FP16


class TestGraphPreparation:
    def test_tflite_freezes_fuses_quantizes(self, rpi):
        deployed = load_framework("TFLite").deploy(load_model("ResNet-18"), rpi)
        assert deployed.graph.metadata.get("frozen")
        assert deployed.graph.metadata.get("fused")
        assert deployed.graph.metadata.get("weight_dtype") == "int8"

    def test_tensorflow_runs_plain_graph(self, rpi):
        deployed = load_framework("TensorFlow").deploy(load_model("ResNet-18"), rpi)
        assert not deployed.graph.metadata.get("fused")

    def test_tensorrt_fuses(self, nano):
        deployed = load_framework("TensorRT").deploy(load_model("ResNet-18"), nano)
        assert deployed.graph.metadata.get("fused")

    def test_zoo_graph_never_mutated(self, rpi):
        graph = load_model("ResNet-18")
        load_framework("TFLite").deploy(graph, rpi)
        assert graph.op("conv_1").weight_dtype is DType.FP32


class TestMemoryPlanning:
    def test_static_graph_oom_on_rpi(self, rpi):
        with pytest.raises(OutOfMemoryError) as excinfo:
            load_framework("TensorFlow").deploy(load_model("VGG16"), rpi)
        assert excinfo.value.required_bytes > excinfo.value.available_bytes

    def test_dynamic_graph_pages_instead(self, rpi):
        deployed = load_framework("PyTorch").deploy(load_model("VGG16"), rpi)
        assert deployed.storage_mode == "paged"
        assert deployed.notes  # explains the fallback

    @pytest.mark.parametrize("model_name", ["AlexNet", "VGG16", "C3D"])
    def test_table5_diamond_models_page_on_rpi(self, rpi, model_name):
        deployed = load_framework("PyTorch").deploy(load_model(model_name), rpi)
        assert deployed.storage_mode == "paged"

    @pytest.mark.parametrize("model_name", ["ResNet-50", "ResNet-101", "Inception-v4"])
    def test_medium_models_stay_resident_on_rpi(self, rpi, model_name):
        for framework_name in ("TensorFlow", "PyTorch"):
            deployed = load_framework(framework_name).deploy(load_model(model_name), rpi)
            assert deployed.storage_mode == "resident", (framework_name, model_name)

    def test_everything_resident_on_tx2(self, tx2):
        for model_name in ("VGG16", "C3D", "AlexNet"):
            deployed = load_framework("PyTorch").deploy(load_model(model_name), tx2)
            assert deployed.storage_mode == "resident"


class TestModelGates:
    def test_ssd_incompatible_on_rpi(self, rpi):
        with pytest.raises(IncompatibleModelError, match="image-processing"):
            load_framework("TensorFlow").deploy(load_model("SSD MobileNet-v1"), rpi)

    def test_ssd_fine_on_tx2(self, tx2):
        load_framework("PyTorch").deploy(load_model("SSD MobileNet-v1"), tx2)

    def test_c3d_rejected_by_ncsdk(self, movidius):
        with pytest.raises(IncompatibleModelError, match="3-D convolution"):
            load_framework("NCSDK").deploy(load_model("C3D"), movidius)

    def test_edgetpu_conversion_barrier_without_qat(self, edgetpu):
        with pytest.raises(ConversionError, match="quantized"):
            load_framework("TFLite").deploy(load_model("ResNet-18"), edgetpu)

    def test_edgetpu_accepts_qat_models(self, edgetpu):
        for model_name in ("ResNet-50", "MobileNet-v2", "Inception-v4", "VGG16"):
            load_framework("TFLite").deploy(load_model(model_name), edgetpu)

    def test_tflite_on_rpi_has_no_qat_gate(self, rpi):
        # The conversion barrier is EdgeTPU-compiler specific: plain CPU
        # TFLite accepts post-training quantization.
        load_framework("TFLite").deploy(load_model("ResNet-18"), rpi)

    def test_darknet_lacks_complex_models(self, tx2):
        with pytest.raises(IncompatibleModelError, match="DarkNet"):
            load_framework("DarkNet").deploy(load_model("Inception-v4"), tx2)

    def test_darknet_runs_its_own_models(self, tx2):
        for model_name in ("YOLOv3", "TinyYolo", "ResNet-50", "AlexNet"):
            load_framework("DarkNet").deploy(load_model(model_name), tx2)

    def test_finn_needs_binarized_checkpoints(self, pynq):
        with pytest.raises(ConversionError, match="binarized"):
            load_framework("FINN").deploy(load_model("VGG16"), pynq)

    def test_vta_spills_unported_models(self, pynq):
        deployed = load_framework("TVM VTA").deploy(load_model("ResNet-50"), pynq)
        assert deployed.storage_mode == "fabric_spill"

    def test_vta_runs_resnet18_clean(self, pynq):
        deployed = load_framework("TVM VTA").deploy(load_model("ResNet-18"), pynq)
        assert deployed.storage_mode == "resident"


class TestOverheadScaling:
    def test_cpu_scale_larger_on_slower_cores(self, rpi, tx2):
        framework = load_framework("PyTorch")
        assert framework.cpu_scale(rpi) > framework.cpu_scale(tx2) > 1.0

    def test_xeon_is_the_reference(self):
        framework = load_framework("PyTorch")
        assert framework.cpu_scale(load_device("Xeon")) == pytest.approx(1.0)

    def test_overheads_scale_with_device(self, rpi, tx2):
        framework = load_framework("TensorFlow")
        slow = framework.deploy(load_model("ResNet-18"), rpi)
        fast = framework.deploy(load_model("ResNet-18"), tx2)
        assert slow.library_load_s > fast.library_load_s
        assert slow.graph_setup_s > fast.graph_setup_s

    def test_describe_mentions_everything(self, tx2):
        deployed = load_framework("PyTorch").deploy(load_model("ResNet-18"), tx2)
        text = deployed.describe()
        assert "ResNet-18" in text and "PyTorch" in text and "Jetson TX2" in text
