"""Table II: framework capability matrix."""

import pytest

from repro.frameworks import list_frameworks, load_framework

# Optimization rows of Table II: framework -> (quantization, mixed
# precision, dynamic graph, pruning exploitation, fusion, auto tuning,
# half precision).
TABLE2_OPTIMIZATIONS = {
    "TensorFlow": (True, False, False, True, True, False, True),
    "TFLite": (True, False, False, True, True, False, True),
    "Caffe": (True, False, False, False, False, False, True),
    "NCSDK": (True, False, False, False, True, False, True),
    "PyTorch": (True, False, True, False, False, False, True),
    "TensorRT": (True, True, True, True, True, True, True),
    "DarkNet": (False, False, False, False, False, False, False),
}


class TestRegistry:
    def test_all_paper_frameworks_present(self):
        names = set(list_frameworks())
        for expected in ("TensorFlow", "TFLite", "Keras", "Caffe", "PyTorch",
                         "TensorRT", "DarkNet", "NCSDK", "TVM VTA", "FINN"):
            assert expected in names

    @pytest.mark.parametrize("alias,canonical", [
        ("TF", "TensorFlow"),
        ("T-Lite", "TFLite"),
        ("PT", "PyTorch"),
        ("T-RT", "TensorRT"),
        ("TVM", "TVM VTA"),
    ])
    def test_paper_abbreviations(self, alias, canonical):
        assert load_framework(alias).name == canonical


class TestTable2Optimizations:
    @pytest.mark.parametrize("framework_name", sorted(TABLE2_OPTIMIZATIONS))
    def test_optimization_row(self, framework_name):
        caps = load_framework(framework_name).capabilities
        expected = TABLE2_OPTIMIZATIONS[framework_name]
        actual = (caps.quantization, caps.mixed_precision, caps.dynamic_graph,
                  caps.pruning_exploit, caps.fusion, caps.auto_tuning,
                  caps.half_precision)
        assert actual == expected


class TestTable2GeneralRows:
    def test_darknet_is_the_only_c_framework(self):
        for name in TABLE2_OPTIMIZATIONS:
            language = load_framework(name).capabilities.language
            assert (language == "C") == (name == "DarkNet")

    def test_darknet_not_industry_backed(self):
        assert not load_framework("DarkNet").capabilities.industry_backed
        assert load_framework("TensorFlow").capabilities.industry_backed

    def test_inference_only_frameworks(self):
        for name in ("TFLite", "TensorRT", "NCSDK"):
            assert not load_framework(name).capabilities.training_framework
        for name in ("TensorFlow", "PyTorch", "Caffe", "DarkNet"):
            assert load_framework(name).capabilities.training_framework

    def test_extra_steps_frameworks(self):
        """TFLite and Movidius require extra deployment steps (Table II)."""
        for name in ("TFLite", "NCSDK"):
            assert not load_framework(name).capabilities.no_extra_steps
        for name in ("TensorFlow", "PyTorch", "TensorRT", "DarkNet", "Caffe"):
            assert load_framework(name).capabilities.no_extra_steps

    def test_only_tflite_deploys_to_mobile(self):
        assert load_framework("TFLite").capabilities.mobile_deployment
        assert not load_framework("TensorFlow").capabilities.mobile_deployment

    def test_darknet_best_for_low_level_work(self):
        scores = {name: load_framework(name).capabilities.low_level_modifications
                  for name in TABLE2_OPTIMIZATIONS}
        assert scores["DarkNet"] == max(scores.values())

    def test_tensorrt_most_compatible(self):
        scores = {name: load_framework(name).capabilities.compatibility_with_others
                  for name in TABLE2_OPTIMIZATIONS}
        assert scores["TensorRT"] == max(scores.values())

    def test_star_ratings_in_range(self):
        for name in list_frameworks():
            caps = load_framework(name).capabilities
            for attribute in ("usability", "adding_new_models", "predefined_models",
                              "documentation", "low_level_modifications",
                              "compatibility_with_others"):
                assert 1 <= getattr(caps, attribute) <= 3, (name, attribute)

    def test_keras_shares_tensorflow_engine(self):
        keras = load_framework("Keras")
        tensorflow = load_framework("TensorFlow")
        assert keras.kernel_quality == tensorflow.kernel_quality
        assert keras.overheads.graph_setup_base_s > tensorflow.overheads.graph_setup_base_s
