"""Table V reproduction: the full compatibility matrix must match."""

import pytest

from repro.frameworks.compat import (
    CompatStatus,
    TABLE_V_FRAMEWORKS,
    TABLE_V_MODELS,
    check_compatibility,
    compatibility_matrix,
)
from repro.harness.paper_data import TABLE5_EXPECTED


class TestTableV:
    @pytest.fixture(scope="class")
    def matrix(self):
        return compatibility_matrix()

    @pytest.mark.parametrize("model_name", TABLE_V_MODELS)
    def test_row_matches_paper(self, matrix, model_name):
        expected = TABLE5_EXPECTED[model_name]
        actual = {device: result.status.symbol
                  for device, result in matrix[model_name].items()}
        assert actual == expected

    def test_matrix_is_complete(self, matrix):
        assert set(matrix) == set(TABLE_V_MODELS)
        for row in matrix.values():
            assert set(row) == set(TABLE_V_FRAMEWORKS)

    def test_failures_carry_details(self, matrix):
        ssd_rpi = matrix["SSD MobileNet-v1"]["Raspberry Pi 3B"]
        assert ssd_rpi.status is CompatStatus.CODE_INCOMPATIBILITY
        assert "image-processing" in ssd_rpi.detail

    def test_dynamic_graph_entries_name_pytorch(self, matrix):
        vgg_rpi = matrix["VGG16"]["Raspberry Pi 3B"]
        assert vgg_rpi.status is CompatStatus.DYNAMIC_GRAPH
        assert vgg_rpi.framework == "PyTorch"


class TestCheckCompatibility:
    def test_explicit_framework(self):
        result = check_compatibility("VGG16", "Raspberry Pi 3B", "TensorFlow")
        assert result.status is CompatStatus.MEMORY_ERROR

    def test_fallback_chain_reaches_pytorch(self):
        result = check_compatibility("VGG16", "Raspberry Pi 3B")
        assert result.status is CompatStatus.DYNAMIC_GRAPH

    def test_runnable_classification(self):
        assert CompatStatus.OK.runnable
        assert CompatStatus.DYNAMIC_GRAPH.runnable
        assert CompatStatus.FABRIC_SPILL.runnable
        assert not CompatStatus.MEMORY_ERROR.runnable
        assert not CompatStatus.CONVERSION_BARRIER.runnable

    def test_symbols_are_unique(self):
        symbols = [status.symbol for status in CompatStatus]
        assert len(symbols) == len(set(symbols))
