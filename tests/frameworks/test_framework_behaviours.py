"""Per-framework behavioural details beyond the deployment pipeline tests."""

import pytest

from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.frameworks.ncsdk import _FAMILY_TUNING, NCSDK
from repro.hardware import load_device
from repro.models import load_model


class TestTensorFlowFamily:
    def test_keras_setup_slower_than_tensorflow(self, rpi):
        model = load_model("ResNet-18")
        tf = load_framework("TensorFlow").deploy(model, rpi)
        keras = load_framework("Keras").deploy(model, rpi)
        assert keras.graph_setup_s > tf.graph_setup_s
        assert keras.library_load_s > tf.library_load_s

    def test_keras_matches_tensorflow_inference_speed(self, rpi):
        """Same engine, same kernels: per-inference latency tracks TF."""
        model = load_model("ResNet-18")
        tf = InferenceSession(load_framework("TensorFlow").deploy(model, rpi))
        keras = InferenceSession(load_framework("Keras").deploy(model, rpi))
        assert keras.latency_s == pytest.approx(tf.latency_s, rel=0.05)

    def test_tflite_frozen_graph_halves_setup(self, rpi):
        model = load_model("ResNet-18")
        tf = load_framework("TensorFlow").deploy(model, rpi)
        tflite = load_framework("TFLite").deploy(model, rpi)
        assert tflite.graph_setup_s < tf.graph_setup_s / 2

    def test_tflite_flatbuffer_maps_weights(self, rpi):
        """weight_memory_factor ~1: the flatbuffer is mmapped, not copied,
        so TFLite fits models TensorFlow cannot."""
        tflite = load_framework("TFLite")
        tf = load_framework("TensorFlow")
        assert (tflite.overheads.weight_memory_factor
                < tf.overheads.weight_memory_factor)


class TestNCSDK:
    def test_tuning_map_ordering(self):
        """Classic convnets are tuned; MobileNet-class is the sore spot."""
        assert _FAMILY_TUNING["resnet"] == max(_FAMILY_TUNING.values())
        assert _FAMILY_TUNING["mobilenet"] == min(_FAMILY_TUNING.values())

    def test_unknown_family_uses_default(self):
        assert NCSDK.tuning_quality(None) == pytest.approx(0.7)

    def test_deploy_notes_tuning(self, movidius):
        deployed = load_framework("NCSDK").deploy(load_model("ResNet-50"), movidius)
        assert any("hand-tuning quality" in note for note in deployed.notes)

    def test_no_python_dispatch_on_stick(self, movidius):
        deployed = load_framework("NCSDK").deploy(load_model("ResNet-50"), movidius)
        assert deployed.per_op_overhead_s == 0.0  # blob runs on-stick


class TestTensorRT:
    def test_engine_build_is_expensive_setup(self, nano):
        model = load_model("ResNet-50")
        tensorrt = load_framework("TensorRT").deploy(model, nano)
        pytorch = load_framework("PyTorch").deploy(model, nano)
        assert tensorrt.graph_setup_s > pytorch.graph_setup_s

    def test_per_op_dispatch_cheapest(self, nano):
        tensorrt = load_framework("TensorRT")
        pytorch = load_framework("PyTorch")
        assert (tensorrt.overheads.python_per_op_s
                < pytorch.overheads.python_per_op_s)

    def test_maxwell_picks_fp16_over_int8(self, nano):
        """deploy_dtypes prefers FP16 first; Maxwell's INT8 has no speedup."""
        deployed = load_framework("TensorRT").deploy(load_model("ResNet-50"), nano)
        unit = deployed.unit
        from repro.graphs.tensor import DType

        assert unit.peak(DType.FP16) > unit.peak(DType.INT8)
        assert deployed.weight_dtype is DType.FP16


class TestDarkNet:
    def test_minimal_overheads(self):
        darknet = load_framework("DarkNet")
        for other_name in ("TensorFlow", "PyTorch", "Caffe"):
            other = load_framework(other_name)
            assert (darknet.overheads.library_load_s
                    < other.overheads.library_load_s)
            assert (darknet.overheads.runtime_memory_bytes
                    < other.overheads.runtime_memory_bytes)

    def test_no_fp16_deployment(self, tx2):
        from repro.graphs.tensor import DType

        deployed = load_framework("DarkNet").deploy(load_model("YOLOv3"), tx2)
        assert deployed.weight_dtype is DType.FP32  # Table II: no half precision


class TestFPGA:
    def test_finn_binary_weights_fit_bram(self, pynq):
        deployed = load_framework("FINN").deploy(load_model("CifarNet 32x32"), pynq)
        assert deployed.graph.weight_bytes() <= deployed.unit.on_chip_buffer_bytes

    def test_vta_setup_includes_bitstream(self, pynq):
        vta = load_framework("TVM VTA").deploy(load_model("ResNet-18"), pynq)
        pytorch_tx2 = load_framework("PyTorch").deploy(
            load_model("ResNet-18"), load_device("Jetson TX2"))
        assert vta.graph_setup_s > pytorch_tx2.graph_setup_s


class TestCrossFrameworkConsistency:
    @pytest.mark.parametrize("framework_name", [
        "TensorFlow", "TFLite", "Caffe", "PyTorch", "DarkNet"])
    def test_fusion_capability_matches_behaviour(self, framework_name, rpi, tx2):
        """Frameworks claiming fusion must actually shrink the op count."""
        framework = load_framework(framework_name)
        device = rpi if framework_name in ("TensorFlow", "TFLite") else tx2
        model = load_model("ResNet-18")
        deployed = framework.deploy(model, device)
        fused_away = any(op.is_fused_away for op in deployed.graph.ops)
        if framework_name == "TFLite":
            assert fused_away  # the only one fusing out of the box here
        else:
            assert not fused_away

    @pytest.mark.parametrize("framework_name", ["TensorFlow", "PyTorch", "Caffe"])
    def test_overheads_positive_and_bounded(self, framework_name):
        over = load_framework(framework_name).overheads
        assert 0 < over.session_base_s < 1e-2
        assert 0 <= over.python_per_op_s < 1e-3
        assert over.runtime_memory_bytes > 0
