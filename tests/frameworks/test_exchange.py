"""Framework model exchange (Section III-B compatibility)."""

import pytest

from repro.core.errors import ConversionError
from repro.frameworks.exchange import (
    can_convert,
    compatibility_scores,
    convert,
    supported_sources,
)
from repro.models import load_model


class TestMatrix:
    def test_identity_is_native(self):
        path = can_convert("PyTorch", "PyTorch")
        assert path is not None and path.via == "native"

    def test_tensorrt_imports_broadly(self):
        for source in ("TensorFlow", "Caffe", "PyTorch"):
            assert can_convert(source, "TensorRT") is not None

    def test_darknet_imports_nothing(self):
        assert supported_sources("DarkNet") == []
        assert can_convert("TensorFlow", "DarkNet") is None

    def test_tflite_needs_tf_family_source(self):
        assert can_convert("TensorFlow", "TFLite") is not None
        assert can_convert("PyTorch", "TFLite") is None

    def test_ncsdk_accepts_tf_and_caffe_only(self):
        assert sorted(supported_sources("NCSDK")) == ["Caffe", "TensorFlow"]

    def test_tensorrt_is_the_most_compatible(self):
        """Table II gives TensorRT the best compatibility stars; the
        importer matrix must agree."""
        scores = compatibility_scores()
        assert scores["TensorRT"] == max(scores.values())

    def test_pytorch_reaches_tensorrt_via_onnx(self):
        path = can_convert("PyTorch", "TensorRT")
        assert path.via == "onnx"


class TestConvert:
    def test_conversion_preserves_model(self):
        graph = load_model("ResNet-50")
        converted = convert(graph, "PyTorch", "TensorRT")
        assert converted.total_params == graph.total_params
        assert converted.total_macs == graph.total_macs

    def test_provenance_recorded(self):
        converted = convert(load_model("ResNet-18"), "Caffe", "TensorRT")
        assert converted.metadata["converted_from"] == "Caffe"
        assert converted.metadata["conversion_via"] == "caffe-parser"

    def test_unsupported_route_raises_with_options(self):
        with pytest.raises(ConversionError, match="imports from"):
            convert(load_model("ResNet-18"), "PyTorch", "NCSDK")

    def test_original_untouched(self):
        graph = load_model("ResNet-18")
        convert(graph, "TensorFlow", "TFLite")
        assert "converted_from" not in graph.metadata

    def test_converted_model_deploys(self):
        from repro.engine import InferenceSession
        from repro.frameworks import load_framework
        from repro.hardware import load_device

        converted = convert(load_model("ResNet-50"), "PyTorch", "TensorRT")
        deployed = load_framework("TensorRT").deploy(converted, load_device("Jetson Nano"))
        assert InferenceSession(deployed).latency_s > 0
