"""Regression pin: Table V, the device catalog, and the runtime's
best-framework candidates agree with each other.

The `repro check` tables pass verifies these invariants dynamically; this
test pins them so a drive-by edit to one table cannot silently desync the
others between checker runs.
"""

from repro.check import tables
from repro.frameworks.compat import (
    TABLE_V_FRAMEWORKS,
    TABLE_V_MODELS,
    compatibility_matrix,
)
from repro.harness.paper_data import TABLE5_EXPECTED
from repro.hardware import load_device
from repro.runtime.runner import BEST_FRAMEWORK_CANDIDATES


class TestTableVConsistency:
    def test_checker_reports_no_inconsistencies(self):
        assert tables.check_table_v() == []

    def test_every_chain_framework_is_device_supported(self):
        for device_name, chain in TABLE_V_FRAMEWORKS.items():
            device = load_device(device_name)
            unsupported = [fw for fw in chain
                           if not device.supports_framework(fw)]
            assert unsupported == [], (
                f"{device_name} chain names unsupported frameworks")

    def test_candidates_cover_every_table_v_chain(self):
        for device_name, chain in TABLE_V_FRAMEWORKS.items():
            candidates = BEST_FRAMEWORK_CANDIDATES[device_name]
            missing = [fw for fw in chain if fw not in candidates]
            assert missing == [], (
                f"{device_name} candidates do not cover the Table V chain")

    def test_expected_matrix_covers_exactly_the_declared_axes(self):
        assert set(TABLE5_EXPECTED) == set(TABLE_V_MODELS)
        for row in TABLE5_EXPECTED.values():
            assert set(row) == set(TABLE_V_FRAMEWORKS)

    def test_matrix_cells_attribute_a_chain_framework(self):
        matrix = compatibility_matrix()
        for model_name, row in matrix.items():
            for device_name, result in row.items():
                if result.framework is None:
                    continue
                assert result.framework in TABLE_V_FRAMEWORKS[device_name], (
                    f"{model_name}@{device_name} attributed to a framework "
                    "outside the device's Table V chain")
