"""Docker-style container overhead (Figure 13 mechanics)."""

import pytest

from repro.harness.paper_data import FIG13_MODELS
from repro.virtualization import Container
from repro.virtualization.container import MAX_OVERHEAD_FRACTION


class TestContainerOverhead:
    def test_containerized_is_slower_but_bounded(self, session_factory):
        container = Container()
        for model_name in FIG13_MODELS:
            session = session_factory(model_name, "Raspberry Pi 3B", "TensorFlow")
            contained = container.wrap(session)
            assert contained.latency_s > session.latency_s
            assert contained.overhead_fraction <= MAX_OVERHEAD_FRACTION + 1e-9

    def test_fixed_tax_hits_fast_models_harder(self, session_factory):
        container = Container()
        fast = container.wrap(session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow"))
        slow = container.wrap(session_factory("Inception-v4", "Raspberry Pi 3B", "TensorFlow"))
        assert fast.overhead_fraction >= slow.overhead_fraction

    def test_startup_cost_outside_timed_loop(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        contained = Container().wrap(session)
        assert contained.init_time_s > session.init_time_s
        # ... but per-inference latency still within the 5% bound.
        assert contained.overhead_fraction <= MAX_OVERHEAD_FRACTION + 1e-9

    def test_run_and_utilization_delegate(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        contained = Container().wrap(session)
        assert contained.utilization == session.utilization
        assert contained.run(3) == [contained.latency_s] * 3
        assert contained.deployed is session.deployed

    def test_custom_profile(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        heavy = Container(name="hypervisor", fixed_tax_s=1.0, proportional_tax=0.5)
        contained = heavy.wrap(session)
        # Even a pathological profile is clipped at the cap.
        assert contained.overhead_fraction == pytest.approx(MAX_OVERHEAD_FRACTION)
