"""RunRecord JSON round-trip and the Table V failure taxonomy."""

import json

import pytest

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
    UnknownEntryError,
)
from repro.runtime import FailureRecord, RunRecord, Scenario, default_runner, failure_kind
from repro.runtime.record import RECORD_VERSION

NANO = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
RPI_TF = Scenario("VGG16", "Raspberry Pi 3B", "TensorFlow")


class TestFailureTaxonomy:
    @pytest.mark.parametrize("error,kind", [
        (OutOfMemoryError("boom"), "memory_error"),
        (ConversionError("boom"), "conversion_error"),
        (IncompatibleModelError("boom"), "incompatible_model"),
        (UnknownEntryError("boom"), "unknown_entry"),
        (DeploymentError("boom"), "deployment_error"),
        (CompatibilityError("boom"), "not_available"),
        (ThermalShutdownError("boom"), "thermal_shutdown"),
        (ReproError("boom"), "repro_error"),
    ])
    def test_every_error_type_maps(self, error, kind):
        assert failure_kind(error) == kind
        assert FailureRecord.from_error(error).kind == kind

    def test_oom_details_captured(self):
        error = OutOfMemoryError("too big", required_bytes=2048,
                                 available_bytes=1024)
        record = FailureRecord.from_error(error)
        assert record.details == {"required_bytes": 2048,
                                  "available_bytes": 1024}
        assert record.error_type == "OutOfMemoryError"

    def test_thermal_details_captured(self):
        record = FailureRecord.from_error(
            ThermalShutdownError("hot", temperature_c=85.0))
        assert record.details == {"temperature_c": 85.0}


class TestRoundTrip:
    def test_ok_record_round_trips(self):
        record = default_runner().run(NANO)
        assert record.ok and not record.failed
        restored = RunRecord.from_json(record.to_json())
        assert restored == record
        assert restored.latency_s == record.latency_s
        assert restored.stats == record.stats
        assert restored.plan == record.plan
        assert restored.provenance == record.provenance

    def test_failed_record_round_trips(self):
        record = default_runner().run(RPI_TF)
        assert record.failed
        assert record.failure is not None
        assert record.failure.kind == "memory_error"
        assert record.latency_s is None
        restored = RunRecord.from_json(record.to_json())
        assert restored == record
        assert restored.failure == record.failure

    def test_json_is_plain_data(self):
        payload = json.loads(default_runner().run(NANO).to_json())
        assert payload["record_version"] == RECORD_VERSION
        assert payload["scenario"]["model"] == "ResNet-18"
        assert payload["provenance"]["seed"] == NANO.seed

    def test_version_mismatch_rejected(self):
        payload = default_runner().run(NANO).to_dict()
        payload["record_version"] = 99
        with pytest.raises(ValueError, match="record version"):
            RunRecord.from_dict(payload)

    def test_latency_accessor_raises_structured_failure(self):
        record = default_runner().run(RPI_TF)
        with pytest.raises(ReproError, match="failed"):
            record.latency()

    def test_describe_covers_both_shapes(self):
        ok = default_runner().run(NANO)
        failed = default_runner().run(RPI_TF)
        assert "ms/inference" in ok.describe()
        assert "FAILED" in failed.describe()
        assert "memory_error" in failed.describe()
