"""Runner behaviour: old-path equivalence, batch API, candidate search."""

import pytest

from repro.core.errors import ReproError, UnknownEntryError
from repro.engine.cache import cached_deploy, clear_caches
from repro.engine.executor import InferenceSession
from repro.harness.figures import measurement_seed
from repro.measurement.timer import InferenceTimer
from repro.runtime import Runner, Scenario, default_runner

# Cells covering four devices and both timer regimes; VGG16-on-RPi-TF is the
# canonical Table V memory failure.
SAMPLE_CELLS = (
    ("ResNet-18", "Jetson Nano", "TensorRT"),
    ("MobileNet-v2", "EdgeTPU", "TFLite"),
    ("ResNet-18", "Jetson TX2", "PyTorch"),
    ("MobileNet-v2", "Raspberry Pi 3B", "TFLite"),
)


def legacy_latency_s(model: str, device: str, framework: str,
                     use_timer: bool = True) -> float:
    """The pre-Runner measurement pipeline, inlined verbatim."""
    session = InferenceSession(cached_deploy(model, device, framework))
    if use_timer:
        timer = InferenceTimer(seed=measurement_seed(model, device, framework))
        return float(timer.measure(session))
    return session.latency_s


class TestOldPathEquivalence:
    @pytest.mark.parametrize("cell", SAMPLE_CELLS)
    def test_timed_latency_matches_legacy_exactly(self, cell):
        record = default_runner().run(Scenario(*cell))
        assert record.ok
        assert record.latency_s == legacy_latency_s(*cell)  # zero tolerance

    @pytest.mark.parametrize("cell", SAMPLE_CELLS)
    def test_plan_latency_matches_legacy_exactly(self, cell):
        record = default_runner().run(Scenario(*cell), use_timer=False)
        assert record.latency_s == legacy_latency_s(*cell, use_timer=False)

    def test_measure_matches_record_latency(self):
        scenario = Scenario(*SAMPLE_CELLS[0])
        runner = default_runner()
        assert runner.measure(scenario) == runner.run(scenario).latency_s

    def test_latency_independent_of_cache_state(self):
        cell = SAMPLE_CELLS[0]
        clear_caches()
        cold = default_runner().run(Scenario(*cell))
        warm = default_runner().run(Scenario(*cell))
        assert cold.provenance.deploy_cache == "miss"
        assert warm.provenance.deploy_cache == "hit"
        assert cold.latency_s == warm.latency_s


class TestBatchAPI:
    def test_parallel_equals_serial(self):
        scenarios = [Scenario(*cell) for cell in SAMPLE_CELLS]
        runner = default_runner()
        serial = runner.run_cells(scenarios)
        threaded = runner.run_cells(scenarios, jobs=4)
        assert [r.latency_s for r in threaded] == [r.latency_s for r in serial]
        assert [r.scenario for r in threaded] == [r.scenario for r in serial]

    def test_process_pool_equals_serial(self):
        scenarios = [Scenario(*cell) for cell in SAMPLE_CELLS[:2]]
        runner = default_runner()
        serial = runner.run_cells(scenarios)
        forked = runner.run_cells(scenarios, jobs=2, executor="process")
        assert [r.latency_s for r in forked] == [r.latency_s for r in serial]

    def test_failures_travel_as_records(self):
        scenarios = [Scenario("VGG16", "Raspberry Pi 3B", "TensorFlow"),
                     Scenario(*SAMPLE_CELLS[0])]
        records = default_runner().run_cells(scenarios, jobs=2)
        assert records[0].failed
        assert records[0].failure.kind == "memory_error"
        assert records[1].ok

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            default_runner().run_cells([], executor="rayon")


class TestCandidateSearch:
    def test_unknown_device_is_structured_error(self):
        with pytest.raises(UnknownEntryError):
            default_runner().candidates_for("Coral Dev Board Mega")
        # still catchable the old mapping way, but as a ReproError too
        with pytest.raises(ReproError):
            default_runner().best_latency("ResNet-18", "Coral Dev Board Mega")

    def test_candidates_canonicalize(self):
        runner = default_runner()
        assert runner.candidates_for("jetson-nano") == runner.candidates_for(
            "Jetson Nano")

    def test_best_latency_picks_fastest_candidate(self):
        runner = default_runner()
        best = runner.best_latency("ResNet-18", "Jetson Nano")
        assert best is not None
        framework, latency_s = best
        for candidate in runner.candidates_for("Jetson Nano"):
            record = runner.run(Scenario("ResNet-18", "Jetson Nano", candidate))
            if record.ok:
                assert latency_s <= record.latency_s

    def test_first_session_skips_failures(self):
        result = default_runner().first_session("VGG16", "Raspberry Pi 3B")
        assert result is not None
        framework, session = result
        assert framework != "TensorFlow" or session is not None


class TestScenarioAxes:
    def test_containerized_record_reports_overhead(self):
        record = default_runner().run(
            Scenario("MobileNet-v2", "Jetson TX2", "PyTorch",
                     containerized=True))
        assert record.ok
        assert record.container_overhead is not None
        assert 0.0 < record.container_overhead <= 0.05 + 1e-12
        bare = default_runner().run(
            Scenario("MobileNet-v2", "Jetson TX2", "PyTorch"))
        assert record.model_latency_s > bare.model_latency_s

    def test_power_mode_bypasses_deploy_cache(self):
        record = default_runner().run(
            Scenario("ResNet-18", "Jetson TX2", "PyTorch",
                     power_mode="Max-Q"), use_timer=False)
        assert record.ok
        assert record.provenance.deploy_cache == "bypass"

    def test_runner_is_picklable(self):
        import pickle

        runner = pickle.loads(pickle.dumps(Runner()))
        assert runner.run(Scenario(*SAMPLE_CELLS[0]), use_timer=False).ok
