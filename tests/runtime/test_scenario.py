"""Scenario canonical identity: golden keys, seed/deploy-key subsumption."""

import pytest

from repro.engine.cache import deploy_key
from repro.graphs.tensor import DType
from repro.harness.figures import measurement_seed
from repro.runtime import Scenario

# Golden seeds: these values are the harness's historical per-cell noise
# seeds.  They must never change — a drift here silently changes every
# exported snapshot.
GOLDEN_SEEDS = {
    ("ResNet-18", "Jetson Nano", "TensorRT"): 2768483823,
    ("VGG16", "Raspberry Pi 3B", "TensorFlow"): 3079484159,
    ("MobileNet-v2", "EdgeTPU", "TFLite"): 2704308560,
    ("C3D", "Movidius NCS", "NCSDK"): 2021213727,
}


class TestCanonicalIdentity:
    @pytest.mark.parametrize("cell,seed", sorted(GOLDEN_SEEDS.items()))
    def test_golden_seeds(self, cell, seed):
        assert Scenario(*cell).seed == seed

    @pytest.mark.parametrize("cell", sorted(GOLDEN_SEEDS))
    def test_seed_matches_legacy_measurement_seed(self, cell):
        assert Scenario(*cell).seed == measurement_seed(*cell)

    def test_golden_key_string(self):
        scenario = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        assert scenario.key == (
            "resnet18|jetsonnano|tensorrt"
            "|dtype=default|batch=1|power=default|container=no")

    def test_golden_key_string_full_axes(self):
        scenario = Scenario("MobileNet-v2", "EdgeTPU", "TFLite",
                            dtype=DType.INT8, batch_size=4,
                            power_mode="MAXN", containerized=True)
        assert scenario.key == (
            "mobilenetv2|edgetpu|tflite"
            "|dtype=int8|batch=4|power=maxn|container=yes")

    def test_aliases_share_identity(self):
        a = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        b = Scenario("resnet_18", "jetson nano", "tensor-rt")
        assert a.cell == b.cell
        assert a.key == b.key
        assert a.seed == b.seed

    def test_seed_ignores_runtime_axes(self):
        base = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        varied = Scenario("ResNet-18", "Jetson Nano", "TensorRT",
                          dtype=DType.FP16, batch_size=8,
                          power_mode="MAXN", containerized=True)
        assert varied.seed == base.seed
        assert varied.key != base.key

    def test_deploy_key_subsumes_cache_helper(self):
        scenario = Scenario("ResNet-18", "Jetson Nano", "TensorRT",
                            dtype=DType.FP16)
        assert scenario.deploy_key == ("resnet18", "jetsonnano", "tensorrt",
                                       DType.FP16)
        assert scenario.deploy_key == deploy_key(
            "ResNet-18", "Jetson Nano", "TensorRT", dtype=DType.FP16)

    def test_deploy_key_ignores_session_axes(self):
        plain = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        batched = Scenario("ResNet-18", "Jetson Nano", "TensorRT",
                           batch_size=8, containerized=True)
        assert plain.deploy_key == batched.deploy_key


class TestConstructionAndDerivation:
    def test_str_dtype_coerces(self):
        assert Scenario("a", "b", "c", dtype="fp16").dtype is DType.FP16

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            Scenario("a", "b", "c", batch_size=0)

    def test_with_framework(self):
        base = Scenario("ResNet-18", "Jetson Nano", "TensorRT", batch_size=4)
        other = base.with_framework("PyTorch")
        assert other.framework == "PyTorch"
        assert other.batch_size == 4
        assert base.framework == "TensorRT"

    def test_default_runtime_gate(self):
        assert Scenario("a", "b", "c").is_default_runtime
        assert Scenario("a", "b", "c", power_mode="Default").is_default_runtime
        assert not Scenario("a", "b", "c", power_mode="MAXN").is_default_runtime

    def test_hashable_and_equal(self):
        a = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        b = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
        assert a == b
        assert len({a, b}) == 1

    def test_dict_round_trip(self):
        scenario = Scenario("VGG16", "Jetson TX2", "PyTorch",
                            dtype=DType.INT8, batch_size=2,
                            power_mode="Max-Q", containerized=True)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_dict_round_trip_defaults(self):
        scenario = Scenario("VGG16", "Jetson TX2", "PyTorch")
        payload = scenario.to_dict()
        assert payload["dtype"] is None
        assert Scenario.from_dict(payload) == scenario
