"""Thermally-sustained throughput simulation."""

import dataclasses

import pytest

from repro.analysis import simulate_sustained
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _session(device_name: str, framework_name: str, model="Inception-v4",
             device=None) -> InferenceSession:
    target = device or load_device(device_name)
    deployed = load_framework(framework_name).deploy(load_model(model), target)
    return InferenceSession(deployed)


class TestSustainedRun:
    def test_stable_device_keeps_burst_rate(self):
        result = simulate_sustained(_session("Jetson TX2", "PyTorch"))
        assert not result.shutdown
        assert result.slowdown == pytest.approx(1.0)
        assert result.sustained_fps == pytest.approx(result.burst_fps)
        assert result.completed_inferences > 0

    def test_rpi_shuts_down_mid_run(self):
        result = simulate_sustained(_session("Raspberry Pi 3B", "TFLite"))
        assert result.shutdown
        assert result.sustained_fps == 0.0
        assert result.shutdown_time_s is not None
        assert result.duration_s < 1800.0  # run ended early

    def test_dvfs_variant_survives_by_throttling(self):
        rpi = load_device("Raspberry Pi 3B")
        spec = dataclasses.replace(rpi.thermal, throttle_c=60.0,
                                   throttle_stop_c=55.0, throttle_clock_factor=0.6)
        dvfs_rpi = dataclasses.replace(rpi, thermal=spec)
        result = simulate_sustained(_session("", "TFLite", device=dvfs_rpi))
        assert not result.shutdown
        assert result.throttle_events >= 1
        assert result.slowdown == pytest.approx(1 / 0.6, rel=0.01)
        assert 0 < result.sustained_fps < result.burst_fps

    def test_trace_is_time_ordered(self):
        result = simulate_sustained(_session("Jetson Nano", "TensorRT"),
                                    duration_s=300.0)
        times = [t for t, _temp, _lat in result.trace]
        assert times == sorted(times)

    def test_throttling_reduces_completed_inferences(self):
        rpi = load_device("Raspberry Pi 3B")
        spec = dataclasses.replace(rpi.thermal, throttle_c=60.0,
                                   throttle_stop_c=55.0, throttle_clock_factor=0.5,
                                   shutdown_c=None)
        throttled = simulate_sustained(_session("", "TFLite", device=dataclasses.replace(rpi, thermal=spec)))
        cool_spec = dataclasses.replace(rpi.thermal, shutdown_c=None)
        unthrottled = simulate_sustained(_session("", "TFLite", device=dataclasses.replace(rpi, thermal=cool_spec)))
        assert throttled.completed_inferences < unthrottled.completed_inferences

    def test_invalid_arguments(self):
        session = _session("Jetson TX2", "PyTorch")
        with pytest.raises(ValueError):
            simulate_sustained(session, duration_s=0)
        with pytest.raises(ValueError):
            simulate_sustained(session, dt_s=0)

    def test_ambient_override(self):
        hot = simulate_sustained(_session("Jetson Nano", "TensorRT"), ambient_c=40.0)
        cool = simulate_sustained(_session("Jetson Nano", "TensorRT"), ambient_c=10.0)
        assert hot.trace[-1][1] > cool.trace[-1][1]
