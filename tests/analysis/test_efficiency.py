"""Energy-delay metrics."""

import pytest

from repro.analysis import energy_delay_metrics, energy_delay_table
from repro.harness.figures import build_session
from repro.measurement.energy import active_power_w


class TestMetrics:
    def test_definitions(self, session_factory):
        session = session_factory("ResNet-18", "Jetson Nano", "TensorRT")
        energy, edp, ed2p = energy_delay_metrics(session)
        delay = session.latency_s
        assert energy == pytest.approx(active_power_w(session) * delay)
        assert edp == pytest.approx(energy * delay)
        assert ed2p == pytest.approx(energy * delay * delay)

    def test_faster_same_power_has_lower_edp(self, session_factory):
        fast = session_factory("MobileNet-v2", "Jetson Nano", "TensorRT")
        slow = session_factory("Inception-v4", "Jetson Nano", "TensorRT")
        assert energy_delay_metrics(fast)[1] < energy_delay_metrics(slow)[1]


class TestTable:
    PAIRS = (
        ("Raspberry Pi 3B", "TFLite"),
        ("Jetson TX2", "PyTorch"),
        ("Jetson Nano", "TensorRT"),
        ("EdgeTPU", "TFLite"),
        ("Movidius NCS", "NCSDK"),
        ("GTX Titan X", "PyTorch"),
    )

    @pytest.fixture(scope="class")
    def table(self):
        return energy_delay_table("MobileNet-v2", self.PAIRS, build_session)

    def test_sorted_by_edp(self, table):
        edps = table.column("edp_mj_ms")
        assert edps == sorted(edps)

    def test_edgetpu_wins_mobilenet(self, table):
        """Lowest latency AND near-lowest energy: EdgeTPU tops the ranking."""
        assert table.labels()[0] == "EdgeTPU"

    def test_rpi_last(self, table):
        assert table.labels()[-1] == "Raspberry Pi 3B"

    def test_failures_skipped(self):
        pairs = (("EdgeTPU", "TFLite"), ("EdgeTPU", "PyTorch"))  # second fails
        table = energy_delay_table("MobileNet-v2", pairs, build_session)
        assert len(table) == 1
