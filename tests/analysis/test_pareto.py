"""Pareto-frontier extraction."""


from repro.analysis.pareto import ParetoPoint, dominated_by, pareto_frontier


def _p(label, latency, power) -> ParetoPoint:
    return ParetoPoint(label=label, latency_s=latency, power_w=power)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert _p("a", 1, 1).dominates(_p("b", 2, 2))

    def test_better_on_one_axis_equal_other(self):
        assert _p("a", 1, 2).dominates(_p("b", 2, 2))

    def test_tradeoff_does_not_dominate(self):
        fast_hungry = _p("a", 1, 10)
        slow_frugal = _p("b", 10, 1)
        assert not fast_hungry.dominates(slow_frugal)
        assert not slow_frugal.dominates(fast_hungry)

    def test_identical_points_do_not_dominate(self):
        assert not _p("a", 1, 1).dominates(_p("b", 1, 1))


class TestFrontier:
    def test_extracts_non_dominated(self):
        points = [_p("fast", 1, 10), _p("frugal", 10, 1),
                  _p("dominated", 5, 5), _p("middle", 3, 3)]
        frontier = pareto_frontier(points)
        labels = [p.label for p in frontier]
        assert labels == ["fast", "middle", "frugal"]

    def test_sorted_by_latency(self):
        points = [_p("b", 2, 2), _p("a", 1, 3)]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["a", "b"]

    def test_single_point(self):
        assert pareto_frontier([_p("only", 1, 1)]) == [_p("only", 1, 1)]

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_all_identical_all_kept(self):
        points = [_p("a", 1, 1), _p("b", 1, 1)]
        assert len(pareto_frontier(points)) == 2


class TestDominatedBy:
    def test_explanation(self):
        points = [_p("fast", 1, 1), _p("slow", 5, 5)]
        explainers = dominated_by(points[1], points)
        assert explainers == [points[0]]

    def test_frontier_point_has_no_explainers(self):
        points = [_p("fast", 1, 10), _p("frugal", 10, 1)]
        assert dominated_by(points[0], points) == []


class TestNDimensionalFrontier:
    """The generic (latency, energy, cost) machinery the placement
    optimizer ranks deployments with."""

    def test_dominates_requires_all_leq_and_any_lt(self):
        from repro.analysis.pareto import dominates

        assert dominates((1.0, 1.0, 1.0), (2.0, 2.0, 2.0))
        assert dominates((1.0, 2.0, 2.0), (2.0, 2.0, 2.0))
        assert not dominates((1.0, 1.0, 1.0), (1.0, 1.0, 1.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))

    def test_dominates_rejects_mixed_arity(self):
        import pytest

        from repro.analysis.pareto import dominates

        with pytest.raises(ValueError):
            dominates((1.0, 2.0), (1.0, 2.0, 3.0))

    def test_frontier_indices_keep_input_order(self):
        from repro.analysis.pareto import frontier_indices

        objectives = [(2.0, 1.0), (1.0, 2.0), (3.0, 3.0), (1.0, 2.0)]
        assert frontier_indices(objectives) == [0, 1, 3]

    def test_frontier_indices_of_empty_is_empty(self):
        from repro.analysis.pareto import frontier_indices

        assert frontier_indices([]) == []

    def test_frontier_points_sorted_unique_view(self):
        from repro.analysis.pareto import frontier_points

        objectives = [(2.0, 1.0), (1.0, 2.0), (3.0, 3.0)]
        assert frontier_points(objectives) == [(1.0, 2.0), (2.0, 1.0)]
