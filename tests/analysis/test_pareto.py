"""Pareto-frontier extraction."""


from repro.analysis.pareto import ParetoPoint, dominated_by, pareto_frontier


def _p(label, latency, power) -> ParetoPoint:
    return ParetoPoint(label=label, latency_s=latency, power_w=power)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert _p("a", 1, 1).dominates(_p("b", 2, 2))

    def test_better_on_one_axis_equal_other(self):
        assert _p("a", 1, 2).dominates(_p("b", 2, 2))

    def test_tradeoff_does_not_dominate(self):
        fast_hungry = _p("a", 1, 10)
        slow_frugal = _p("b", 10, 1)
        assert not fast_hungry.dominates(slow_frugal)
        assert not slow_frugal.dominates(fast_hungry)

    def test_identical_points_do_not_dominate(self):
        assert not _p("a", 1, 1).dominates(_p("b", 1, 1))


class TestFrontier:
    def test_extracts_non_dominated(self):
        points = [_p("fast", 1, 10), _p("frugal", 10, 1),
                  _p("dominated", 5, 5), _p("middle", 3, 3)]
        frontier = pareto_frontier(points)
        labels = [p.label for p in frontier]
        assert labels == ["fast", "middle", "frugal"]

    def test_sorted_by_latency(self):
        points = [_p("b", 2, 2), _p("a", 1, 3)]
        frontier = pareto_frontier(points)
        assert [p.label for p in frontier] == ["a", "b"]

    def test_single_point(self):
        assert pareto_frontier([_p("only", 1, 1)]) == [_p("only", 1, 1)]

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_all_identical_all_kept(self):
        points = [_p("a", 1, 1), _p("b", 1, 1)]
        assert len(pareto_frontier(points)) == 2


class TestDominatedBy:
    def test_explanation(self):
        points = [_p("fast", 1, 1), _p("slow", 5, 5)]
        explainers = dominated_by(points[1], points)
        assert explainers == [points[0]]

    def test_frontier_point_has_no_explainers(self):
        points = [_p("fast", 1, 10), _p("frugal", 10, 1)]
        assert dominated_by(points[0], points) == []
