"""Deployment advisor."""

import pytest

from repro.analysis import (
    Requirements,
    best_deployment,
    recommend_deployments,
)


class TestRequirements:
    def test_unconstrained_accepts_anything(self):
        ok, reason = Requirements().check(100.0, 1000.0, 1e6)
        assert ok and reason == ""

    def test_deadline(self):
        ok, reason = Requirements(deadline_s=0.05).check(0.06, 1.0, 0.01)
        assert not ok and "deadline" in reason

    def test_power(self):
        ok, reason = Requirements(power_budget_w=5.0).check(0.01, 9.0, 0.01)
        assert not ok and "W budget" in reason

    def test_energy(self):
        ok, reason = Requirements(energy_budget_j=0.05).check(0.01, 1.0, 0.06)
        assert not ok and "mJ/inference" in reason


class TestRecommendations:
    @pytest.fixture(scope="class")
    def results(self):
        return recommend_deployments(
            "MobileNet-v2",
            Requirements(deadline_s=0.060, power_budget_w=6.0),
        )

    def test_feasible_sorted_first_by_energy(self, results):
        feasible = [r for r in results if r.feasible]
        assert feasible
        energies = [r.energy_j for r in feasible]
        assert energies == sorted(energies)
        # All feasible entries precede all rejected ones.
        first_rejected = next((i for i, r in enumerate(results) if not r.feasible),
                              len(results))
        assert all(r.feasible for r in results[:first_rejected])

    def test_rejections_carry_reasons(self, results):
        rejected = [r for r in results if not r.feasible]
        assert all(r.reason for r in rejected)

    def test_constraints_actually_enforced(self, results):
        for r in results:
            if r.feasible:
                assert r.latency_s <= 0.060
                assert r.power_w <= 6.0

    def test_edgetpu_wins_mobilenet(self, results):
        assert results[0].device == "EdgeTPU"

    def test_operating_points_explored(self):
        results = recommend_deployments("MobileNet-v2", Requirements())
        points = {(r.device, r.operating_point) for r in results}
        assert ("Jetson TX2", "Max-Q") in points
        assert ("Jetson Nano", "5W") in points

    def test_operating_points_can_be_disabled(self):
        results = recommend_deployments("MobileNet-v2", Requirements(),
                                        include_operating_points=False)
        assert all(r.operating_point in ("default", "Max-N", "10W") for r in results)

    def test_undeployable_configurations_absent(self):
        results = recommend_deployments("C3D", Requirements())
        devices = {r.device for r in results}
        assert "Movidius NCS" not in devices  # NCSDK rejects conv3d
        assert "EdgeTPU" not in devices  # conversion barrier

    def test_describe(self, results):
        text = results[0].describe()
        assert "ms" in text and "OK" in text


class TestBestDeployment:
    def test_returns_cheapest_feasible(self):
        best = best_deployment("MobileNet-v2",
                               Requirements(deadline_s=0.100))
        assert best is not None and best.feasible

    def test_impossible_constraints_return_none(self):
        assert best_deployment(
            "Inception-v4", Requirements(deadline_s=0.001)) is None

    def test_power_cap_excludes_jetsons_at_full_tilt(self):
        """A 3 W cap forces the accelerator sticks or a budget mode."""
        best = best_deployment("MobileNet-v2", Requirements(power_budget_w=3.0))
        assert best is not None
        assert best.device in ("Movidius NCS", "Jetson Nano", "Raspberry Pi 3B")
        assert best.power_w <= 3.0


class TestRecommendPlacements:
    def test_maps_requirements_onto_the_placement_slo(self):
        from repro.analysis import recommend_placements

        frontier = recommend_placements(
            "MobileNet-v2", Requirements(deadline_s=0.060),
            devices=("Jetson Nano", "Jetson TX2"), link="wifi",
            max_pipeline_depth=2)
        assert frontier.slo.deadline_s == 0.060
        assert frontier.frontier
        assert all(c.latency_s <= 0.060 for c in frontier.frontier)

    def test_multi_device_shapes_compete_with_single_nodes(self):
        from repro.analysis import recommend_placements

        frontier = recommend_placements(
            "MobileNet-v2", Requirements(),
            devices=("Raspberry Pi 3B",), link="lan", max_pipeline_depth=2)
        kinds = {c.deployment.kind for c in frontier.candidates}
        assert "single" in kinds and "pipeline" in kinds
