"""Parameter sweeps: batch size, sparsity, datatype."""

import pytest

from repro.analysis import batch_size_sweep, dtype_sweep, sparsity_sweep


class TestBatchSweep:
    @pytest.fixture(scope="class")
    def table(self):
        return batch_size_sweep("ResNet-50", ("Jetson TX2", "RTX 2080"),
                                batches=(1, 8, 64))

    def test_rows_per_device(self, table):
        assert table.labels() == ["Jetson TX2", "RTX 2080"]

    def test_latency_monotone_in_batch(self, table):
        for row in table:
            values = [row[c] for c in table.columns if row[c] is not None]
            assert values == sorted(values, reverse=True)

    def test_oom_marked_as_none(self):
        table = batch_size_sweep("VGG16", ("Jetson Nano",), batches=(1, 512))
        assert table.row("Jetson Nano")["batch 1"] is not None
        assert table.row("Jetson Nano")["batch 512"] is None


class TestSparsitySweep:
    @pytest.fixture(scope="class")
    def table(self):
        return sparsity_sweep("ResNet-50", "Raspberry Pi 3B",
                              framework_names=("TensorFlow", "PyTorch"),
                              sparsities=(0.0, 0.5, 0.9))

    def test_exploiters_accelerate(self, table):
        row = table.row("TensorFlow")
        assert row["90% sparse"] < row["50% sparse"] < row["0% sparse"]

    def test_non_exploiters_flat(self, table):
        row = table.row("PyTorch")
        assert row["90% sparse"] == pytest.approx(row["0% sparse"], rel=1e-6)

    def test_incompatible_framework_marked(self):
        table = sparsity_sweep("ResNet-50", "Raspberry Pi 3B",
                               framework_names=("TensorRT",), sparsities=(0.0,))
        assert table.row("TensorRT")["0% sparse"] is None  # no GPU on RPi


class TestDtypeSweep:
    @pytest.fixture(scope="class")
    def table(self):
        return dtype_sweep("ResNet-50", "Jetson Nano", "TensorRT")

    def test_weights_shrink_with_narrow_types(self, table):
        weights = table.column("weights_mib")
        assert weights[0] > weights[1] > weights[2]  # fp32 > fp16 > int8

    def test_fp16_fastest_on_maxwell(self, table):
        """The Nano's Maxwell GPU doubles fp16 rate but has no INT8 path,
        so fp16 wins despite int8's smaller footprint."""
        latencies = {row.label: row["latency_ms"] for row in table}
        assert latencies["fp16"] < latencies["fp32"]
        assert latencies["fp16"] < latencies["int8"]
