"""StackProfile container behaviour."""

import pytest

from repro.profiling.profiler import ProfileEntry, StackProfile


def _profile() -> StackProfile:
    profile = StackProfile("TF", "RPi", "ResNet-18", 30)
    profile.add("conv2d", "per-inference", 8.0, calls=30)
    profile.add("import", "one-time", 2.0)
    return profile


class TestStackProfile:
    def test_total(self):
        assert _profile().total_s == 10.0

    def test_fractions_sum_to_one(self):
        fractions = _profile().fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["conv2d"] == pytest.approx(0.8)

    def test_fraction_of_missing_bucket_is_zero(self):
        assert _profile().fraction("nonexistent") == 0.0

    def test_zero_time_entries_hidden(self):
        profile = _profile()
        profile.add("never_ran", "one-time", 0.0)
        assert "never_ran" not in profile.fractions()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _profile().add("bad", "one-time", -1.0)

    def test_top_sorted_descending(self):
        top = _profile().top(2)
        assert [e.function for e in top] == ["conv2d", "import"]

    def test_per_call_time(self):
        entry = ProfileEntry("conv2d", "per-inference", 9.0, calls=30)
        assert entry.per_call_s == pytest.approx(0.3)

    def test_render_mentions_buckets(self):
        text = _profile().render()
        assert "conv2d" in text and "80.0%" in text

    def test_empty_profile_fractions(self):
        assert StackProfile("x", "y", "z", 1).fractions() == {}
