"""Framework stack-profile builders (Figure 5)."""

import pytest

from repro.profiling import profile_stack


class TestDispatch:
    def test_rejects_nonpositive_runs(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        with pytest.raises(ValueError):
            profile_stack(session, 0)

    def test_metadata_recorded(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        profile = profile_stack(session, 100)
        assert profile.framework == "PyTorch"
        assert profile.device == "Jetson TX2"
        assert profile.model == "ResNet-18"
        assert profile.n_inferences == 100


class TestPyTorchStack:
    def test_rpi_buckets(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "PyTorch")
        fractions = profile_stack(session, 30).fractions()
        assert "conv2d" in fractions and "batch_norm" in fractions
        assert "_C._TensorBase.to()" not in fractions  # no GPU on RPi

    def test_tx2_has_staging_bucket(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        fractions = profile_stack(session, 1000).fractions()
        assert fractions["_C._TensorBase.to()"] > 0.2

    def test_conv2d_dominates_rpi_runtime(self, session_factory):
        """Section VI-B3: conv2d accounts for ~81% of the PyTorch RPi run."""
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "PyTorch")
        profile = profile_stack(session, 30)
        assert profile.fraction("conv2d") > 0.55

    def test_per_inference_buckets_scale_with_runs(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "PyTorch")
        few = profile_stack(session, 10)
        many = profile_stack(session, 1000)
        conv_few = next(e for e in few.entries if e.function == "conv2d")
        conv_many = next(e for e in many.entries if e.function == "conv2d")
        assert conv_many.total_s == pytest.approx(100 * conv_few.total_s)
        # One-time work does not scale.
        import_few = next(e for e in few.entries if e.function == "<built-in import>")
        import_many = next(e for e in many.entries if e.function == "<built-in import>")
        assert import_few.total_s == import_many.total_s

    def test_linear_bucket_for_dense_models(self, session_factory):
        session = session_factory("VGG16", "Jetson TX2", "PyTorch")
        assert profile_stack(session, 100).fraction("linear") > 0.0


class TestTensorFlowStack:
    def test_rpi_graph_setup_dominates_short_profiles(self, session_factory):
        """Figure 5b: base_layer is the largest bucket over 30 inferences."""
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        profile = profile_stack(session, 30)
        fractions = profile.fractions()
        assert fractions["base_layer"] == max(fractions.values())

    def test_run_bucket_grows_with_inferences(self, session_factory):
        session = session_factory("ResNet-18", "Jetson TX2", "TensorFlow")
        short = profile_stack(session, 30).fraction("TF_SessionRunCallable")
        long = profile_stack(session, 1000).fraction("TF_SessionRunCallable")
        assert long > short

    def test_all_paper_buckets_present(self, session_factory):
        session = session_factory("ResNet-18", "Raspberry Pi 3B", "TensorFlow")
        fractions = profile_stack(session, 30).fractions()
        for bucket in ("Library Loading", "base_layer", "_initialize_variable",
                       "TF_SessionMakeCallable", "session.__init__",
                       "TF_SessionRunCallable", "layers & weights"):
            assert bucket in fractions, bucket


class TestGenericStack:
    def test_other_frameworks_get_generic_buckets(self, session_factory):
        session = session_factory("ResNet-18", "Jetson Nano", "TensorRT")
        fractions = profile_stack(session, 100).fractions()
        assert set(fractions) == {"library loading", "model build",
                                  "weight load", "inference"}
