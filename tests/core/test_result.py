"""Measurement and ResultTable behaviour."""

import math

import pytest

from repro.core.result import Measurement, ResultTable, geometric_mean


class TestMeasurement:
    def test_from_samples_uses_median(self):
        m = Measurement.from_samples([1.0, 100.0, 2.0], unit="s")
        assert m.value == 2.0
        assert m.samples == 3
        assert m.minimum == 1.0
        assert m.maximum == 100.0

    def test_single_sample_has_zero_stddev(self):
        m = Measurement.from_samples([5.0])
        assert m.stddev == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Measurement.from_samples([])

    def test_float_conversion(self):
        assert float(Measurement(0.87, unit="s")) == 0.87

    def test_repr_mentions_sample_count(self):
        m = Measurement.from_samples([1.0, 2.0, 3.0], unit="J")
        assert "n=3" in repr(m)


class TestResultTable:
    def _table(self) -> ResultTable:
        table = ResultTable("demo", ["x", "y"], caption="cap")
        table.add_row("a", x=1, y=2)
        table.add_row("b", x=3)
        return table

    def test_rows_and_labels(self):
        table = self._table()
        assert table.labels() == ["a", "b"]
        assert len(table) == 2

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown columns"):
            self._table().add_row("c", z=1)

    def test_missing_cells_default_none(self):
        assert self._table().row("b").get("y") is None

    def test_column_extraction(self):
        assert self._table().column("x") == [1, 3]

    def test_unknown_column_lookup_raises(self):
        with pytest.raises(KeyError):
            self._table().column("z")

    def test_unknown_row_raises(self):
        with pytest.raises(KeyError):
            self._table().row("missing")

    def test_to_records_round_trip(self):
        records = self._table().to_records()
        assert records[0] == {"label": "a", "x": 1, "y": 2}

    def test_notes_accumulate(self):
        table = self._table()
        table.add_note("first")
        table.add_note("second")
        assert table.notes == ["first", "second"]

    def test_row_getitem(self):
        assert self._table().row("a")["x"] == 1


class TestGeometricMean:
    def test_matches_closed_form(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_log_identity(self):
        values = [0.5, 2.0, 8.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)
