"""Bootstrap statistics."""

import numpy as np
import pytest

from repro.core.stats import (
    ConfidenceInterval,
    bootstrap_median,
    compare_speedup,
)


class TestConfidenceInterval:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(point=5.0, low=6.0, high=7.0, confidence=0.95)

    def test_contains_and_width(self):
        ci = ConfidenceInterval(point=2.0, low=1.0, high=3.0, confidence=0.95)
        assert ci.contains(2.5)
        assert not ci.contains(0.5)
        assert ci.half_width == 1.0

    def test_str(self):
        ci = ConfidenceInterval(point=2.0, low=1.0, high=3.0, confidence=0.95)
        assert "95%" in str(ci)


class TestBootstrapMedian:
    def test_point_is_sample_median(self):
        samples = [1.0, 2.0, 3.0, 4.0, 100.0]
        ci = bootstrap_median(samples, seed=1)
        assert ci.point == 3.0

    def test_interval_narrows_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = bootstrap_median(rng.normal(10, 1, size=20), seed=2)
        large = bootstrap_median(rng.normal(10, 1, size=2000), seed=2)
        assert large.half_width < small.half_width

    def test_coverage_on_known_distribution(self):
        """~95% of CIs should contain the true median."""
        rng = np.random.default_rng(3)
        hits = 0
        trials = 100
        for trial in range(trials):
            samples = rng.normal(5.0, 1.0, size=60)
            ci = bootstrap_median(samples, seed=trial)
            hits += ci.contains(5.0)
        assert hits >= 85  # generous to keep the test stable

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_median([])
        with pytest.raises(ValueError):
            bootstrap_median([1.0], confidence=1.5)

    def test_deterministic_per_seed(self):
        samples = list(np.random.default_rng(4).exponential(1.0, 50))
        assert bootstrap_median(samples, seed=9).low == bootstrap_median(samples, seed=9).low


class TestCompareSpeedup:
    def test_clear_speedup_is_significant(self):
        rng = np.random.default_rng(5)
        slow = rng.normal(0.10, 0.005, size=200)
        fast = rng.normal(0.05, 0.005, size=200)
        comparison = compare_speedup(slow, fast, seed=6)
        assert comparison.speedup == pytest.approx(2.0, rel=0.1)
        assert comparison.significant
        assert "significant" in str(comparison)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0.10, 0.01, size=100)
        b = rng.normal(0.10, 0.01, size=100)
        comparison = compare_speedup(a, b, seed=8)
        assert not comparison.significant

    def test_direction(self):
        comparison = compare_speedup([2.0] * 10, [1.0] * 10, seed=9)
        assert comparison.speedup == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_speedup([], [1.0])
        with pytest.raises(ValueError):
            compare_speedup([1.0], [-1.0])

    def test_works_with_timer_output(self, session_factory):
        from repro.measurement import InferenceTimer

        InferenceTimer(seed=10, jitter_fraction=0.05)  # constructs cleanly
        pt = session_factory("ResNet-18", "Jetson Nano", "PyTorch")
        trt = session_factory("ResNet-18", "Jetson Nano", "TensorRT")
        pt_samples = [pt.latency_s * j for j in
                      np.random.default_rng(0).lognormal(0, 0.05, 200)]
        trt_samples = [trt.latency_s * j for j in
                       np.random.default_rng(1).lognormal(0, 0.05, 200)]
        comparison = compare_speedup(pt_samples, trt_samples, seed=11)
        assert comparison.significant
        assert comparison.speedup > 4
