"""Experiment runner mechanics."""

import pytest

from repro.core.experiment import Experiment, ExperimentRunner
from repro.core.registry import Registry
from repro.core.result import ResultTable


def _make_registry() -> Registry[Experiment]:
    registry: Registry[Experiment] = Registry("experiment")

    def generator_a() -> ResultTable:
        table = ResultTable("A", ["v"])
        table.add_row("only", v=1)
        return table

    def generator_b() -> ResultTable:
        return ResultTable("B", ["v"])

    registry.register("expA", lambda: Experiment("expA", "Fig X", "demo", generator_a))
    registry.register("expB", lambda: Experiment("expB", "Fig Y", "demo", generator_b))
    return registry


class TestExperiment:
    def test_run_returns_generator_output(self):
        registry = _make_registry()
        table = registry.create("expA").run()
        assert table.title == "A"
        assert table.row("only")["v"] == 1


class TestExperimentRunner:
    def test_run_records_result(self):
        runner = ExperimentRunner(_make_registry())
        result = runner.run("expA")
        assert result.experiment.experiment_id == "expA"
        assert result.wall_time_s >= 0
        assert runner.results == [result]

    def test_run_many_preserves_order(self):
        runner = ExperimentRunner(_make_registry())
        results = runner.run_many(["expB", "expA"])
        assert [r.experiment.experiment_id for r in results] == ["expB", "expA"]

    def test_run_all_covers_registry(self):
        runner = ExperimentRunner(_make_registry())
        results = runner.run_all()
        assert {r.experiment.experiment_id for r in results} == {"expA", "expB"}

    def test_unknown_experiment_raises(self):
        runner = ExperimentRunner(_make_registry())
        with pytest.raises(KeyError):
            runner.run("expC")
