"""Registry behaviour: lookup, aliasing, suggestions, isolation."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.core.registry import Registry, canonical_name


class TestCanonicalName:
    @pytest.mark.parametrize("variant", ["ResNet-18", "resnet18", "ResNet_18", "resnet 18"])
    def test_variants_collapse(self, variant):
        assert canonical_name(variant) == "resnet18"

    def test_case_insensitive(self):
        assert canonical_name("TensorRT") == canonical_name("tensorrt")


class TestRegistry:
    def _registry(self) -> Registry[dict]:
        registry: Registry[dict] = Registry("widget")
        registry.register("Alpha One", lambda: {"name": "alpha"}, aliases=("a1",))
        registry.register("Beta", lambda: {"name": "beta"})
        return registry

    def test_create_returns_fresh_instances(self):
        registry = self._registry()
        first = registry.create("Alpha One")
        second = registry.create("alpha one")
        assert first == second
        assert first is not second

    def test_alias_lookup(self):
        assert self._registry().create("a1")["name"] == "alpha"

    def test_unknown_raises_with_suggestion(self):
        registry = self._registry()
        with pytest.raises(UnknownEntryError, match="Beta"):
            registry.create("beta2")

    def test_unknown_far_from_everything_has_no_suggestion(self):
        registry = self._registry()
        with pytest.raises(UnknownEntryError):
            registry.create("zzzzzzz")

    def test_duplicate_name_rejected(self):
        registry = self._registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.register("alpha-one", lambda: {})

    def test_names_lists_primary_names_only(self):
        assert self._registry().names() == ["Alpha One", "Beta"]

    def test_contains_and_len(self):
        registry = self._registry()
        assert "a1" in registry
        assert "gamma" not in registry
        assert len(registry) == 2

    def test_display_name_resolves_alias(self):
        assert self._registry().display_name("a1") == "Alpha One"

    def test_alias_equal_to_primary_is_tolerated(self):
        registry: Registry[int] = Registry("num")
        registry.register("One-Two", lambda: 12, aliases=("one two", "onetwo"))
        assert registry.create("ONETWO") == 12

    def test_iteration_yields_names(self):
        assert list(self._registry()) == ["Alpha One", "Beta"]

    def test_unknown_entry_error_is_key_error(self):
        registry = self._registry()
        with pytest.raises(KeyError):
            registry.create("missing")
