"""Unit-safe quantity tests."""

import math

import pytest

from repro.core.quantity import (
    Bytes,
    Celsius,
    GIBI,
    Hertz,
    Joules,
    MEBI,
    Seconds,
    Watts,
    format_bytes,
    format_seconds,
)


class TestSeconds:
    def test_from_ms_round_trip(self):
        assert Seconds.from_ms(250).ms == pytest.approx(250)

    def test_is_a_float(self):
        assert Seconds(1.5) + 0.5 == 2.0

    def test_repr_carries_unit(self):
        assert "s" in repr(Seconds(0.25))

    def test_ms_property(self):
        assert Seconds(0.87).ms == pytest.approx(870)


class TestJoules:
    def test_from_mj(self):
        assert float(Joules.from_mj(11)) == pytest.approx(0.011)

    def test_mj_property(self):
        assert Joules(2.5).mj == pytest.approx(2500)


class TestHertz:
    def test_from_ghz(self):
        assert float(Hertz.from_ghz(1.2)) == pytest.approx(1.2e9)

    def test_from_mhz(self):
        assert float(Hertz.from_mhz(650)) == pytest.approx(650e6)


class TestBytes:
    def test_from_gib(self):
        assert int(Bytes.from_gib(1)) == GIBI

    def test_from_mib(self):
        assert int(Bytes.from_mib(512)) == 512 * MEBI

    def test_repr_uses_binary_prefix(self):
        assert "GiB" in repr(Bytes.from_gib(4))


class TestFormatting:
    def test_format_bytes_picks_prefix(self):
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * MEBI) == "3.00 MiB"
        assert format_bytes(500) == "500 B"

    def test_format_seconds_ms_below_one_second(self):
        assert format_seconds(0.0265) == "26.5 ms"

    def test_format_seconds_seconds_above_one(self):
        assert format_seconds(6.57) == "6.57 s"


class TestOtherUnits:
    def test_watts_and_celsius_tag_units(self):
        assert "W" in repr(Watts(2.73))
        assert "degC" in repr(Celsius(43.3))

    def test_quantities_work_with_math(self):
        assert math.isclose(Watts(2.0) * Seconds(3.0), 6.0)
