"""Error-hierarchy contracts the compat layer relies on."""

import pytest

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
    UnknownEntryError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        CompatibilityError, ConversionError, DeploymentError,
        IncompatibleModelError, OutOfMemoryError, ThermalShutdownError,
        UnknownEntryError,
    ])
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", [ConversionError, IncompatibleModelError, OutOfMemoryError])
    def test_deployment_failures(self, exc):
        assert issubclass(exc, DeploymentError)

    def test_unknown_entry_is_key_error(self):
        assert issubclass(UnknownEntryError, KeyError)

    def test_unknown_entry_message_unquoted(self):
        err = UnknownEntryError("unknown model: 'x'")
        assert str(err) == "unknown model: 'x'"


class TestPayloads:
    def test_oom_carries_byte_counts(self):
        err = OutOfMemoryError("too big", required_bytes=10, available_bytes=5)
        assert err.required_bytes == 10
        assert err.available_bytes == 5

    def test_thermal_shutdown_carries_temperature(self):
        err = ThermalShutdownError("hot", temperature_c=71.5)
        assert err.temperature_c == 71.5
