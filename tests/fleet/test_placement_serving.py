"""The fleet serves Deployments: single-node ones bit-identically to the
legacy scenario path, pipelined ones as chained stage queues."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.fleet import PoolSpec, simulate_fleet
from repro.placement import Deployment, StageSpec
from repro.runtime import Scenario, default_runner
from repro.workloads import PoissonArrivals

NANO = Scenario("ResNet-18", "Jetson Nano", "TensorRT")


def _pipeline_deployment():
    from repro.distribution import lower_pipeline

    chain = (Scenario("MobileNet-v2", "Raspberry Pi 3B", "TFLite"),) * 2
    return lower_pipeline(chain, "lan", runner=default_runner())


@pytest.fixture(scope="module")
def pipeline_pool():
    return PoolSpec.from_deployment("pi-pipe", _pipeline_deployment(),
                                    replicas=2)


class TestFromDeployment:
    def test_single_node_deployment_degrades_to_a_plain_pool(self):
        single = Deployment.single(NANO, compute_s=0.05)
        pool = PoolSpec.from_deployment("nano", single, replicas=3)
        assert pool.deployment is None
        assert pool.scenario == NANO
        assert pool.replicas == 3

    def test_single_node_bit_identity_with_the_legacy_path(self):
        """The tentpole's zero-tolerance contract: routing a single-node
        placement through Deployment changes NOTHING in the report."""
        single = Deployment.single(NANO, compute_s=0.05)
        legacy = PoolSpec(name="nano", replicas=2, scenario=NANO)
        routed = PoolSpec.from_deployment("nano", single, replicas=2)
        arrivals = PoissonArrivals(60.0)
        before = simulate_fleet([legacy], arrivals, requests=5000, seed=7,
                                epochs=128)
        after = simulate_fleet([routed], arrivals, requests=5000, seed=7,
                               epochs=128)
        assert before.to_json() == after.to_json()

    def test_direct_single_node_deployment_pool_rejected(self):
        single = Deployment.single(NANO, compute_s=0.05)
        with pytest.raises(ValueError, match="from_deployment"):
            PoolSpec(name="nano", replicas=1, scenario=NANO,
                     deployment=single)

    def test_deployment_pools_cannot_batch(self, pipeline_pool):
        with pytest.raises(ValueError, match="max_batch"):
            PoolSpec(name="pi", replicas=1,
                     scenario=pipeline_pool.scenario,
                     deployment=pipeline_pool.deployment, max_batch=4)

    def test_zero_service_stage_is_unpriceable(self):
        from repro.fleet.cluster import _profile_from_deployment

        head = StageSpec(scenario=NANO, op_names=("a",), compute_s=0.0,
                         transfer_s=0.01, transfer_bytes=8)
        tail = StageSpec(scenario=NANO, op_names=("b",), compute_s=0.0)
        broken = Deployment(kind="split", link="wifi", stages=(head, tail))
        pool = PoolSpec.from_deployment("broken", broken, replicas=1)
        with pytest.raises(ReproError):
            _profile_from_deployment(pool)


class TestPipelinedServing:
    def test_report_is_byte_identical_per_seed(self, pipeline_pool):
        runs = [simulate_fleet([pipeline_pool], PoissonArrivals(3.0),
                               requests=2000, seed=11, epochs=64)
                for _ in range(2)]
        assert runs[0].to_json() == runs[1].to_json()

    def test_conservation_and_throughput(self, pipeline_pool):
        stats = simulate_fleet([pipeline_pool], PoissonArrivals(3.0),
                               requests=2000, seed=11, epochs=64)
        assert (stats.completed + stats.dropped + stats.rejected
                == stats.requests)
        assert stats.completed > 0
        # Two replica chains of a 2-stage Pi pipeline sustain ~5.5 inf/s;
        # the offered 3 req/s load must be served without collapse.
        assert stats.throughput_rps == pytest.approx(
            stats.completed / stats.horizon_s)

    def test_lone_request_sojourn_is_the_deployment_latency(self):
        deployment = _pipeline_deployment()
        pool = PoolSpec.from_deployment("pi-pipe", deployment, replicas=1)
        stats = simulate_fleet([pool], np.array([0.0]), epochs=1)
        assert stats.completed == 1
        assert stats.sojourn.max_s == pytest.approx(deployment.latency_s,
                                                    rel=1e-12)

    def test_pipelined_profile_prices_the_bottleneck(self, pipeline_pool):
        from repro.fleet.cluster import resolve_profiles

        deployment = pipeline_pool.deployment
        profile = resolve_profiles([pipeline_pool],
                                   runner=default_runner())["pi-pipe"]
        assert profile.stages is not None
        assert len(profile.stages) == deployment.num_stages
        assert profile.full_batch_request_s == pytest.approx(
            deployment.bottleneck_s)
        bottleneck = profile.stages[profile.bottleneck_index]
        assert bottleneck.service_s == max(s.service_s
                                           for s in profile.stages)

    def test_energy_accounts_every_stage_device(self, pipeline_pool):
        stats = simulate_fleet([pipeline_pool], PoissonArrivals(3.0),
                               requests=1000, seed=3, epochs=64)
        pool = stats.pools[0]
        # Idle draw alone over the horizon on 2 replicas x 2 stages
        # already exceeds zero; active service adds on top.
        assert pool.energy_j > 0
        assert pool.energy_per_request_j > 0
        assert 0 < pool.utilization < 1
