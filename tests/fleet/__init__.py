"""Tests for the fleet-scale serving simulator."""
