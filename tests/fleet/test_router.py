"""Routing policies: water-fill, interleave, and the three strategies."""

import numpy as np
import pytest

from repro.fleet import (
    ROUTER_POLICIES,
    EnergyAwareRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    RoutingView,
    make_router,
)
from repro.fleet.router import interleave, water_fill


def _view(outstanding, limits=None, energy=None, capacity=None):
    outstanding = np.asarray(outstanding, dtype=np.float64)
    n = outstanding.size
    return RoutingView(
        outstanding=outstanding,
        limits=(np.full(n, np.inf) if limits is None
                else np.asarray(limits, dtype=np.float64)),
        energy_per_request_j=(np.ones(n) if energy is None
                              else np.asarray(energy, dtype=np.float64)),
        capacity=(np.full(n, np.inf) if capacity is None
                  else np.asarray(capacity, dtype=np.float64)),
    )


class TestWaterFill:
    def test_equalizes_levels(self):
        quotas = water_fill(9, np.array([0.0, 3.0, 6.0]), np.full(3, np.inf))
        # Levels after fill: 6, 6, 6.
        assert quotas.tolist() == [6, 3, 0]

    def test_total_is_exact_when_capacity_allows(self):
        base = np.array([2.0, 5.0, 1.0, 7.0])
        quotas = water_fill(17, base, np.full(4, np.inf))
        assert quotas.sum() == 17
        assert np.all(quotas >= 0)

    def test_limits_cap_and_shrink_the_total(self):
        quotas = water_fill(10, np.zeros(2), np.array([3.0, 4.0]))
        assert quotas.tolist() == [3, 4]  # capacity-bound: only 7 admitted

    def test_deterministic_tiebreak_by_index(self):
        quotas = water_fill(3, np.zeros(2), np.full(2, np.inf))
        assert quotas.tolist() == [2, 1]  # remainder goes to the lower index


class TestInterleave:
    def test_assignment_counts_match_quotas(self):
        quotas = np.array([3, 0, 5, 1])
        assignment = interleave(quotas)
        assert assignment.size == 9
        assert np.bincount(assignment, minlength=4).tolist() == [3, 0, 5, 1]

    def test_shares_spread_rather_than_clump(self):
        assignment = interleave(np.array([4, 4]))
        # Perfectly alternating: no node takes two in a row.
        assert np.all(np.diff(assignment.astype(int)) != 0)

    def test_empty(self):
        assert interleave(np.zeros(3, dtype=np.int64)).size == 0


class TestPolicies:
    def test_registry_round_trip(self):
        for name in ROUTER_POLICIES:
            assert make_router(name).name == name
        with pytest.raises(ValueError, match="unknown router"):
            make_router("coin-flip")

    def test_least_outstanding_levels_the_queues(self):
        router = LeastOutstandingRouter()
        quotas = router.quotas(_view([0.0, 8.0]), 10)
        assert quotas.tolist() == [9, 1]  # both end at 9

    def test_least_outstanding_respects_limits(self):
        router = LeastOutstandingRouter()
        quotas = router.quotas(_view([0.0, 0.0], limits=[2.0, np.inf]), 10)
        assert quotas[0] <= 2
        assert quotas.sum() == 10

    def test_round_robin_splits_evenly_and_rotates(self):
        router = RoundRobinRouter()
        first = router.quotas(_view([0.0, 0.0, 0.0]), 4)
        assert first.sum() == 4
        assert first.max() - first.min() == 1
        second = router.quotas(_view([0.0, 0.0, 0.0]), 4)
        # The remainder lands on a different node after rotation.
        assert not np.array_equal(first, second)

    def test_energy_aware_fills_cheapest_first(self):
        router = EnergyAwareRouter()
        quotas = router.quotas(
            _view([0.0, 0.0], energy=[5.0, 1.0], capacity=[10.0, 6.0]), 8)
        assert quotas.tolist() == [2, 6]  # node 1 is cheaper: fill it first

    def test_energy_aware_overflow_degrades_to_queueing(self):
        router = EnergyAwareRouter()
        quotas = router.quotas(
            _view([0.0, 0.0], energy=[1.0, 2.0], capacity=[3.0, 3.0]), 20)
        assert quotas.sum() == 20  # beyond capacity: queues absorb the rest
        assert quotas[0] >= quotas[1]  # cheaper node still preferred

    def test_policies_never_exceed_admission_limits(self):
        view = _view([1.0, 2.0, 3.0], limits=[2.0, 2.0, 2.0],
                     energy=[3.0, 2.0, 1.0], capacity=[5.0, 5.0, 5.0])
        for name in ROUTER_POLICIES:
            quotas = make_router(name).quotas(view, 50)
            assert np.all(quotas <= 2), name
