"""Queue-depth autoscaling and admission control."""

import pytest

from repro.fleet import AdmissionControl, Autoscaler, NodeState, PoolSpec, resolve_profiles
from repro.runtime import Scenario


@pytest.fixture(scope="module")
def profile():
    pool = PoolSpec(name="p", replicas=1,
                    scenario=Scenario("ResNet-18", "Jetson Nano", "TensorRT"))
    return resolve_profiles([pool])["p"]


def _nodes(profile, count):
    return [NodeState(pool="p", index=index, profile=profile)
            for index in range(count)]


class TestAdmissionControl:
    def test_unbounded_by_default(self):
        assert AdmissionControl().headroom(10**9) == float("inf")

    def test_headroom_counts_down_and_floors_at_zero(self):
        admission = AdmissionControl(max_queue_per_node=4)
        assert admission.headroom(1) == 3.0
        assert admission.headroom(4) == 0.0
        assert admission.headroom(9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(max_queue_per_node=0)


class TestAutoscaler:
    def test_validation(self):
        with pytest.raises(ValueError):
            Autoscaler(high_depth=1.0, low_depth=2.0)
        with pytest.raises(ValueError):
            Autoscaler(min_replicas=0)
        with pytest.raises(ValueError):
            Autoscaler(cooldown_epochs=-1)

    def test_scales_up_on_deep_queues_and_charges_init_time(self, profile):
        nodes = _nodes(profile, 2)
        nodes[1].active = False
        nodes[0].assign([0.0] * 10)  # depth 10 > high_depth 8
        scaler = Autoscaler(cooldown_epochs=0)
        assert scaler.scale("p", nodes, now_s=5.0) == 1
        assert nodes[1].active
        assert nodes[1].available_at_s == pytest.approx(
            5.0 + profile.init_time_s)

    def test_scales_down_the_quietest_node(self, profile):
        nodes = _nodes(profile, 3)
        nodes[0].assign([0.0])
        scaler = Autoscaler(cooldown_epochs=0)
        assert scaler.scale("p", nodes, now_s=0.0) == -1
        # Depth ties between nodes 1 and 2 break by index.
        assert [node.active for node in nodes] == [True, False, True]

    def test_min_replicas_floor_holds(self, profile):
        nodes = _nodes(profile, 2)
        nodes[1].active = False
        scaler = Autoscaler(min_replicas=1, cooldown_epochs=0)
        assert scaler.scale("p", nodes, now_s=0.0) == 0
        assert nodes[0].active

    def test_cooldown_spaces_actions(self, profile):
        nodes = _nodes(profile, 3)
        for node in nodes[1:]:
            node.active = False
        nodes[0].assign([0.0] * 20)
        scaler = Autoscaler(cooldown_epochs=2)
        assert scaler.scale("p", nodes, 0.0) == 1
        assert scaler.scale("p", nodes, 1.0) == 0  # cooling down
        assert scaler.scale("p", nodes, 2.0) == 0
        assert scaler.scale("p", nodes, 3.0) == 1

    def test_all_shutdown_pool_is_left_alone(self, profile):
        nodes = _nodes(profile, 2)
        for node in nodes:
            node.shutdown = True
            node.active = False
        assert Autoscaler(cooldown_epochs=0).scale("p", nodes, 0.0) == 0

    def test_reset_clears_cooldowns(self, profile):
        nodes = _nodes(profile, 2)
        nodes[1].active = False
        nodes[0].assign([0.0] * 20)
        scaler = Autoscaler(cooldown_epochs=5)
        assert scaler.scale("p", nodes, 0.0) == 1
        nodes[1].active = False
        scaler.reset()
        assert scaler.scale("p", nodes, 1.0) == 1
