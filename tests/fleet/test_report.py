"""FleetStats: summaries, SLO gates, and the JSON round trip."""

import json

import numpy as np
import pytest

from repro.fleet import FleetStats, PoolSpec, SojournSummary, simulate_fleet
from repro.runtime import Scenario
from repro.workloads import PoissonArrivals


@pytest.fixture(scope="module")
def stats():
    pools = [PoolSpec(name="nano", replicas=2, max_batch=2,
                      scenario=Scenario("ResNet-18", "Jetson Nano", "TensorRT")),
             PoolSpec(name="tx2", replicas=1,
                      scenario=Scenario("ResNet-18", "Jetson TX2", "PyTorch"))]
    return simulate_fleet(pools, PoissonArrivals(80.0), requests=4000,
                          seed=13, epochs=128)


class TestSojournSummary:
    def test_from_times_orders_percentiles(self):
        times = np.random.default_rng(0).exponential(0.1, size=5000)
        summary = SojournSummary.from_times(times)
        assert (summary.p50_s <= summary.p95_s <= summary.p99_s
                <= summary.p999_s <= summary.max_s)
        assert summary.mean_s == pytest.approx(times.mean())

    def test_empty_is_all_zero(self):
        summary = SojournSummary.from_times(np.empty(0))
        assert summary == SojournSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_round_trip(self):
        summary = SojournSummary(0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
        assert SojournSummary.from_dict(summary.to_dict()) == summary


class TestFleetStats:
    def test_json_round_trip_is_lossless(self, stats):
        clone = FleetStats.from_json(stats.to_json())
        assert clone == stats
        assert clone.pools[0].scenario == stats.pools[0].scenario

    def test_unknown_report_version_rejected(self, stats):
        payload = stats.to_dict()
        payload["report_version"] = 999
        with pytest.raises(ValueError, match="report version"):
            FleetStats.from_dict(payload)

    def test_serialized_form_is_plain_json(self, stats):
        payload = json.loads(stats.to_json())
        assert payload["requests"] == 4000
        assert {pool["name"] for pool in payload["pools"]} == {"nano", "tx2"}

    def test_meets_slo_gates_on_tail_and_drops(self, stats):
        assert stats.meets_slo(stats.sojourn.p99_s + 1e-9)
        assert not stats.meets_slo(stats.sojourn.p50_s / 2, percentile=0.5)
        assert stats.meets_slo(stats.sojourn.p999_s + 1e-9, percentile=0.999)
        with pytest.raises(ValueError, match="percentile"):
            stats.meets_slo(1.0, percentile=0.42)

    def test_describe_names_every_pool(self, stats):
        text = stats.describe()
        assert "pool nano" in text and "pool tx2" in text
        assert "p999" in text

    def test_drop_fraction(self, stats):
        assert stats.drop_fraction == (
            (stats.dropped + stats.rejected) / stats.requests)
        for pool in stats.pools:
            if pool.assigned:
                assert pool.drop_fraction == pool.dropped / pool.assigned


class TestDegenerateRuns:
    """Empty and zero-request simulations must report cleanly, not crash
    or vacuously pass SLO gates."""

    @pytest.fixture(scope="class")
    def empty(self):
        pools = [PoolSpec(name="nano", replicas=1,
                          scenario=Scenario("ResNet-18", "Jetson Nano",
                                            "TensorRT"))]
        return simulate_fleet(pools, np.empty(0), epochs=4)

    def test_zero_requests_report_all_zero(self, empty):
        assert empty.requests == 0
        assert empty.completed == empty.dropped == empty.rejected == 0
        assert empty.throughput_rps == 0.0
        assert empty.energy_per_request_j == 0.0
        assert empty.sojourn == SojournSummary(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        assert empty.drop_fraction == 0.0

    def test_empty_run_never_meets_an_slo(self, empty):
        """All-zero percentiles would pass any deadline; the gate must
        refuse instead."""
        assert not empty.meets_slo(1e9)
        assert not empty.meets_slo(1e9, percentile=0.5)

    def test_empty_run_round_trips(self, empty):
        assert FleetStats.from_json(empty.to_json()) == empty

    def test_empty_pools_report_zero_not_nan(self, empty):
        for pool in empty.pools:
            assert pool.assigned == 0
            assert pool.energy_per_request_j == 0.0
            assert pool.utilization == 0.0
            assert pool.throughput_rps == 0.0
