"""The ``repro fleet`` CLI verb."""

import json

import pytest

from repro.cli import main


class TestFleetVerb:
    def test_json_report_on_stdout(self, capsys):
        assert main(["fleet", "--requests", "3000", "--seed", "5",
                     "--epochs", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 3000
        assert payload["seed"] == 5
        assert (payload["completed"] + payload["dropped"]
                + payload["rejected"]) == 3000
        assert len(payload["pools"]) == 3  # the default Nano/TX2/Pi fleet

    def test_text_format(self, capsys):
        assert main(["fleet", "--requests", "500", "--format", "text",
                     "--epochs", "32"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 500 requests" in out
        assert "Jetson Nano" in out

    def test_custom_pools_policy_and_output_file(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        argv = ["fleet", "--requests", "800", "--epochs", "32",
                "--pool", "2x Jetson Nano:TensorRT:4",
                "--pool", "1x Jetson TX2:PyTorch",
                "--policy", "energy-aware", "--arrivals", "diurnal",
                "--output", str(path)]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        assert payload["policy"] == "energy-aware"
        assert [pool["replicas"] for pool in payload["pools"]] == [2, 1]
        assert payload["pools"][0]["effective_max_batch"] == 4

    def test_same_seed_writes_identical_bytes(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["fleet", "--requests", "2000", "--seed", "3",
                         "--epochs", "64", "--arrivals", "bursty",
                         "--output", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_admission_and_autoscale_flags(self, capsys):
        argv = ["fleet", "--requests", "2000", "--epochs", "64",
                "--pool", "4x Jetson Nano:TensorRT", "--rate", "300",
                "--admit-limit", "4", "--autoscale"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rejected"] > 0

    def test_bad_pool_spec_is_a_usage_error(self, capsys):
        assert main(["fleet", "--requests", "10",
                     "--pool", "Jetson Nano+TensorRT"]) == 2
        assert "bad pool spec" in capsys.readouterr().err

    def test_undeployable_pool_reports_structured_error(self, capsys):
        assert main(["fleet", "--requests", "10",
                     "--pool", "1x EdgeTPU:TFLite"]) == 2
        assert "cannot deploy" in capsys.readouterr().err

    def test_requests_and_horizon_are_exclusive(self, capsys):
        assert main(["fleet", "--requests", "10", "--horizon", "5"]) == 2
        assert main(["fleet"]) == 2
