"""Pool specs, engine-priced service profiles, and node state."""

import pytest

from repro.core.errors import ReproError
from repro.fleet import NodeState, PoolSpec, resolve_profiles
from repro.runtime import Scenario


def _pool(device="Jetson Nano", framework="TensorRT", replicas=2,
          max_batch=1, name="pool", model="ResNet-18"):
    return PoolSpec(name=name, replicas=replicas, max_batch=max_batch,
                    scenario=Scenario(model, device, framework))


class TestPoolSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            _pool(replicas=0)
        with pytest.raises(ValueError, match="max_batch"):
            _pool(max_batch=0)
        with pytest.raises(ValueError, match="batch-1"):
            PoolSpec(name="p", replicas=1,
                     scenario=Scenario("ResNet-18", "Jetson Nano", "TensorRT",
                                       batch_size=4))

    def test_scenario_grid_sweeps_batch_sizes(self):
        grid = _pool(max_batch=4).scenario_grid()
        assert [scenario.batch_size for scenario in grid] == [1, 2, 3, 4]
        assert all(scenario.device == "Jetson Nano" for scenario in grid)

    def test_describe(self):
        assert "2x Jetson Nano" in _pool().describe()


class TestResolveProfiles:
    def test_profiles_priced_by_the_engine(self):
        pools = [_pool(max_batch=4, name="nano"),
                 _pool("Jetson TX2", "PyTorch", name="tx2")]
        profiles = resolve_profiles(pools)
        nano = profiles["nano"]
        assert len(nano.batch_wall_s) == 4
        assert nano.max_batch == 4
        # Per-batch wall time grows; per-request time shrinks (amortization).
        assert nano.batch_wall_s[3] > nano.batch_wall_s[0]
        assert nano.full_batch_request_s < nano.service_s
        assert nano.power_w > nano.idle_w > 0
        assert nano.energy_per_request_j == pytest.approx(
            nano.power_w * nano.service_s)
        assert profiles["tx2"].max_batch == 1

    def test_undeployable_pool_raises_structured_error(self):
        # EdgeTPU cannot convert ResNet-18 (Table V): batch 1 fails.
        with pytest.raises(ReproError, match="cannot deploy"):
            resolve_profiles([_pool("EdgeTPU", "TFLite")])

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            resolve_profiles([_pool(name="same"), _pool(name="same")])

    def test_batch_failure_caps_effective_max_batch(self):
        # A huge batch eventually exhausts activation memory; the pool is
        # capped below the first failing size instead of erroring out.
        profile = resolve_profiles(
            [_pool("Jetson Nano", "TensorRT", max_batch=4096, name="big",
                   model="VGG16")])["big"]
        assert 1 <= profile.max_batch < 4096
        assert len(profile.batch_wall_s) == profile.max_batch


class TestNodeState:
    def _node(self):
        profiles = resolve_profiles([_pool(name="p")])
        return NodeState(pool="p", index=0, profile=profiles["p"])

    def test_assign_and_depth(self):
        node = self._node()
        assert node.depth == 0
        assert node.assign([0.1, 0.2, 0.3]) == 3
        assert node.depth == 3
        assert node.max_depth == 3

    def test_outstanding_counts_in_service_work(self):
        node = self._node()
        node.assign([0.0])
        node.free_at_s = 5.0
        assert node.outstanding(1.0) == 2  # queued + one still in service
        assert node.outstanding(6.0) == 1

    def test_compact_preserves_the_unserved_suffix(self):
        node = self._node()
        node.assign([0.1, 0.2, 0.3, 0.4])
        node.head = 3
        node.compact()
        assert node.pending == [0.4]
        assert node.head == 0
        assert node.depth == 1

    def test_drain_pending_reports_losses(self):
        node = self._node()
        node.assign([0.1, 0.2])
        node.head = 1
        assert node.drain_pending() == 1
        assert node.depth == 0
