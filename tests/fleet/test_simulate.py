"""The fleet event loop, cross-checked against the scalar simulators."""

import numpy as np
import pytest

from repro.fleet import (
    AdmissionControl,
    Autoscaler,
    FleetSimulation,
    PoolSpec,
    simulate_fleet,
)
from repro.runtime import Scenario
from repro.workloads import (
    PoissonArrivals,
    simulate_batch_serving,
    simulate_serving,
)


def _pool(device="Jetson Nano", framework="TensorRT", replicas=1,
          max_batch=1, name="pool"):
    return PoolSpec(name=name, replicas=replicas, max_batch=max_batch,
                    scenario=Scenario("ResNet-18", device, framework))


class TestAgainstScalarSimulators:
    """One node behind the router must serve exactly like the scalar
    simulators in :mod:`repro.workloads` — the epoch grid quantizes
    routing, never a single node's schedule."""

    def test_single_fifo_node_matches_simulate_serving(self):
        simulation = FleetSimulation([_pool()], epochs=64)
        service_s = simulation.profiles["pool"].service_s
        arrivals = PoissonArrivals(0.8 / service_s, seed=3).generate(120.0)
        fleet = simulation.run(arrivals)
        scalar = simulate_serving(arrivals, service_time_s=service_s)
        assert fleet.completed == scalar.completed == len(arrivals)
        assert fleet.sojourn.mean_s == pytest.approx(scalar.mean_sojourn_s)
        assert fleet.sojourn.p99_s == pytest.approx(scalar.p99_sojourn_s)
        assert fleet.sojourn.p999_s == pytest.approx(scalar.p999_sojourn_s)

    def test_single_batching_node_matches_simulate_batch_serving(self):
        simulation = FleetSimulation([_pool(max_batch=8)], epochs=64)
        profile = simulation.profiles["pool"]
        rate_hz = 2.0 / profile.service_s  # overload batch-1: batching kicks in
        arrivals = PoissonArrivals(rate_hz, seed=4).generate(60.0)
        fleet = simulation.run(arrivals)
        scalar = simulate_batch_serving(
            arrivals, lambda batch: profile.batch_wall_s[batch - 1],
            max_batch=8)
        assert fleet.pools[0].mean_batch_size == pytest.approx(
            scalar.mean_batch_size)
        assert fleet.pools[0].batches == scalar.batches
        assert fleet.sojourn.mean_s == pytest.approx(scalar.mean_sojourn_s)
        assert fleet.sojourn.p999_s == pytest.approx(scalar.p999_sojourn_s)
        assert fleet.pools[0].mean_batch_size > 1.5

    def test_epoch_count_never_changes_the_outcome(self):
        pools = [_pool(), _pool("Jetson TX2", "PyTorch", name="tx2")]
        arrivals = PoissonArrivals(60.0, seed=5).generate(30.0)
        reports = [FleetSimulation(pools, epochs=epochs).run(arrivals)
                   for epochs in (1, 7, 256)]
        # Routing decisions shift with the grid, but conservation and
        # single-node exactness hold at any granularity.
        for report in reports:
            assert report.completed == len(arrivals)
            assert report.sojourn.mean_s > 0


class TestConservationAndDeterminism:
    def test_every_request_is_accounted_for(self):
        pools = [_pool(replicas=2, max_batch=4, name="nano"),
                 _pool("Jetson TX2", "PyTorch", name="tx2")]
        stats = simulate_fleet(pools, PoissonArrivals(150.0), requests=5000,
                               seed=11, epochs=128,
                               admission=AdmissionControl(max_queue_per_node=16))
        assert stats.requests == 5000
        assert stats.completed + stats.dropped + stats.rejected == 5000
        for pool in stats.pools:
            assert pool.assigned == pool.completed + pool.dropped
        assert sum(pool.assigned for pool in stats.pools) + stats.rejected == 5000

    def test_same_seed_is_byte_identical(self):
        pools = [_pool(replicas=2, name="nano")]
        runs = [simulate_fleet(pools, PoissonArrivals(50.0), requests=2000,
                               seed=9, epochs=64).to_json()
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        pools = [_pool(replicas=2, name="nano")]
        a = simulate_fleet(pools, PoissonArrivals(50.0), requests=500, seed=1)
        b = simulate_fleet(pools, PoissonArrivals(50.0), requests=500, seed=2)
        assert a.sojourn.mean_s != b.sojourn.mean_s

    def test_policies_all_conserve(self):
        pools = [_pool(replicas=2, max_batch=2, name="nano"),
                 _pool("Jetson TX2", "PyTorch", name="tx2")]
        for policy in ("round-robin", "least-outstanding", "energy-aware"):
            stats = simulate_fleet(pools, PoissonArrivals(120.0),
                                   requests=3000, seed=2, epochs=64,
                                   router=policy)
            assert stats.policy == policy
            assert stats.completed + stats.dropped + stats.rejected == 3000


class TestControlPlanes:
    def test_admission_rejects_when_queues_are_full(self):
        # One slow node, brutal overload, tiny queue bound: most requests
        # are refused at the front door and the tail stays finite.
        pools = [_pool("Raspberry Pi 3B", "TFLite", name="pi")]
        bounded = simulate_fleet(pools, PoissonArrivals(50.0), requests=2000,
                                 seed=3, epochs=128,
                                 admission=AdmissionControl(max_queue_per_node=4))
        unbounded = simulate_fleet(pools, PoissonArrivals(50.0),
                                   requests=2000, seed=3, epochs=128)
        assert bounded.rejected > 0
        assert unbounded.rejected == 0
        assert bounded.sojourn.p99_s < unbounded.sojourn.p99_s

    def test_autoscaler_wakes_standby_replicas_under_load(self):
        pools = [_pool(replicas=4, name="nano")]
        stats = simulate_fleet(pools, PoissonArrivals(120.0), requests=6000,
                               seed=6, epochs=256,
                               autoscaler=Autoscaler(high_depth=4.0,
                                                     cooldown_epochs=2))
        assert stats.scale_ups > 0
        assert stats.pools[0].final_active_replicas > 1
        assert stats.completed + stats.dropped + stats.rejected == 6000

    def test_sustained_overload_melts_the_pi(self):
        # Figure 14 at fleet scale: a saturated Pi 3B heats past the trip
        # point, sheds its queue, and the report shows the shutdown.
        # ~1.7x the Pi's capacity, sustained long enough (~25 min of
        # simulated time) for the lumped RC to integrate past the trip.
        pools = [_pool("Raspberry Pi 3B", "TFLite", name="pi")]
        stats = simulate_fleet(pools, PoissonArrivals(2.0), requests=3000,
                               seed=8, epochs=256)
        assert stats.shutdown_events == 1
        assert stats.dropped > 0
        assert stats.pools[0].final_active_replicas == 0

    def test_energy_account_includes_idle_draw(self):
        pools = [_pool(replicas=2, name="nano")]
        simulation = FleetSimulation(pools, epochs=64)
        profile = simulation.profiles["nano"]
        # A trickle of load: energy must be dominated by idle draw.
        arrivals = PoissonArrivals(1.0, seed=10).generate(50.0)
        stats = simulation.run(arrivals)
        idle_floor_j = 2 * profile.idle_w * stats.horizon_s * 0.9
        assert stats.energy_j > idle_floor_j
        assert stats.pools[0].utilization < 0.1


class TestValidation:
    def test_workload_argument_contract(self):
        pools = [_pool()]
        process = PoissonArrivals(10.0)
        with pytest.raises(ValueError, match="needs requests"):
            simulate_fleet(pools, process)
        with pytest.raises(ValueError, match="not both"):
            simulate_fleet(pools, process, requests=10, horizon_s=1.0)
        with pytest.raises(ValueError, match="arrival processes"):
            simulate_fleet(pools, np.array([0.0, 1.0]), requests=10)
        with pytest.raises(ValueError, match="sorted"):
            simulate_fleet(pools, np.array([1.0, 0.5]))
        # An empty stream is a valid degenerate run (all-zero report),
        # pinned by TestDegenerateRuns in test_report.py.
        assert simulate_fleet(pools, np.array([])).requests == 0

    def test_simulation_construction_contract(self):
        with pytest.raises(ValueError, match="epochs"):
            FleetSimulation([_pool()], epochs=0)
        with pytest.raises(ValueError, match="at least one pool"):
            FleetSimulation([])

    def test_horizon_mode(self):
        stats = simulate_fleet([_pool()], PoissonArrivals(20.0),
                               horizon_s=10.0, seed=5, epochs=32)
        assert stats.requests == pytest.approx(200, rel=0.5)
        assert stats.completed + stats.dropped + stats.rejected == stats.requests
