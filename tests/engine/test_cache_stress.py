"""Thread-stress harness for the memoization layer.

The runtime counterpart of the RACE rules in `repro check effects`: the
static pass proves nothing *reachable from the parallel roots* writes
shared state outside a ``MemoCache`` lock; this suite hammers the five
process-wide caches from a 16-thread pool and asserts the lock actually
delivers the contract — no lost updates (every racer converges on one
shared object per key, successes and cached failures alike), and
``stats``/``snapshot`` counters that stay exactly consistent under
interleaved ``get_or_build`` / ``cached_value`` / ``store`` /
``invalidate`` / ``snapshot`` traffic.

Marked ``stress`` so tier-1 skips it (see ``pyproject.toml``); CI runs it
in a dedicated ``pytest -m stress`` job on every PR.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.errors import ReproError
from repro.engine.cache import (
    DEPLOY_CACHE,
    GRAPH_CACHE,
    PAYLOAD_CACHE,
    PLAN_CACHE,
    RECORD_CACHE,
    MemoCache,
    clear_caches,
)

pytestmark = pytest.mark.stress

THREADS = 16
KEYS = 23
ROUNDS = 25

ALL_CACHES = (GRAPH_CACHE, DEPLOY_CACHE, PLAN_CACHE, RECORD_CACHE,
              PAYLOAD_CACHE)


@pytest.fixture(autouse=True)
def _fresh_caches():
    """The five caches are process-wide; leave them as we found them."""
    clear_caches()
    yield
    clear_caches()


def _run_threads(worker) -> list:
    """Run ``worker(thread_id)`` on THREADS threads; re-raise any failure."""
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        return [f.result() for f in
                [pool.submit(worker, tid) for tid in range(THREADS)]]


class _BuildCounter:
    """Counts how many times builders actually ran (lock of its own, so the
    test never leans on the lock under test)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0

    def fresh_object(self):
        with self._lock:
            self.count += 1
        return object()


def test_get_or_build_converges_on_one_object_per_key():
    """All 16 threads must observe the identical instance for each key of
    each cache, and the counters must account for every single lookup."""
    builds = {cache.name: _BuildCounter() for cache in ALL_CACHES}

    def worker(tid: int):
        results = {}
        for round_index in range(ROUNDS):
            for key in range(KEYS):
                for cache in ALL_CACHES:
                    counter = builds[cache.name]
                    value = cache.get_or_build(
                        ("stress", key), counter.fresh_object)
                    results.setdefault((cache.name, key), set()).add(id(value))
        return results

    per_thread = _run_threads(worker)
    merged: dict[tuple[str, int], set[int]] = {}
    for results in per_thread:
        for slot, ids in results.items():
            merged.setdefault(slot, set()).update(ids)
    # no lost updates: one shared object per (cache, key), ever
    assert all(len(ids) == 1 for ids in merged.values())
    for cache in ALL_CACHES:
        snap = cache.snapshot()
        lookups = THREADS * ROUNDS * KEYS
        assert snap["hits"] + snap["misses"] == lookups
        assert snap["entries"] == KEYS
        # every miss ran a builder; racing builders may double-build but
        # each counted exactly one miss apiece
        assert snap["misses"] == builds[cache.name].count
        assert snap["misses"] >= KEYS
        assert cache.stats.lookups == lookups


def test_interleaved_get_invalidate_snapshot_stays_consistent():
    """Mixed traffic: builds, invalidations and snapshots race freely; the
    counters must never tear (hits+misses == counted lookups exactly) and
    every snapshot observed mid-flight must be internally consistent."""
    counted = {cache.name: 0 for cache in ALL_CACHES}
    count_lock = threading.Lock()

    def worker(tid: int):
        local_counts = dict.fromkeys(counted, 0)
        for step in range(ROUNDS * KEYS):
            key = ("mix", step % KEYS)
            cache = ALL_CACHES[(tid + step) % len(ALL_CACHES)]
            op = (tid + step) % 5
            if op in (0, 1):                      # counted lookup + build
                cache.get_or_build(key, object)
                local_counts[cache.name] += 1
            elif op == 2:                         # counted two-phase lookup
                found, value = cache.cached_value(key)
                if not found:
                    cache.store(key, object())
                local_counts[cache.name] += 1
            elif op == 3:                         # uncounted removal
                cache.invalidate(key)
            else:                                 # uncounted observation
                snap = cache.snapshot()
                assert snap["entries"] >= 0
                assert snap["hits"] >= 0 and snap["misses"] >= 0
                assert 0.0 <= snap["hit_rate"] <= 1.0
                assert cache.contains(key) in (True, False)
                assert len(cache) >= 0
        with count_lock:
            for name, n in local_counts.items():
                counted[name] += n

    _run_threads(worker)
    for cache in ALL_CACHES:
        snap = cache.snapshot()
        # invalidate/snapshot/contains never count; every get_or_build and
        # cached_value counted exactly once — no lost counter updates
        assert snap["hits"] + snap["misses"] == counted[cache.name]
        assert 0 <= snap["entries"] <= KEYS


def test_store_first_wins_across_threads():
    """Racing stores must converge: every thread gets the same shared entry
    back, whichever store landed first."""
    cache = PLAN_CACHE

    def worker(tid: int):
        return [id(cache.store(("race", key), object())) for key in range(KEYS)]

    per_thread = _run_threads(worker)
    for key in range(KEYS):
        assert len({ids[key] for ids in per_thread}) == 1
    assert len(cache) == KEYS


def test_cached_failures_are_shared_and_stable():
    """A builder that raises ReproError caches the *outcome*: all racers and
    all later lookups re-raise the one stored error instance."""
    cache = DEPLOY_CACHE
    barrier = threading.Barrier(THREADS)

    def failing_builder():
        raise ReproError("stress: deliberate deployment failure")

    def worker(tid: int):
        barrier.wait()
        seen = []
        for _ in range(ROUNDS):
            try:
                cache.get_or_build(("fail",), failing_builder)
            except ReproError as error:
                seen.append(id(error))
        return seen

    per_thread = _run_threads(worker)
    flattened = [eid for seen in per_thread for eid in seen]
    assert len(flattened) == THREADS * ROUNDS
    # first failure wins; every thread re-raises that same instance
    assert len(set(flattened)) == 1
    snap = cache.snapshot()
    assert snap["entries"] == 1
    assert snap["hits"] + snap["misses"] == THREADS * ROUNDS


def test_invalidate_then_rebuild_converges():
    """Invalidation racing get_or_build may rebuild, but once traffic stops
    one more round of lookups must land on a single shared object again."""
    cache = RECORD_CACHE

    def churn(tid: int):
        for step in range(ROUNDS * KEYS):
            key = ("churn", step % KEYS)
            if (tid + step) % 3 == 0:
                cache.invalidate(key)
            else:
                cache.get_or_build(key, object)

    _run_threads(churn)

    def settle(tid: int):
        return [id(cache.get_or_build(("churn", key), object))
                for key in range(KEYS)]

    per_thread = _run_threads(settle)
    for key in range(KEYS):
        assert len({ids[key] for ids in per_thread}) == 1
    assert isinstance(cache, MemoCache)
