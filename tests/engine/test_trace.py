"""Per-layer tables and Chrome traces."""

import json

import pytest

from repro.engine.trace import chrome_trace, layer_table, save_chrome_trace


@pytest.fixture
def session(session_factory):
    return session_factory("ResNet-18", "Jetson TX2", "PyTorch")


class TestLayerTable:
    def test_sorted_slowest_first(self, session):
        table = layer_table(session)
        latencies = table.column("latency_us")
        assert latencies == sorted(latencies, reverse=True)

    def test_covers_every_scheduled_op(self, session):
        assert len(layer_table(session)) == len(session.plan.timings)

    def test_top_n(self, session):
        assert len(layer_table(session, top=5)) == 5

    def test_shares_sum_to_one(self, session):
        shares = layer_table(session).column("share")
        assert sum(shares) == pytest.approx(1.0)

    def test_bound_labels(self, session):
        assert set(layer_table(session).column("bound")) <= {"compute", "memory"}


class TestChromeTrace:
    def test_events_are_contiguous(self, session):
        trace = chrome_trace(session)
        events = trace["traceEvents"]
        cursor = 0.0
        for event in events:
            assert event["ts"] == pytest.approx(cursor, abs=0.01)
            cursor = event["ts"] + event["dur"]

    def test_total_duration_matches_latency(self, session):
        trace = chrome_trace(session)
        last = trace["traceEvents"][-1]
        end_ms = (last["ts"] + last["dur"]) / 1e3
        assert end_ms == pytest.approx(session.latency_s * 1e3, rel=0.001)

    def test_metadata(self, session):
        other = chrome_trace(session)["otherData"]
        assert other["model"] == "ResNet-18"
        assert other["device"] == "Jetson TX2"
        assert other["framework"] == "PyTorch"

    def test_op_args_recorded(self, session):
        events = chrome_trace(session)["traceEvents"]
        conv = next(e for e in events if e["name"] == "conv_1")
        assert conv["args"]["type"] == "Conv2D"
        assert conv["args"]["macs"] > 0

    def test_save_round_trips_as_json(self, session, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(session, path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"]

    def test_transfer_slice_for_linked_devices(self, session_factory):
        session = session_factory("MobileNet-v2", "Movidius NCS", "NCSDK")
        names = [e["name"] for e in chrome_trace(session)["traceEvents"]]
        assert "input transfer" in names
