"""EngineConfig: batching and ablation switches."""

import pytest

from repro.core.errors import OutOfMemoryError
from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _session(model="ResNet-50", device="Jetson TX2", framework="PyTorch",
             **config_kwargs) -> InferenceSession:
    deployed = load_framework(framework).deploy(load_model(model), load_device(device))
    return InferenceSession(deployed, config=EngineConfig(**config_kwargs))


class TestConfigValidation:
    def test_default_is_single_batch_full_model(self):
        config = EngineConfig()
        assert config.batch_size == 1
        assert config.include_memory_term
        assert config.include_framework_overheads
        assert config.respect_fusion

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)


class TestBatching:
    def test_per_inference_latency_decreases_with_batch(self):
        latencies = [_session(batch_size=b).latency_s for b in (1, 4, 16)]
        assert latencies == sorted(latencies, reverse=True)

    def test_batching_helps_hpc_more_than_edge(self):
        """Section VI-C's thesis quantified: the HPC speedup over TX2 grows
        with batch size."""
        def speedup(batch):
            tx2 = _session(device="Jetson TX2", batch_size=batch).latency_s
            hpc = _session(device="RTX 2080", batch_size=batch).latency_s
            return tx2 / hpc

        assert speedup(32) > speedup(1)

    def test_xeon_crosses_tx2_with_batching(self):
        """Xeon loses at batch 1 but wins once batching amortizes."""
        assert (_session(device="Xeon E5-2696 v4").latency_s
                > _session(device="Jetson TX2").latency_s)
        assert (_session(device="Xeon E5-2696 v4", batch_size=32).latency_s
                < _session(device="Jetson TX2", batch_size=32).latency_s)

    def test_oversized_batch_raises_oom(self):
        deployed = load_framework("TFLite").deploy(
            load_model("Inception-v4"), load_device("Raspberry Pi 3B"))
        with pytest.raises(OutOfMemoryError, match="batch"):
            InferenceSession(deployed, config=EngineConfig(batch_size=4096))

    def test_batch_one_never_oom_checks(self):
        # Deployment already validated batch 1; the session must not re-raise.
        _session(model="VGG16", device="Raspberry Pi 3B", framework="PyTorch")


class TestAblationSwitches:
    def test_memory_term_ablation_zeroes_memory(self):
        ablated = _session(include_memory_term=False)
        assert ablated.plan.memory_s == 0.0
        assert ablated.latency_s <= _session().latency_s

    def test_memory_ablation_breaks_vgg_xeon_story(self):
        """Without the memory term the Xeon's VGG16 parity with TX2
        degrades — the crossover is a memory phenomenon."""
        def ratio(**kwargs):
            xeon = _session("VGG16", "Xeon E5-2696 v4", **kwargs).latency_s
            tx2 = _session("VGG16", "Jetson TX2", **kwargs).latency_s
            return xeon / tx2

        assert ratio(include_memory_term=False) >= ratio()

    def test_overhead_ablation_removes_framework_costs(self):
        full = _session("MobileNet-v2")
        bare = _session("MobileNet-v2", include_framework_overheads=False)
        assert bare.plan.session_overhead_s == 0.0
        assert bare.latency_s < full.latency_s

    def test_fusion_ablation_restores_all_dispatches(self):
        deployed = load_framework("TensorRT").deploy(
            load_model("ResNet-50"), load_device("Jetson Nano"))
        fused = InferenceSession(deployed)
        unfused = InferenceSession(deployed, config=EngineConfig(respect_fusion=False))
        assert len(unfused.plan.timings) > len(fused.plan.timings)
        assert unfused.latency_s > fused.latency_s

    def test_fusion_ablation_noop_for_unfused_frameworks(self):
        deployed = load_framework("PyTorch").deploy(
            load_model("ResNet-50"), load_device("Jetson TX2"))
        fused = InferenceSession(deployed)
        unfused = InferenceSession(deployed, config=EngineConfig(respect_fusion=False))
        assert len(unfused.plan.timings) == len(fused.plan.timings)
