"""Vectorized ``time_ops`` agrees with scalar ``time_op`` bit-for-bit.

The plan builder now prices every op through one numpy pass; these tests
pin the contract that made that swap safe: identical IEEE-754 results for
every op, datatype, batch size and ablation switch, so cached/vectorized
sweeps stay byte-identical to the original scalar engine.
"""

from __future__ import annotations

import pytest

from repro.engine.roofline import RooflineInputs, time_op, time_ops
from repro.frameworks import load_framework
from repro.graphs import ops as O
from repro.graphs.tensor import TensorShape
from repro.hardware import load_device
from repro.models import load_model


def _inputs(**overrides) -> RooflineInputs:
    defaults = dict(
        peak_macs_per_s=665.6e9,
        memory_bandwidth_bytes_per_s=25.6e9,
        weight_bandwidth_bytes_per_s=25.6e9,
        dispatch_overhead_s=12e-6,
    )
    defaults.update(overrides)
    return RooflineInputs(**defaults)


def _assert_bit_identical(ops, inputs, efficiencies, **kwargs):
    vectorized = time_ops(ops, inputs, efficiencies, **kwargs)
    assert len(vectorized) == len(ops)
    for op, efficiency, batched in zip(ops, efficiencies, vectorized):
        scalar = time_op(op, inputs, efficiency, **kwargs)
        assert batched.op is op
        # Exact equality, not approx: both paths must run the same
        # float64 operations in the same order.
        assert batched.compute_s == scalar.compute_s, op.name
        assert batched.memory_s == scalar.memory_s, op.name
        assert batched.dispatch_s == scalar.dispatch_s, op.name
        assert batched.bound == scalar.bound, op.name


class TestAgreementOnModels:
    @pytest.mark.parametrize("model_name,framework_name,device_name", [
        ("ResNet-18", "PyTorch", "Jetson TX2"),
        ("MobileNet-v2", "TFLite", "Raspberry Pi 3B"),
        ("Inception-v4", "TensorFlow", "Jetson Nano"),
        ("VGG16", "PyTorch", "Raspberry Pi 3B"),  # paged weights
        ("MobileNet-v2", "TensorRT", "Jetson Nano"),
    ])
    def test_deployed_graphs_bit_identical(self, model_name, framework_name,
                                           device_name):
        deployed = load_framework(framework_name).deploy(
            load_model(model_name), load_device(device_name))
        ops = deployed.graph.schedulable_ops()
        efficiencies = [
            deployed.framework.kernel_efficiency(
                op, deployed.unit, deployed.weight_dtype, deployed.graph)
            for op in ops
        ]
        _assert_bit_identical(ops, _inputs(), efficiencies,
                              exploit_sparsity=deployed.exploit_sparsity,
                              per_op_overhead_s=deployed.per_op_overhead_s)

    @pytest.mark.parametrize("batch_size", [1, 4, 32])
    def test_batch_sizes(self, batch_size):
        deployed = load_framework("PyTorch").deploy(
            load_model("ResNet-18"), load_device("Jetson TX2"))
        ops = deployed.graph.schedulable_ops()
        efficiencies = [0.4 + 0.01 * (i % 7) for i in range(len(ops))]
        _assert_bit_identical(ops, _inputs(), efficiencies,
                              batch_size=batch_size, per_op_overhead_s=3e-6)

    def test_pure_flop_ablation(self):
        deployed = load_framework("PyTorch").deploy(
            load_model("MobileNet-v2"), load_device("Jetson TX2"))
        ops = deployed.graph.schedulable_ops()
        timings = time_ops(ops, _inputs(), [0.5] * len(ops),
                           include_memory_term=False)
        assert all(t.memory_s == 0.0 for t in timings)
        _assert_bit_identical(ops, _inputs(), [0.5] * len(ops),
                              include_memory_term=False)

    def test_sparsity(self):
        graph = load_model("ResNet-18")
        for op in graph.ops:
            if hasattr(op, "weight_sparsity"):
                op.weight_sparsity = 0.6
        ops = graph.schedulable_ops()
        _assert_bit_identical(ops, _inputs(), [0.37] * len(ops),
                              exploit_sparsity=True)


class TestEdgeCasesAndValidation:
    def test_empty_ops(self):
        assert time_ops([], _inputs(), []) == []

    def test_zero_mac_op_exact_zero_compute(self):
        flat = O.Flatten("f", [O.Input("in", TensorShape(4, 4, 4))])
        (timing,) = time_ops([flat], _inputs(), [0.5])
        assert timing.compute_s == 0.0
        assert timing.memory_s > 0.0

    def test_mismatched_lengths_rejected(self):
        conv = O.Conv2D("c", [O.Input("in", TensorShape(3, 8, 8))], 8, 3)
        with pytest.raises(ValueError, match="efficiencies"):
            time_ops([conv], _inputs(), [0.5, 0.5])

    def test_nonpositive_efficiency_rejected(self):
        conv = O.Conv2D("c", [O.Input("in", TensorShape(3, 8, 8))], 8, 3)
        with pytest.raises(ValueError, match="efficiency"):
            time_ops([conv], _inputs(), [0.0])

    def test_bad_batch_size_rejected(self):
        conv = O.Conv2D("c", [O.Input("in", TensorShape(3, 8, 8))], 8, 3)
        with pytest.raises(ValueError, match="batch_size"):
            time_ops([conv], _inputs(), [0.5], batch_size=0)

    def test_results_are_plain_floats(self):
        conv = O.Conv2D("c", [O.Input("in", TensorShape(3, 8, 8))], 8, 3)
        (timing,) = time_ops([conv], _inputs(), [0.5])
        assert type(timing.compute_s) is float
        assert type(timing.memory_s) is float
