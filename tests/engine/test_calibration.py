"""Anchor calibration: every paper anchor must be hit (or documented)."""

import pytest

from repro.engine.calibration import (
    ANCHORS,
    MAX_SCALE,
    MIN_SCALE,
    calibration_report,
    efficiency_scale,
)


class TestAnchors:
    @pytest.fixture(scope="class")
    def report(self):
        return calibration_report()

    def test_every_anchor_fits(self, report):
        for entry in report:
            assert entry["achieved_s"] == pytest.approx(entry["target_s"], rel=0.02), entry

    def test_no_anchor_clamped(self, report):
        assert not any(entry["clamped"] for entry in report)

    def test_scales_physical(self, report):
        """Calibrated efficiency on the anchor's unit stays near-or-below
        unity of peak (no superluminal kernels)."""
        from repro.frameworks import load_framework
        from repro.hardware import load_device
        from repro.models import load_model

        for entry in report:
            framework = load_framework(entry["framework"])
            deployed = framework.deploy(
                load_model(entry["model"]), load_device(entry["device"]))
            base = framework.kernel_quality.get(deployed.unit.kind, 0.15)
            assert base * entry["scale"] <= 1.1, entry

    def test_anchor_sources_recorded(self):
        for (_fw, _dev), (_model, _target, source) in ANCHORS.items():
            assert source  # every anchor cites its figure

    def test_one_anchor_per_pair(self):
        assert len(ANCHORS) == len(set(ANCHORS))


class TestScaleResolution:
    def test_cached_and_deterministic(self):
        first = efficiency_scale("PyTorch", "Jetson TX2")
        second = efficiency_scale("PyTorch", "Jetson TX2")
        assert first == second
        assert MIN_SCALE <= first <= MAX_SCALE

    def test_keras_inherits_tensorflow_per_device(self):
        """Same engine, same device: the exact fitted scale carries over."""
        assert (efficiency_scale("Keras", "Raspberry Pi 3B")
                == efficiency_scale("TensorFlow", "Raspberry Pi 3B"))

    def test_keras_falls_back_to_mean_on_unanchored_devices(self):
        keras = efficiency_scale("Keras", "Jetson Nano")  # TF not anchored there
        tf_scales = [efficiency_scale(fw, dev) for (fw, dev) in ANCHORS if fw == "TensorFlow"]
        assert keras == pytest.approx(sum(tf_scales) / len(tf_scales))

    def test_unanchored_pair_uses_framework_mean(self):
        tflite_tx2 = efficiency_scale("TFLite", "Jetson TX2")
        tflite_scales = [efficiency_scale(fw, dev) for (fw, dev) in ANCHORS if fw == "TFLite"]
        assert tflite_tx2 == pytest.approx(sum(tflite_scales) / len(tflite_scales))

    def test_completely_unknown_framework_defaults_to_one(self):
        assert efficiency_scale("NoSuchFramework", "Jetson TX2") == 1.0
