"""Roofline op timing."""

import pytest

from repro.engine.roofline import RooflineInputs, time_op
from repro.graphs import ops as O
from repro.graphs.tensor import TensorShape


def _conv() -> O.Conv2D:
    source = O.Input("in", TensorShape(64, 28, 28))
    return O.Conv2D("c", [source], 64, 3, use_bias=False)


def _inputs(**overrides) -> RooflineInputs:
    defaults = dict(
        peak_macs_per_s=100e9,
        memory_bandwidth_bytes_per_s=10e9,
        weight_bandwidth_bytes_per_s=10e9,
        dispatch_overhead_s=10e-6,
    )
    defaults.update(overrides)
    return RooflineInputs(**defaults)


class TestRooflineInputs:
    @pytest.mark.parametrize("field", [
        "peak_macs_per_s", "memory_bandwidth_bytes_per_s",
        "weight_bandwidth_bytes_per_s",
    ])
    def test_positive_required(self, field):
        with pytest.raises(ValueError, match=field):
            _inputs(**{field: 0})


class TestTimeOp:
    def test_compute_term(self):
        conv = _conv()
        timing = time_op(conv, _inputs(), efficiency=0.5)
        assert timing.compute_s == pytest.approx(conv.macs / (100e9 * 0.5))

    def test_memory_term(self):
        conv = _conv()
        timing = time_op(conv, _inputs(), efficiency=0.5)
        expected = (conv.weight_bytes() + conv.input_bytes() + conv.output_bytes()) / 10e9
        assert timing.memory_s == pytest.approx(expected)

    def test_latency_is_max_plus_dispatch(self):
        timing = time_op(_conv(), _inputs(), efficiency=0.5, per_op_overhead_s=5e-6)
        assert timing.latency_s == pytest.approx(
            max(timing.compute_s, timing.memory_s) + 10e-6 + 5e-6)

    def test_bound_classification_flips_with_bandwidth(self):
        conv = _conv()
        compute_bound = time_op(conv, _inputs(memory_bandwidth_bytes_per_s=1e12,
                                              weight_bandwidth_bytes_per_s=1e12),
                                efficiency=0.01)
        memory_bound = time_op(conv, _inputs(memory_bandwidth_bytes_per_s=1e6,
                                             weight_bandwidth_bytes_per_s=1e6),
                               efficiency=1.0)
        assert compute_bound.bound == "compute"
        assert memory_bound.bound == "memory"

    def test_higher_efficiency_never_slower(self):
        conv = _conv()
        slow = time_op(conv, _inputs(), efficiency=0.1)
        fast = time_op(conv, _inputs(), efficiency=0.9)
        assert fast.latency_s <= slow.latency_s

    def test_sparsity_exploitation(self):
        conv = _conv()
        conv.weight_sparsity = 0.9
        dense = time_op(conv, _inputs(), efficiency=0.5, exploit_sparsity=False)
        sparse = time_op(conv, _inputs(), efficiency=0.5, exploit_sparsity=True)
        assert sparse.compute_s < dense.compute_s / 5

    def test_weight_bandwidth_separate_from_io(self):
        conv = _conv()
        paged = time_op(conv, _inputs(weight_bandwidth_bytes_per_s=80e6), efficiency=0.5)
        resident = time_op(conv, _inputs(), efficiency=0.5)
        assert paged.memory_s > resident.memory_s

    def test_zero_mac_op_has_no_compute(self):
        flat = O.Flatten("f", [O.Input("in", TensorShape(4, 4, 4))])
        timing = time_op(flat, _inputs(), efficiency=0.5)
        assert timing.compute_s == 0.0
        assert timing.memory_s > 0.0

    def test_nonpositive_efficiency_rejected(self):
        with pytest.raises(ValueError, match="efficiency"):
            time_op(_conv(), _inputs(), efficiency=0.0)
