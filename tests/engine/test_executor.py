"""InferenceSession / ExecutionPlan behaviour."""

import pytest

from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _session(model="ResNet-18", device="Jetson TX2", framework="PyTorch",
             scale=None) -> InferenceSession:
    deployed = load_framework(framework).deploy(load_model(model), load_device(device))
    return InferenceSession(deployed, efficiency_scale=scale)


class TestPlan:
    def test_latency_decomposition_sums(self):
        session = _session(scale=1.0)
        plan = session.plan
        per_op = sum(t.latency_s for t in plan.timings)
        assert plan.latency_s == pytest.approx(
            per_op + plan.session_overhead_s + plan.input_transfer_s)

    def test_plan_covers_schedulable_ops(self):
        session = _session(scale=1.0)
        assert len(session.plan.timings) == len(session.deployed.graph.schedulable_ops())

    def test_bound_fractions_sum_to_one(self):
        plan = _session(scale=1.0).plan
        assert plan.bound_fraction("compute") + plan.bound_fraction("memory") == pytest.approx(1.0)

    def test_efficiency_scale_monotone(self):
        slow = _session(scale=0.1).latency_s
        fast = _session(scale=10.0).latency_s
        assert fast < slow

    def test_default_scale_resolves_calibration(self):
        from repro.engine.calibration import efficiency_scale

        session = _session()
        assert session.efficiency_scale == efficiency_scale("PyTorch", "Jetson TX2")


class TestStorageModes:
    def test_paged_model_pays_storage_bandwidth(self):
        paged = _session("VGG16", "Raspberry Pi 3B", "PyTorch", scale=1.0)
        assert paged.deployed.is_paged
        weights = paged.deployed.graph.weight_bytes()
        storage_bw = paged.deployed.device.memory.storage_bandwidth_bytes_per_s
        # Memory time is at least the page-in of every weight byte.
        assert paged.plan.memory_s >= weights / storage_bw

    def test_paging_itself_is_the_penalty(self):
        """Flipping the same deployment back to resident must be much
        faster: the paging path, not the model, causes the slowdown."""
        paged = _session("VGG16", "Raspberry Pi 3B", "PyTorch", scale=1.0)
        assert paged.deployed.is_paged
        paged.deployed.storage_mode = "resident"
        resident = InferenceSession(paged.deployed, efficiency_scale=1.0)
        assert paged.latency_s > resident.latency_s
        # The difference is at least the page-in of every weight byte.
        weights = paged.deployed.graph.weight_bytes()
        storage_bw = paged.deployed.device.memory.storage_bandwidth_bytes_per_s
        dram_bw = paged.deployed.device.memory.bandwidth_bytes_per_s
        floor = weights / storage_bw - weights / dram_bw
        assert paged.latency_s - resident.latency_s >= 0.5 * floor

    def test_fabric_spill_considerably_slower_than_ported(self):
        ported = _session("ResNet-18", "PYNQ-Z1", "TVM VTA", scale=1.0)
        spilled = _session("ResNet-50", "PYNQ-Z1", "TVM VTA", scale=1.0)
        ratio = spilled.latency_s / ported.latency_s
        macs_ratio = (spilled.deployed.graph.total_macs
                      / ported.deployed.graph.total_macs)
        # "Considerably slowdowns execution": well beyond the MAC ratio.
        assert ratio > 1.5 * macs_ratio

    def test_on_chip_models_avoid_dram(self):
        small = _session("MobileNet-v2", "EdgeTPU", "TFLite", scale=1.0)
        large = _session("ResNet-50", "EdgeTPU", "TFLite", scale=1.0)
        assert small.deployed.graph.weight_bytes() <= small.deployed.unit.on_chip_buffer_bytes
        assert large.deployed.graph.weight_bytes() > large.deployed.unit.on_chip_buffer_bytes
        # The roofline resolves a faster weight path for the on-chip model.
        assert (small._roofline_inputs().weight_bandwidth_bytes_per_s
                > large._roofline_inputs().weight_bandwidth_bytes_per_s)


class TestSessionQuantities:
    def test_init_time_excluded_from_latency(self):
        session = _session()
        assert session.init_time_s > session.latency_s

    def test_utilization_in_unit_interval(self):
        for model in ("ResNet-18", "MobileNet-v2", "VGG16"):
            session = _session(model)
            assert 0.0 < session.utilization <= 1.0

    def test_compute_bound_sessions_have_high_utilization(self):
        session = _session("VGG16", "Raspberry Pi 3B", "TFLite")
        assert session.utilization > 0.7

    def test_run_returns_constant_samples(self):
        session = _session()
        samples = session.run(5)
        assert samples == [session.latency_s] * 5

    def test_run_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _session().run(0)

    def test_describe_mentions_latency(self):
        assert "ms/inference" in _session().describe()

    def test_input_transfer_only_with_link(self):
        linked = _session("MobileNet-v2", "Movidius NCS", "NCSDK")
        shared = _session("MobileNet-v2", "Jetson TX2", "PyTorch")
        assert linked.plan.input_transfer_s > 0
        assert shared.plan.input_transfer_s == 0
