"""The engine memoization layer (graph / deploy / plan caches)."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import OutOfMemoryError, ReproError
from repro.engine import InferenceSession
from repro.engine.cache import (
    DEPLOY_CACHE,
    GRAPH_CACHE,
    PLAN_CACHE,
    MemoCache,
    cache_stats,
    cached_deploy,
    cached_graph,
    caching_disabled,
    caching_enabled,
    clear_caches,
    deploy_key,
    plan_key,
    set_caching,
)
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


@pytest.fixture(autouse=True)
def fresh_caches():
    """Every test starts and ends with empty caches and caching enabled."""
    clear_caches()
    set_caching(True)
    yield
    clear_caches()
    set_caching(True)


class TestMemoCache:
    def test_builds_once_and_shares(self):
        cache = MemoCache("test")
        built = []

        def build():
            built.append(1)
            return object()

        first = cache.get_or_build("k", build)
        second = cache.get_or_build("k", build)
        assert first is second
        assert built == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_keys_distinct_values(self):
        cache = MemoCache("test")
        a = cache.get_or_build("a", lambda: object())
        b = cache.get_or_build("b", lambda: object())
        assert a is not b
        assert len(cache) == 2

    def test_repro_error_is_cached_and_reraised(self):
        cache = MemoCache("test")
        calls = []

        def failing():
            calls.append(1)
            raise ReproError("deployment failed")

        with pytest.raises(ReproError):
            cache.get_or_build("k", failing)
        with pytest.raises(ReproError):
            cache.get_or_build("k", failing)
        assert calls == [1]  # the failure itself was memoized
        assert cache.stats.hits == 1

    def test_other_exceptions_propagate_uncached(self):
        cache = MemoCache("test")
        calls = []

        def broken():
            calls.append(1)
            raise RuntimeError("bug, not a deployment outcome")

        for _ in range(2):
            with pytest.raises(RuntimeError):
                cache.get_or_build("k", broken)
        assert calls == [1, 1]
        assert len(cache) == 0

    def test_clear_resets_entries_and_stats(self):
        cache = MemoCache("test")
        cache.get_or_build("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_racing_builders_share_first_result(self):
        cache = MemoCache("test")
        barrier = threading.Barrier(8)
        results = []

        def worker():
            barrier.wait()
            results.append(cache.get_or_build("k", object))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        assert all(result is results[0] for result in results)


class TestCachedGraph:
    def test_shared_instance_on_hit(self):
        first = cached_graph("ResNet-18")
        second = cached_graph("resnet18")  # canonical-name keyed
        assert first is second
        assert GRAPH_CACHE.stats.hits == 1

    def test_matches_load_model(self):
        cached = cached_graph("ResNet-18")
        fresh = load_model("ResNet-18")
        assert cached.total_params == fresh.total_params
        assert [op.name for op in cached.ops] == [op.name for op in fresh.ops]

    def test_disabled_builds_fresh(self):
        with caching_disabled():
            assert not caching_enabled()
            first = cached_graph("ResNet-18")
            second = cached_graph("ResNet-18")
        assert first is not second
        assert len(GRAPH_CACHE) == 0


class TestCachedDeploy:
    def test_shared_instance_and_key_tag(self):
        first = cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        second = cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        assert first is second
        assert first.cache_key == deploy_key("ResNet-18", "Jetson TX2", "PyTorch")
        assert DEPLOY_CACHE.stats.hits == 1

    def test_matches_direct_deploy(self):
        cached = cached_deploy("MobileNet-v2", "Raspberry Pi 3B", "TFLite")
        direct = load_framework("TFLite").deploy(
            load_model("MobileNet-v2"), load_device("Raspberry Pi 3B"))
        assert cached.storage_mode == direct.storage_mode
        assert cached.weight_dtype is direct.weight_dtype
        assert cached.footprint_bytes() == direct.footprint_bytes()

    def test_table5_failure_memoized(self):
        # TensorFlow's static allocator cannot fit VGG16 on the Pi (Table V).
        for _ in range(2):
            with pytest.raises(OutOfMemoryError):
                cached_deploy("VGG16", "Raspberry Pi 3B", "TensorFlow")
        assert DEPLOY_CACHE.stats.misses == 1
        assert DEPLOY_CACHE.stats.hits == 1

    def test_disabled_deploys_fresh_and_untagged(self):
        with caching_disabled():
            deployed = cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        assert deployed.cache_key is None
        assert len(DEPLOY_CACHE) == 0


class TestPlanCache:
    def test_sessions_on_cached_deploy_share_plan(self):
        deployed = cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        first = InferenceSession(deployed)
        second = InferenceSession(deployed)
        assert first.plan is second.plan
        assert PLAN_CACHE.stats.hits == 1

    def test_ad_hoc_deployments_never_plan_cached(self):
        deployed = load_framework("PyTorch").deploy(
            load_model("ResNet-18"), load_device("Jetson TX2"))
        assert plan_key(deployed, None, 1.0) is None
        first = InferenceSession(deployed)
        second = InferenceSession(deployed)
        assert first.plan is not second.plan
        assert len(PLAN_CACHE) == 0

    def test_config_changes_miss(self):
        from repro.engine import EngineConfig

        deployed = cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        InferenceSession(deployed)
        InferenceSession(deployed, config=EngineConfig(batch_size=4))
        assert len(PLAN_CACHE) == 2
        assert PLAN_CACHE.stats.hits == 0

    def test_cached_latency_identical_to_uncached(self):
        cached_session = InferenceSession(
            cached_deploy("ResNet-18", "Jetson TX2", "PyTorch"))
        with caching_disabled():
            fresh_session = InferenceSession(
                cached_deploy("ResNet-18", "Jetson TX2", "PyTorch"))
        assert cached_session.latency_s == fresh_session.latency_s
        assert cached_session.plan.compute_s == fresh_session.plan.compute_s
        assert cached_session.plan.memory_s == fresh_session.plan.memory_s


class TestStats:
    def test_cache_stats_shape(self):
        cached_deploy("ResNet-18", "Jetson TX2", "PyTorch")
        stats = cache_stats()
        assert set(stats) == {"graph", "deploy", "plan", "record", "payload"}
        for snapshot in stats.values():
            assert set(snapshot) == {"entries", "hits", "misses", "hit_rate"}
        assert stats["deploy"]["entries"] == 1
        assert stats["deploy"]["misses"] == 1

    def test_clear_caches_empties_everything(self):
        InferenceSession(cached_deploy("ResNet-18", "Jetson TX2", "PyTorch"))
        clear_caches()
        assert all(snapshot["entries"] == 0 for snapshot in cache_stats().values())
