"""Sweep compiler: compiled grids are bit-identical to the scalar path.

Three layers of the same claim, at zero tolerance everywhere:

* op level — ``time_op`` (scalar), ``time_ops`` (one-plan vectorization)
  and the grid lowering (all plans in one array program) price every op of
  every zoo model to the same IEEE-754 doubles;
* record level — ``Runner.run_grid`` returns the same ``RunRecord`` values
  as ``Runner.run`` cell by cell, including failures, batch sizes, dtypes,
  containerized cells and non-default power modes;
* composition level (hypothesis) — which other cells share the batch, and
  in what order, never changes any cell's record.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import compile as sweep_compile
from repro.engine.cache import clear_caches, set_caching
from repro.engine.executor import EngineConfig, plan_from_spec, resolve_plan_spec
from repro.engine.roofline import time_op
from repro.models.zoo import list_models
from repro.runtime import Runner, Scenario

pytestmark = pytest.mark.usefixtures("fresh_caches")


@pytest.fixture()
def fresh_caches():
    clear_caches()
    sweep_compile.reset_compile_stats()
    yield
    clear_caches()
    sweep_compile.reset_compile_stats()


def _strip_deploy_provenance(record):
    """Records modulo the deploy-cache outcome, which legitimately depends
    on what ran earlier in the process (hit vs miss)."""
    from dataclasses import replace

    return replace(record, provenance=replace(record.provenance, deploy_cache=""))


MIXED_CELLS = [
    Scenario("ResNet-18", "Jetson TX2", "PyTorch"),
    Scenario("MobileNet-v2", "Raspberry Pi 3B", "TFLite"),
    Scenario("ResNet-18", "Jetson TX2", "PyTorch"),  # in-grid duplicate
    Scenario("ResNet-50", "GTX Titan X", "PyTorch", batch_size=4),
    Scenario("SSD MobileNet-v1", "Raspberry Pi 3B", "TensorFlow"),  # fails
    Scenario("Inception-v4", "Jetson Nano", "TensorRT", dtype="int8"),
    Scenario("MobileNet-v2", "Jetson TX2", "TensorFlow", power_mode="MAXN"),
    Scenario("ResNet-18", "Raspberry Pi 3B", "TensorFlow", containerized=True),
]


class TestThreeWayOpEquivalence:
    """time_op == time_ops == compiled grid, over the whole model zoo."""

    def test_full_zoo_lowered_bit_identical(self):
        scenarios = [Scenario(model, "Jetson TX2", "PyTorch")
                     for model in list_models()]
        cells, _ = sweep_compile.compile_cells(scenarios)
        compiled = {cell.scenario.key: cell for cell in cells}
        checked = 0
        for scenario in scenarios:
            cell = compiled[scenario.key]
            if not cell.ok:
                continue
            deployed, _ = Runner().deploy(scenario)
            # Recompute the scalar plan outside every cache.
            spec = resolve_plan_spec(deployed, EngineConfig(), _scale(deployed))
            scalar_plan = plan_from_spec(spec)
            assert len(cell.plan.timings) == len(scalar_plan.timings)
            for lowered, one_plan, (op, efficiency) in zip(
                    cell.plan.timings, scalar_plan.timings,
                    zip(spec.ops, spec.efficiencies)):
                reference = time_op(
                    op, spec.inputs, efficiency,
                    exploit_sparsity=spec.exploit_sparsity,
                    per_op_overhead_s=spec.per_op_overhead_s,
                    batch_size=spec.batch_size,
                    include_memory_term=spec.include_memory_term)
                # Exact equality: all three paths must run the same float64
                # operations in the same order.
                assert lowered.compute_s == reference.compute_s == one_plan.compute_s
                assert lowered.memory_s == reference.memory_s == one_plan.memory_s
                assert lowered.dispatch_s == reference.dispatch_s == one_plan.dispatch_s
                assert lowered.bound == reference.bound == one_plan.bound
                checked += 1
        assert checked > 100  # the zoo is not trivially skipped


def _scale(deployed) -> float:
    from repro.engine.calibration import efficiency_scale

    return efficiency_scale(deployed.framework.name, deployed.device.name)


class TestRunGridMatchesRun:
    @pytest.mark.parametrize("use_timer", [True, False])
    def test_mixed_grid_records_equal_scalar_records(self, use_timer):
        clear_caches()
        scalar = [Runner().run(s, use_timer=use_timer) for s in MIXED_CELLS]
        clear_caches()
        gridded = Runner().run_grid(MIXED_CELLS, use_timer=use_timer)
        assert gridded == scalar

    def test_warm_replay_identical(self):
        # A second pass refreshes deploy provenance to "hit" exactly like a
        # scalar replay would; compare warm against warm.
        runner = Runner()
        runner.run_grid(MIXED_CELLS)
        warm_grid = runner.run_grid(MIXED_CELLS)
        warm_scalar = [runner.run(s) for s in MIXED_CELLS]
        assert warm_grid == warm_scalar
        assert warm_grid == runner.run_grid(MIXED_CELLS)

    def test_scalar_after_grid_hits_the_record_cache(self):
        runner = Runner()
        gridded = runner.run_grid(MIXED_CELLS)
        replayed = [runner.run(s) for s in MIXED_CELLS]
        assert ([_strip_deploy_provenance(r) for r in replayed]
                == [_strip_deploy_provenance(r) for r in gridded])
        from repro.engine.cache import cache_stats

        assert cache_stats()["record"]["hits"] >= len(MIXED_CELLS)

    def test_caching_disabled_still_identical(self):
        set_caching(False)
        try:
            scalar = [Runner().run(s, use_timer=False) for s in MIXED_CELLS]
            gridded = Runner().run_grid(MIXED_CELLS, use_timer=False)
        finally:
            set_caching(True)
        assert gridded == scalar

    def test_failure_cells_round_trip(self):
        failing = Scenario("SSD MobileNet-v1", "Raspberry Pi 3B", "TensorFlow")
        record = Runner().run_grid([failing])[0]
        assert record.failed
        assert record.failure is not None
        assert record == Runner().run(failing)


class TestCompositionIndependence:
    """Hypothesis: batching and dedup order never change any record."""

    POOL = MIXED_CELLS

    @given(subset=st.lists(st.integers(0, len(POOL) - 1),
                           min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_record_independent_of_batch_composition(self, subset):
        grid = [self.POOL[i] for i in subset]
        clear_caches()
        solo = {s.key: _strip_deploy_provenance(Runner().run(s, use_timer=False))
                for s in grid}
        clear_caches()
        batched = Runner().run_grid(grid, use_timer=False)
        for scenario, record in zip(grid, batched):
            assert _strip_deploy_provenance(record) == solo[scenario.key]


class TestCompileStats:
    def test_counters_shape(self):
        grid = MIXED_CELLS
        cells, program_stats = sweep_compile.compile_cells(grid)
        assert len(cells) == len(grid)
        assert program_stats.cells == len(grid)
        assert 0 < program_stats.unique_plans <= program_stats.cells
        assert program_stats.dedup_ratio == (
            program_stats.cells / program_stats.unique_plans)
        # A warm re-gather resolves every plan from the cache.
        warm = sweep_compile.gather(grid).stats
        assert warm.unique_plans == 0
        assert warm.plan_cache_hits > 0

    def test_lowered_program_counters(self):
        program = sweep_compile.gather(MIXED_CELLS)
        sweep_compile.lower(program)
        assert program.stats.array_programs >= 1
        assert program.stats.ops_lowered > 0
        assert program.stats.macs_lowered > 0
        # Wall-clock stats stay zero inside compile — the driver stamps them
        # (the ARCH005 contract).
        assert program.stats.gather_s == 0
        assert program.stats.lower_s == 0
        assert program.stats.scatter_s == 0

    def test_process_accumulator_records_and_resets(self):
        sweep_compile.reset_compile_stats()
        assert sweep_compile.compile_stats()["cells"] == 0
        program = sweep_compile.gather(MIXED_CELLS[:2])
        sweep_compile.lower(program)
        sweep_compile.record_compile(program.stats)
        totals = sweep_compile.compile_stats()
        assert totals["grids"] == 1
        assert totals["cells"] == 2
        sweep_compile.reset_compile_stats()
        assert sweep_compile.compile_stats()["grids"] == 0

    def test_dedup_ratio_defined_for_empty_grid(self):
        program = sweep_compile.gather([])
        assert program.stats.dedup_ratio == 1.0
