"""Property-based serialization round-trips on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import GraphBuilder
from repro.graphs.serialize import graph_from_dict, graph_to_dict
from repro.graphs.tensor import DType
from repro.graphs.transforms import fuse_graph, prune_graph, quantize_graph


@st.composite
def random_graphs(draw):
    """Random CNNs with optional residuals and a classifier head."""
    b = GraphBuilder("random")
    size = draw(st.sampled_from([16, 32]))
    x = b.input((3, size, size))
    for _ in range(draw(st.integers(1, 4))):
        out_channels = draw(st.integers(2, 16))
        kind = draw(st.sampled_from(["conv", "conv_bn", "residual", "pool"]))
        if kind == "conv":
            x = b.conv2d(x, out_channels, draw(st.sampled_from([1, 3])))
            x = b.relu(x)
        elif kind == "conv_bn":
            x = b.conv_bn_act(x, out_channels, 3)
        elif kind == "residual":
            branch = b.conv_bn_act(x, x.output_shape.channels, 3)
            x = b.add(branch, x)
        else:
            if min(x.output_shape.spatial) >= 4:
                x = b.max_pool(x, 2, stride=2)
    x = b.global_avg_pool(x)
    x = b.dense(x, draw(st.integers(2, 100)))
    b.softmax(x)
    return b.build()


class TestRoundTripProperties:
    @given(graph=random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_plain_round_trip(self, graph):
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.total_params == graph.total_params
        assert restored.total_macs == graph.total_macs
        assert restored.peak_activation_bytes() == graph.peak_activation_bytes()

    @given(graph=random_graphs(),
           dtype=st.sampled_from([DType.FP16, DType.INT8]),
           sparsity=st.floats(0.0, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_transformed_round_trip(self, graph, dtype, sparsity):
        transformed = prune_graph(quantize_graph(fuse_graph(graph), dtype), sparsity)
        restored = graph_from_dict(graph_to_dict(transformed))
        assert restored.weight_bytes() == transformed.weight_bytes()
        assert (len(restored.schedulable_ops())
                == len(transformed.schedulable_ops()))
        for a, b in zip(restored.ops, transformed.ops):
            assert a.weight_sparsity == b.weight_sparsity
            assert a.is_fused_away == b.is_fused_away

    @given(graph=random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_double_round_trip_is_stable(self, graph):
        once = graph_to_dict(graph)
        twice = graph_to_dict(graph_from_dict(once))
        assert once == twice
