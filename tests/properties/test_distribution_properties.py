"""Property-based tests of the distribution substrate (hypothesis)."""

import functools
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.distribution.network import NetworkLink


@functools.lru_cache(maxsize=None)
def _deployed(model, device, framework):
    from repro.frameworks import load_framework
    from repro.hardware import load_device
    from repro.models import load_model

    return load_framework(framework).deploy(load_model(model),
                                            load_device(device))


def _links():
    """Arbitrary (but physical) links spanning bluetooth to datacenter."""
    return st.builds(
        NetworkLink,
        st.just("prop"),
        st.floats(1e4, 1e10, allow_nan=False),   # bandwidth bytes/s
        st.floats(0.0, 0.5, allow_nan=False),    # latency s
    )


@st.composite
def point_sets(draw):
    count = draw(st.integers(1, 12))
    return [
        ParetoPoint(
            label=f"p{i}",
            latency_s=draw(st.floats(1e-4, 10.0, allow_nan=False)),
            power_w=draw(st.floats(0.1, 300.0, allow_nan=False)),
        )
        for i in range(count)
    ]


class TestParetoProperties:
    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_frontier_is_non_dominated(self, points):
        frontier = pareto_frontier(points)
        for member in frontier:
            assert not any(other.dominates(member) for other in points)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_every_excluded_point_is_dominated(self, points):
        # pareto_frontier preserves object identity via list membership.
        labels = {p.label for p in pareto_frontier(points)}
        for point in points:
            if point.label not in labels:
                assert any(other.dominates(point) for other in points)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_frontier_is_idempotent(self, points):
        once = pareto_frontier(points)
        twice = pareto_frontier(once)
        assert {p.label for p in once} == {p.label for p in twice}

    @given(points=point_sets())
    @settings(max_examples=60, deadline=None)
    def test_minimum_on_each_axis_always_included(self, points):
        frontier_labels = {p.label for p in pareto_frontier(points)}
        fastest = min(points, key=lambda p: (p.latency_s, p.power_w))
        frugalest = min(points, key=lambda p: (p.power_w, p.latency_s))
        assert fastest.label in frontier_labels
        assert frugalest.label in frontier_labels


class TestLinkProperties:
    @given(
        bandwidth=st.floats(1e3, 1e10, allow_nan=False),
        latency=st.floats(0.0, 1.0, allow_nan=False),
        a=st.floats(0, 1e8, allow_subnormal=False),
        b=st.floats(0, 1e8, allow_subnormal=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_transfer_time_superadditive_in_payload(self, bandwidth, latency, a, b):
        """Two messages cost at least one combined message (extra latency)."""
        link = NetworkLink("t", bandwidth, latency)
        combined = link.transfer_time_s(a + b)
        split = link.transfer_time_s(a) + link.transfer_time_s(b)
        # Absolute slack alongside the relative one: denormal-scale payload
        # times carry one-ulp rounding asymmetries the relative bound
        # cannot absorb.
        assert split >= combined * (1 - 1e-9) - 1e-300

    @given(
        bandwidth=st.floats(1e3, 1e10, allow_nan=False),
        latency=st.floats(0.0, 1.0, allow_nan=False),
        payloads=st.lists(st.floats(0, 1e8), min_size=2, max_size=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_payload(self, bandwidth, latency, payloads):
        link = NetworkLink("t", bandwidth, latency)
        small, large = sorted(payloads)
        assert link.transfer_time_s(small) <= link.transfer_time_s(large) + 1e-12


class TestPipelineOptimality:
    def test_dp_matches_brute_force_on_small_chains(self):
        """The DP's bottleneck equals exhaustive search over all contiguous
        partitions, for every device count on a real small model."""
        from repro.distribution import load_link, partition_pipeline
        from repro.engine import InferenceSession
        from repro.frameworks import load_framework
        from repro.hardware import load_device
        from repro.models.cifarnet import cifarnet

        deployed = load_framework("TensorFlow").deploy(
            cifarnet(), load_device("Raspberry Pi 3B"))
        session = InferenceSession(deployed)
        timings = [t.latency_s for t in session.plan.timings]
        from repro.distribution.partition import cut_points

        link = load_link("wifi")
        transfer = [link.transfer_time_s(c.transfer_bytes)
                    for c in cut_points(deployed.graph)]
        n = len(timings)

        def brute_force(devices: int) -> float:
            best = float("inf")
            for cuts in itertools.combinations(range(1, n), devices - 1):
                bounds = [0, *cuts, n]
                bottleneck = 0.0
                for i in range(devices):
                    start, end = bounds[i], bounds[i + 1]
                    compute = sum(timings[start:end])
                    outgoing = 0.0 if end == n else transfer[end]
                    bottleneck = max(bottleneck, compute + outgoing)
                best = min(best, bottleneck)
            return best

        for devices in (1, 2, 3):
            plan = partition_pipeline(deployed, devices, link)
            assert abs(plan.bottleneck_s - brute_force(devices)) < 1e-12, devices


class TestSplitAccountingProperties:
    """Every split plan's total decomposes exactly into its three legs."""

    @given(link=_links())
    @settings(max_examples=40, deadline=None)
    def test_total_is_edge_plus_transfer_plus_remote(self, link):
        from repro.distribution import SplitPlanner

        planner = SplitPlanner(
            _deployed("MobileNet-v2", "Raspberry Pi 3B", "TFLite"),
            _deployed("MobileNet-v2", "GTX Titan X", "PyTorch"), link)
        for plan in planner.sweep():
            assert plan.total_s == plan.edge_s + plan.transfer_s + plan.remote_s
            assert plan.edge_s >= 0.0
            assert plan.transfer_s >= 0.0
            assert plan.remote_s >= 0.0

    @given(link=_links())
    @settings(max_examples=40, deadline=None)
    def test_best_cut_never_loses_to_any_cut(self, link):
        from repro.distribution import SplitPlanner

        planner = SplitPlanner(
            _deployed("MobileNet-v2", "Jetson TX2", "PyTorch"),
            _deployed("MobileNet-v2", "GTX Titan X", "PyTorch"), link)
        best = planner.best().total_s
        assert all(best <= plan.total_s for plan in planner.sweep())


class TestPipelineThroughputProperties:
    """Steady-state throughput is set by the slowest stage, nothing else."""

    @given(link=_links(), devices=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_throughput_bounded_by_every_stage(self, link, devices):
        from repro.distribution import partition_pipeline

        plan = partition_pipeline(
            _deployed("CifarNet", "Raspberry Pi 3B", "TensorFlow"),
            devices, link)
        assert plan.bottleneck_s == max(s.stage_s for s in plan.stages)
        for stage in plan.stages:
            assert plan.throughput_fps <= 1.0 / stage.stage_s + 1e-12
        assert plan.pipeline_latency_s >= plan.bottleneck_s


class TestCutConservationProperties:
    """Cut crossing bytes are conserved by deployment graph transforms:
    fusion and freezing remove cut LOCATIONS (fused ops no longer
    materialize), never change what a surviving cut ships."""

    MODELS = ("CifarNet", "MobileNet-v2", "ResNet-18", "AlexNet")

    @given(model=st.sampled_from(MODELS),
           transform=st.sampled_from(("fuse", "freeze", "both")))
    @settings(max_examples=20, deadline=None)
    def test_surviving_cuts_ship_the_same_bytes(self, model, transform):
        from repro.distribution.partition import cut_points
        from repro.graphs.transforms import freeze_graph, fuse_graph
        from repro.models import load_model

        graph = load_model(model)
        transformed = {
            "fuse": fuse_graph,
            "freeze": freeze_graph,
            "both": lambda g: freeze_graph(fuse_graph(g)),
        }[transform](graph)
        original = cut_points(graph)
        after = cut_points(transformed)
        # Endpoints are invariant: the input always ships whole, the
        # output always returns whole.
        assert after[0].transfer_bytes == original[0].transfer_bytes
        assert after[-1].transfer_bytes == original[-1].transfer_bytes
        # Transforms only remove cut locations.
        assert len(after) <= len(original)
        # Every surviving cut crosses a tensor set the original graph
        # also exposed at some cut.
        original_bytes = {cut.transfer_bytes for cut in original}
        for cut in after:
            assert cut.transfer_bytes in original_bytes
