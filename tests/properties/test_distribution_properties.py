"""Property-based tests of the distribution substrate (hypothesis)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.distribution.network import NetworkLink


@st.composite
def point_sets(draw):
    count = draw(st.integers(1, 12))
    return [
        ParetoPoint(
            label=f"p{i}",
            latency_s=draw(st.floats(1e-4, 10.0, allow_nan=False)),
            power_w=draw(st.floats(0.1, 300.0, allow_nan=False)),
        )
        for i in range(count)
    ]


class TestParetoProperties:
    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_frontier_is_non_dominated(self, points):
        frontier = pareto_frontier(points)
        for member in frontier:
            assert not any(other.dominates(member) for other in points)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_every_excluded_point_is_dominated(self, points):
        # pareto_frontier preserves object identity via list membership.
        labels = {p.label for p in pareto_frontier(points)}
        for point in points:
            if point.label not in labels:
                assert any(other.dominates(point) for other in points)

    @given(points=point_sets())
    @settings(max_examples=80, deadline=None)
    def test_frontier_is_idempotent(self, points):
        once = pareto_frontier(points)
        twice = pareto_frontier(once)
        assert {p.label for p in once} == {p.label for p in twice}

    @given(points=point_sets())
    @settings(max_examples=60, deadline=None)
    def test_minimum_on_each_axis_always_included(self, points):
        frontier_labels = {p.label for p in pareto_frontier(points)}
        fastest = min(points, key=lambda p: (p.latency_s, p.power_w))
        frugalest = min(points, key=lambda p: (p.power_w, p.latency_s))
        assert fastest.label in frontier_labels
        assert frugalest.label in frontier_labels


class TestLinkProperties:
    @given(
        bandwidth=st.floats(1e3, 1e10, allow_nan=False),
        latency=st.floats(0.0, 1.0, allow_nan=False),
        a=st.floats(0, 1e8, allow_subnormal=False),
        b=st.floats(0, 1e8, allow_subnormal=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_transfer_time_superadditive_in_payload(self, bandwidth, latency, a, b):
        """Two messages cost at least one combined message (extra latency)."""
        link = NetworkLink("t", bandwidth, latency)
        combined = link.transfer_time_s(a + b)
        split = link.transfer_time_s(a) + link.transfer_time_s(b)
        # Absolute slack alongside the relative one: denormal-scale payload
        # times carry one-ulp rounding asymmetries the relative bound
        # cannot absorb.
        assert split >= combined * (1 - 1e-9) - 1e-300

    @given(
        bandwidth=st.floats(1e3, 1e10, allow_nan=False),
        latency=st.floats(0.0, 1.0, allow_nan=False),
        payloads=st.lists(st.floats(0, 1e8), min_size=2, max_size=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_payload(self, bandwidth, latency, payloads):
        link = NetworkLink("t", bandwidth, latency)
        small, large = sorted(payloads)
        assert link.transfer_time_s(small) <= link.transfer_time_s(large) + 1e-12


class TestPipelineOptimality:
    def test_dp_matches_brute_force_on_small_chains(self):
        """The DP's bottleneck equals exhaustive search over all contiguous
        partitions, for every device count on a real small model."""
        from repro.distribution import load_link, partition_pipeline
        from repro.engine import InferenceSession
        from repro.frameworks import load_framework
        from repro.hardware import load_device
        from repro.models.cifarnet import cifarnet

        deployed = load_framework("TensorFlow").deploy(
            cifarnet(), load_device("Raspberry Pi 3B"))
        session = InferenceSession(deployed)
        timings = [t.latency_s for t in session.plan.timings]
        from repro.distribution.partition import cut_points

        link = load_link("wifi")
        transfer = [link.transfer_time_s(c.transfer_bytes)
                    for c in cut_points(deployed.graph)]
        n = len(timings)

        def brute_force(devices: int) -> float:
            best = float("inf")
            for cuts in itertools.combinations(range(1, n), devices - 1):
                bounds = [0, *cuts, n]
                bottleneck = 0.0
                for i in range(devices):
                    start, end = bounds[i], bounds[i + 1]
                    compute = sum(timings[start:end])
                    outgoing = 0.0 if end == n else transfer[end]
                    bottleneck = max(bottleneck, compute + outgoing)
                best = min(best, bottleneck)
            return best

        for devices in (1, 2, 3):
            plan = partition_pipeline(deployed, devices, link)
            assert abs(plan.bottleneck_s - brute_force(devices)) < 1e-12, devices
