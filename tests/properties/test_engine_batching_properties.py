"""Property-based tests of batching and the advisor (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Requirements, recommend_deployments
from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model

_DEPLOYED = {}


def _deployed(device_name: str):
    if device_name not in _DEPLOYED:
        _DEPLOYED[device_name] = load_framework("PyTorch").deploy(
            load_model("ResNet-18"), load_device(device_name))
    return _DEPLOYED[device_name]


class TestBatchingProperties:
    @given(
        small=st.integers(1, 32),
        factor=st.integers(2, 8),
        device=st.sampled_from(["Jetson TX2", "RTX 2080", "Xeon E5-2696 v4"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_per_inference_latency_monotone_in_batch(self, small, factor, device):
        deployed = _deployed(device)
        small_session = InferenceSession(deployed, config=EngineConfig(batch_size=small))
        large_session = InferenceSession(
            deployed, config=EngineConfig(batch_size=small * factor))
        assert large_session.latency_s <= small_session.latency_s + 1e-12

    @given(batch=st.integers(1, 64),
           device=st.sampled_from(["Jetson TX2", "RTX 2080"]))
    @settings(max_examples=40, deadline=None)
    def test_batch_never_beats_weightless_compute_bound(self, batch, device):
        """Per-inference latency is bounded below by pure compute at full
        batch-fill efficiency — amortization cannot create free work."""
        deployed = _deployed(device)
        session = InferenceSession(deployed, config=EngineConfig(batch_size=batch))
        peak = deployed.unit.peak(deployed.weight_dtype)
        floor = deployed.graph.total_macs / peak  # efficiency 1.0
        assert session.latency_s >= floor


class TestAdvisorProperties:
    @given(
        deadline_ms=st.one_of(st.none(), st.floats(1.0, 5000.0)),
        power_w=st.one_of(st.none(), st.floats(0.5, 20.0)),
    )
    @settings(max_examples=25, deadline=None)
    def test_feasible_first_and_constraints_respected(self, deadline_ms, power_w):
        requirements = Requirements(
            deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
            power_budget_w=power_w,
        )
        results = recommend_deployments("MobileNet-v2", requirements,
                                        devices=("Jetson Nano", "EdgeTPU"))
        seen_infeasible = False
        for entry in results:
            if not entry.feasible:
                seen_infeasible = True
            else:
                assert not seen_infeasible  # feasible block is a prefix
                if requirements.deadline_s is not None:
                    assert entry.latency_s <= requirements.deadline_s
                if power_w is not None:
                    assert entry.power_w <= power_w

    @given(deadline_ms=st.floats(1.0, 5000.0))
    @settings(max_examples=25, deadline=None)
    def test_tightening_constraints_never_adds_options(self, deadline_ms):
        loose = recommend_deployments(
            "MobileNet-v2", Requirements(deadline_s=deadline_ms / 1e3),
            devices=("Jetson Nano", "EdgeTPU"))
        tight = recommend_deployments(
            "MobileNet-v2", Requirements(deadline_s=deadline_ms / 2e3),
            devices=("Jetson Nano", "EdgeTPU"))
        loose_ok = sum(1 for r in loose if r.feasible)
        tight_ok = sum(1 for r in tight if r.feasible)
        assert tight_ok <= loose_ok
