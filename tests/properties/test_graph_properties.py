"""Property-based tests of the graph IR (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import GraphBuilder
from repro.graphs.tensor import DType, TensorShape, conv_output_length
from repro.graphs.transforms import fuse_graph, prune_graph, quantize_graph


@st.composite
def conv_chains(draw):
    """A random sequential CNN: input + N conv(+bn+act) stages."""
    channels = draw(st.integers(1, 8))
    size = draw(st.sampled_from([8, 16, 32]))
    builder = GraphBuilder("random")
    x = builder.input((channels, size, size))
    for _ in range(draw(st.integers(1, 5))):
        out_channels = draw(st.integers(1, 16))
        kernel = draw(st.sampled_from([1, 3, 5]))
        stride = draw(st.sampled_from([1, 2]))
        with_bn = draw(st.booleans())
        if with_bn:
            x = builder.conv_bn_act(x, out_channels, kernel, stride=stride)
        else:
            x = builder.conv2d(x, out_channels, kernel, stride=stride)
    return builder.build()


class TestConvArithmetic:
    @given(
        length=st.integers(1, 512),
        kernel=st.integers(1, 11),
        stride=st.integers(1, 4),
    )
    def test_same_padding_is_ceil_division(self, length, kernel, stride):
        assert conv_output_length(length, kernel, stride, "same") == math.ceil(length / stride)

    @given(
        length=st.integers(16, 512),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 4),
        pad=st.integers(0, 3),
    )
    def test_explicit_padding_never_exceeds_same_plus_pad(self, length, kernel, stride, pad):
        out = conv_output_length(length, kernel, stride, pad)
        assert 1 <= out <= math.ceil((length + 2 * pad) / stride)


class TestShapeProperties:
    @given(dims=st.lists(st.integers(1, 64), min_size=1, max_size=4))
    def test_numel_is_product(self, dims):
        shape = TensorShape(*dims)
        assert shape.numel == math.prod(dims)

    @given(dims=st.lists(st.integers(1, 64), min_size=1, max_size=4))
    def test_bytes_monotone_in_dtype_width(self, dims):
        shape = TensorShape(*dims)
        assert (shape.bytes(DType.BINARY) <= shape.bytes(DType.INT8)
                <= shape.bytes(DType.FP16) <= shape.bytes(DType.FP32))


class TestGraphInvariants:
    @given(graph=conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_totals_are_sums(self, graph):
        assert graph.total_params == sum(op.params for op in graph.ops)
        assert graph.total_macs == sum(op.macs for op in graph.ops)

    @given(graph=conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_fusion_preserves_accounting(self, graph):
        fused = fuse_graph(graph)
        assert fused.total_params == graph.total_params
        assert fused.total_macs == graph.total_macs
        assert len(fused.schedulable_ops()) <= len(graph.schedulable_ops())

    @given(graph=conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_fusion_never_raises_peak_memory(self, graph):
        assert fuse_graph(graph).peak_activation_bytes() <= graph.peak_activation_bytes()

    @given(graph=conv_chains(), dtype=st.sampled_from([DType.FP16, DType.INT8]))
    @settings(max_examples=40, deadline=None)
    def test_quantization_shrinks_weights(self, graph, dtype):
        quantized = quantize_graph(graph, dtype)
        assert quantized.weight_bytes() <= graph.weight_bytes()
        assert quantized.total_params == graph.total_params

    @given(graph=conv_chains(), sparsity=st.floats(0.0, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_pruning_monotone(self, graph, sparsity):
        pruned = prune_graph(graph, sparsity)
        for op, original in zip(pruned.ops, graph.ops):
            assert op.effective_macs(True) <= original.macs
            assert op.effective_weight_bytes(True) <= original.weight_bytes()

    @given(graph=conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_peak_memory_bounded_by_total_activations(self, graph):
        total = sum(op.output_bytes() for op in graph.ops)
        peak = graph.peak_activation_bytes()
        assert 0 < peak <= total

    @given(graph=conv_chains())
    @settings(max_examples=40, deadline=None)
    def test_clone_equivalence(self, graph):
        clone = graph.clone()
        assert clone.total_params == graph.total_params
        assert clone.total_macs == graph.total_macs
        assert [op.name for op in clone.ops] == [op.name for op in graph.ops]
