"""Property-based tests of the quantity layer (hypothesis).

Pins the two contracts PR 5 added: presentation round trips are *exact*
(``from_ms``/``.ms`` and friends return the constructor argument bit for
bit), and dimension-preserving arithmetic keeps the unit tag while
cross-quantity arithmetic degrades to plain ``float``.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.quantity import (
    GIGA,
    MEGA,
    MILLI,
    Flops,
    Hertz,
    Joules,
    Quantity,
    Seconds,
    Watts,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
magnitudes = st.floats(min_value=-1e12, max_value=1e12,
                       allow_nan=False, allow_infinity=False)

ROUND_TRIPS = [
    (Seconds.from_ms, lambda q: q.ms, MILLI),
    (Joules.from_mj, lambda q: q.mj, MILLI),
    (Watts.from_mw, lambda q: q.mw, MILLI),
    (Hertz.from_mhz, lambda q: q.mhz, MEGA),
    (Hertz.from_ghz, lambda q: q.ghz, GIGA),
    (Flops.from_gmacs, lambda q: q.gmacs, GIGA),
]


class TestExactRoundTrips:
    @given(value=finite)
    def test_every_scaled_constructor_round_trips_exactly(self, value):
        for construct, present, _scale in ROUND_TRIPS:
            assert present(construct(value)) == value or math.isnan(value)

    @given(value=magnitudes)
    def test_si_value_is_the_plain_product(self, value):
        for construct, _present, scale in ROUND_TRIPS:
            assert float(construct(value)) == value * scale

    @given(value=magnitudes)
    def test_unscaled_instances_still_present_by_division(self, value):
        assert Seconds(value).ms == value / MILLI
        assert Joules(value).mj == value / MILLI


class TestUnitTagSurvivesArithmetic:
    @given(value=magnitudes)
    def test_unary_ops_keep_the_subclass_and_tag(self, value):
        quantity = Seconds(value)
        for result in (-quantity, +quantity, abs(quantity)):
            assert type(result) is Seconds
            assert repr(result).endswith(" s")

    @given(value=magnitudes, scalar=st.floats(min_value=-1e6, max_value=1e6,
                                              allow_nan=False))
    def test_scaling_by_a_bare_number_keeps_the_tag(self, value, scalar):
        quantity = Joules(value)
        assert type(quantity * scalar) is Joules
        assert type(scalar * quantity) is Joules
        assert type(quantity + scalar) is Joules
        assert float(quantity * scalar) == value * scalar

    @given(value=magnitudes, other=magnitudes)
    def test_cross_quantity_arithmetic_degrades_to_float(self, value, other):
        product = Watts(value) * Seconds(other)
        assert type(product) is float
        assert product == value * other
        assert type(Seconds(value) + Watts(other)) is float

    @given(value=magnitudes, other=magnitudes)
    def test_same_unit_ratio_is_a_plain_float(self, value, other):
        if other != 0:
            assert type(Seconds(value) / Seconds(other)) is float

    @given(value=magnitudes)
    def test_quantities_still_behave_as_their_float_value(self, value):
        assert Seconds(value) == value
        assert hash(Seconds(value)) == hash(value)
        assert not isinstance(1.0 / Seconds(value or 1.0), Quantity)
