"""Property-based tests of the roofline engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.roofline import RooflineInputs, time_op
from repro.graphs import ops as O
from repro.graphs.tensor import TensorShape

positive = st.floats(min_value=1e6, max_value=1e14, allow_nan=False)


@st.composite
def convs(draw):
    channels = draw(st.integers(1, 32))
    size = draw(st.sampled_from([4, 8, 16, 32]))
    out_channels = draw(st.integers(1, 64))
    kernel = draw(st.sampled_from([1, 3, 5]))
    source = O.Input("in", TensorShape(channels, size, size))
    return O.Conv2D("c", [source], out_channels, kernel)


@st.composite
def rooflines(draw):
    return RooflineInputs(
        peak_macs_per_s=draw(positive),
        memory_bandwidth_bytes_per_s=draw(positive),
        weight_bandwidth_bytes_per_s=draw(positive),
        dispatch_overhead_s=draw(st.floats(0, 1e-3)),
    )


class TestRooflineProperties:
    @given(op=convs(), inputs=rooflines(), efficiency=st.floats(0.01, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_latency_positive_and_decomposed(self, op, inputs, efficiency):
        timing = time_op(op, inputs, efficiency)
        assert timing.latency_s > 0
        assert timing.latency_s == max(timing.compute_s, timing.memory_s) + timing.dispatch_s

    @given(op=convs(), inputs=rooflines(),
           lo=st.floats(0.01, 0.5), hi=st.floats(0.5, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_efficiency(self, op, inputs, lo, hi):
        slow = time_op(op, inputs, lo)
        fast = time_op(op, inputs, hi)
        assert fast.latency_s <= slow.latency_s

    @given(op=convs(), inputs=rooflines(), efficiency=st.floats(0.01, 1.0),
           sparsity=st.floats(0.0, 0.9))
    @settings(max_examples=80, deadline=None)
    def test_sparsity_never_hurts(self, op, inputs, efficiency, sparsity):
        op.weight_sparsity = sparsity
        exploited = time_op(op, inputs, efficiency, exploit_sparsity=True)
        ignored = time_op(op, inputs, efficiency, exploit_sparsity=False)
        assert exploited.latency_s <= ignored.latency_s

    @given(op=convs(), inputs=rooflines(), efficiency=st.floats(0.01, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_bound_label_matches_terms(self, op, inputs, efficiency):
        timing = time_op(op, inputs, efficiency)
        if timing.bound == "compute":
            assert timing.compute_s >= timing.memory_s
        else:
            assert timing.memory_s > timing.compute_s


class TestThermalProperties:
    @given(
        power=st.floats(0.1, 50.0),
        resistance=st.floats(1.0, 30.0),
        capacity=st.floats(1.0, 100.0),
        dt=st.floats(0.1, 100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_overshoots_asymptote(self, power, resistance, capacity, dt):
        from repro.hardware.thermal import ThermalSimulator, ThermalSpec

        spec = ThermalSpec(r_passive_c_per_w=resistance, r_active_c_per_w=resistance,
                           c_j_per_c=capacity)
        sim = ThermalSimulator(spec)
        target = spec.steady_state_c(power, sim.ambient_c)
        for _ in range(50):
            sim.step(power, dt)
            assert sim.ambient_c - 1e-6 <= sim.temperature_c <= target + 1e-6

    @given(
        power=st.floats(0.1, 50.0),
        resistance=st.floats(1.0, 30.0),
        capacity=st.floats(1.0, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_energy_conservation_at_steady_state(self, power, resistance, capacity):
        """At equilibrium, heat out = power in: (T - Tamb)/R == P."""
        from repro.hardware.thermal import ThermalSimulator, ThermalSpec

        spec = ThermalSpec(r_passive_c_per_w=resistance, r_active_c_per_w=resistance,
                           c_j_per_c=capacity)
        sim = ThermalSimulator(spec)
        sim.step(power, 1e9)
        heat_out = (sim.temperature_c - sim.ambient_c) / resistance
        assert abs(heat_out - power) < 1e-6


class TestMeasurementProperties:
    @given(power=st.floats(0.1, 300.0), seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_analyzer_accuracy_always_held(self, power, seed):
        from repro.measurement.power_meter import PowerAnalyzer

        meter = PowerAnalyzer(seed=seed)
        sample = meter.sample(power)
        assert abs(sample.power_w - power) <= meter.accuracy_w + 1e-12

    @given(power=st.floats(0.1, 20.0), seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_multimeter_error_bounded(self, power, seed):
        from repro.measurement.power_meter import USBMultimeter

        sample = USBMultimeter(seed=seed).sample(power)
        # Compound worst case of the voltage and current terms.
        current = power / 5.0
        bound = (5.0 * 0.0005 + 0.02) * (current * 1.001 + 0.004) + \
                (current * 0.001 + 0.004) * 5.0
        assert abs(sample.power_w - power) <= bound + 1e-9
