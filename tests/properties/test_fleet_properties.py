"""Property-based tests of the fleet simulator (hypothesis).

The three invariants the fleet promises for *any* configuration:
conservation (every request is completed, dropped, or rejected — nothing
vanishes), queueing physics (a stationary single-node segment obeys
Little's law / Pollaczek-Khinchine within sampling tolerance), and seed
determinism (the same seed serializes to the same bytes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    ROUTER_POLICIES,
    AdmissionControl,
    FleetSimulation,
    PoolSpec,
    simulate_fleet,
)
from repro.runtime import Scenario
from repro.workloads import PoissonArrivals

_NANO = Scenario("ResNet-18", "Jetson Nano", "TensorRT")
_TX2 = Scenario("ResNet-18", "Jetson TX2", "PyTorch")


class TestFleetProperties:
    @given(
        replicas=st.integers(1, 3),
        max_batch=st.integers(1, 4),
        rate=st.floats(20.0, 250.0),
        policy=st.sampled_from(sorted(ROUTER_POLICIES)),
        limit=st.one_of(st.none(), st.integers(2, 16)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_per_pool_and_fleet_wide(
            self, replicas, max_batch, rate, policy, limit, seed):
        pools = [PoolSpec(name="nano", scenario=_NANO, replicas=replicas,
                          max_batch=max_batch),
                 PoolSpec(name="tx2", scenario=_TX2, replicas=1)]
        admission = (AdmissionControl(max_queue_per_node=limit)
                     if limit else None)
        stats = simulate_fleet(pools, PoissonArrivals(rate), requests=800,
                               seed=seed, epochs=64, router=policy,
                               admission=admission)
        assert stats.completed + stats.dropped + stats.rejected == 800
        for pool in stats.pools:
            assert pool.assigned == pool.completed + pool.dropped
        assert (sum(pool.assigned for pool in stats.pools)
                + stats.rejected == 800)

    @given(rho=st.floats(0.2, 0.7), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_littles_law_on_a_stationary_single_node(self, rho, seed):
        """A one-replica fleet is an M/D/1 queue: its mean sojourn must
        match Little's law with the Pollaczek-Khinchine queue length,
        W = s + rho * s / (2 * (1 - rho))."""
        simulation = FleetSimulation(
            [PoolSpec(name="nano", scenario=_NANO, replicas=1)], epochs=256)
        service_s = simulation.profiles["nano"].service_s
        arrivals = PoissonArrivals(rho / service_s, seed=seed).generate(2000.0)
        stats = simulation.run(arrivals, seed=seed)
        assert stats.completed == len(arrivals)
        expected_w = service_s + rho * service_s / (2 * (1 - rho))
        assert stats.sojourn.mean_s == pytest.approx(expected_w, rel=0.2)
        # Little's law on the server itself: busy fraction == lambda * s.
        assert stats.pools[0].utilization == pytest.approx(
            stats.throughput_rps * service_s, rel=1e-6)

    @given(
        seed=st.integers(0, 2**32),
        policy=st.sampled_from(sorted(ROUTER_POLICIES)),
    )
    @settings(max_examples=15, deadline=None)
    def test_same_seed_serializes_to_identical_bytes(self, seed, policy):
        pools = [PoolSpec(name="nano", scenario=_NANO, replicas=2,
                          max_batch=2)]
        reports = [simulate_fleet(pools, PoissonArrivals(60.0), requests=600,
                                  seed=seed, epochs=64,
                                  router=policy).to_json()
                   for _ in range(2)]
        assert reports[0] == reports[1]
