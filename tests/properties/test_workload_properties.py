"""Property-based tests of the serving simulation (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import PeriodicArrivals, PoissonArrivals, simulate_serving


class TestServingProperties:
    @given(
        rate=st.floats(1.0, 100.0),
        service=st.floats(1e-4, 0.5),
        horizon=st.floats(5.0, 30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_sojourn_at_least_service(self, rate, service, horizon):
        arrivals = PeriodicArrivals(rate).generate(horizon)
        stats = simulate_serving(arrivals, service)
        assert stats.p50_sojourn_s >= service - 1e-12
        assert stats.mean_sojourn_s >= service - 1e-12

    @given(
        rate=st.floats(1.0, 50.0),
        service=st.floats(1e-4, 0.5),
        horizon=st.floats(5.0, 30.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentiles_ordered(self, rate, service, horizon):
        arrivals = PoissonArrivals(rate, seed=1).generate(horizon)
        stats = simulate_serving(arrivals, service)
        assert (stats.p50_sojourn_s <= stats.p95_sojourn_s
                <= stats.p99_sojourn_s + 1e-12)

    @given(
        rate=st.floats(1.0, 50.0),
        service=st.floats(1e-4, 0.1),
        horizon=st.floats(5.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounded(self, rate, service, horizon):
        arrivals = PoissonArrivals(rate, seed=2).generate(horizon)
        stats = simulate_serving(arrivals, service)
        assert 0.0 < stats.utilization <= 1.0 + 1e-9

    @given(
        rate=st.floats(5.0, 50.0),
        horizon=st.floats(5.0, 20.0),
        slow_factor=st.floats(1.1, 5.0),
        service=st.floats(1e-4, 0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_slower_service_never_reduces_sojourn(self, rate, horizon, slow_factor, service):
        arrivals = PoissonArrivals(rate, seed=3).generate(horizon)
        fast = simulate_serving(arrivals, service)
        slow = simulate_serving(arrivals, service * slow_factor)
        assert slow.mean_sojourn_s >= fast.mean_sojourn_s - 1e-12

    @given(
        count=st.integers(1, 50),
        capacity=st.integers(0, 10),
        service=st.floats(1e-3, 0.1),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_accounting(self, count, capacity, service):
        """Simultaneous arrivals: exactly capacity+1 are admitted."""
        stats = simulate_serving(np.zeros(count), service, queue_capacity=capacity)
        assert stats.completed == min(count, capacity + 1)
        assert stats.completed + stats.dropped == count

    @given(
        rate=st.floats(1.0, 30.0),
        service=st.floats(1e-4, 0.01),
        horizon=st.floats(5.0, 15.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbounded_equals_huge_capacity(self, rate, service, horizon):
        arrivals = PoissonArrivals(rate, seed=4).generate(horizon)
        unbounded = simulate_serving(arrivals, service)
        capped = simulate_serving(arrivals, service, queue_capacity=10**6)
        assert unbounded.mean_sojourn_s == capped.mean_sojourn_s
        assert capped.dropped == 0
