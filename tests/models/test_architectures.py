"""Structural checks of the model definitions."""

import pytest

from repro.graphs import ops as O
from repro.models import load_model
from repro.models.resnet import resnet18, resnet50
from repro.models.vgg import vgg_s
from repro.models.yolo import tiny_yolo, yolov3


def _count(graph, op_type):
    return sum(1 for op in graph.ops if isinstance(op, op_type))


class TestResNet:
    def test_resnet18_conv_count(self):
        # 1 stem + 16 block convs + 3 downsample 1x1 convs = 20.
        assert _count(resnet18(), O.Conv2D) == 20

    def test_resnet50_uses_bottlenecks(self):
        # 1 stem + 16 blocks x 3 convs + 4 downsample convs = 53.
        assert _count(resnet50(), O.Conv2D) == 53

    def test_residual_adds_present(self):
        assert _count(resnet18(), O.Add) == 8
        assert _count(resnet50(), O.Add) == 16

    def test_final_spatial_is_7x7(self):
        graph = resnet18()
        gap = next(op for op in graph.ops if isinstance(op, O.GlobalPool2D))
        assert gap.inputs[0].output_shape.dims == (512, 7, 7)

    def test_classifier_width(self):
        dense = next(op for op in resnet50().ops if isinstance(op, O.Dense))
        assert dense.inputs[0].output_shape.numel == 2048


class TestVGG:
    def test_vgg16_has_13_convs_3_dense(self):
        graph = load_model("VGG16")
        assert _count(graph, O.Conv2D) == 13
        assert _count(graph, O.Dense) == 3

    def test_vgg19_has_16_convs(self):
        assert _count(load_model("VGG19"), O.Conv2D) == 16

    def test_no_batch_norm_in_vgg(self):
        assert _count(load_model("VGG16"), O.BatchNorm) == 0

    def test_vgg_s_rejects_other_inputs(self):
        with pytest.raises(ValueError):
            vgg_s(128)

    def test_vgg_s_32_collapses_to_global_pool(self):
        graph = vgg_s(32)
        assert _count(graph, O.GlobalPool2D) == 1

    def test_vgg_s_224_keeps_6x6_feature_map(self):
        graph = vgg_s(224)
        dense = next(op for op in graph.ops if isinstance(op, O.Dense))
        assert dense.inputs[0].output_shape.numel == 6 * 6 * 512


class TestMobileNets:
    def test_mobilenet_v1_has_13_depthwise(self):
        assert _count(load_model("MobileNet-v1"), O.DepthwiseConv2D) == 13

    def test_mobilenet_v2_has_17_blocks(self):
        assert _count(load_model("MobileNet-v2"), O.DepthwiseConv2D) == 17

    def test_mobilenet_v2_residuals(self):
        # Stride-1 same-channel blocks: 1+2+3+2+0 = 10 skip connections.
        assert _count(load_model("MobileNet-v2"), O.Add) == 10

    def test_relu6_used(self):
        kinds = {op.kind for op in load_model("MobileNet-v2").ops
                 if isinstance(op, O.Activation)}
        assert kinds == {"relu6"}


class TestInceptionXception:
    def test_inception_v4_concat_blocks(self):
        graph = load_model("Inception-v4")
        # Stem has 3 concats; 4 A + 7 B + 3 C blocks + 2 reductions = 16 more.
        assert _count(graph, O.Concat) == 19

    def test_inception_final_channels(self):
        gap = next(op for op in load_model("Inception-v4").ops
                   if isinstance(op, O.GlobalPool2D))
        assert gap.inputs[0].output_shape.channels == 1536

    def test_xception_middle_flow(self):
        graph = load_model("Xception")
        # Entry 6 + middle 8x3 + exit 4 separable convs = 34 depthwise.
        assert _count(graph, O.DepthwiseConv2D) == 34

    def test_xception_residuals(self):
        assert _count(load_model("Xception"), O.Add) == 12


class TestDetectionAndVideo:
    def test_yolov3_detection_scales(self):
        graph = yolov3()
        heads = [op for op in graph.ops
                 if isinstance(op, O.Conv2D) and op.out_channels == 255]
        assert len(heads) == 3
        strides = {op.output_shape.spatial for op in heads}
        assert strides == {(10, 10), (20, 20), (40, 40)}  # 320 input

    def test_yolov3_upsample_path(self):
        assert _count(yolov3(), O.Upsample2D) == 2
        assert _count(yolov3(), O.Concat) == 2

    def test_tiny_yolo_is_shallow(self):
        graph = tiny_yolo()
        assert _count(graph, O.Conv2D) == 9
        assert _count(graph, O.Add) == 0

    def test_ssd_has_detection_output(self):
        graph = load_model("SSD MobileNet-v1")
        det = [op for op in graph.ops if isinstance(op, O.DetectionOutput)]
        assert len(det) == 1
        assert det[0].num_anchors > 1000  # full anchor set accounted

    def test_c3d_conv3d_stack(self):
        graph = load_model("C3D")
        assert _count(graph, O.Conv3D) == 8
        assert _count(graph, O.Pool3D) == 5

    def test_c3d_classifier_input_8192(self):
        dense = next(op for op in load_model("C3D").ops if isinstance(op, O.Dense))
        assert dense.inputs[0].output_shape.numel == 8192


class TestAlexNetCifarNet:
    def test_alexnet_layer_counts(self):
        graph = load_model("AlexNet")
        assert _count(graph, O.Conv2D) == 5
        assert _count(graph, O.Dense) == 3
        assert _count(graph, O.LocalResponseNorm) == 2

    def test_alexnet_fc6_input(self):
        dense = next(op for op in load_model("AlexNet").ops if isinstance(op, O.Dense))
        assert dense.inputs[0].output_shape.numel == 256 * 6 * 6

    def test_cifarnet_small(self):
        graph = load_model("CifarNet 32x32")
        assert _count(graph, O.Conv2D) == 3
        assert graph.total_params < 1e6
