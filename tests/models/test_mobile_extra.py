"""SqueezeNet / ShuffleNet (related-work mobile models)."""

import pytest

from repro.graphs import ops as O
from repro.models import load_model


class TestSqueezeNet:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_model("SqueezeNet")

    def test_published_parameter_count(self, graph):
        # SqueezeNet v1.1: 1.23 M parameters (the "50x fewer" headline).
        assert graph.total_params / 1e6 == pytest.approx(1.235, rel=0.02)

    def test_eight_fire_modules(self, graph):
        # Each fire module contributes one concat.
        concats = [op for op in graph.ops if isinstance(op, O.Concat)]
        assert len(concats) == 8

    def test_no_dense_layers(self, graph):
        """SqueezeNet's classifier is a 1x1 conv + GAP, not an FC stack."""
        assert not any(isinstance(op, O.Dense) for op in graph.ops)

    def test_far_smaller_than_alexnet_similar_compute(self, graph):
        alexnet = load_model("AlexNet")
        assert graph.total_params < alexnet.total_params / 40
        assert graph.total_macs == pytest.approx(alexnet.total_macs, rel=0.6)


class TestShuffleNet:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_model("ShuffleNet")

    def test_published_scale(self, graph):
        # ShuffleNet 1x (g=3): ~1.9 M params, ~140 MMACs.
        assert graph.total_params / 1e6 == pytest.approx(1.87, rel=0.05)
        assert graph.total_macs / 1e6 == pytest.approx(146, rel=0.10)

    def test_sixteen_shuffle_units(self, graph):
        assert sum(1 for op in graph.ops if isinstance(op, O.DepthwiseConv2D)) == 16

    def test_grouped_pointwise_convs(self, graph):
        grouped = [op for op in graph.ops
                   if isinstance(op, O.Conv2D)
                   and not isinstance(op, O.DepthwiseConv2D)
                   and op.groups == 3]
        assert len(grouped) >= 16

    def test_stride2_units_concat_shortcut(self, graph):
        assert sum(1 for op in graph.ops if isinstance(op, O.Concat)) == 3

    def test_cheapest_imagenet_model_in_the_zoo(self, graph):
        for other in ("MobileNet-v2", "SqueezeNet", "ResNet-18"):
            assert graph.total_macs < load_model(other).total_macs


class TestDeployability:
    @pytest.mark.parametrize("model_name", ["SqueezeNet", "ShuffleNet"])
    def test_runs_on_edge_stacks(self, model_name, session_factory):
        for device, framework in (("Raspberry Pi 3B", "TFLite"),
                                  ("Jetson TX2", "PyTorch")):
            session = session_factory(model_name, device, framework)
            assert session.latency_s > 0
