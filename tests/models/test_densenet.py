"""DenseNet-121."""

import pytest

from repro.graphs import ops as O
from repro.models import load_model


class TestDenseNet121:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_model("DenseNet-121")

    def test_published_counts(self, graph):
        assert graph.total_params / 1e6 == pytest.approx(7.98, rel=0.01)
        assert graph.total_macs / 1e9 == pytest.approx(2.87, rel=0.01)

    def test_121_weighted_layers(self, graph):
        convs = sum(1 for op in graph.ops if isinstance(op, O.Conv2D))
        dense = sum(1 for op in graph.ops if isinstance(op, O.Dense))
        # 1 stem + 58x2 block convs + 3 transitions + classifier = 121.
        assert convs + dense == 121

    def test_dense_connectivity_via_concats(self, graph):
        concats = sum(1 for op in graph.ops if isinstance(op, O.Concat))
        assert concats == sum((6, 12, 24, 16))

    def test_channel_growth(self, graph):
        gap = next(op for op in graph.ops if isinstance(op, O.GlobalPool2D))
        assert gap.inputs[0].output_shape.channels == 1024

    def test_preactivation_order(self, graph):
        """BN precedes the convolutions it feeds (pre-activation)."""
        first_bn = next(op for op in graph.ops if isinstance(op, O.BatchNorm))
        stem = graph.op("conv_1")
        assert first_bn.inputs[0] is stem

    def test_liveness_dominates_weights_early(self, graph):
        """The densely-concatenated features make activations, not weights,
        the memory story — unlike VGG."""
        vgg = load_model("VGG16")
        densenet_ratio = graph.peak_activation_bytes() / graph.weight_bytes()
        vgg_ratio = vgg.peak_activation_bytes() / vgg.weight_bytes()
        assert densenet_ratio > 4 * vgg_ratio

    def test_deploys_everywhere_general(self, session_factory):
        for device, framework in (("Raspberry Pi 3B", "TensorFlow"),
                                  ("Jetson TX2", "PyTorch")):
            assert session_factory("DenseNet-121", device, framework).latency_s > 0
