"""Recurrent model zoo entries (future-work extension)."""

import pytest

from repro.core.errors import IncompatibleModelError
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import list_models, load_model
from repro.models.rnn import char_lstm, gru_encoder, ptb_lstm

RNN_MODELS = ("CharRNN-LSTM", "LSTM-PTB", "GRU-Encoder")


class TestZooRegistration:
    def test_registered(self):
        names = set(list_models())
        assert set(RNN_MODELS) <= names

    def test_metadata(self):
        for name in RNN_MODELS:
            graph = load_model(name)
            assert graph.metadata["recurrent"] is True
            assert graph.metadata["family"] == "rnn"


class TestParameterCounts:
    def test_char_lstm(self):
        graph = char_lstm()
        # emb 256x128 + LSTM(128->512) + LSTM(512->512) + fc 512x256.
        expected = (256 * 128
                    + 4 * (128 * 512 + 512 * 512 + 512)
                    + 4 * (512 * 512 + 512 * 512 + 512)
                    + 512 * 256 + 256)
        assert graph.total_params == expected

    def test_ptb_lstm_medium_scale(self):
        graph = ptb_lstm()
        assert graph.total_params / 1e6 == pytest.approx(19.8, rel=0.02)

    def test_gru_encoder(self):
        graph = gru_encoder()
        assert graph.total_params / 1e6 == pytest.approx(11.2, rel=0.02)

    def test_macs_linear_in_sequence_length(self):
        assert char_lstm(seq_len=256).total_macs == pytest.approx(
            2 * char_lstm(seq_len=128).total_macs, rel=0.01)


class TestDeploymentGates:
    def test_ncsdk_rejects_recurrent(self):
        with pytest.raises(IncompatibleModelError, match="recurrent"):
            load_framework("NCSDK").deploy(load_model("LSTM-PTB"),
                                           load_device("Movidius NCS"))

    def test_caffe_rejects_recurrent(self):
        with pytest.raises(IncompatibleModelError, match="recurrent"):
            load_framework("Caffe").deploy(load_model("LSTM-PTB"),
                                           load_device("Jetson TX2"))

    def test_darknet_rejects_recurrent(self):
        with pytest.raises(IncompatibleModelError):
            load_framework("DarkNet").deploy(load_model("CharRNN-LSTM"),
                                             load_device("Jetson TX2"))

    @pytest.mark.parametrize("framework_name", ["TensorFlow", "PyTorch", "TensorRT"])
    def test_modern_stacks_deploy_rnns(self, framework_name):
        device = load_device("Jetson TX2" if framework_name != "TensorRT" else "Jetson Nano")
        deployed = load_framework(framework_name).deploy(load_model("LSTM-PTB"), device)
        assert deployed.storage_mode == "resident"


class TestRecurrentPerformanceShape:
    def test_rnns_fill_gpus_poorly(self, session_factory):
        """Effective peak fraction collapses vs a CNN on the same stack."""
        rnn = session_factory("LSTM-PTB", "Jetson TX2", "PyTorch")
        cnn = session_factory("ResNet-50", "Jetson TX2", "PyTorch")

        def peak_fraction(session):
            rate = session.deployed.graph.total_macs / session.latency_s
            return rate / session.deployed.unit.peak(session.deployed.weight_dtype)

        assert peak_fraction(rnn) < peak_fraction(cnn) / 3

    def test_embedding_traffic_not_whole_table(self, session_factory):
        session = session_factory("LSTM-PTB", "Jetson TX2", "PyTorch")
        emb_timing = next(t for t in session.plan.timings
                          if t.op.category.value == "embedding")
        full_table_s = (session.deployed.graph.op("embedding_1").weight_bytes()
                        / session.deployed.device.memory.bandwidth_bytes_per_s)
        assert emb_timing.memory_s < full_table_s / 10
