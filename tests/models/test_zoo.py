"""Model registry behaviour."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.models import list_models, load_model


class TestRegistry:
    def test_all_table1_models_present(self):
        names = set(list_models())
        for expected in ("ResNet-18", "ResNet-50", "ResNet-101", "Xception",
                         "MobileNet-v1", "MobileNet-v2", "Inception-v4",
                         "AlexNet", "VGG16", "VGG19", "VGG-S 224x224",
                         "VGG-S 32x32", "CifarNet 32x32", "SSD MobileNet-v1",
                         "C3D", "YOLOv3", "TinyYolo"):
            assert expected in names

    def test_loads_are_fresh_instances(self):
        first = load_model("ResNet-18")
        second = load_model("ResNet-18")
        assert first is not second
        first.op("conv_1").weight_sparsity = 0.5
        assert second.op("conv_1").weight_sparsity == 0.0

    @pytest.mark.parametrize("alias,canonical", [
        ("resnet18", "ResNet-18"),
        ("ssd", "SSD MobileNet-v1"),
        ("yolo", "YOLOv3"),
        ("cifarnet", "CifarNet 32x32"),
    ])
    def test_aliases(self, alias, canonical):
        assert load_model(alias).metadata["zoo_name"] == canonical

    def test_unknown_model_suggests(self):
        with pytest.raises(UnknownEntryError):
            load_model("ResNet-1800")

    def test_metadata_flags(self):
        assert load_model("C3D").metadata["conv3d"] is True
        assert load_model("SSD MobileNet-v1").metadata["extra_image_library"] is True
        assert load_model("ResNet-18").metadata["finn_binarized_available"] is True
        assert load_model("ResNet-50").metadata["qat_available"] is True
        assert load_model("AlexNet").metadata["qat_available"] is False

    def test_every_model_builds_and_validates(self):
        for name in list_models():
            graph = load_model(name)
            assert graph.total_params > 0, name
            assert graph.total_macs > 0, name
            assert graph.inputs, name
            assert graph.outputs, name
