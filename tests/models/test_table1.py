"""Table I validation: parameters and FLOPs per model.

Tolerances are per-model: exact architectures (ResNet, VGG, MobileNet,
Inception) must land within a few percent of the paper; models where the
paper's own convention is irregular carry documented looser bounds (see
EXPERIMENTS.md for the full accounting).
"""

import pytest

from repro.models import load_model

# name -> (paper GFLOP, paper params M, flop tolerance, param tolerance,
#          flop convention multiplier applied to our MAC count)
TABLE1 = {
    "ResNet-18": (1.83, 11.69, 0.02, 0.01, 1),
    "ResNet-50": (4.14, 25.56, 0.02, 0.01, 1),
    "ResNet-101": (7.87, 44.55, 0.02, 0.01, 1),
    "Xception": (4.65, 22.91, 0.03, 0.01, 1),
    "MobileNet-v2": (0.32, 3.53, 0.05, 0.01, 1),
    "Inception-v4": (12.27, 42.71, 0.02, 0.01, 1),
    "VGG16": (15.47, 138.36, 0.01, 0.001, 1),
    "VGG19": (19.63, 143.66, 0.01, 0.001, 1),
    "VGG-S 224x224": (3.27, 102.91, 0.08, 0.001, 1),
    "SSD MobileNet-v1": (0.98, 4.23, 0.20, 0.15, 1),
    # DarkNet/Caffe count multiply and add separately (2 ops per MAC):
    "YOLOv3": (38.97, 62.00, 0.02, 0.01, 2),
    "C3D": (57.99, 89.00, 0.02, 0.15, 2),
}

# Known paper irregularities — we assert OUR regression values instead
# (documented in EXPERIMENTS.md):
REGRESSION = {
    "AlexNet": (0.717, 61.10),  # paper prints 102.14 M params; canonical is 61.1 M
    "TinyYolo": (3.568, 16.17),  # at DarkNet's 416 input; paper's 5.56 G is unmatchable
    "VGG-S 32x32": (0.066, 29.51),
    "CifarNet 32x32": (0.0147, 0.771),
    "MobileNet-v1": (0.579, 4.232),
}


class TestTable1Exact:
    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_flops_match_paper(self, name):
        paper_gflop, _params, tol, _ptol, multiplier = TABLE1[name]
        graph = load_model(name)
        ours = multiplier * graph.total_macs / 1e9
        assert ours == pytest.approx(paper_gflop, rel=tol), (
            f"{name}: {ours:.3f} GFLOP vs paper {paper_gflop}"
        )

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_params_match_paper(self, name):
        _gflop, paper_params, _tol, ptol, _mult = TABLE1[name]
        graph = load_model(name)
        ours = graph.total_params / 1e6
        assert ours == pytest.approx(paper_params, rel=ptol), (
            f"{name}: {ours:.3f} M params vs paper {paper_params}"
        )


class TestTable1Regression:
    @pytest.mark.parametrize("name", sorted(REGRESSION))
    def test_documented_values_stable(self, name):
        gflop, params = REGRESSION[name]
        graph = load_model(name)
        assert graph.total_macs / 1e9 == pytest.approx(gflop, rel=0.01)
        assert graph.total_params / 1e6 == pytest.approx(params, rel=0.01)


class TestFigure1Ordering:
    def test_classification_models_sorted_like_the_paper(self):
        """Figure 1 sorts by FLOP/Param; the paper order must hold for the
        models whose FLOP convention is unambiguous."""
        paper_order = [
            "VGG-S 32x32", "AlexNet", "VGG-S 224x224",
            "MobileNet-v2", "VGG16", "VGG19", "ResNet-18", "ResNet-50",
            "ResNet-101", "Xception", "Inception-v4",
        ]
        intensities = [load_model(name).flop_per_param for name in paper_order]
        assert intensities == sorted(intensities)

    def test_c3d_is_most_compute_intense(self):
        """C3D tops Figure 1 (734 FLOP/param); with the 2x convention our
        MAC-based intensity must still exceed every classification model."""
        c3d = load_model("C3D").flop_per_param
        for name in ("VGG16", "ResNet-101", "Inception-v4", "Xception"):
            assert c3d > load_model(name).flop_per_param
