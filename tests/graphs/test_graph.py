"""Graph container and builder behaviour."""

import pytest

from repro.graphs import Graph, GraphBuilder, Input, TensorShape
from repro.graphs import ops as O
from repro.graphs.tensor import DType


def _tiny_graph() -> Graph:
    b = GraphBuilder("tiny")
    x = b.input((3, 8, 8))
    x = b.conv2d(x, 4, 3, use_bias=False)
    x = b.relu(x)
    x = b.global_avg_pool(x)
    x = b.dense(x, 10)
    b.softmax(x)
    return b.build()


class TestGraphStructure:
    def test_topological_order_enforced(self):
        inp = O.Input("in", TensorShape(3, 8, 8))
        conv = O.Conv2D("c", [inp], 4, 3)
        with pytest.raises(ValueError, match="topologically"):
            Graph("bad", [conv, inp])

    def test_duplicate_names_rejected(self):
        inp = O.Input("x", TensorShape(4))
        dense = O.Dense("x", [inp], 2)
        with pytest.raises(ValueError, match="duplicate"):
            Graph("bad", [inp, dense])

    def test_requires_an_input(self):
        with pytest.raises(ValueError, match="no Input"):
            Graph("bad", [])

    def test_inputs_and_outputs(self):
        graph = _tiny_graph()
        assert len(graph.inputs) == 1
        outputs = graph.outputs
        assert len(outputs) == 1
        assert isinstance(outputs[0], O.Softmax)

    def test_op_lookup(self):
        graph = _tiny_graph()
        assert isinstance(graph.op("dense_1"), O.Dense)
        with pytest.raises(KeyError):
            graph.op("nonexistent")

    def test_len_and_iter(self):
        graph = _tiny_graph()
        assert len(graph) == len(list(graph)) == 6


class TestGraphAccounting:
    def test_totals(self):
        graph = _tiny_graph()
        conv_params = 3 * 3 * 3 * 4
        dense_params = 4 * 10 + 10
        assert graph.total_params == conv_params + dense_params
        assert graph.total_macs > 0

    def test_flop_per_param(self):
        graph = _tiny_graph()
        assert graph.flop_per_param == pytest.approx(graph.total_macs / graph.total_params)

    def test_flop_per_param_requires_params(self):
        b = GraphBuilder("noparams")
        x = b.input((4,))
        b.relu(x)
        with pytest.raises(ValueError, match="no parameters"):
            b.build().flop_per_param

    def test_weight_bytes_override_dtype(self):
        graph = _tiny_graph()
        assert graph.weight_bytes(DType.INT8) * 4 == pytest.approx(
            graph.weight_bytes(DType.FP32), abs=4)

    def test_footprint_includes_weights_and_activations(self):
        graph = _tiny_graph()
        assert graph.inference_footprint_bytes() == (
            graph.weight_bytes() + graph.peak_activation_bytes()
        )

    def test_clone_is_independent(self):
        graph = _tiny_graph()
        clone = graph.clone()
        clone.op("conv_1").weight_sparsity = 0.9
        assert graph.op("conv_1").weight_sparsity == 0.0

    def test_ops_by_category(self):
        grouped = _tiny_graph().ops_by_category()
        assert len(grouped[O.OpCategory.CONV]) == 1
        assert len(grouped[O.OpCategory.DENSE]) == 1

    def test_schedulable_excludes_inputs(self):
        graph = _tiny_graph()
        assert all(not isinstance(op, Input) for op in graph.schedulable_ops())

    def test_summary_mentions_name(self):
        assert "tiny" in _tiny_graph().summary()


class TestLiveness:
    def test_sequential_chain_peak_is_two_tensors(self):
        b = GraphBuilder("chain")
        x = b.input((1, 4, 4))  # 64 B
        x = b.conv2d(x, 1, 1, use_bias=False)  # 64 B
        x = b.relu(x)
        b.build()
        graph = b.build()
        # At any point only producer + consumer tensors are live.
        assert graph.peak_activation_bytes() == 2 * 64

    def test_residual_keeps_shortcut_alive(self):
        b = GraphBuilder("res")
        x = b.input((1, 4, 4))
        branch = b.conv2d(x, 1, 1, use_bias=False)
        branch = b.conv2d(branch, 1, 1, use_bias=False)
        b.add(branch, x)
        graph = b.build()
        # Input stays live across both convs: 3 tensors at the peak.
        assert graph.peak_activation_bytes() == 3 * 64

    def test_fused_chain_materializes_one_buffer(self):
        from repro.graphs.transforms import fuse_graph

        b = GraphBuilder("fuse")
        x = b.input((1, 4, 4))
        x = b.conv_bn_act(x, 1, 1)
        x = b.conv_bn_act(x, 1, 1)
        graph = b.build()
        fused = fuse_graph(graph)
        # Unfused peak: conv out + bn out live simultaneously (+input);
        # fused peak: one buffer per chain (+input).
        assert fused.peak_activation_bytes() <= graph.peak_activation_bytes()
        total_io_fused = sum(op.output_bytes() for op in fused.schedulable_ops())
        total_io = sum(op.output_bytes() for op in graph.schedulable_ops())
        assert total_io_fused < total_io


class TestBuilder:
    def test_auto_names_are_unique(self):
        b = GraphBuilder("names")
        x = b.input((3, 8, 8))
        first = b.conv2d(x, 4, 3)
        second = b.conv2d(first, 4, 3)
        assert first.name != second.name

    def test_explicit_name_respected(self):
        b = GraphBuilder("names")
        x = b.input((3, 8, 8))
        conv = b.conv2d(x, 4, 3, name="stem")
        assert conv.name == "stem"

    def test_conv_bn_act_composite(self):
        b = GraphBuilder("composite")
        x = b.input((3, 8, 8))
        out = b.conv_bn_act(x, 8, 3)
        graph_ops = b.build().ops
        assert isinstance(out, O.Activation)
        assert any(isinstance(op, O.BatchNorm) for op in graph_ops)
        conv = next(op for op in graph_ops if isinstance(op, O.Conv2D))
        assert not conv.use_bias  # bias folds into BN

    def test_conv_bn_act_linear_skips_activation(self):
        b = GraphBuilder("composite")
        x = b.input((3, 8, 8))
        out = b.conv_bn_act(x, 8, 3, act="linear")
        assert isinstance(out, O.BatchNorm)

    def test_dw_bn_act_composite(self):
        b = GraphBuilder("composite")
        x = b.input((8, 8, 8))
        out = b.dw_bn_act(x, 3)
        assert isinstance(out, O.Activation)
        assert out.output_shape.channels == 8

    def test_metadata_propagates(self):
        b = GraphBuilder("meta", metadata={"task": "demo"})
        b.input((4,))
        assert b.build().metadata["task"] == "demo"
