"""Operator cost accounting: shapes, parameters and MAC counts."""

import pytest

from repro.graphs import ops as O
from repro.graphs.tensor import DType, TensorShape


def _input(shape=(3, 224, 224)) -> O.Input:
    return O.Input("in", TensorShape(*shape))


class TestConv2D:
    def test_params_and_macs(self):
        conv = O.Conv2D("c", [_input((3, 32, 32))], out_channels=16, kernel=3)
        assert conv.output_shape.dims == (16, 32, 32)
        assert conv.params == 3 * 3 * 3 * 16 + 16
        assert conv.macs == 3 * 3 * 3 * 16 * 32 * 32

    def test_no_bias(self):
        conv = O.Conv2D("c", [_input((3, 8, 8))], 4, 1, use_bias=False)
        assert conv.params == 3 * 4

    def test_stride_halves_output(self):
        conv = O.Conv2D("c", [_input()], 64, 7, stride=2, padding="same")
        assert conv.output_shape.dims == (64, 112, 112)

    def test_grouped_conv_divides_weights(self):
        full = O.Conv2D("c", [_input((8, 4, 4))], 8, 3, use_bias=False)
        grouped = O.Conv2D("g", [_input((8, 4, 4))], 8, 3, groups=4, use_bias=False)
        assert grouped.params == full.params // 4
        assert grouped.macs == full.macs // 4

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError, match="groups"):
            O.Conv2D("c", [_input((3, 8, 8))], 4, 3, groups=2)

    def test_rank_mismatch_rejected(self):
        flat = O.Input("f", TensorShape(100))
        with pytest.raises(ValueError, match="C, H, W"):
            O.Conv2D("c", [flat], 4, 3)

    def test_asymmetric_kernel(self):
        conv = O.Conv2D("c", [_input((64, 17, 17))], 64, (1, 7), use_bias=False)
        assert conv.params == 1 * 7 * 64 * 64
        assert conv.output_shape.dims == (64, 17, 17)


class TestDepthwiseConv2D:
    def test_one_filter_per_channel(self):
        dw = O.DepthwiseConv2D("d", [_input((32, 16, 16))], 3, use_bias=False)
        assert dw.params == 3 * 3 * 32
        assert dw.output_shape.channels == 32
        assert dw.groups == 32

    def test_channel_multiplier(self):
        dw = O.DepthwiseConv2D("d", [_input((8, 4, 4))], 3, channel_multiplier=2,
                               use_bias=False)
        assert dw.output_shape.channels == 16


class TestConv3D:
    def test_video_shape_and_macs(self):
        video = O.Input("v", TensorShape(3, 12, 112, 112))
        conv = O.Conv3D("c", [video], 64, 3, use_bias=False)
        assert conv.output_shape.dims == (64, 12, 112, 112)
        assert conv.macs == 27 * 3 * 64 * 12 * 112 * 112

    def test_requires_rank4(self):
        with pytest.raises(ValueError, match="C, T, H, W"):
            O.Conv3D("c", [_input()], 64, 3)


class TestDense:
    def test_params_and_macs(self):
        flat = O.Input("f", TensorShape(512))
        dense = O.Dense("d", [flat], 1000)
        assert dense.params == 512 * 1000 + 1000
        assert dense.macs == 512 * 1000

    def test_flattens_input_features(self):
        dense = O.Dense("d", [_input((2, 3, 4))], 10, use_bias=False)
        assert dense.params == 24 * 10


class TestBatchNorm:
    def test_learnable_vs_buffer_params(self):
        bn = O.BatchNorm("b", [_input((64, 8, 8))])
        assert bn.params == 128  # scale + shift
        assert bn.buffer_params == 128  # running mean + var
        assert bn.macs == 64 * 8 * 8


class TestActivation:
    def test_pointwise_cost(self):
        act = O.Activation("a", [_input((4, 4, 4))], "relu")
        assert act.macs == 64
        assert act.output_shape.dims == (4, 4, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="activation kind"):
            O.Activation("a", [_input()], "quantum")


class TestPooling:
    def test_max_pool_shape(self):
        pool = O.Pool2D("p", [_input((64, 112, 112))], 3, stride=2, padding="same")
        assert pool.output_shape.dims == (64, 56, 56)

    def test_stride_defaults_to_kernel(self):
        pool = O.Pool2D("p", [_input((8, 8, 8))], 2)
        assert pool.output_shape.dims == (8, 4, 4)

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="max.*avg"):
            O.Pool2D("p", [_input()], 2, kind="median")

    def test_global_pool_collapses_spatial(self):
        gap = O.GlobalPool2D("g", [_input((512, 7, 7))])
        assert gap.output_shape.dims == (512,)
        assert gap.macs == 512 * 49

    def test_pool3d_ceil_mode(self):
        video = O.Input("v", TensorShape(512, 2, 7, 7))
        pool = O.Pool3D("p", [video], (2, 2, 2), ceil_mode=True)
        assert pool.output_shape.dims == (512, 1, 4, 4)


class TestStructuralOps:
    def test_add_requires_matching_shapes(self):
        a, b = _input((4, 8, 8)), _input((4, 8, 8))
        add = O.Add("s", [a, b])
        assert add.output_shape.dims == (4, 8, 8)
        with pytest.raises(ValueError, match="share a shape"):
            O.Add("bad", [a, _input((2, 8, 8))])

    def test_add_needs_two_inputs(self):
        with pytest.raises(ValueError):
            O.Add("s", [_input()])

    def test_concat_sums_channels(self):
        cat = O.Concat("c", [_input((3, 8, 8)), _input((5, 8, 8))])
        assert cat.output_shape.dims == (8, 8, 8)

    def test_concat_requires_matching_spatial(self):
        with pytest.raises(ValueError, match="spatial"):
            O.Concat("c", [_input((3, 8, 8)), _input((3, 4, 4))])

    def test_flatten(self):
        flat = O.Flatten("f", [_input((2, 3, 4))])
        assert flat.output_shape.dims == (24,)

    def test_reshape_checks_element_count(self):
        reshaped = O.Reshape("r", [_input((2, 3, 4))], TensorShape(6, 4))
        assert reshaped.output_shape.dims == (6, 4)
        with pytest.raises(ValueError, match="reshape"):
            O.Reshape("bad", [_input((2, 3, 4))], TensorShape(5, 5))

    def test_dropout_is_free_identity(self):
        drop = O.Dropout("d", [_input((10,))], rate=0.5)
        assert drop.macs == 0
        assert drop.output_shape.dims == (10,)
        with pytest.raises(ValueError):
            O.Dropout("bad", [_input((10,))], rate=1.0)

    def test_upsample_scales_spatial(self):
        up = O.Upsample2D("u", [_input((16, 7, 7))], factor=2)
        assert up.output_shape.dims == (16, 14, 14)

    def test_pad_grows_spatial(self):
        pad = O.Pad("p", [_input((3, 10, 10))], (1, 2))
        assert pad.output_shape.dims == (3, 12, 14)


class TestAnnotations:
    def test_weight_bytes_follow_dtype(self):
        conv = O.Conv2D("c", [_input((3, 8, 8))], 8, 3, use_bias=False)
        fp32 = conv.weight_bytes()
        conv.weight_dtype = DType.INT8
        assert conv.weight_bytes() == fp32 // 4

    def test_sparsity_reduces_effective_costs(self):
        conv = O.Conv2D("c", [_input((3, 8, 8))], 8, 3, use_bias=False)
        conv.weight_sparsity = 0.75
        assert conv.effective_macs(exploit_sparsity=True) == pytest.approx(conv.macs * 0.25, abs=1)
        assert conv.effective_weight_bytes(exploit_sparsity=True) == pytest.approx(
            conv.weight_bytes() * 0.25, abs=1)
        # A framework that cannot exploit sparsity pays full cost.
        assert conv.effective_macs(exploit_sparsity=False) == conv.macs

    def test_io_bytes_follow_act_dtype(self):
        conv = O.Conv2D("c", [_input((3, 8, 8))], 8, 3, use_bias=False)
        fp32_out = conv.output_bytes()
        conv.act_dtype = DType.FP16
        assert conv.output_bytes() == fp32_out // 2

    def test_detection_output_cost_scales_with_anchors(self):
        head = _input((75, 10, 10))
        det = O.DetectionOutput("d", [head], num_anchors=1917, num_classes=21)
        assert det.macs == 1917 * O.DetectionOutput.MACS_PER_ANCHOR
