"""Symbolic dimension algebra: normal form, folding, evaluation, rendering."""

import pytest

from repro.graphs.symbolic import (
    SymDim,
    UnboundDimensionError,
    ceil_div,
    dim,
    evaluate_dim,
    floor_div,
    free_symbols,
    is_concrete,
    prod_dims,
)


class TestNormalForm:
    def test_like_terms_collapse(self):
        n = dim("N")
        assert n * 2 + n == 3 * n
        assert hash(n * 2 + n) == hash(3 * n)

    def test_constants_fold_to_plain_int(self):
        n = dim("N")
        assert n - n == 0
        assert isinstance(n - n, int)
        assert (n + 5) - n == 5
        assert 0 * n == 0

    def test_pure_constant_symdim_is_rejected(self):
        with pytest.raises(ValueError):
            SymDim(7, ())

    def test_commutative_products_are_equal(self):
        h, w = dim("H"), dim("W")
        assert h * w == w * h
        assert hash(h * w) == hash(w * h)

    def test_distribution_over_sums(self):
        n, m = dim("N"), dim("M")
        assert (n + 2) * (m + 3) == n * m + 3 * n + 2 * m + 6

    def test_dim_name_must_be_identifier(self):
        with pytest.raises(ValueError):
            dim("2bad")
        with pytest.raises(ValueError):
            dim("")


class TestFloorDivision:
    def test_exact_division_folds(self):
        n = dim("N")
        assert (4 * n) // 2 == 2 * n
        assert (4 * n + 6) // 2 == 2 * n + 3

    def test_inexact_division_becomes_opaque_atom(self):
        n = dim("N")
        out = (n + 1) // 2
        assert isinstance(out, SymDim)
        assert out.evaluate({"N": 5}) == 3
        assert out.evaluate({"N": 4}) == 2

    def test_ceil_div_normalizes_to_floor_form(self):
        h = dim("H")
        assert ceil_div(h, 2) == (h + 1) // 2
        assert ceil_div(h, 1) == h
        for value in range(1, 20):
            assert evaluate_dim(ceil_div(h, 3), {"H": value}) == -(-value // 3)

    def test_division_by_one_is_identity(self):
        n = dim("N")
        assert n // 1 is n

    def test_non_positive_denominator_raises(self):
        n = dim("N")
        with pytest.raises(ValueError):
            n // 0
        with pytest.raises(ValueError):
            floor_div(n, -2)
        with pytest.raises(ValueError):
            floor_div(10, 0)


class TestEvaluation:
    def test_affine_evaluation(self):
        n = dim("N")
        assert (3 * n + 7).evaluate({"N": 5}) == 22

    def test_nested_floordiv_evaluation(self):
        h = dim("H")
        # Two stride-2 "same" convs: ceil(ceil(H/2)/2).
        out = ceil_div(ceil_div(h, 2), 2)
        assert out.evaluate({"H": 224}) == 56
        assert out.evaluate({"H": 15}) == 4

    def test_missing_binding_raises_unbound(self):
        n = dim("N")
        with pytest.raises(UnboundDimensionError):
            (n + 1).evaluate({})

    def test_evaluate_dim_passes_ints_through(self):
        assert evaluate_dim(13, {}) == 13
        assert evaluate_dim(dim("N"), {"N": 2}) == 2


class TestHelpers:
    def test_free_symbols(self):
        n, seq = dim("N"), dim("SEQ")
        assert free_symbols(n * seq + 1) == {"N", "SEQ"}
        assert free_symbols(ceil_div(seq, 2)) == {"SEQ"}
        assert free_symbols(42) == frozenset()

    def test_is_concrete(self):
        assert is_concrete(3)
        assert not is_concrete(dim("N"))

    def test_prod_dims_stays_int_when_concrete(self):
        assert prod_dims((2, 3, 4)) == 24
        assert isinstance(prod_dims((2, 3, 4)), int)
        n = dim("N")
        assert prod_dims((n, 3, 4)) == 12 * n

    def test_symdim_is_truthy(self):
        assert bool(dim("N"))


class TestRendering:
    def test_repr_is_deterministic(self):
        n = dim("N")
        assert repr(3 * n) == "3*N"
        assert repr(2 * n + 3) == "2*N + 3"
        assert repr(n - 1) == "N - 1"
        assert repr(-n) == "-N"

    def test_floordiv_renders_parenthesized(self):
        h = dim("H")
        assert repr((h + 2) // 2) == "(H + 2)//2"

    def test_product_renders_sorted(self):
        h, w = dim("H"), dim("W")
        assert repr(h * w) == repr(w * h) == "H*W"
