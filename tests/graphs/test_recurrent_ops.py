"""Recurrent/embedding operators (the future-work substrate)."""

import pytest

from repro.graphs import GraphBuilder
from repro.graphs import ops as O
from repro.graphs.tensor import DType, TensorShape


def _tokens(seq_len=32) -> O.Input:
    return O.Input("tokens", TensorShape(seq_len))


class TestEmbedding:
    def test_shapes_and_params(self):
        emb = O.Embedding("e", [_tokens(32)], vocab_size=1000, dim=64)
        assert emb.output_shape.dims == (32, 64)
        assert emb.params == 1000 * 64
        assert emb.macs == 0

    def test_traffic_only_touched_rows(self):
        emb = O.Embedding("e", [_tokens(32)], vocab_size=1000, dim=64)
        assert emb.traffic_weight_bytes(False) == 32 * 64 * 4
        assert emb.weight_bytes() == 1000 * 64 * 4  # full table resident

    def test_traffic_follows_dtype(self):
        emb = O.Embedding("e", [_tokens(10)], vocab_size=100, dim=8)
        emb.weight_dtype = DType.FP16
        assert emb.traffic_weight_bytes(False) == 10 * 8 * 2

    def test_requires_token_sequence(self):
        image = O.Input("img", TensorShape(3, 8, 8))
        with pytest.raises(ValueError, match="token sequence"):
            O.Embedding("e", [image], vocab_size=10, dim=4)

    def test_positive_dims_required(self):
        with pytest.raises(ValueError):
            O.Embedding("e", [_tokens()], vocab_size=0, dim=4)


class TestLSTM:
    def _lstm(self, seq=35, features=650, hidden=650, **kw) -> O.LSTM:
        emb = O.Embedding("e", [_tokens(seq)], vocab_size=100, dim=features)
        return O.LSTM("l", [emb], hidden=hidden, **kw)

    def test_four_gate_params(self):
        lstm = self._lstm(features=128, hidden=256)
        assert lstm.params == 4 * (128 * 256 + 256 * 256 + 256)

    def test_macs_scale_with_sequence_length(self):
        short = self._lstm(seq=10)
        long = self._lstm(seq=20)
        assert long.macs == 2 * short.macs

    def test_return_sequences_shapes(self):
        assert self._lstm().output_shape.dims == (35, 650)
        assert self._lstm(return_sequences=False).output_shape.dims == (650,)

    def test_parallel_macs_is_one_timestep(self):
        lstm = self._lstm(seq=35)
        assert lstm.parallel_macs == pytest.approx(lstm.macs / 35, abs=1)

    def test_category(self):
        assert self._lstm().category is O.OpCategory.RECURRENT

    def test_requires_sequence_input(self):
        flat = O.Input("f", TensorShape(100))
        with pytest.raises(ValueError, match="T, features"):
            O.LSTM("l", [flat], hidden=10)

    def test_positive_hidden(self):
        with pytest.raises(ValueError):
            self._lstm(hidden=0)


class TestGRU:
    def test_three_gates_vs_lstm_four(self):
        emb = O.Embedding("e", [_tokens(8)], vocab_size=10, dim=16)
        gru = O.GRU("g", [emb], hidden=32)
        lstm = O.LSTM("l", [emb], hidden=32)
        assert gru.params == pytest.approx(lstm.params * 3 / 4)


class TestLastTimestep:
    def test_selects_hidden_vector(self):
        emb = O.Embedding("e", [_tokens(8)], vocab_size=10, dim=16)
        lstm = O.LSTM("l", [emb], hidden=32)
        last = O.LastTimestep("last", [lstm])
        assert last.output_shape.dims == (32,)

    def test_requires_rank_two(self):
        with pytest.raises(ValueError, match="T, H"):
            O.LastTimestep("last", [_tokens(8)])


class TestBuilderIntegration:
    def test_rnn_builder_chain(self):
        b = GraphBuilder("rnn")
        x = b.input((16,))
        x = b.embedding(x, 100, 32)
        x = b.lstm(x, 64)
        x = b.gru(x, 64, return_sequences=False)
        x = b.dense(x, 100)
        graph = b.build()
        assert graph.total_params > 0
        assert graph.outputs[0].output_shape.dims == (100,)
