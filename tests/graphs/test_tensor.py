"""TensorShape, DType and spatial arithmetic."""

import pytest

from repro.graphs.tensor import (
    DType,
    TensorShape,
    conv_output_length,
    pool_output_length,
)


class TestTensorShape:
    def test_basic_properties(self):
        shape = TensorShape(3, 224, 224)
        assert shape.rank == 3
        assert shape.numel == 3 * 224 * 224
        assert shape.channels == 3
        assert shape.spatial == (224, 224)

    def test_tuple_constructor(self):
        assert TensorShape((64, 56, 56)).dims == (64, 56, 56)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TensorShape()

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive_dims(self, bad):
        with pytest.raises(ValueError):
            TensorShape(3, bad, 224)

    def test_bytes_per_dtype(self):
        shape = TensorShape(10)
        assert shape.bytes(DType.FP32) == 40
        assert shape.bytes(DType.FP16) == 20
        assert shape.bytes(DType.INT8) == 10
        assert shape.bytes(DType.BINARY) == 2  # ceil(10/8)

    def test_with_channels(self):
        assert TensorShape(3, 8, 8).with_channels(64).dims == (64, 8, 8)

    def test_flattened(self):
        assert TensorShape(2, 3, 4).flattened().dims == (24,)

    def test_iteration_and_indexing(self):
        shape = TensorShape(1, 2, 3)
        assert list(shape) == [1, 2, 3]
        assert shape[1] == 2
        assert len(shape) == 3

    def test_equality_and_hash(self):
        assert TensorShape(3, 4) == TensorShape(3, 4)
        assert hash(TensorShape(3, 4)) == hash(TensorShape(3, 4))


class TestDType:
    def test_bits(self):
        assert DType.FP32.bits == 32
        assert DType.BINARY.bits == 1

    def test_bytes_fractional_for_binary(self):
        assert DType.BINARY.bytes == pytest.approx(0.125)


class TestConvOutputLength:
    def test_same_padding_matches_ceil(self):
        assert conv_output_length(224, 7, 2, "same") == 112
        assert conv_output_length(35, 3, 1, "same") == 35

    def test_valid_padding(self):
        assert conv_output_length(299, 3, 2, "valid") == 149
        assert conv_output_length(147, 3, 1, "valid") == 145

    def test_explicit_padding_matches_pytorch(self):
        # AlexNet conv1: 224 input, k=11, s=4, pad=2 -> 55
        assert conv_output_length(224, 11, 4, 2) == 55

    def test_dilation_shrinks_output(self):
        assert conv_output_length(32, 3, 1, "valid", dilation=2) == 28

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            conv_output_length(10, 3, 1, -1)

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError):
            conv_output_length(2, 7, 1, "valid")

    def test_unknown_padding_spec_rejected(self):
        with pytest.raises(ValueError):
            conv_output_length(10, 3, 1, "weird")


class TestPoolOutputLength:
    def test_floor_mode(self):
        assert pool_output_length(112, 3, 3, 0) == 37

    def test_ceil_mode_c3d_spatial_path(self):
        # C3D: 7 -> 4 with 2x2 stride-2 ceil pooling.
        assert pool_output_length(7, 2, 2, 0, ceil_mode=True) == 4
        assert pool_output_length(7, 2, 2, 0, ceil_mode=False) == 3

    def test_same_padding(self):
        assert pool_output_length(112, 3, 2, "same") == 56

    def test_collapse_rejected(self):
        with pytest.raises(ValueError):
            pool_output_length(1, 3, 2, 0)
