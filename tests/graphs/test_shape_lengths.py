"""Conv/pool length helpers: edge-case audit pins + hypothesis properties.

Two laws every helper must satisfy for all inputs:

* a derived length is strictly positive (collapse raises instead of
  returning garbage);
* the concrete path and the symbolic path agree — building the length
  symbolically and evaluating at the concrete binding gives the same
  number the concrete path returns, for every padding spec and mode.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.symbolic import dim, evaluate_dim
from repro.graphs.tensor import conv_output_length, pool_output_length

paddings = st.one_of(st.sampled_from(["same", "valid"]), st.integers(0, 3))


class TestEdgeCaseAudit:
    def test_negative_padding_rejected_by_conv(self):
        with pytest.raises(ValueError, match="non-negative"):
            conv_output_length(32, 3, 1, -1)

    def test_negative_padding_rejected_by_pool(self):
        with pytest.raises(ValueError, match="non-negative"):
            pool_output_length(32, 2, 2, -1)

    def test_unsupported_padding_spec_rejected(self):
        with pytest.raises(ValueError, match="unsupported padding"):
            conv_output_length(32, 3, 1, "full")
        with pytest.raises(ValueError, match="unsupported padding"):
            pool_output_length(32, 2, 2, "full")

    def test_collapsed_conv_raises(self):
        with pytest.raises(ValueError, match="collapsed"):
            conv_output_length(2, 7, 1, "valid")

    def test_collapsed_pool_raises(self):
        with pytest.raises(ValueError, match="collapsed"):
            pool_output_length(1, 3, 1, "valid")

    def test_ceil_mode_rounds_window_count_up(self):
        # C3D's temporal pool: 16 frames, kernel 2, stride 2 -> 8 either way;
        # an odd length picks up the partial window only under ceil_mode.
        assert pool_output_length(7, 2, 2, "valid", ceil_mode=False) == 3
        assert pool_output_length(7, 2, 2, "valid", ceil_mode=True) == 4

    def test_dilation_grows_effective_kernel(self):
        assert conv_output_length(32, 3, 1, "valid", dilation=2) == 28


class TestDerivedLengthPositive:
    @given(length=st.integers(1, 512), kernel=st.integers(1, 11),
           stride=st.integers(1, 4), padding=paddings,
           dilation=st.integers(1, 3))
    def test_conv_length_positive_or_collapse(self, length, kernel, stride,
                                              padding, dilation):
        try:
            out = conv_output_length(length, kernel, stride, padding, dilation)
        except ValueError:
            return  # collapse is reported, never returned
        assert out >= 1

    @given(length=st.integers(1, 512), kernel=st.integers(1, 11),
           stride=st.integers(1, 4), padding=paddings,
           ceil_mode=st.booleans())
    def test_pool_length_positive_or_collapse(self, length, kernel, stride,
                                              padding, ceil_mode):
        try:
            out = pool_output_length(length, kernel, stride, padding, ceil_mode)
        except ValueError:
            return
        assert out >= 1


class TestConcreteMatchesSymbolic:
    @given(length=st.integers(1, 512), kernel=st.integers(1, 11),
           stride=st.integers(1, 4), padding=paddings,
           dilation=st.integers(1, 3))
    def test_conv_symbolic_evaluates_to_concrete(self, length, kernel, stride,
                                                 padding, dilation):
        try:
            concrete = conv_output_length(length, kernel, stride, padding,
                                          dilation)
        except ValueError:
            return
        symbolic = conv_output_length(dim("L"), kernel, stride, padding,
                                      dilation)
        assert evaluate_dim(symbolic, {"L": length}) == concrete

    @given(length=st.integers(1, 512), kernel=st.integers(1, 11),
           stride=st.integers(1, 4), padding=paddings,
           ceil_mode=st.booleans())
    def test_pool_symbolic_evaluates_to_concrete(self, length, kernel, stride,
                                                 padding, ceil_mode):
        try:
            concrete = pool_output_length(length, kernel, stride, padding,
                                          ceil_mode)
        except ValueError:
            return
        symbolic = pool_output_length(dim("L"), kernel, stride, padding,
                                      ceil_mode)
        assert evaluate_dim(symbolic, {"L": length}) == concrete
