"""Graph transforms: fusion, quantization, pruning, freezing."""

import pytest

from repro.graphs import GraphBuilder
from repro.graphs import ops as O
from repro.graphs.tensor import DType
from repro.graphs.transforms import (
    freeze_graph,
    fuse_graph,
    fusion_ratio,
    prune_graph,
    quantize_graph,
)


def _conv_bn_relu_graph():
    b = GraphBuilder("cbr")
    x = b.input((3, 16, 16))
    x = b.conv_bn_act(x, 8, 3)
    x = b.conv_bn_act(x, 8, 3)
    b.global_avg_pool(x)
    return b.build()


def _branched_graph():
    """BN consumed by two ops: must NOT fuse into the conv."""
    b = GraphBuilder("branch")
    x = b.input((4, 8, 8))
    conv = b.conv2d(x, 4, 3, use_bias=False)
    bn = b.batch_norm(conv)
    left = b.relu(bn)
    b.add(left, bn)
    return b.build()


class TestFusion:
    def test_bn_and_act_fuse_into_conv(self):
        fused = fuse_graph(_conv_bn_relu_graph())
        convs = [op for op in fused.ops if isinstance(op, O.Conv2D)]
        for conv in convs:
            kinds = {type(a) for a in conv.absorbed}
            assert kinds == {O.BatchNorm, O.Activation}

    def test_fused_ops_skip_scheduling(self):
        graph = _conv_bn_relu_graph()
        fused = fuse_graph(graph)
        assert len(fused.schedulable_ops()) < len(graph.schedulable_ops())

    def test_original_untouched(self):
        graph = _conv_bn_relu_graph()
        fuse_graph(graph)
        assert all(not op.is_fused_away for op in graph.ops)

    def test_multi_consumer_stops_the_chain(self):
        """conv+bn may fuse (the kernel still writes bn's output once), but
        the chain must stop there: the relu reads a materialized buffer."""
        fused = fuse_graph(_branched_graph())
        bn = next(op for op in fused.ops if isinstance(op, O.BatchNorm))
        relu = next(op for op in fused.ops if isinstance(op, O.Activation))
        assert bn.is_fused_away
        assert not relu.is_fused_away

    def test_fusion_ratio(self):
        graph = _conv_bn_relu_graph()
        assert fusion_ratio(graph) == 0.0
        fused = fuse_graph(graph)
        # 2 BN + 2 ReLU fused out of 7 non-input ops.
        assert fusion_ratio(fused) == pytest.approx(4 / 7)

    def test_metadata_flag(self):
        assert fuse_graph(_conv_bn_relu_graph()).metadata["fused"] is True

    def test_dense_chain_fuses(self):
        b = GraphBuilder("dense")
        x = b.input((16,))
        x = b.dense(x, 8)
        b.relu(x)
        fused = fuse_graph(b.build())
        dense = next(op for op in fused.ops if isinstance(op, O.Dense))
        assert len(dense.absorbed) == 1


class TestQuantization:
    def test_int8_sets_both_dtypes(self):
        quant = quantize_graph(_conv_bn_relu_graph(), DType.INT8)
        assert all(op.weight_dtype is DType.INT8 for op in quant.ops)
        assert all(op.act_dtype is DType.INT8 for op in quant.ops)

    def test_binary_keeps_int8_activations(self):
        quant = quantize_graph(_conv_bn_relu_graph(), DType.BINARY)
        assert all(op.weight_dtype is DType.BINARY for op in quant.ops)
        assert all(op.act_dtype is DType.INT8 for op in quant.ops)

    def test_explicit_act_dtype(self):
        quant = quantize_graph(_conv_bn_relu_graph(), DType.INT8, DType.FP16)
        assert quant.ops[1].act_dtype is DType.FP16

    def test_weight_bytes_shrink(self):
        graph = _conv_bn_relu_graph()
        quant = quantize_graph(graph, DType.INT8)
        assert quant.weight_bytes() < graph.weight_bytes() / 3

    def test_metadata_records_dtypes(self):
        quant = quantize_graph(_conv_bn_relu_graph(), DType.FP16)
        assert quant.metadata["weight_dtype"] == "fp16"

    def test_source_untouched(self):
        graph = _conv_bn_relu_graph()
        quantize_graph(graph, DType.INT8)
        assert graph.ops[1].weight_dtype is DType.FP32


class TestPruning:
    def test_only_parametric_ops_annotated(self):
        pruned = prune_graph(_conv_bn_relu_graph(), 0.5)
        for op in pruned.ops:
            if isinstance(op, (O.Conv2D, O.Dense)):
                assert op.weight_sparsity == 0.5
            else:
                assert op.weight_sparsity == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_sparsity_bounds(self, bad):
        with pytest.raises(ValueError):
            prune_graph(_conv_bn_relu_graph(), bad)

    def test_structured_flag_recorded(self):
        pruned = prune_graph(_conv_bn_relu_graph(), 0.3, structured=True)
        assert pruned.metadata["structured_pruning"] is True

    def test_zero_sparsity_is_identity_cost(self):
        pruned = prune_graph(_conv_bn_relu_graph(), 0.0)
        conv = next(op for op in pruned.ops if isinstance(op, O.Conv2D))
        assert conv.effective_macs(True) == conv.macs


class TestFreeze:
    def test_dropout_folds_away(self):
        b = GraphBuilder("drop")
        x = b.input((16,))
        x = b.dense(x, 8)
        b.dropout(x)
        frozen = freeze_graph(b.build())
        drop = next(op for op in frozen.ops if isinstance(op, O.Dropout))
        assert drop.is_fused_away

    def test_metadata_flag(self):
        assert freeze_graph(_conv_bn_relu_graph()).metadata["frozen"] is True

    def test_freeze_then_fuse_compose(self):
        b = GraphBuilder("both")
        x = b.input((3, 8, 8))
        x = b.conv_bn_act(x, 4, 3)
        b.dropout(x)
        graph = fuse_graph(freeze_graph(b.build()))
        schedulable = graph.schedulable_ops()
        # Only the conv and nothing else dispatches.
        assert [type(op) for op in schedulable] == [O.Conv2D]
