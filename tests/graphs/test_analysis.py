"""Graph analysis: intensities and liveness timelines."""

import pytest

from repro.graphs.analysis import (
    bound_split,
    intensity_profile,
    liveness_timeline,
    op_intensity,
    peak_location,
    ridge_point,
)
from repro.graphs.transforms import fuse_graph
from repro.models import load_model


class TestIntensity:
    def test_conv_intensity_positive(self):
        graph = load_model("ResNet-18")
        entry = op_intensity(graph.op("conv_1"))
        assert entry.intensity > 0
        assert entry.macs == graph.op("conv_1").macs

    def test_vgg_fc_is_memory_bound_everywhere(self):
        """VGG16's fc6 moves ~400 MB for ~100 MMACs: intensity < 1."""
        graph = load_model("VGG16")
        fc = next(e for e in intensity_profile(graph) if e.op_type == "Dense")
        assert fc.intensity < 1.0

    def test_big_convs_are_compute_bound(self):
        graph = load_model("VGG16")
        convs = [e for e in intensity_profile(graph) if e.op_type == "Conv2D"]
        assert max(e.intensity for e in convs) > 100

    def test_bound_classification_against_ridge(self):
        entry = op_intensity(load_model("VGG16").op("conv_5"))
        assert entry.bound_on(1.0) == "compute"
        assert entry.bound_on(1e9) == "memory"

    def test_profile_covers_schedulable_ops(self):
        graph = load_model("ResNet-18")
        assert len(intensity_profile(graph)) == len(graph.schedulable_ops())


class TestRidge:
    def test_ridge_point(self):
        assert ridge_point(100e9, 10e9) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            ridge_point(0, 10)

    def test_bound_split_sums_to_one(self):
        compute, memory = bound_split(load_model("ResNet-50"), 333e9, 35e9)
        assert compute + memory == pytest.approx(1.0)

    def test_faster_device_more_memory_bound(self):
        """Raising peak at fixed bandwidth pushes MACs left of the ridge."""
        graph = load_model("ResNet-50")
        slow_compute, _ = bound_split(graph, 10e9, 35e9)
        fast_compute, _ = bound_split(graph, 10e12, 35e9)
        assert fast_compute < slow_compute

    def test_vgg_traffic_is_classifier_dominated(self):
        """Section VI-C's 'memory-bounded VGG' is a BYTES story, not a MAC
        one: the three Dense layers own most of VGG16's data movement,
        while ResNet-50 moves almost everything through convolutions."""
        def dense_byte_share(model_name):
            profile = intensity_profile(load_model(model_name))
            total = sum(e.bytes_moved for e in profile)
            dense = sum(e.bytes_moved for e in profile if e.op_type == "Dense")
            return dense / total

        assert dense_byte_share("VGG16") > 0.5
        assert dense_byte_share("ResNet-50") < 0.1


class TestLiveness:
    @pytest.mark.parametrize("model_name", ["ResNet-18", "VGG16", "DenseNet-121",
                                            "MobileNet-v2", "C3D"])
    def test_timeline_max_equals_peak(self, model_name):
        graph = load_model(model_name)
        timeline = liveness_timeline(graph)
        assert max(s.live_bytes for s in timeline) == graph.peak_activation_bytes()

    def test_fused_timeline_consistent_too(self):
        graph = fuse_graph(load_model("ResNet-18"))
        timeline = liveness_timeline(graph)
        assert max(s.live_bytes for s in timeline) == graph.peak_activation_bytes()
        names = {s.op_name for s in timeline}
        assert not any(op.name in names for op in graph.ops if op.is_fused_away)

    def test_vgg_peak_is_early(self):
        """VGG's 224x224x64 features put the peak in the first block."""
        graph = load_model("VGG16")
        op_name, _bytes = peak_location(graph)
        order = [op.name for op in graph.ops]
        assert order.index(op_name) < len(order) // 4

    def test_peak_location_matches_timeline(self):
        graph = load_model("ResNet-50")
        op_name, peak_bytes = peak_location(graph)
        timeline = liveness_timeline(graph)
        assert any(s.op_name == op_name and s.live_bytes == peak_bytes
                   for s in timeline)

    def test_liveness_never_negative(self):
        for model_name in ("Inception-v4", "YOLOv3"):
            timeline = liveness_timeline(load_model(model_name))
            assert all(s.live_bytes > 0 for s in timeline)
