"""Graph serialization round-trips."""

import json

import pytest

from repro.graphs.serialize import (
    FORMAT_VERSION,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graphs.tensor import DType
from repro.graphs.transforms import fuse_graph, prune_graph, quantize_graph
from repro.models import list_models, load_model


def _assert_equivalent(original, restored):
    assert restored.name == original.name
    assert [op.name for op in restored.ops] == [op.name for op in original.ops]
    assert [type(op).__name__ for op in restored.ops] == [
        type(op).__name__ for op in original.ops]
    assert restored.total_params == original.total_params
    assert restored.total_macs == original.total_macs
    assert restored.peak_activation_bytes() == original.peak_activation_bytes()
    for a, b in zip(restored.ops, original.ops):
        assert a.output_shape == b.output_shape
        assert a.weight_dtype is b.weight_dtype
        assert a.weight_sparsity == b.weight_sparsity


class TestRoundTrip:
    @pytest.mark.parametrize("model_name", list_models())
    def test_every_zoo_model(self, model_name):
        original = load_model(model_name)
        restored = graph_from_dict(graph_to_dict(original))
        _assert_equivalent(original, restored)

    def test_annotations_survive(self):
        graph = prune_graph(quantize_graph(load_model("ResNet-18"), DType.INT8), 0.5)
        restored = graph_from_dict(graph_to_dict(graph))
        _assert_equivalent(graph, restored)
        assert restored.weight_bytes() == graph.weight_bytes()

    def test_fusion_links_survive(self):
        graph = fuse_graph(load_model("ResNet-18"))
        restored = graph_from_dict(graph_to_dict(graph))
        assert (len(restored.schedulable_ops())
                == len(graph.schedulable_ops()))
        conv = restored.op("conv_1")
        assert conv.absorbed  # bn/relu re-attached

    def test_metadata_survives(self):
        graph = load_model("SSD MobileNet-v1")
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.metadata["extra_image_library"] is True

    def test_payload_is_json_safe(self):
        payload = graph_to_dict(load_model("C3D"))
        json.dumps(payload)  # must not raise


class TestFiles:
    def test_save_and_load(self, tmp_path):
        graph = load_model("MobileNet-v2")
        path = tmp_path / "mnv2.json"
        save_graph(graph, path)
        _assert_equivalent(graph, load_graph(path))

    def test_file_is_readable_json(self, tmp_path):
        path = tmp_path / "model.json"
        save_graph(load_model("CifarNet 32x32"), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION


class TestErrors:
    def test_wrong_version_rejected(self):
        payload = graph_to_dict(load_model("ResNet-18"))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            graph_from_dict(payload)

    def test_unknown_op_type_rejected(self):
        payload = graph_to_dict(load_model("ResNet-18"))
        payload["ops"][1]["type"] = "QuantumConv"
        with pytest.raises(ValueError, match="unknown op type"):
            graph_from_dict(payload)

    def test_dangling_producer_rejected(self):
        payload = graph_to_dict(load_model("ResNet-18"))
        payload["ops"][1]["inputs"] = ["nonexistent"]
        with pytest.raises(ValueError, match="undefined producer"):
            graph_from_dict(payload)


class TestDeploymentEquivalence:
    def test_reloaded_graph_deploys_identically(self, tmp_path):
        from repro.engine import InferenceSession
        from repro.frameworks import load_framework
        from repro.hardware import load_device

        original = load_model("ResNet-50")
        path = tmp_path / "r50.json"
        save_graph(original, path)
        restored = load_graph(path)
        device = load_device("Jetson TX2")
        framework = load_framework("PyTorch")
        first = InferenceSession(framework.deploy(original, device)).latency_s
        second = InferenceSession(framework.deploy(restored, device)).latency_s
        assert first == pytest.approx(second, rel=1e-12)
