"""Compute-unit model tests."""

import pytest

from repro.core.quantity import GIGA
from repro.graphs.tensor import DType
from repro.hardware.compute import ComputeKind, ComputeUnit, cpu_unit, gpu_unit


class TestCpuUnit:
    def test_peak_from_cores_clock_simd(self):
        unit = cpu_unit("test", cores=4, clock_hz=1.2 * GIGA, macs_per_cycle_per_core=2.0)
        assert unit.peak(DType.FP32) == pytest.approx(9.6 * GIGA)
        assert unit.kind is ComputeKind.CPU
        assert unit.cores == 4

    def test_narrow_types_default_to_fp32_rate(self):
        unit = cpu_unit("a53", 4, 1.2 * GIGA, 2.0)
        assert unit.peak(DType.INT8) == unit.peak(DType.FP32)

    def test_per_core_rate(self):
        unit = cpu_unit("xeon", 44, 2.2 * GIGA, 16.0)
        assert unit.per_core_macs_per_s == pytest.approx(35.2 * GIGA)


class TestGpuUnit:
    def test_one_mac_per_core_cycle(self):
        unit = gpu_unit("pascal", cuda_cores=256, clock_hz=1.3 * GIGA)
        assert unit.peak(DType.FP32) == pytest.approx(332.8 * GIGA)

    def test_fp16_ratio(self):
        unit = gpu_unit("pascal", 256, 1.3 * GIGA, fp16_ratio=2.0)
        assert unit.peak(DType.FP16) == 2 * unit.peak(DType.FP32)


class TestComputeUnit:
    def _asic(self) -> ComputeUnit:
        return ComputeUnit(
            name="edgetpu", kind=ComputeKind.ASIC,
            peak_macs_per_s={DType.INT8: 2000 * GIGA},
        )

    def test_supports(self):
        asic = self._asic()
        assert asic.supports(DType.INT8)
        assert not asic.supports(DType.FP32)

    def test_unsupported_peak_raises(self):
        with pytest.raises(ValueError, match="does not support"):
            self._asic().peak(DType.FP32)

    def test_best_dtype_prefers_fastest(self):
        unit = ComputeUnit(
            name="vpu", kind=ComputeKind.VPU,
            peak_macs_per_s={DType.FP16: 100 * GIGA, DType.FP32: 50 * GIGA},
        )
        assert unit.best_dtype((DType.FP16, DType.FP32)) is DType.FP16

    def test_best_dtype_requires_overlap(self):
        with pytest.raises(ValueError, match="supports none"):
            self._asic().best_dtype((DType.FP32, DType.FP16))
