"""DVFS thermal throttling (extension of Figure 14)."""

import pytest

from repro.hardware.thermal import ThermalSimulator, ThermalSpec


def _throttling_spec(**overrides) -> ThermalSpec:
    defaults = dict(
        r_passive_c_per_w=15.0, r_active_c_per_w=15.0, c_j_per_c=5.0,
        has_heatsink=False, has_fan=False,
        throttle_c=60.0, throttle_stop_c=55.0, throttle_clock_factor=0.6,
        surface_offset_c=2.0,
    )
    defaults.update(overrides)
    return ThermalSpec(**defaults)


class TestThrottleSpec:
    def test_factor_bounds(self):
        with pytest.raises(ValueError, match="clock_factor"):
            _throttling_spec(throttle_clock_factor=1.5)
        with pytest.raises(ValueError, match="clock_factor"):
            _throttling_spec(throttle_clock_factor=0.0)

    def test_hysteresis_ordering(self):
        with pytest.raises(ValueError, match="hysteresis"):
            _throttling_spec(throttle_stop_c=65.0)


class TestThrottleBehaviour:
    def test_throttles_above_limit_with_event(self):
        sim = ThermalSimulator(_throttling_spec())
        sim.run_to_steady_state(4.0, dt_s=1.0)  # target 82 C, crosses 60
        assert sim.throttled
        assert any(e.kind == "throttle_on" for e in sim.events)
        assert sim.clock_factor == 0.6

    def test_recovers_with_hysteresis(self):
        sim = ThermalSimulator(_throttling_spec())
        sim.run_to_steady_state(4.0, dt_s=1.0)
        sim.run_to_steady_state(0.1, dt_s=1.0)  # cool down
        assert not sim.throttled
        assert any(e.kind == "throttle_off" for e in sim.events)
        assert sim.clock_factor == 1.0

    def test_no_throttle_without_limit(self):
        spec = _throttling_spec(throttle_c=None, throttle_stop_c=None)
        sim = ThermalSimulator(spec)
        sim.run_to_steady_state(4.0, dt_s=1.0)
        assert not sim.throttled
        assert sim.clock_factor == 1.0

    def test_shutdown_zeroes_clock(self):
        spec = _throttling_spec(throttle_c=None, throttle_stop_c=None, shutdown_c=50.0)
        sim = ThermalSimulator(spec)
        sim.run_to_steady_state(4.0, dt_s=1.0)
        assert sim.shutdown
        assert sim.clock_factor == 0.0

    def test_default_hysteresis_five_degrees(self):
        spec = _throttling_spec(throttle_stop_c=None)
        sim = ThermalSimulator(spec)
        sim.run_to_steady_state(4.0, dt_s=1.0)
        assert sim.throttled
        # Cool until just above throttle_c - 5: still throttled.
        sim.temperature_c = 56.0
        sim.step(2.5, 0.1)
        assert sim.throttled
