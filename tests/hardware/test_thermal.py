"""Lumped-RC thermal model tests (Figure 14 mechanics)."""

import pytest

from repro.hardware.thermal import ThermalSimulator, ThermalSpec


def _passive_spec(**overrides) -> ThermalSpec:
    defaults = dict(
        r_passive_c_per_w=10.0, r_active_c_per_w=10.0, c_j_per_c=5.0,
        has_heatsink=False, has_fan=False, surface_offset_c=2.0,
    )
    defaults.update(overrides)
    return ThermalSpec(**defaults)


def _fan_spec(**overrides) -> ThermalSpec:
    defaults = dict(
        r_passive_c_per_w=10.0, r_active_c_per_w=3.0, c_j_per_c=5.0,
        has_heatsink=True, has_fan=True, fan_trigger_c=50.0, fan_stop_c=40.0,
        surface_offset_c=6.0,
    )
    defaults.update(overrides)
    return ThermalSpec(**defaults)


class TestThermalSpec:
    def test_steady_state(self):
        spec = _passive_spec()
        assert spec.steady_state_c(2.0, ambient_c=22.0) == pytest.approx(42.0)

    def test_fan_resistance_used_when_on(self):
        spec = _fan_spec()
        assert spec.steady_state_c(10.0, ambient_c=22.0, fan_on=True) == pytest.approx(52.0)

    def test_invalid_resistances_rejected(self):
        with pytest.raises(ValueError):
            ThermalSpec(r_passive_c_per_w=3.0, r_active_c_per_w=5.0, c_j_per_c=1.0)

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            _fan_spec(fan_trigger_c=40.0, fan_stop_c=45.0)


class TestSimulator:
    def test_starts_at_ambient(self):
        sim = ThermalSimulator(_passive_spec(), ambient_c=25.0)
        assert sim.temperature_c == 25.0

    def test_exponential_approach(self):
        sim = ThermalSimulator(_passive_spec())
        sim.step(2.0, dt_s=1e6)  # effectively infinite time
        assert sim.temperature_c == pytest.approx(42.0, abs=0.01)

    def test_monotone_heating(self):
        sim = ThermalSimulator(_passive_spec())
        temps = [sim.step(2.0, 5.0) for _ in range(20)]
        assert temps == sorted(temps)
        assert temps[-1] <= 42.0 + 1e-9

    def test_cooling_after_load_removed(self):
        sim = ThermalSimulator(_passive_spec())
        sim.step(5.0, 1e6)
        hot = sim.temperature_c
        sim.step(0.0, 30.0)
        assert sim.temperature_c < hot

    def test_surface_reads_below_junction(self):
        sim = ThermalSimulator(_passive_spec())
        sim.step(3.0, 100.0)
        assert sim.surface_temperature_c == sim.temperature_c - 2.0

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            ThermalSimulator(_passive_spec()).step(1.0, 0.0)

    def test_fan_turns_on_with_event(self):
        sim = ThermalSimulator(_fan_spec())
        sim.run_to_steady_state(10.0, dt_s=1.0)
        kinds = [e.kind for e in sim.events]
        assert "fan_on" in kinds
        assert sim.fan_on

    def test_fan_steady_state_uses_active_resistance(self):
        sim = ThermalSimulator(_fan_spec())
        sim.run_to_steady_state(10.0, dt_s=1.0)
        assert sim.temperature_c == pytest.approx(22.0 + 10.0 * 3.0, abs=0.5)

    def test_fan_hysteresis_off_event(self):
        sim = ThermalSimulator(_fan_spec())
        sim.run_to_steady_state(10.0, dt_s=1.0)
        sim.run_to_steady_state(0.5, dt_s=1.0)  # cool down
        kinds = [e.kind for e in sim.events]
        assert "fan_off" in kinds

    def test_shutdown_trips_and_latches(self):
        sim = ThermalSimulator(_passive_spec(shutdown_c=40.0))
        trace = sim.run_to_steady_state(5.0, dt_s=1.0)
        assert sim.shutdown
        assert any(e.kind == "shutdown" for e in sim.events)
        # After shutdown the device stops drawing compute power and cools.
        sim.step(5.0, 1e6)
        assert sim.temperature_c == pytest.approx(22.0, abs=0.1)
        assert trace[-1][1] >= 40.0

    def test_no_shutdown_when_threshold_absent(self):
        sim = ThermalSimulator(_passive_spec())
        sim.run_to_steady_state(10.0, dt_s=1.0)
        assert not sim.shutdown

    def test_trace_returns_time_series(self):
        sim = ThermalSimulator(_passive_spec())
        trace = sim.run_to_steady_state(2.0, dt_s=1.0)
        times = [t for t, _ in trace]
        assert times == sorted(times)
        assert trace[0][1] == pytest.approx(22.0)

    def test_idle_temperature(self):
        sim = ThermalSimulator(_passive_spec())
        assert sim.idle_temperature_c(1.0) == pytest.approx(32.0)
