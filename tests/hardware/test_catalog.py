"""Device catalog: Table III and Table VI fidelity."""

import pytest

from repro.graphs.tensor import DType
from repro.hardware import ComputeKind, DeviceCategory, list_devices, load_device
from repro.harness.paper_data import TABLE3_POWER_W, TABLE6_COOLING


class TestCatalogCompleteness:
    def test_all_ten_platforms_present(self):
        assert len(list_devices()) == 10

    @pytest.mark.parametrize("alias,canonical", [
        ("RPi", "Raspberry Pi 3B"),
        ("TX2", "Jetson TX2"),
        ("Nano", "Jetson Nano"),
        ("Movidius", "Movidius NCS"),
        ("Xeon", "Xeon E5-2696 v4"),
        ("2080", "RTX 2080"),
    ])
    def test_paper_aliases(self, alias, canonical):
        assert load_device(alias).name == canonical


class TestTable3Power:
    @pytest.mark.parametrize("device_name", sorted(TABLE3_POWER_W))
    def test_idle_power_matches(self, device_name):
        device = load_device(device_name)
        assert device.power.idle_w == pytest.approx(TABLE3_POWER_W[device_name][0])

    @pytest.mark.parametrize("device_name", sorted(TABLE3_POWER_W))
    def test_average_power_matches(self, device_name):
        device = load_device(device_name)
        assert device.average_power_w() == pytest.approx(
            TABLE3_POWER_W[device_name][1], rel=0.01)


class TestTable6Thermal:
    @pytest.mark.parametrize("device_name", sorted(TABLE6_COOLING))
    def test_cooling_inventory(self, device_name):
        heatsink, fan, _idle = TABLE6_COOLING[device_name]
        spec = load_device(device_name).thermal
        assert spec.has_heatsink == heatsink
        assert spec.has_fan == fan

    @pytest.mark.parametrize("device_name", sorted(TABLE6_COOLING))
    def test_idle_surface_temperature(self, device_name):
        device = load_device(device_name)
        spec = device.thermal
        idle_surface = spec.steady_state_c(device.power.idle_w) - spec.surface_offset_c
        tolerance = 4.0 if device_name == "Movidius NCS" else 1.0
        assert idle_surface == pytest.approx(TABLE6_COOLING[device_name][2], abs=tolerance)

    def test_only_rpi_can_shut_down(self):
        assert load_device("Raspberry Pi 3B").thermal.shutdown_c is not None
        for name in ("Jetson TX2", "Jetson Nano", "EdgeTPU", "Movidius NCS"):
            assert load_device(name).thermal.shutdown_c is None

    def test_hpc_platforms_have_no_thermal_model(self):
        with pytest.raises(ValueError, match="no thermal model"):
            load_device("Xeon").thermal_simulator()


class TestDeviceStructure:
    def test_categories(self):
        assert load_device("RPi").category is DeviceCategory.EDGE_CPU
        assert load_device("TX2").category is DeviceCategory.EDGE_GPU
        assert load_device("EdgeTPU").category is DeviceCategory.EDGE_ACCELERATOR
        assert load_device("PYNQ").category is DeviceCategory.FPGA
        assert load_device("Xeon").category is DeviceCategory.HPC_CPU
        assert load_device("GTX").category is DeviceCategory.HPC_GPU

    def test_is_edge_flag(self):
        assert load_device("RPi").category.is_edge
        assert not load_device("Xeon").category.is_edge

    def test_primary_unit_preference(self):
        assert load_device("EdgeTPU").primary_unit.kind is ComputeKind.ASIC
        assert load_device("TX2").primary_unit.kind is ComputeKind.GPU
        assert load_device("RPi").primary_unit.kind is ComputeKind.CPU

    def test_unit_lookup_failure(self):
        with pytest.raises(ValueError, match="no gpu"):
            load_device("RPi").unit(ComputeKind.GPU)

    def test_edgetpu_is_int8_only(self):
        asic = load_device("EdgeTPU").unit(ComputeKind.ASIC)
        assert asic.supports(DType.INT8)
        assert not asic.supports(DType.FP32)

    def test_jetson_memory_is_shared(self):
        assert load_device("TX2").memory.shared_with_host
        assert load_device("TX2").transfer is None

    def test_movidius_hangs_off_usb(self):
        device = load_device("Movidius")
        assert device.transfer is not None
        assert "USB" in device.transfer.name

    def test_hpc_gpus_use_pcie(self):
        assert "PCIe" in load_device("RTX 2080").transfer.name

    def test_framework_locks(self):
        assert load_device("EdgeTPU").supports_framework("TFLite")
        assert not load_device("EdgeTPU").supports_framework("PyTorch")
        assert load_device("TX2").supports_framework("PyTorch")  # open platform

    def test_transfer_time_model(self):
        link = load_device("Movidius").transfer
        assert link.transfer_time_s(0) == pytest.approx(link.latency_s)
        assert link.transfer_time_s(link.bandwidth_bytes_per_s) == pytest.approx(
            link.latency_s + 1.0)
