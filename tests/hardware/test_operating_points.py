"""DVFS operating points."""

import pytest

from repro.core.errors import UnknownEntryError
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.graphs.tensor import DType
from repro.hardware import (
    OperatingPoint,
    apply_operating_point,
    list_operating_points,
    load_device,
)
from repro.models import load_model


class TestOperatingPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint("bad", clock_scale=0.0, dynamic_power_scale=1.0)
        with pytest.raises(ValueError):
            OperatingPoint("bad", clock_scale=1.0, dynamic_power_scale=2.0)

    def test_jetsons_have_documented_modes(self):
        assert [p.name for p in list_operating_points("Jetson TX2")] == ["Max-N", "Max-Q"]
        assert [p.name for p in list_operating_points("Jetson Nano")] == ["10W", "5W"]

    def test_unlisted_devices_get_default(self):
        points = list_operating_points("Raspberry Pi 3B")
        assert len(points) == 1
        assert points[0].clock_scale == 1.0


class TestApply:
    def test_scales_peaks_and_power(self):
        tx2 = load_device("Jetson TX2")
        maxq = apply_operating_point(tx2, "Max-Q")
        assert maxq.operating_point == "Max-Q"
        assert maxq.name == tx2.name  # anchors still apply
        assert maxq.primary_unit.peak(DType.FP32) == pytest.approx(
            0.70 * tx2.primary_unit.peak(DType.FP32))
        assert maxq.power.idle_w == tx2.power.idle_w
        assert maxq.power.dynamic_range_w == pytest.approx(
            0.55 * tx2.power.dynamic_range_w)

    def test_original_untouched(self):
        tx2 = load_device("Jetson TX2")
        apply_operating_point(tx2, "Max-Q")
        assert tx2.operating_point == "default"

    def test_by_name_case_insensitive(self):
        nano = apply_operating_point(load_device("Jetson Nano"), "5w")
        assert nano.operating_point == "5W"

    def test_unknown_mode(self):
        with pytest.raises(UnknownEntryError, match="options"):
            apply_operating_point(load_device("Jetson TX2"), "turbo")

    def test_explicit_point_object(self):
        point = OperatingPoint("custom", 0.5, 0.3)
        device = apply_operating_point(load_device("Jetson Nano"), point)
        assert device.operating_point == "custom"


class TestPerformanceEffect:
    def test_budget_mode_slower_but_lower_power(self):
        tx2 = load_device("Jetson TX2")
        maxq = apply_operating_point(tx2, "Max-Q")
        framework = load_framework("PyTorch")
        fast = InferenceSession(framework.deploy(load_model("ResNet-50"), tx2))
        slow = InferenceSession(framework.deploy(load_model("ResNet-50"), maxq))
        assert slow.latency_s > fast.latency_s
        assert (maxq.power.power(slow.utilization)
                < tx2.power.power(fast.utilization))

    def test_maxq_improves_energy_per_inference(self):
        """The mode exists because volts-squared beats stretched runtime."""
        from repro.measurement.energy import measure_energy_per_inference

        tx2 = load_device("Jetson TX2")
        maxq = apply_operating_point(tx2, "Max-Q")
        framework = load_framework("PyTorch")
        base = measure_energy_per_inference(
            InferenceSession(framework.deploy(load_model("ResNet-50"), tx2)))
        budget = measure_energy_per_inference(
            InferenceSession(framework.deploy(load_model("ResNet-50"), maxq)))
        assert float(budget) < float(base)
