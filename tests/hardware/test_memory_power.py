"""Memory and power model tests."""

import pytest

from repro.core.quantity import GIBI, GIGA, MEBI
from repro.hardware.memory import MemorySpec
from repro.hardware.power import PowerModel


class TestMemorySpec:
    def _spec(self) -> MemorySpec:
        return MemorySpec(
            capacity_bytes=1 * GIBI,
            bandwidth_bytes_per_s=2.0 * GIGA,
            usable_fraction=0.6,
        )

    def test_usable_bytes(self):
        assert self._spec().usable_bytes == int(0.6 * GIBI)

    def test_fits(self):
        spec = self._spec()
        assert spec.fits(500 * MEBI)
        assert not spec.fits(700 * MEBI)

    def test_describe(self):
        assert "1.0 GiB" in self._spec().describe()

    def test_default_storage_bandwidth_is_sd_class(self):
        assert self._spec().storage_bandwidth_bytes_per_s == 80 * MEBI


class TestPowerModel:
    def test_idle_at_zero_utilization(self):
        model = PowerModel(idle_w=1.33, active_w=3.0)
        assert model.power(0.0) == 1.33

    def test_linear_interpolation(self):
        model = PowerModel(idle_w=1.0, active_w=3.0)
        assert model.power(0.5) == pytest.approx(2.0)
        assert model.power(1.0) == pytest.approx(3.0)

    def test_utilization_bounds(self):
        model = PowerModel(idle_w=1.0, active_w=2.0)
        with pytest.raises(ValueError):
            model.power(-0.1)
        with pytest.raises(ValueError):
            model.power(1.1)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(idle_w=5.0, active_w=2.0)
        with pytest.raises(ValueError):
            PowerModel(idle_w=-1.0, active_w=2.0)

    def test_dynamic_range(self):
        assert PowerModel(1.0, 4.0).dynamic_range_w == 3.0
