"""Placement optimizer: deterministic search, honest frontier, SLO gating."""

import pytest

from repro.placement import SLO, device_price_usd, search_placements

RPI = "Raspberry Pi 3B"


@pytest.fixture(scope="module")
def rpi_frontier():
    """The acceptance scenario: a lone Pi under a 2 inf/s SLO over LAN."""
    return search_placements("MobileNet-v2", edge_devices=(RPI,), link="lan",
                             slo=SLO(min_throughput_rps=2.0))


class TestSearch:
    def test_search_is_deterministic(self):
        kwargs = dict(edge_devices=(RPI, "Jetson Nano"), link="wifi",
                      remote_devices=("GTX Titan X",))
        first = search_placements("MobileNet-v2", **kwargs)
        second = search_placements("MobileNet-v2", **kwargs)
        assert first.to_dict() == second.to_dict()

    def test_candidates_cover_all_three_kinds(self):
        frontier = search_placements(
            "MobileNet-v2", edge_devices=(RPI,), link="lan",
            remote_devices=("GTX Titan X",))
        kinds = {c.deployment.kind for c in frontier.candidates}
        assert kinds == {"single", "split", "pipeline"}

    def test_frontier_is_non_dominated(self, rpi_frontier):
        for member in rpi_frontier.frontier:
            for other in rpi_frontier.candidates:
                if other is member or not other.meets_slo:
                    continue
                assert not (
                    all(o <= m for o, m in zip(other.objectives,
                                               member.objectives))
                    and any(o < m for o, m in zip(other.objectives,
                                                  member.objectives)))

    def test_candidates_sorted_by_latency_first(self, rpi_frontier):
        latencies = [c.latency_s for c in rpi_frontier.candidates]
        assert latencies == sorted(latencies)

    def test_remote_devices_join_splits_but_never_lead_them(self):
        frontier = search_placements(
            "MobileNet-v2", edge_devices=(RPI,), link="wifi",
            remote_devices=("GTX Titan X",), max_pipeline_depth=2)
        splits = [c.deployment for c in frontier.candidates
                  if c.deployment.kind == "split"]
        assert splits, "expected split candidates against the remote GPU"
        assert all(d.devices[0] == RPI for d in splits)


class TestSLOGating:
    def test_pipeline_dominates_every_single_node_under_the_slo(
            self, rpi_frontier):
        """One Pi cannot hit 2 inf/s; a 2-stage Pi pipeline can — the whole
        point of unifying placements behind one optimizer."""
        singles = [c for c in rpi_frontier.candidates
                   if c.deployment.is_single_node]
        assert singles and all(not c.meets_slo for c in singles)
        best = rpi_frontier.best()
        assert best is not None
        assert best.deployment.kind == "pipeline"
        assert best.throughput_rps >= 2.0
        assert all(best.throughput_rps > c.throughput_rps for c in singles)

    def test_infeasible_candidates_carry_a_reason(self, rpi_frontier):
        rejected = [c for c in rpi_frontier.candidates if not c.meets_slo]
        assert rejected
        assert all("below required" in c.slo_reason for c in rejected)

    def test_unsatisfiable_slo_empties_the_frontier(self):
        frontier = search_placements(
            "MobileNet-v2", edge_devices=(RPI,), link="lan",
            slo=SLO(deadline_s=1e-6), max_pipeline_depth=2)
        assert frontier.frontier == ()
        assert frontier.best() is None
        assert "no candidate meets the SLO" in frontier.describe()

    def test_slo_round_trip(self):
        slo = SLO(deadline_s=0.5, min_throughput_rps=2.0, max_energy_j=1.0)
        assert SLO.from_dict(slo.to_dict()) == slo


class TestCostModel:
    def test_pipeline_pays_for_every_board(self, rpi_frontier):
        best = rpi_frontier.best()
        assert best.cost_usd == pytest.approx(
            best.deployment.num_stages * device_price_usd(RPI))

    def test_unknown_device_rejected(self):
        from repro.core.errors import UnknownEntryError

        with pytest.raises(UnknownEntryError):
            device_price_usd("Abacus")


class TestDescribe:
    def test_describe_lists_frontier_shapes(self, rpi_frontier):
        text = rpi_frontier.describe()
        assert "pipeline x2" in text
        assert "inf/s" in text and "$" in text
