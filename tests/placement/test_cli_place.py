"""The ``repro place`` verb and ``repro fleet --placement`` hand-off."""

import json

from repro.cli import main

PLACE_ARGV = ["place", "MobileNet-v2", "--device", "Raspberry Pi 3B",
              "--link", "lan", "--min-rps", "2"]


class TestPlaceVerb:
    def test_text_frontier_on_stdout(self, capsys):
        assert main(PLACE_ARGV) == 0
        out = capsys.readouterr().out
        assert "placement frontier for MobileNet-v2 over lan" in out
        assert "pipeline x2" in out

    def test_json_output_file(self, tmp_path, capsys):
        path = tmp_path / "frontier.json"
        assert main([*PLACE_ARGV, "--format", "json",
                     "--output", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["model"] == "MobileNet-v2"
        assert payload["slo"]["min_throughput_rps"] == 2.0
        assert payload["frontier"], "SLO is satisfiable, frontier non-empty"
        assert payload["frontier"][0]["deployment"]["kind"] == "pipeline"

    def test_unsatisfiable_slo_exits_nonzero(self, capsys):
        argv = ["place", "MobileNet-v2", "--device", "Raspberry Pi 3B",
                "--link", "lan", "--deadline-ms", "0.001", "--max-depth", "2"]
        assert main(argv) == 1
        assert "no candidate meets the SLO" in capsys.readouterr().out

    def test_unknown_link_is_a_usage_error(self, capsys):
        assert main(["place", "MobileNet-v2", "--link", "carrier-pigeon"]) == 2
        assert "error" in capsys.readouterr().err

    def test_same_arguments_write_identical_bytes(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([*PLACE_ARGV, "--format", "json",
                         "--output", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestFleetPlacement:
    def _frontier_file(self, tmp_path):
        path = tmp_path / "frontier.json"
        assert main([*PLACE_ARGV, "--format", "json",
                     "--output", str(path)]) == 0
        return path

    def test_fleet_serves_the_best_frontier_point(self, tmp_path, capsys):
        path = self._frontier_file(tmp_path)
        capsys.readouterr()
        assert main(["fleet", "--placement", str(path), "--requests", "400",
                     "--epochs", "32", "--rate", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 400
        assert len(payload["pools"]) == 1
        pool = payload["pools"][0]
        assert pool["name"].startswith("placement:Raspberry Pi 3B")
        assert pool["replicas"] == 2
        assert pool["completed"] > 0

    def test_placement_and_pool_are_exclusive(self, tmp_path, capsys):
        path = self._frontier_file(tmp_path)
        assert main(["fleet", "--placement", str(path), "--requests", "10",
                     "--pool", "1x Jetson Nano:TensorRT"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_empty_frontier_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"frontier": []}))
        assert main(["fleet", "--placement", str(path),
                     "--requests", "10"]) == 2
        assert "no frontier points" in capsys.readouterr().err
