"""Deployment: the one type every serving layer speaks."""

import pytest

from repro.placement import Deployment, StageSpec
from repro.runtime import Scenario


def _scenario(device="Jetson Nano", framework="TensorRT", model="ResNet-18"):
    return Scenario(model, device, framework)


def _split(edge_s=0.1, transfer_s=0.02, remote_s=0.05, link="wifi"):
    head = StageSpec(scenario=_scenario("Raspberry Pi 3B", "TFLite"),
                     op_names=("conv1", "conv2"), compute_s=edge_s,
                     transfer_s=transfer_s, transfer_bytes=4096,
                     power_w=3.0, idle_w=1.5)
    tail = StageSpec(scenario=_scenario("GTX Titan X", "PyTorch"),
                     op_names=("fc",), compute_s=remote_s,
                     power_w=150.0, idle_w=15.0)
    return Deployment(kind="split", link=link, stages=(head, tail))


class TestStageSpec:
    def test_service_is_compute_plus_egress(self):
        stage = StageSpec(scenario=_scenario(), op_names=None,
                          compute_s=0.2, transfer_s=0.05)
        assert stage.service_s == pytest.approx(0.25)

    def test_energy_is_active_power_times_compute(self):
        stage = StageSpec(scenario=_scenario(), op_names=None,
                          compute_s=0.5, power_w=4.0)
        assert stage.energy_j == pytest.approx(2.0)

    def test_span_strings(self):
        whole = StageSpec(scenario=_scenario(), op_names=None, compute_s=1.0)
        ship = StageSpec(scenario=_scenario(), op_names=(), compute_s=0.0,
                         transfer_s=0.1, transfer_bytes=1)
        ranged = StageSpec(scenario=_scenario(), op_names=("a", "b", "c"),
                           compute_s=1.0)
        assert whole.span == "all"
        assert ship.span == "input"
        assert ranged.span == "a..c"

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="compute_s"):
            StageSpec(scenario=_scenario(), op_names=None, compute_s=-1.0)
        with pytest.raises(ValueError, match="transfer_s"):
            StageSpec(scenario=_scenario(), op_names=None, compute_s=1.0,
                      transfer_s=-0.1)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Deployment(kind="mesh", stages=(StageSpec(
                scenario=_scenario(), op_names=None, compute_s=1.0),))

    def test_single_with_two_stages_rejected(self):
        stage = StageSpec(scenario=_scenario(), op_names=None, compute_s=1.0)
        with pytest.raises(ValueError, match="exactly one stage"):
            Deployment(kind="single", stages=(stage, stage))

    def test_single_with_link_rejected(self):
        stage = StageSpec(scenario=_scenario(), op_names=None, compute_s=1.0)
        with pytest.raises(ValueError, match="no link"):
            Deployment(kind="single", link="wifi", stages=(stage,))

    def test_multi_stage_needs_a_link(self):
        with pytest.raises(ValueError, match="link"):
            Deployment(kind="split", link=None,
                       stages=_split().stages)

    def test_last_stage_must_not_transfer(self):
        head, tail = _split().stages
        leaky = StageSpec(scenario=tail.scenario, op_names=tail.op_names,
                          compute_s=tail.compute_s, transfer_s=0.01,
                          transfer_bytes=8)
        with pytest.raises(ValueError, match="no outgoing transfer"):
            Deployment(kind="split", link="wifi", stages=(head, leaky))

    def test_mixed_models_rejected(self):
        head, _ = _split().stages
        other = StageSpec(scenario=_scenario(model="VGG16"), op_names=("fc",),
                          compute_s=0.1)
        with pytest.raises(ValueError, match="one model"):
            Deployment(kind="split", link="wifi", stages=(head, other))


class TestAggregates:
    def test_latency_is_sum_of_services(self):
        deployment = _split(edge_s=0.1, transfer_s=0.02, remote_s=0.05)
        assert deployment.latency_s == pytest.approx(0.17)

    def test_throughput_set_by_slowest_stage(self):
        deployment = _split(edge_s=0.1, transfer_s=0.02, remote_s=0.05)
        assert deployment.bottleneck_s == pytest.approx(0.12)
        assert deployment.throughput_rps == pytest.approx(1.0 / 0.12)

    def test_energy_sums_stage_active_energy(self):
        deployment = _split(edge_s=0.1, remote_s=0.05)
        assert deployment.energy_per_inference_j == pytest.approx(
            3.0 * 0.1 + 150.0 * 0.05)

    def test_single_helper_degrades_cleanly(self):
        single = Deployment.single(_scenario(), compute_s=0.3, power_w=5.0)
        assert single.is_single_node
        assert single.devices == ("Jetson Nano",)
        assert single.latency_s == pytest.approx(0.3)
        assert single.throughput_rps == pytest.approx(1.0 / 0.3)

    def test_key_distinguishes_kind_link_and_stages(self):
        assert _split().key != _split(link="lte").key
        assert _split().key == _split().key
        assert Deployment.single(_scenario(), compute_s=0.3).key != _split().key


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        for deployment in (_split(),
                           Deployment.single(_scenario(), compute_s=0.3)):
            assert Deployment.from_dict(deployment.to_dict()) == deployment

    def test_describe_names_every_stage_device(self):
        text = _split().describe()
        assert "Raspberry Pi 3B" in text and "GTX Titan X" in text
        assert "bottleneck" in text
