"""Data-consistency checker: real tables are clean; injected corruption
reports its stable rule ids."""

import dataclasses

from repro.check import tables
from repro.frameworks import load_framework
from repro.frameworks.compat import TABLE_V_FRAMEWORKS
from repro.hardware import load_device


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRealTablesAreClean:
    def test_devices(self):
        assert tables.check_devices() == []

    def test_frameworks(self):
        assert tables.check_frameworks() == []

    def test_calibration(self):
        assert tables.check_calibration() == []

    def test_table_v(self):
        assert tables.check_table_v() == []

    def test_links(self):
        assert tables.check_links() == []

    def test_placement_prices(self):
        assert tables.check_placement_prices() == []

    def test_full_pass(self):
        assert tables.run() == []


class TestSeededDeviceDefects:
    def test_tab001_usable_fraction_out_of_range(self):
        device = load_device("Raspberry Pi 3B")
        object.__setattr__(device.memory, "usable_fraction", 1.5)
        assert "TAB001" in rules_of(tables.check_devices([device]))

    def test_tab001_zero_bandwidth(self):
        device = load_device("Jetson Nano")
        object.__setattr__(device.memory, "bandwidth_bytes_per_s", 0.0)
        assert "TAB001" in rules_of(tables.check_devices([device]))

    def test_tab002_negative_peak(self):
        device = load_device("Jetson TX2")
        unit = device.compute_units[0]
        peaks = {dtype: -peak for dtype, peak in unit.peak_macs_per_s.items()}
        object.__setattr__(unit, "peak_macs_per_s", peaks)
        assert "TAB002" in rules_of(tables.check_devices([device]))

    def test_tab002_no_compute_units(self):
        device = load_device("EdgeTPU")
        object.__setattr__(device, "compute_units", ())
        assert "TAB002" in rules_of(tables.check_devices([device]))

    def test_tab003_zero_utilization(self):
        device = load_device("Movidius NCS")
        object.__setattr__(device, "inference_utilization", 0.0)
        assert "TAB003" in rules_of(tables.check_devices([device]))

    def test_tab003_non_positive_thermal_capacitance(self):
        device = load_device("Raspberry Pi 3B")
        object.__setattr__(device.thermal, "c_j_per_c", 0.0)
        assert "TAB003" in rules_of(tables.check_devices([device]))

    def test_tab004_unknown_supported_framework(self):
        device = load_device("EdgeTPU")
        object.__setattr__(device, "supported_frameworks", ("NotAFramework",))
        assert "TAB004" in rules_of(tables.check_devices([device]))


class TestSeededFrameworkDefects:
    def test_tab005_star_rating_out_of_range(self):
        framework = load_framework("TFLite")
        framework.capabilities = dataclasses.replace(
            framework.capabilities, usability=9)
        assert "TAB005" in rules_of(tables.check_frameworks([framework]))

    def test_tab006_efficiency_above_one(self):
        framework = load_framework("PyTorch")
        framework.depthwise_efficiency = 1.7
        assert "TAB006" in rules_of(tables.check_frameworks([framework]))

    def test_tab006_bad_kernel_quality(self):
        framework = load_framework("TensorFlow")
        framework.kernel_quality = {kind: 0.0
                                    for kind in framework.kernel_quality}
        assert "TAB006" in rules_of(tables.check_frameworks([framework]))

    def test_tab007_negative_overhead(self):
        framework = load_framework("Caffe")
        framework.overheads = dataclasses.replace(
            framework.overheads, library_load_s=-1.0)
        assert "TAB007" in rules_of(tables.check_frameworks([framework]))

    def test_tab007_weight_factor_below_one(self):
        framework = load_framework("DarkNet")
        framework.overheads = dataclasses.replace(
            framework.overheads, weight_memory_factor=0.5)
        assert "TAB007" in rules_of(tables.check_frameworks([framework]))


class TestSeededCalibrationDefects:
    def test_tab008_unknown_framework(self):
        anchors = {("NoSuchFW", "Raspberry Pi 3B"): ("ResNet-18", 0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab008_unknown_model(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("NoSuchModel", 0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab008_non_positive_target(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("ResNet-18", -0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab009_delegate_without_anchors(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("ResNet-18", 0.5, "Fig. 8")}
        delegates = {"Keras": "PyTorch"}  # PyTorch has no anchors here
        assert "TAB009" in rules_of(tables.check_calibration(anchors, delegates))

    def test_tab009_self_delegate(self):
        delegates = {"Keras": "Keras"}
        assert "TAB009" in rules_of(tables.check_calibration({}, delegates))


class TestSeededTableVDefects:
    def test_tab010_unsupported_chain_framework(self):
        findings = tables.check_table_v(
            table_v={"EdgeTPU": ("PyTorch",)}, models=(), expected={},
            candidates={})
        assert rules_of(findings) == {"TAB010"}

    def test_tab010_unknown_device(self):
        findings = tables.check_table_v(
            table_v={"NoSuchBoard": ("TFLite",)}, models=(), expected={},
            candidates={})
        assert "TAB010" in rules_of(findings)

    def test_tab011_unknown_symbol(self):
        expected = {"ResNet-18": {device: "?" for device in TABLE_V_FRAMEWORKS}}
        findings = tables.check_table_v(
            models=("ResNet-18",), expected=expected, candidates={})
        assert "TAB011" in rules_of(findings)

    def test_tab011_row_set_mismatch(self):
        findings = tables.check_table_v(
            models=("ResNet-18", "AlexNet"), expected={}, candidates={})
        assert "TAB011" in rules_of(findings)

    def test_tab012_chain_not_covered_by_candidates(self):
        findings = tables.check_table_v(
            table_v={"EdgeTPU": ("TFLite",)}, models=(), expected={},
            candidates={"EdgeTPU": ("PyTorch",)})
        assert "TAB012" in rules_of(findings)


class TestSeededLinkDefects:
    @staticmethod
    def _links(**overrides):
        from repro.distribution.network import LINK_PRESETS

        links = dict(LINK_PRESETS)
        links.update(overrides)
        return links

    def test_tab013_mislabeled_preset(self):
        from repro.distribution.network import NetworkLink

        links = self._links(wifi=NetworkLink("lte", 1e6, 1e-3))
        assert "TAB013" in rules_of(tables.check_links(links))

    def test_tab013_zero_bandwidth(self):
        from repro.distribution.network import NetworkLink

        links = self._links(wifi=NetworkLink("wifi", 1e6, 1e-3))
        object.__setattr__(links["wifi"], "bandwidth_bytes_per_s", 0.0)
        assert "TAB013" in rules_of(tables.check_links(links))

    def test_tab013_negative_latency(self):
        from repro.distribution.network import NetworkLink

        links = self._links(wifi=NetworkLink("wifi", 1e6, 1e-3))
        object.__setattr__(links["wifi"], "latency_s", -0.5)
        assert "TAB013" in rules_of(tables.check_links(links))

    def test_tab013_reliability_out_of_range(self):
        from repro.distribution.network import NetworkLink

        links = self._links(wifi=NetworkLink("wifi", 1e6, 1e-3))
        object.__setattr__(links["wifi"], "reliability", 0.0)
        assert "TAB013" in rules_of(tables.check_links(links))

    def test_tab013_missing_required_preset(self):
        links = self._links()
        del links["5g"]
        assert "TAB013" in rules_of(tables.check_links(links))

    def test_extra_presets_are_fine(self):
        from repro.distribution.network import NetworkLink

        links = self._links(sneakernet=NetworkLink("sneakernet", 1e3, 3600.0))
        assert tables.check_links(links) == []


class TestSeededPriceDefects:
    @staticmethod
    def _prices(**overrides):
        from repro.placement.cost import DEVICE_PRICE_USD

        prices = dict(DEVICE_PRICE_USD)
        prices.update(overrides)
        return prices

    def test_tab014_unpriced_registered_device(self):
        prices = self._prices()
        prices.pop("Raspberry Pi 3B")
        assert "TAB014" in rules_of(tables.check_placement_prices(prices))

    def test_tab014_orphan_price_entry(self):
        prices = self._prices(**{"Cray-1": 7_900_000.0})
        assert "TAB014" in rules_of(tables.check_placement_prices(prices))

    def test_tab014_non_positive_price(self):
        prices = self._prices(**{"Jetson Nano": 0.0})
        assert "TAB014" in rules_of(tables.check_placement_prices(prices))

    def test_tab014_non_finite_price(self):
        prices = self._prices(**{"Jetson TX2": float("inf")})
        assert "TAB014" in rules_of(tables.check_placement_prices(prices))
