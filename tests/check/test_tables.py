"""Data-consistency checker: real tables are clean; injected corruption
reports its stable rule ids."""

import dataclasses

from repro.check import tables
from repro.frameworks import load_framework
from repro.frameworks.compat import TABLE_V_FRAMEWORKS
from repro.hardware import load_device


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRealTablesAreClean:
    def test_devices(self):
        assert tables.check_devices() == []

    def test_frameworks(self):
        assert tables.check_frameworks() == []

    def test_calibration(self):
        assert tables.check_calibration() == []

    def test_table_v(self):
        assert tables.check_table_v() == []

    def test_full_pass(self):
        assert tables.run() == []


class TestSeededDeviceDefects:
    def test_tab001_usable_fraction_out_of_range(self):
        device = load_device("Raspberry Pi 3B")
        object.__setattr__(device.memory, "usable_fraction", 1.5)
        assert "TAB001" in rules_of(tables.check_devices([device]))

    def test_tab001_zero_bandwidth(self):
        device = load_device("Jetson Nano")
        object.__setattr__(device.memory, "bandwidth_bytes_per_s", 0.0)
        assert "TAB001" in rules_of(tables.check_devices([device]))

    def test_tab002_negative_peak(self):
        device = load_device("Jetson TX2")
        unit = device.compute_units[0]
        peaks = {dtype: -peak for dtype, peak in unit.peak_macs_per_s.items()}
        object.__setattr__(unit, "peak_macs_per_s", peaks)
        assert "TAB002" in rules_of(tables.check_devices([device]))

    def test_tab002_no_compute_units(self):
        device = load_device("EdgeTPU")
        object.__setattr__(device, "compute_units", ())
        assert "TAB002" in rules_of(tables.check_devices([device]))

    def test_tab003_zero_utilization(self):
        device = load_device("Movidius NCS")
        object.__setattr__(device, "inference_utilization", 0.0)
        assert "TAB003" in rules_of(tables.check_devices([device]))

    def test_tab003_non_positive_thermal_capacitance(self):
        device = load_device("Raspberry Pi 3B")
        object.__setattr__(device.thermal, "c_j_per_c", 0.0)
        assert "TAB003" in rules_of(tables.check_devices([device]))

    def test_tab004_unknown_supported_framework(self):
        device = load_device("EdgeTPU")
        object.__setattr__(device, "supported_frameworks", ("NotAFramework",))
        assert "TAB004" in rules_of(tables.check_devices([device]))


class TestSeededFrameworkDefects:
    def test_tab005_star_rating_out_of_range(self):
        framework = load_framework("TFLite")
        framework.capabilities = dataclasses.replace(
            framework.capabilities, usability=9)
        assert "TAB005" in rules_of(tables.check_frameworks([framework]))

    def test_tab006_efficiency_above_one(self):
        framework = load_framework("PyTorch")
        framework.depthwise_efficiency = 1.7
        assert "TAB006" in rules_of(tables.check_frameworks([framework]))

    def test_tab006_bad_kernel_quality(self):
        framework = load_framework("TensorFlow")
        framework.kernel_quality = {kind: 0.0
                                    for kind in framework.kernel_quality}
        assert "TAB006" in rules_of(tables.check_frameworks([framework]))

    def test_tab007_negative_overhead(self):
        framework = load_framework("Caffe")
        framework.overheads = dataclasses.replace(
            framework.overheads, library_load_s=-1.0)
        assert "TAB007" in rules_of(tables.check_frameworks([framework]))

    def test_tab007_weight_factor_below_one(self):
        framework = load_framework("DarkNet")
        framework.overheads = dataclasses.replace(
            framework.overheads, weight_memory_factor=0.5)
        assert "TAB007" in rules_of(tables.check_frameworks([framework]))


class TestSeededCalibrationDefects:
    def test_tab008_unknown_framework(self):
        anchors = {("NoSuchFW", "Raspberry Pi 3B"): ("ResNet-18", 0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab008_unknown_model(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("NoSuchModel", 0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab008_non_positive_target(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("ResNet-18", -0.5, "Fig. 8")}
        assert "TAB008" in rules_of(tables.check_calibration(anchors, {}))

    def test_tab009_delegate_without_anchors(self):
        anchors = {("TFLite", "Raspberry Pi 3B"): ("ResNet-18", 0.5, "Fig. 8")}
        delegates = {"Keras": "PyTorch"}  # PyTorch has no anchors here
        assert "TAB009" in rules_of(tables.check_calibration(anchors, delegates))

    def test_tab009_self_delegate(self):
        delegates = {"Keras": "Keras"}
        assert "TAB009" in rules_of(tables.check_calibration({}, delegates))


class TestSeededTableVDefects:
    def test_tab010_unsupported_chain_framework(self):
        findings = tables.check_table_v(
            table_v={"EdgeTPU": ("PyTorch",)}, models=(), expected={},
            candidates={})
        assert rules_of(findings) == {"TAB010"}

    def test_tab010_unknown_device(self):
        findings = tables.check_table_v(
            table_v={"NoSuchBoard": ("TFLite",)}, models=(), expected={},
            candidates={})
        assert "TAB010" in rules_of(findings)

    def test_tab011_unknown_symbol(self):
        expected = {"ResNet-18": {device: "?" for device in TABLE_V_FRAMEWORKS}}
        findings = tables.check_table_v(
            models=("ResNet-18",), expected=expected, candidates={})
        assert "TAB011" in rules_of(findings)

    def test_tab011_row_set_mismatch(self):
        findings = tables.check_table_v(
            models=("ResNet-18", "AlexNet"), expected={}, candidates={})
        assert "TAB011" in rules_of(findings)

    def test_tab012_chain_not_covered_by_candidates(self):
        findings = tables.check_table_v(
            table_v={"EdgeTPU": ("TFLite",)}, models=(), expected={},
            candidates={"EdgeTPU": ("PyTorch",)})
        assert "TAB012" in rules_of(findings)
