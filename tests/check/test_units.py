"""Units checker: the real tree is dimension-clean; each UNIT rule fires
on a seeded defect with its exact rule id; the suffix grammar and the
shared suppression comments behave."""

import textwrap

from repro.check import units
from repro.check.units import parse_name_dims
from repro.core.dimension import (
    BANDWIDTH,
    DIMENSIONLESS,
    ENERGY,
    ENERGY_DELAY,
    FREQUENCY,
    POWER,
    THERMAL_RESISTANCE,
    TIME,
)


def check(snippet, path="src/repro/analysis/example.py"):
    return units.check_source(textwrap.dedent(snippet), path)


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRealTreeIsClean:
    def test_package_checks_clean(self):
        assert units.run() == []

    def test_package_root_is_the_installed_package(self):
        assert (units.package_root() / "cli.py").exists()

    def test_every_rule_has_severity_and_description(self):
        for rule, (severity, description) in units.RULES.items():
            assert rule.startswith("UNIT")
            assert severity is not None and description


class TestSuffixGrammar:
    def test_simple_units(self):
        assert parse_name_dims("latency_s") == (TIME, 1.0)
        assert parse_name_dims("latency_ms") == (TIME, 1e-3)
        assert parse_name_dims("energy_j") == (ENERGY, 1.0)
        assert parse_name_dims("energy_mj") == (ENERGY, 1e-3)
        assert parse_name_dims("power_w") == (POWER, 1.0)
        assert parse_name_dims("clock_ghz") == (FREQUENCY, 1e9)

    def test_per_ratios(self):
        assert parse_name_dims("bandwidth_bytes_per_s") == (BANDWIDTH, 1.0)
        assert parse_name_dims("r_passive_c_per_w") == (THERMAL_RESISTANCE, 1.0)

    def test_chained_per_ratio_walks_left(self):
        dims = parse_name_dims("drift_c_per_w_per_s")
        assert dims is not None
        assert dims[0] == THERMAL_RESISTANCE / TIME

    def test_compound_product_suffix(self):
        assert parse_name_dims("edp_mj_ms") == (ENERGY_DELAY, 1e-6)

    def test_dimensionless_tokens(self):
        assert parse_name_dims("utilization") == (DIMENSIONLESS, 1.0)
        assert parse_name_dims("speedup_ratio") == (DIMENSIONLESS, 1.0)

    def test_non_units_stay_unclassified(self):
        assert parse_name_dims("table") is None
        assert parse_name_dims("model_name") is None
        # bare single letters are loop variables, not seconds/joules/watts
        assert parse_name_dims("s") is None
        assert parse_name_dims("w") is None
        # Inception blocks end in _b/_c but are not bytes/temperatures
        assert parse_name_dims("_inception_c") is None
        assert parse_name_dims("_reduction_b") is None
        # int.from_bytes builds an integer, not a byte count
        assert parse_name_dims("from_bytes") is None


class TestUnit001AddAcrossUnits:
    def test_seconds_plus_joules(self):
        snippet = """
        def total(latency_s, energy_j):
            return latency_s + energy_j
        """
        findings = check(snippet)
        assert rules_of(findings) == {"UNIT001"}
        assert findings[0].location == "repro/analysis/example.py:3"

    def test_milliseconds_plus_seconds(self):
        snippet = """
        def total_ms(latency_ms, overhead_s):
            total_ms = latency_ms + overhead_s
            return total_ms
        """
        assert rules_of(check(snippet)) == {"UNIT001"}

    def test_matching_units_are_fine(self):
        snippet = """
        def total_s(latency_s, overhead_s):
            return latency_s + overhead_s
        """
        assert check(snippet) == []

    def test_conversion_first_is_fine(self):
        snippet = """
        from repro.core.quantity import MILLI

        def total_s(latency_ms, overhead_s):
            return latency_ms * MILLI + overhead_s
        """
        assert check(snippet) == []


class TestUnit002CompareAcrossUnits:
    def test_ms_compared_with_s(self):
        snippet = """
        def throttled(latency_ms, deadline_s):
            return latency_ms > deadline_s
        """
        assert rules_of(check(snippet)) == {"UNIT002"}

    def test_min_across_dimensions(self):
        snippet = """
        def floor_s(latency_s, energy_j):
            return min(latency_s, energy_j)
        """
        assert rules_of(check(snippet)) == {"UNIT002"}

    def test_same_unit_comparison_is_fine(self):
        snippet = """
        def throttled(latency_s, deadline_s):
            return latency_s > deadline_s
        """
        assert check(snippet) == []


class TestUnit003ReturnContradictsDeclaration:
    def test_suffix_s_function_returning_ms(self):
        snippet = """
        def startup_s(init_ms):
            return init_ms
        """
        assert rules_of(check(snippet)) == {"UNIT003"}

    def test_annotation_contradicted(self):
        snippet = """
        from repro.core.quantity import Seconds

        def startup(energy_j) -> Seconds:
            return energy_j
        """
        assert rules_of(check(snippet)) == {"UNIT003"}

    def test_converted_return_is_fine(self):
        snippet = """
        from repro.core.quantity import MILLI

        def startup_s(init_ms):
            return init_ms * MILLI
        """
        assert check(snippet) == []


class TestUnit004DoubleConversion:
    def test_milli_applied_twice(self):
        snippet = """
        from repro.core.quantity import MILLI

        def startup_s(init_ms):
            value = init_ms * MILLI
            return value * MILLI
        """
        findings = check(snippet)
        assert "UNIT004" in rules_of(findings)

    def test_single_conversion_is_fine(self):
        snippet = """
        from repro.core.quantity import MILLI

        def startup_s(init_ms):
            return init_ms * MILLI
        """
        assert check(snippet) == []


class TestUnit005ConstructorMisuse:
    def test_seconds_fed_an_energy(self):
        snippet = """
        from repro.core.quantity import Seconds

        def wrap(energy_j):
            return Seconds(energy_j)
        """
        assert rules_of(check(snippet)) == {"UNIT005"}

    def test_seconds_fed_milliseconds(self):
        snippet = """
        from repro.core.quantity import Seconds

        def wrap(latency_ms):
            return Seconds(latency_ms)
        """
        assert rules_of(check(snippet)) == {"UNIT005"}

    def test_from_ms_fed_seconds(self):
        snippet = """
        from repro.core.quantity import Seconds

        def wrap(latency_s):
            return Seconds.from_ms(latency_s)
        """
        assert rules_of(check(snippet)) == {"UNIT005"}

    def test_from_ms_fed_a_preconverted_value(self):
        snippet = """
        from repro.core.quantity import MILLI, Seconds

        def wrap(latency_ms):
            return Seconds.from_ms(latency_ms * MILLI)
        """
        assert rules_of(check(snippet)) == {"UNIT005"}

    def test_correct_usage_is_fine(self):
        snippet = """
        from repro.core.quantity import Seconds

        def wrap_s(latency_s, latency_ms):
            a = Seconds(latency_s)
            b = Seconds.from_ms(latency_ms)
            return a + b
        """
        assert check(snippet) == []


class TestUnit006MixedAccumulator:
    def test_count_accumulates_seconds(self):
        snippet = """
        def tally(latencies_s):
            n_runs = 0
            for latency_s in latencies_s:
                n_runs += latency_s
            return n_runs
        """
        assert "UNIT006" in rules_of(check(snippet))

    def test_scale_mismatch_in_accumulator_is_unit001(self):
        snippet = """
        def tally_s(latencies_ms):
            total_s = 0.0
            for latency_ms in latencies_ms:
                total_s += latency_ms
            return total_s
        """
        assert "UNIT001" in rules_of(check(snippet))

    def test_homogeneous_accumulation_is_fine(self):
        snippet = """
        def tally_s(latencies_s):
            total_s = 0.0
            for latency_s in latencies_s:
                total_s += latency_s
            return total_s
        """
        assert check(snippet) == []


class TestUnit007SuffixContradiction:
    def test_energy_bound_to_power(self):
        snippet = """
        def record_j(power_w):
            energy_j = power_w
            return energy_j
        """
        assert rules_of(check(snippet)) == {"UNIT007"}

    def test_ms_name_bound_to_seconds(self):
        snippet = """
        def record_ms(latency_s):
            latency_ms = latency_s
            return latency_ms
        """
        assert rules_of(check(snippet)) == {"UNIT007"}

    def test_keyword_argument_contradiction(self):
        snippet = """
        def fill(table, latency_s):
            table.add_row("row", latency_ms=latency_s)
        """
        assert rules_of(check(snippet)) == {"UNIT007"}

    def test_product_resolving_to_the_suffix_is_fine(self):
        snippet = """
        def record_j(power_w, duration_s):
            energy_j = power_w * duration_s
            return energy_j
        """
        assert check(snippet) == []


class TestUnit008UndeclaredPublicReturn:
    def test_power_escaping_unnamed(self):
        snippet = """
        def draw(idle_w, active_w, utilization):
            return idle_w + utilization * (active_w - idle_w)
        """
        findings = check(snippet)
        assert rules_of(findings) == {"UNIT008"}
        assert findings[0].severity.value == "warning"

    def test_private_functions_are_exempt(self):
        snippet = """
        def _draw(idle_w, active_w):
            return idle_w + active_w
        """
        assert check(snippet) == []

    def test_suffixed_name_is_declared_enough(self):
        snippet = """
        def draw_w(idle_w, active_w):
            return idle_w + active_w
        """
        assert check(snippet) == []

    def test_quantity_tagged_return_is_declared_enough(self):
        snippet = """
        from repro.core.quantity import Watts

        def draw(idle_w, active_w):
            return Watts(idle_w + active_w)
        """
        assert check(snippet) == []

    def test_container_annotation_declares_the_element_unit(self):
        snippet = """
        from repro.core.quantity import Seconds

        def runs(latency_s, n) -> list[Seconds]:
            return [latency_s, latency_s]
        """
        assert check(snippet) == []


class TestDerivedDimensions:
    def test_power_times_time_is_energy(self):
        snippet = """
        def energy_j(power_w, duration_s):
            return power_w * duration_s
        """
        assert check(snippet) == []

    def test_energy_over_time_is_power(self):
        snippet = """
        def power_w(energy_j, duration_s):
            return energy_j / duration_s
        """
        assert check(snippet) == []

    def test_macs_over_time_is_throughput(self):
        snippet = """
        def rate_macs_per_s(macs, duration_s):
            return macs / duration_s
        """
        assert check(snippet) == []

    def test_inverse_latency_is_frequency(self):
        snippet = """
        def throughput_fps(latency_s):
            return 1.0 / latency_s
        """
        assert check(snippet) == []

    def test_watt_hours_are_an_energy(self):
        snippet = """
        def life_hours(battery_wh, draw_w):
            return battery_wh / draw_w
        """
        assert check(snippet) == []

    def test_power_squared_product_contradicts_energy(self):
        # the classic W*W slip: multiplying two powers cannot be an energy
        snippet = """
        def energy_j(idle_w, active_w):
            return idle_w * active_w
        """
        assert rules_of(check(snippet)) == {"UNIT003"}

    def test_scale_tracking_through_ratio(self):
        # ms/ms cancels the scale, so the ratio compares fine with 1.0
        snippet = """
        def slowdown_ratio(sustained_ms, burst_ms):
            return sustained_ms / burst_ms
        """
        assert check(snippet) == []


class TestConservatism:
    def test_unknown_names_propagate_silently(self):
        snippet = """
        def combine(a, b):
            return a + b
        """
        assert check(snippet) == []

    def test_raw_literal_conversion_blurs_the_scale(self):
        # `* 1e3` reads as a unit conversion; the scale becomes unknown
        # rather than wrong, so downstream sums do not false-positive.
        snippet = """
        def present_ms(latency_s, budget_ms):
            latency_ms = latency_s * 1e3
            return latency_ms + budget_ms
        """
        assert check(snippet) == []

    def test_branches_merge_to_agreement(self):
        snippet = """
        def pick_s(fast_s, slow_s, use_fast):
            if use_fast:
                value = fast_s
            else:
                value = slow_s
            return value
        """
        assert check(snippet) == []


class TestSuppression:
    def test_line_suppression_silences_one_line(self):
        snippet = """
        def total(latency_s, energy_j):
            return latency_s + energy_j  # repro: allow[UNIT001]
        """
        assert check(snippet) == []

    def test_file_suppression_silences_the_module(self):
        snippet = """
        # repro: allow-file[UNIT001] fixture mixes units on purpose

        def total(latency_s, energy_j):
            return latency_s + energy_j

        def again(latency_ms, power_w):
            return latency_ms + power_w
        """
        assert check(snippet) == []

    def test_file_suppression_is_rule_specific(self):
        snippet = """
        # repro: allow-file[UNIT002]

        def total(latency_s, energy_j):
            return latency_s + energy_j
        """
        assert rules_of(check(snippet)) == {"UNIT001"}
