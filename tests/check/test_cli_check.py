"""The ``repro check`` CLI verb: exit codes, formats, pass selection."""

import json

from repro.cli import main


class TestCheckVerb:
    def test_default_run_is_clean(self, capsys):
        assert main(["check"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_strict_json_run(self, capsys):
        assert main(["check", "--strict", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_single_pass_selection(self, capsys):
        assert main(["check", "arch"]) == 0
        capsys.readouterr()

    def test_unknown_pass_exits_2(self, capsys):
        assert main(["check", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown check pass" in err
        assert "bogus" in err

    def test_ignore_flag_is_accepted(self, capsys):
        assert main(["check", "tables", "--ignore", "TAB001"]) == 0
        capsys.readouterr()

    def test_units_pass_selection_is_clean(self, capsys):
        assert main(["check", "units", "--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_github_format_emits_annotations_or_summary(self, capsys):
        assert main(["check", "units", "--strict", "--format", "github"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.splitlines()[-1] == "no findings"

    def test_shapes_pass_selection_is_clean(self, capsys):
        assert main(["check", "shapes", "--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_stats_prints_per_pass_timings_to_stderr(self, capsys):
        assert main(["check", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "no findings" in captured.out
        for name in ("ir", "shapes", "tables", "arch", "units", "effects"):
            assert f"# {name}:" in captured.err
        assert "# total:" in captured.err
        assert "ms" in captured.err

    def test_stats_covers_only_selected_passes(self, capsys):
        assert main(["check", "shapes", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "# shapes:" in err
        assert "# effects:" not in err
