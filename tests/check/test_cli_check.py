"""The ``repro check`` CLI verb: exit codes, formats, pass selection."""

import json

from repro.cli import main


class TestCheckVerb:
    def test_default_run_is_clean(self, capsys):
        assert main(["check"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_strict_json_run(self, capsys):
        assert main(["check", "--strict", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_single_pass_selection(self, capsys):
        assert main(["check", "arch"]) == 0
        capsys.readouterr()

    def test_unknown_pass_exits_2(self, capsys):
        assert main(["check", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown check pass" in err
        assert "bogus" in err

    def test_ignore_flag_is_accepted(self, capsys):
        assert main(["check", "tables", "--ignore", "TAB001"]) == 0
        capsys.readouterr()

    def test_units_pass_selection_is_clean(self, capsys):
        assert main(["check", "units", "--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_github_format_emits_annotations_or_summary(self, capsys):
        assert main(["check", "units", "--strict", "--format", "github"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.splitlines()[-1] == "no findings"
