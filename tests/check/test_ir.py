"""IR verifier: every zoo graph/transform is clean; seeded defects report
their stable rule ids."""

import pytest

from repro.check import ir
from repro.graphs import ops as O
from repro.graphs.graph import GraphBuilder
from repro.graphs.tensor import DType
from repro.graphs.transforms import freeze_graph, fuse_graph, prune_graph, quantize_graph
from repro.models import list_models


def tiny_graph():
    builder = GraphBuilder("TinyNet")
    x = builder.input((3, 8, 8))
    x = builder.conv2d(x, 4, 3, name="conv_1")
    x = builder.batch_norm(x, name="bn_1")
    x = builder.relu(x, name="relu_1")
    x = builder.global_avg_pool(x)
    x = builder.dropout(x, name="dropout_1")
    x = builder.dense(x, 10, name="dense_1")
    return builder.build()


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestZooIsClean:
    @pytest.mark.parametrize("model_name", list_models())
    def test_model_and_every_transform_verify_clean(self, model_name):
        assert ir.verify_model(model_name) == []


class TestSeededGraphDefects:
    def test_clean_graph_has_no_findings(self):
        assert ir.verify_graph(tiny_graph()) == []

    def test_ir001_out_of_order_dataflow(self):
        graph = tiny_graph()
        graph.ops.reverse()
        assert "IR001" in rules_of(ir.verify_graph(graph))

    def test_ir001_parent_outside_graph(self):
        graph = tiny_graph()
        del graph.ops[1]  # conv vanishes but bn still consumes it
        assert "IR001" in rules_of(ir.verify_graph(graph))

    def test_ir002_duplicate_name(self):
        graph = tiny_graph()
        graph.op("bn_1").name = "conv_1"
        assert "IR002" in rules_of(ir.verify_graph(graph))

    def test_ir003_missing_input(self):
        graph = tiny_graph()
        graph.ops = [op for op in graph.ops if not isinstance(op, O.Input)]
        assert "IR003" in rules_of(ir.verify_graph(graph))

    def test_ir004_corrupted_shape(self):
        graph = tiny_graph()
        graph.op("conv_1").output_shape = (4, 6, 6)  # a bare tuple
        assert "IR004" in rules_of(ir.verify_graph(graph))

    def test_ir005_dtype_disagreement_across_edge(self):
        graph = tiny_graph()
        graph.op("bn_1").act_dtype = DType.FP16
        assert "IR005" in rules_of(ir.verify_graph(graph))

    def test_ir005_non_dtype_annotation(self):
        graph = tiny_graph()
        graph.op("conv_1").weight_dtype = "fp32"
        assert "IR005" in rules_of(ir.verify_graph(graph))

    def test_ir006_negative_params(self):
        graph = tiny_graph()
        graph.op("conv_1").params = -5
        assert "IR006" in rules_of(ir.verify_graph(graph))

    def test_ir006_sparsity_out_of_range(self):
        graph = tiny_graph()
        graph.op("dense_1").weight_sparsity = 1.5
        assert "IR006" in rules_of(ir.verify_graph(graph))

    def test_ir007_fusion_without_backlink(self):
        graph = tiny_graph()
        graph.op("bn_1").fused_into = graph.op("conv_1")
        assert "IR007" in rules_of(ir.verify_graph(graph))

    def test_ir008_zero_byte_traffic(self):
        graph = tiny_graph()
        dense = graph.op("dense_1")
        dense.traffic_weight_bytes = lambda exploit_sparsity=False: 0
        dense.input_bytes = lambda: 0
        dense.output_bytes = lambda: 0
        assert "IR008" in rules_of(ir.verify_graph(graph))

    def test_ir008_overflowing_macs(self):
        graph = tiny_graph()
        graph.op("conv_1").macs = 10 ** 400  # valid int, breaks float math
        assert "IR008" in rules_of(ir.verify_graph(graph))


class TestSeededTransformDefects:
    def test_clean_transforms_have_no_findings(self):
        assert ir.verify_transforms(tiny_graph()) == []

    def test_ir101_fusion_changed_macs(self):
        base = tiny_graph()
        fused = fuse_graph(base)
        fused.op("conv_1").macs += 7
        assert "IR101" in rules_of(ir.verify_transform("fuse", base, fused))

    def test_ir101_fusion_dropped_an_op(self):
        base = tiny_graph()
        fused = fuse_graph(base)
        fused.ops.pop()
        assert "IR101" in rules_of(ir.verify_transform("fuse", base, fused))

    def test_ir102_pruning_grew_params(self):
        base = tiny_graph()
        pruned = prune_graph(base, sparsity=0.5)
        pruned.op("dense_1").params += 10
        assert "IR102" in rules_of(ir.verify_transform("prune", base, pruned))

    def test_ir103_non_uniform_quantization(self):
        base = tiny_graph()
        quantized = quantize_graph(base, DType.INT8)
        quantized.op("conv_1").weight_dtype = DType.FP32
        assert "IR103" in rules_of(ir.verify_transform("quantize", base, quantized))

    def test_ir104_dropout_survived_freeze(self):
        base = tiny_graph()
        frozen = freeze_graph(base)
        dropout = frozen.op("dropout_1")
        dropout.fused_into = None
        assert "IR104" in rules_of(ir.verify_transform("freeze", base, frozen))

    def test_unknown_transform_kind_raises(self):
        base = tiny_graph()
        with pytest.raises(ValueError, match="unknown transform kind"):
            ir.verify_transform("distill", base, base)


class TestRunEntryPoint:
    def test_selected_models_only(self):
        assert ir.run(models=["CifarNet 32x32"]) == []

    def test_findings_carry_graph_locations(self):
        graph = tiny_graph()
        graph.op("conv_1").params = -1
        finding = ir.verify_graph(graph)[0]
        assert finding.location == "graph:TinyNet/conv_1"
