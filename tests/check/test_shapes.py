"""Shapes pass: the zoo re-derives cleanly; seeded defects pin every SHAPE
rule id; symbolic summaries match their golden snapshots."""

from pathlib import Path

import pytest

from repro.check import shapes
from repro.check.shape_rules import TransferError, apply_transfer
from repro.graphs.graph import GraphBuilder
from repro.graphs.tensor import DType, TensorShape
from repro.graphs.transforms import fuse_graph
from repro.models import list_models, load_model

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data"


def tiny_graph():
    builder = GraphBuilder("TinyNet")
    x = builder.input((3, 8, 8))
    x = builder.conv2d(x, 4, 3, name="conv_1")
    x = builder.batch_norm(x, name="bn_1")
    x = builder.relu(x, name="relu_1")
    x = builder.global_avg_pool(x)
    x = builder.dense(x, 10, name="dense_1")
    return builder.build()


def recurrent_graph(return_sequences=False):
    builder = GraphBuilder("TinyRNN")
    x = builder.input((16,), name="tokens")
    x = builder.embedding(x, vocab_size=64, dim=8, name="embed")
    x = builder.lstm(x, hidden=12, return_sequences=return_sequences,
                     name="lstm_1")
    if return_sequences:
        x = builder.flatten(x, name="flat_1")
    x = builder.dense(x, 64, name="dense_1")
    return builder.build()


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestZooIsClean:
    @pytest.mark.parametrize("model_name", list_models())
    def test_model_and_every_transform_derive_clean(self, model_name):
        assert shapes.verify_model(model_name) == []

    def test_clean_tiny_graph_has_no_findings(self):
        assert shapes.verify_graph_shapes(tiny_graph()) == []
        assert shapes.verify_transforms(tiny_graph()) == []

    def test_clean_recurrent_graph_has_no_findings(self):
        assert shapes.verify_graph_shapes(recurrent_graph()) == []


class TestSeededDefects:
    def test_shape001_stored_shape_disagrees_with_derived(self):
        graph = tiny_graph()
        graph.op("conv_1").output_shape = TensorShape(4, 7, 7)
        findings = shapes.verify_graph_shapes(graph)
        assert "SHAPE001" in rules_of(findings)
        assert any(f.location == "graph:TinyNet/conv_1" for f in findings)

    def test_shape002_dtype_break_without_cast(self):
        graph = tiny_graph()
        graph.op("bn_1").act_dtype = DType.FP16
        assert "SHAPE002" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape002_binary_weights_need_quantized_activations(self):
        graph = tiny_graph()
        graph.op("conv_1").weight_dtype = DType.BINARY
        assert "SHAPE002" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape003_add_inputs_disagree(self):
        builder = GraphBuilder("Residual")
        x = builder.input((4, 8, 8))
        a = builder.conv2d(x, 4, 3, name="conv_a")
        b = builder.conv2d(x, 4, 3, stride=2, name="conv_b")
        add = builder.add(a, a, name="add_1")
        builder.relu(add)
        graph = builder.build()
        graph.op("add_1").inputs = (a, b)  # (4,8,8) meets (4,4,4)
        assert "SHAPE003" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape004_reshape_loses_elements(self):
        builder = GraphBuilder("ReshapeNet")
        x = builder.input((4, 8, 8))
        x = builder.reshape(x, (4, 64), name="reshape_1")
        builder.flatten(x)
        graph = builder.build()
        graph.op("reshape_1").output_shape = TensorShape(4, 63)
        assert "SHAPE004" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape005_macs_off_by_one(self):
        graph = tiny_graph()
        graph.op("conv_1").macs += 1
        assert "SHAPE005" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape005_params_disagree(self):
        graph = tiny_graph()
        graph.op("dense_1").params -= 3
        assert "SHAPE005" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape006_groups_do_not_divide_channels(self):
        graph = tiny_graph()
        graph.op("conv_1").groups = 3  # out_channels = 4
        assert "SHAPE006" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape006_kernel_overruns_input(self):
        graph = tiny_graph()
        conv = graph.op("conv_1")
        conv.kernel = (11, 11)
        conv.padding = "valid"
        assert "SHAPE006" in rules_of(shapes.verify_graph_shapes(graph))

    def test_shape007_dense_bakes_in_the_sequence_length(self):
        # Flattening a (SEQ, H) sequence into a Dense makes the weight
        # matrix depend on SEQ: valid at the stored length, nowhere else.
        graph = recurrent_graph(return_sequences=True)
        findings = shapes.verify_graph_shapes(graph)
        assert "SHAPE007" in rules_of(findings)
        assert any("sequence length" in f.message for f in findings)

    def test_shape007_batched_input_must_keep_its_leading_dim(self):
        conv = tiny_graph().op("conv_1")
        with pytest.raises(TransferError) as exc:
            apply_transfer(conv, (TensorShape(3, 8, 8),),
                           batch=shapes.dim("N"))
        assert exc.value.rule == "SHAPE007"

    def test_shape008_transform_output_drifts(self):
        base = tiny_graph()
        fused = fuse_graph(base)
        fused.op("conv_1").output_shape = TensorShape(4, 7, 7)
        findings = shapes.verify_transform("fuse", base, fused)
        assert rules_of(findings) == {"SHAPE008"}

    def test_shape008_transform_invents_an_op(self):
        base = tiny_graph()
        fused = fuse_graph(base)
        fused.op("conv_1").name = "conv_ghost"
        assert "SHAPE008" in rules_of(
            shapes.verify_transform("fuse", base, fused))

    def test_broken_graph_reports_each_defect_once(self):
        # The symbolic passes skip concretely-flagged ops, and a failed
        # transfer falls back to the stored shape — one defect, no cascade.
        graph = tiny_graph()
        graph.op("conv_1").groups = 3
        findings = shapes.verify_graph_shapes(graph)
        assert [f.rule for f in findings] == ["SHAPE006"]


class TestTransferRegistry:
    def test_unknown_op_class_reports_shape001(self):
        class Mystery:
            pass

        with pytest.raises(TransferError) as exc:
            apply_transfer(Mystery(), ())
        assert exc.value.rule == "SHAPE001"

    def test_shape_transfer_attribute_takes_precedence(self):
        from repro.check.shape_rules import Derived
        from repro.graphs import ops as O

        class Custom(O.Activation):
            @staticmethod
            def shape_transfer(op, inputs):
                return Derived(shape=TensorShape(1))

        source = tiny_graph().op("relu_1")
        op = Custom("custom", [source])
        derived = apply_transfer(op, (TensorShape(4, 8, 8),))
        assert derived.shape.dims == (1,)


class TestGoldenSymbolicSummaries:
    GOLDENS = {
        "CifarNet 32x32": "symbolic_cifarnet.txt",
        "CharRNN-LSTM": "symbolic_charrnn_lstm.txt",
        "SSD MobileNet-v1": "symbolic_ssd_mobilenet_v1.txt",
    }

    @pytest.mark.parametrize("model_name", sorted(GOLDENS))
    def test_summary_matches_snapshot(self, model_name):
        rendered = shapes.render_symbolic_summary(load_model(model_name))
        golden = (GOLDEN_DIR / self.GOLDENS[model_name]).read_text()
        assert rendered == golden
