"""Effects pass: the real tree is effect-clean; seeded defects pin every
RACE/KEY/ALIAS rule id; lock guards, clones and suppressions silence them."""

import textwrap

from repro.check import astutil, effects


def check(snippet, path="src/repro/runtime/runner.py", roots=None):
    if roots is None:
        return effects.check_source(textwrap.dedent(snippet), path)
    return effects.check_source(textwrap.dedent(snippet), path, roots=roots)


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRealTreeIsClean:
    def test_package_is_effect_clean(self):
        assert effects.run() == []

    def test_every_emitted_rule_is_catalogued(self):
        for rule, (severity, description) in effects.RULES.items():
            assert rule.startswith(("RACE", "KEY", "ALIAS"))
            assert description


class TestRace001GlobalRebind:
    SNIPPET = """
    _TOTAL = 0

    class Runner:
        def run_cells(self, cells):
            for cell in cells:
                _bump()

    def _bump():
        global _TOTAL
        _TOTAL += 1
    """

    def test_unguarded_rebind_on_parallel_path_is_flagged(self):
        findings = check(self.SNIPPET)
        assert rules_of(findings) == {"RACE001"}
        assert findings[0].location == "repro/runtime/runner.py:11"
        assert "_TOTAL" in findings[0].message

    def test_lock_guarded_rebind_is_fine(self):
        snippet = """
        import threading

        _TOTAL = 0
        _LOCK = threading.Lock()

        class Runner:
            def run_cells(self, cells):
                for cell in cells:
                    _bump()

        def _bump():
            global _TOTAL
            with _LOCK:
                _TOTAL += 1
        """
        assert check(snippet) == []

    def test_same_defect_off_the_parallel_path_is_fine(self):
        # no parallel root lives in this module, so nothing is reachable
        snippet = """
        _TOTAL = 0

        def bump():
            global _TOTAL
            _TOTAL += 1
        """
        assert check(snippet, path="src/repro/harness/report.py") == []

    def test_inline_suppression_silences_the_line(self):
        snippet = """
        _TOTAL = 0

        class Runner:
            def run_cells(self, cells):
                _bump()

        def _bump():
            global _TOTAL
            _TOTAL += 1  # repro: allow[RACE001] test-only counter
        """
        assert check(snippet) == []


class TestRace002SharedContainerMutation:
    def test_global_dict_write_on_parallel_path_is_flagged(self):
        snippet = """
        _RESULTS = {}

        class Runner:
            def run_cells(self, cells):
                for cell in cells:
                    _RESULTS[cell] = self._price(cell)

            def _price(self, cell):
                return cell
        """
        findings = check(snippet)
        assert rules_of(findings) == {"RACE002"}
        assert "_RESULTS" in findings[0].message

    def test_global_list_append_in_a_callee_is_flagged(self):
        snippet = """
        _LOG = []

        class Runner:
            def run_cells(self, cells):
                return [_record(cell) for cell in cells]

        def _record(cell):
            _LOG.append(cell)
            return cell
        """
        findings = check(snippet)
        assert rules_of(findings) == {"RACE002"}

    def test_method_call_writing_self_on_shared_instance_is_flagged(self):
        snippet = """
        class Tally:
            def __init__(self):
                self.count = 0

            def bump(self):
                self.count += 1

        TALLY = Tally()

        class Runner:
            def run_cells(self, cells):
                for cell in cells:
                    TALLY.bump()
        """
        findings = check(snippet)
        assert "RACE002" in rules_of(findings)
        assert any("bump()" in finding.message for finding in findings)


class TestRace003MutableDefault:
    def test_mutable_default_on_reachable_function_is_flagged(self):
        snippet = """
        class Runner:
            def run_cells(self, cells, acc=[]):
                acc.extend(cells)
                return acc
        """
        findings = check(snippet)
        assert rules_of(findings) == {"RACE003"}
        assert "acc" in findings[0].message

    def test_mutable_default_in_a_callee_is_flagged(self):
        snippet = """
        class Runner:
            def run_cells(self, cells):
                return _gather(cells)

        def _gather(cells, into={}):
            return into
        """
        assert rules_of(check(snippet)) == {"RACE003"}

    def test_immutable_default_is_fine(self):
        snippet = """
        class Runner:
            def run_cells(self, cells, limit=None, scale=1.0):
                return [cell for cell in cells][:limit]
        """
        assert check(snippet) == []


class TestRace004PureLayerBoundary:
    CLOCK = """
    import time

    def stamp():
        return time.time()
    """

    def test_pure_layer_calling_wall_clock_code_is_flagged(self):
        modules = [
            astutil.load_source(textwrap.dedent(self.CLOCK),
                                "src/repro/measurement/clock.py"),
            astutil.load_source(textwrap.dedent("""
                from repro.measurement.clock import stamp

                def lower(cells):
                    return [stamp() for cell in cells]
                """), "src/repro/engine/lower.py"),
        ]
        findings = effects.check_modules(modules)
        assert rules_of(findings) == {"RACE004"}
        assert findings[0].location.startswith("repro/engine/lower.py:")
        assert "time.time()" in findings[0].message

    def test_fires_without_parallel_root_reachability(self):
        # unlike RACE001-003 the boundary contract is layer-wide: nothing
        # here is reachable from any parallel root, yet the call still trips
        modules = [
            astutil.load_source(textwrap.dedent(self.CLOCK),
                                "src/repro/measurement/clock.py"),
            astutil.load_source(textwrap.dedent("""
                from repro.measurement.clock import stamp

                def helper(x):
                    return stamp() + x
                """), "src/repro/fleet/extras.py"),
        ]
        assert rules_of(effects.check_modules(modules)) == {"RACE004"}

    def test_seeded_rng_callee_is_deterministic_and_fine(self):
        modules = [
            astutil.load_source(textwrap.dedent("""
                from numpy.random import default_rng

                def draw(seed):
                    return default_rng(seed).random()
                """), "src/repro/measurement/noise.py"),
            astutil.load_source(textwrap.dedent("""
                from repro.measurement.noise import draw

                def lower(cells):
                    return [draw(7) for cell in cells]
                """), "src/repro/engine/lower.py"),
        ]
        assert effects.check_modules(modules) == []

    def test_call_within_the_pure_layers_defers_to_the_deeper_boundary(self):
        # engine -> engine call: the boundary sits at the callee's own
        # sites, so only the deeper module's crossing reports (here: none,
        # because the callee is the one making the raw time call and raw
        # nondet calls inside a pure layer are ARCH004's job, not RACE004's)
        modules = [
            astutil.load_source(textwrap.dedent(self.CLOCK),
                                "src/repro/engine/clock.py"),
            astutil.load_source(textwrap.dedent("""
                from repro.engine.clock import stamp

                def lower(cells):
                    return [stamp() for cell in cells]
                """), "src/repro/engine/lower.py"),
        ]
        assert effects.check_modules(modules) == []


class TestKey001UnkeyedMutableGlobal:
    def test_builder_reading_mutated_global_is_flagged(self):
        snippet = """
        CACHE = {}
        _SCALE = 1.0

        def set_scale(value):
            global _SCALE
            _SCALE = value

        def load(name):
            return CACHE.get_or_build(name, lambda: [name, _SCALE])
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"KEY001"}
        assert "_SCALE" in findings[0].message

    def test_keying_the_global_fixes_it(self):
        snippet = """
        CACHE = {}
        _SCALE = 1.0

        def set_scale(value):
            global _SCALE
            _SCALE = value

        def load(name):
            return CACHE.get_or_build((name, _SCALE), lambda: [name, _SCALE])
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []

    def test_never_mutated_global_is_fine(self):
        snippet = """
        CACHE = {}
        _SCALE = 1.0

        def load(name):
            return CACHE.get_or_build(name, lambda: [name, _SCALE])
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []


class TestKey002UnderKeyedClosure:
    def test_builder_closing_over_unkeyed_local_is_flagged(self):
        snippet = """
        CACHE = {}

        def load(name, scale):
            return CACHE.get_or_build(name, lambda: [name, scale])
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"KEY002"}
        assert "scale" in findings[0].message

    def test_named_builder_taking_unkeyed_param_via_closure_is_flagged(self):
        snippet = """
        CACHE = {}

        def load(name, scale):
            def build():
                return [name, scale]

            return CACHE.get_or_build(name, build)
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"KEY002"}

    def test_fully_keyed_closure_is_fine(self):
        snippet = """
        CACHE = {}

        def load(name, scale):
            return CACHE.get_or_build((name, scale), lambda: [name, scale])
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []

    def test_precomputed_key_variable_covers_its_constituents(self):
        snippet = """
        CACHE = {}

        def load(name, scale):
            key = (name, scale)
            return CACHE.get_or_build(key, lambda: [name, scale])
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []


class TestKey003OverKeyed:
    def test_key_encoding_unread_value_is_flagged(self):
        snippet = """
        CACHE = {}

        def load(name, dtype):
            return CACHE.get_or_build((name, dtype), lambda: name.upper())
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"KEY003"}
        assert "dtype" in findings[0].message
        assert findings[0].severity.value == "warning"

    def test_key_matching_builder_reads_is_fine(self):
        snippet = """
        CACHE = {}

        def load(name, dtype):
            return CACHE.get_or_build((name, dtype), lambda: (name, dtype))
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []


class TestAlias001CachedObjectMutation:
    def test_mutating_cache_result_without_clone_is_flagged(self):
        snippet = """
        CACHE = {}

        def annotate(name):
            graph = CACHE.get_or_build(name, lambda: make(name))
            graph.layers.append("annotated")
            return graph

        def make(name):
            return name
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"ALIAS001"}
        assert "clone()" in findings[0].message

    def test_clone_before_mutating_is_fine(self):
        snippet = """
        CACHE = {}

        def annotate(name):
            graph = CACHE.get_or_build(name, lambda: make(name))
            graph = graph.clone()
            graph.layers.append("annotated")
            return graph

        def make(name):
            return name
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []

    def test_passing_cached_object_to_mutating_callee_is_flagged(self):
        snippet = """
        CACHE = {}

        def annotate(name):
            graph = CACHE.get_or_build(name, lambda: make(name))
            _stamp(graph)
            return graph

        def _stamp(graph):
            graph.stamped = True

        def make(name):
            return name
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"ALIAS001"}
        assert "_stamp" in findings[0].message


class TestAlias002CachedReturnMutation:
    def test_mutating_value_from_caching_function_is_flagged(self):
        snippet = """
        CACHE = {}

        def cached_graph(name):
            return CACHE.get_or_build(name, lambda: make(name))

        def annotate(name):
            graph = cached_graph(name)
            graph.nodes.append("x")
            return graph

        def make(name):
            return name
        """
        findings = check(snippet, path="src/repro/engine/demo.py")
        assert rules_of(findings) == {"ALIAS002"}
        assert "cached_graph" in findings[0].message

    def test_clone_of_cached_return_is_fine(self):
        snippet = """
        CACHE = {}

        def cached_graph(name):
            return CACHE.get_or_build(name, lambda: make(name))

        def annotate(name):
            graph = cached_graph(name).clone()
            graph.nodes.append("x")
            return graph

        def make(name):
            return name
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []

    def test_mutating_value_from_non_caching_function_is_fine(self):
        snippet = """
        def fresh_graph(name):
            return make(name)

        def annotate(name):
            graph = fresh_graph(name)
            graph.nodes.append("x")
            return graph

        def make(name):
            return name
        """
        assert check(snippet, path="src/repro/engine/demo.py") == []


class TestCustomRoots:
    def test_roots_parameter_redefines_the_parallel_entry_points(self):
        snippet = """
        _STATE = {}

        def my_entry(cells):
            for cell in cells:
                _STATE[cell] = cell
        """
        path = "src/repro/harness/custom.py"
        assert check(snippet, path=path) == []
        findings = check(snippet, path=path,
                         roots=("harness/custom.py:my_entry",))
        assert rules_of(findings) == {"RACE002"}


class TestRegistryDispatchReachability:
    """PR 9 blind spot, closed: functions reached only through
    ``Registry.create``'s ``self._factories[key]()`` subscript dispatch are
    on the parallel paths and their races report."""

    SNIPPET = """
    _HITS = 0

    class Registry:
        def __init__(self):
            self._factories = {}

        def register(self, name, factory):
            self._factories[name] = factory

        def create(self, name):
            return self._factories[name]()

    def build_alexnet():
        global _HITS
        _HITS += 1
        return "graph"

    REGISTRY = Registry()
    REGISTRY.register("alexnet", build_alexnet)

    class Runner:
        def run_cells(self, cells):
            for cell in cells:
                REGISTRY.create(cell)
    """

    def test_race_in_registered_factory_is_reachable(self):
        findings = check(self.SNIPPET)
        assert rules_of(findings) == {"RACE001"}
        assert "_HITS" in findings[0].message

    def test_lambda_factory_stays_invisible(self):
        snippet = self.SNIPPET.replace(
            'REGISTRY.register("alexnet", build_alexnet)',
            'REGISTRY.register("alexnet", lambda: build_other())')
        findings = check(snippet)
        assert findings == []
