"""Call graph: the resolution ladder, reference edges, and reachability."""

import textwrap

from repro.check import astutil, callgraph


def module(snippet, path="src/repro/engine/demo.py"):
    return astutil.load_source(textwrap.dedent(snippet), path)


def graph(*mods):
    return callgraph.build(list(mods))


class TestResolutionLadder:
    def test_own_module_bare_call_resolves(self):
        g = graph(module("""
            def outer():
                return helper()

            def helper():
                return 1
            """))
        assert g.successors("repro/engine/demo.py:outer") == {
            "repro/engine/demo.py:helper"}

    def test_nested_def_wins_over_module_function(self):
        g = graph(module("""
            def helper():
                return "module-level"

            def outer():
                def helper():
                    return "nested"
                return helper()
            """))
        assert g.successors("repro/engine/demo.py:outer") == {
            "repro/engine/demo.py:outer.helper"}

    def test_self_method_resolves_to_own_class(self):
        g = graph(module("""
            class Runner:
                def run(self):
                    return self.price()

                def price(self):
                    return 1
            """))
        assert g.successors("repro/engine/demo.py:Runner.run") == {
            "repro/engine/demo.py:Runner.price"}

    def test_from_import_resolves_across_modules(self):
        g = graph(
            module("""
                def stamp():
                    return 0
                """, "src/repro/measurement/clock.py"),
            module("""
                from repro.measurement.clock import stamp

                def lower():
                    return stamp()
                """, "src/repro/engine/lower.py"))
        assert g.successors("repro/engine/lower.py:lower") == {
            "repro/measurement/clock.py:stamp"}

    def test_module_alias_attribute_resolves(self):
        g = graph(
            module("""
                def stamp():
                    return 0
                """, "src/repro/measurement/clock.py"),
            module("""
                import repro.measurement.clock as clock

                def lower():
                    return clock.stamp()
                """, "src/repro/engine/lower.py"))
        assert g.successors("repro/engine/lower.py:lower") == {
            "repro/measurement/clock.py:stamp"}

    def test_module_level_instance_method_resolves(self):
        g = graph(module("""
            class Memo:
                def get(self, key):
                    return key

            CACHE = Memo()

            def fetch(key):
                return CACHE.get(key)
            """))
        assert g.successors("repro/engine/demo.py:fetch") == {
            "repro/engine/demo.py:Memo.get"}

    def test_imported_instance_method_resolves(self):
        g = graph(
            module("""
                class Memo:
                    def get(self, key):
                        return key

                CACHE = Memo()
                """, "src/repro/engine/cachemod.py"),
            module("""
                from repro.engine.cachemod import CACHE

                def fetch(key):
                    return CACHE.get(key)
                """, "src/repro/engine/lower.py"))
        assert g.successors("repro/engine/lower.py:fetch") == {
            "repro/engine/cachemod.py:Memo.get"}

    def test_unique_bare_name_resolves_package_wide(self):
        g = graph(
            module("""
                def one_of_a_kind():
                    return 0
                """, "src/repro/measurement/clock.py"),
            module("""
                def caller(fn):
                    return one_of_a_kind()
                """, "src/repro/engine/lower.py"))
        assert g.successors("repro/engine/lower.py:caller") == {
            "repro/measurement/clock.py:one_of_a_kind"}

    def test_ambiguous_bare_name_yields_the_candidate_set(self):
        g = graph(
            module("""
                def dup():
                    return 1
                """, "src/repro/engine/a.py"),
            module("""
                def dup():
                    return 2
                """, "src/repro/engine/b.py"),
            module("""
                def caller():
                    return dup()
                """, "src/repro/engine/c.py"))
        assert g.successors("repro/engine/c.py:caller") == {
            "repro/engine/a.py:dup", "repro/engine/b.py:dup"}

    def test_unknown_names_resolve_to_nothing(self):
        g = graph(module("""
            import math

            def caller():
                return math.sqrt(len("x"))
            """))
        assert g.successors("repro/engine/demo.py:caller") == set()


class TestReferenceEdges:
    def test_function_passed_as_argument_creates_an_edge(self):
        g = graph(module("""
            def worker(cell):
                return cell

            def fan_out(pool, items):
                return pool.map(worker, items)
            """))
        assert g.successors("repro/engine/demo.py:fan_out") == {
            "repro/engine/demo.py:worker"}
        fnode = g.functions["repro/engine/demo.py:fan_out"]
        assert all(site.via_reference for site in fnode.refs)

    def test_nested_builder_passed_to_get_or_build_creates_an_edge(self):
        g = graph(module("""
            CACHE = {}

            def load(name):
                def build():
                    return name

                return CACHE.get_or_build(name, build)
            """))
        assert "repro/engine/demo.py:load.build" in g.successors(
            "repro/engine/demo.py:load")


class TestNestedDefIsolation:
    def test_nested_body_calls_belong_to_the_nested_node(self):
        g = graph(module("""
            def helper():
                return 1

            def outer():
                def inner():
                    return helper()
                return inner
            """))
        # outer references inner but does not inherit inner's call to helper
        outer = g.functions["repro/engine/demo.py:outer"]
        direct = {t for site in outer.calls for t in site.targets}
        assert "repro/engine/demo.py:helper" not in direct
        assert g.successors("repro/engine/demo.py:outer.inner") == {
            "repro/engine/demo.py:helper"}


class TestReachability:
    def test_transitive_closure_includes_the_roots(self):
        g = graph(module("""
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1

            def unrelated():
                return 2
            """))
        reached = g.reachable(["repro/engine/demo.py:a"])
        assert reached == {"repro/engine/demo.py:a", "repro/engine/demo.py:b",
                           "repro/engine/demo.py:c"}

    def test_reference_edges_count_as_reachable(self):
        g = graph(module("""
            def worker(cell):
                return log(cell)

            def log(cell):
                return cell

            def fan_out(pool, items):
                return pool.map(worker, items)
            """))
        reached = g.reachable(["repro/engine/demo.py:fan_out"])
        assert "repro/engine/demo.py:worker" in reached
        assert "repro/engine/demo.py:log" in reached

    def test_unknown_roots_reach_nothing(self):
        g = graph(module("def f():\n    return 1\n"))
        assert g.reachable(["repro/engine/demo.py:missing"]) == set()


class TestFind:
    def test_find_matches_by_suffix(self):
        g = graph(module("""
            class Runner:
                def run_cells(self):
                    return 1
            """, "src/repro/runtime/runner.py"))
        assert g.find("runtime/runner.py:Runner.run_cells") == [
            "repro/runtime/runner.py:Runner.run_cells"]

    def test_find_misses_cleanly(self):
        g = graph(module("def f():\n    return 1\n"))
        assert g.find("nowhere.py:ghost") == []


class TestRealPackageGraph:
    def test_every_parallel_root_resolves_in_the_real_tree(self):
        from repro.check import effects

        g = callgraph.build(astutil.load_package())
        for root in effects.PARALLEL_ROOTS:
            assert g.find(root), f"parallel root {root} not found"

    def test_real_tree_reaches_the_cache_layer(self):
        from repro.check import effects

        g = callgraph.build(astutil.load_package())
        roots = [fid for root in effects.PARALLEL_ROOTS
                 for fid in g.find(root)]
        reached = g.reachable(roots)
        assert "repro/engine/cache.py:MemoCache.get_or_build" in reached


class TestSubscriptDispatch:
    REGISTRY = """
        class Registry:
            def __init__(self):
                self._factories = {}

            def register(self, name, factory):
                self._factories[name] = factory

            def create(self, name):
                return self._factories[name]()

        def build_alexnet():
            return "alexnet"

        def build_vgg():
            return "vgg"

        REGISTRY = Registry()
        REGISTRY.register("alexnet", build_alexnet)
        REGISTRY.register("vgg", factory=build_vgg)
        """

    def test_registered_functions_become_create_candidates(self):
        g = graph(module(self.REGISTRY))
        assert g.successors("repro/engine/demo.py:Registry.create") == {
            "repro/engine/demo.py:build_alexnet",
            "repro/engine/demo.py:build_vgg"}

    def test_loop_registration_resolves_every_loop_value(self):
        g = graph(module("""
            class Registry:
                def __init__(self):
                    self._factories = {}

                def register(self, name, factory):
                    self._factories[name] = factory

                def create(self, name):
                    return self._factories[name]()

            def rpi3():
                return "rpi3"

            def tx2():
                return "tx2"

            REGISTRY = Registry()
            for _factory in (rpi3, tx2):
                REGISTRY.register(_factory().__doc__, _factory)
            """))
        assert g.successors("repro/engine/demo.py:Registry.create") == {
            "repro/engine/demo.py:rpi3", "repro/engine/demo.py:tx2"}

    def test_factory_helper_returning_nested_def_resolves(self):
        g = graph(module("""
            class Registry:
                def __init__(self):
                    self._factories = {}

                def register(self, name, factory):
                    self._factories[name] = factory

                def create(self, name):
                    return self._factories[name]()

            def make_factory(name):
                def factory():
                    return name

                return factory

            REGISTRY = Registry()
            REGISTRY.register("alexnet", make_factory("alexnet"))
            """))
        assert g.successors("repro/engine/demo.py:Registry.create") == {
            "repro/engine/demo.py:make_factory.factory"}

    def test_module_dict_table_dispatch_resolves(self):
        g = graph(module("""
            def run_ir():
                return 1

            def run_arch():
                return 2

            PASSES = {"ir": run_ir, "arch": run_arch}

            def run_checks(name):
                return PASSES[name]()
            """))
        assert g.successors("repro/engine/demo.py:run_checks") == {
            "repro/engine/demo.py:run_ir", "repro/engine/demo.py:run_arch"}

    def test_imported_dict_table_dispatch_resolves(self):
        g = graph(
            module("""
                def run_ir():
                    return 1

                PASSES = {"ir": run_ir}
                """, "src/repro/check/passes.py"),
            module("""
                from repro.check.passes import PASSES

                def main(name):
                    return PASSES[name]()
                """, "src/repro/engine/cli.py"))
        assert g.successors("repro/engine/cli.py:main") == {
            "repro/check/passes.py:run_ir"}

    def test_lambda_registration_stays_unresolved(self):
        # The documented remaining blind spot: a lambda has no name to
        # resolve, so create() gains no edge from it.
        g = graph(module("""
            class Registry:
                def __init__(self):
                    self._factories = {}

                def register(self, name, factory):
                    self._factories[name] = factory

                def create(self, name):
                    return self._factories[name]()

            REGISTRY = Registry()
            REGISTRY.register("exp", lambda: "experiment")
            """))
        assert g.successors("repro/engine/demo.py:Registry.create") == set()


class TestRealTreeDispatch:
    def test_registry_create_reaches_the_registered_factories(self):
        g = callgraph.build(astutil.load_package())
        reached = g.reachable(["repro/core/registry.py:Registry.create"])
        assert "repro/models/zoo.py:_make_factory.factory" in reached
        assert "repro/hardware/catalog.py:raspberry_pi_3b" in reached
        assert "repro/hardware/catalog.py:jetson_tx2" in reached

    def test_check_passes_table_reaches_every_pass(self):
        g = callgraph.build(astutil.load_package())
        reached = g.reachable(["repro/check/__init__.py:run_checks"])
        for name in ("ir", "shapes", "tables", "arch", "units", "effects"):
            assert f"repro/check/{name}.py:run" in reached, name
