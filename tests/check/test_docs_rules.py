"""The rule catalog, docs/checks.md and `--list-rules` agree with each other.

Every rule a pass can emit must be documented in a rule table in
docs/checks.md, and every documented rule must still exist — renaming or
renumbering either side breaks this pin.  The `--list-rules` CLI verb is
the same catalog rendered for humans (text) and tooling (json).
"""

import json
import re
from pathlib import Path

from repro.check import rule_catalog
from repro.cli import main

DOCS = Path(__file__).resolve().parents[2] / "docs" / "checks.md"

#: a rule id leading a markdown table row: `| IR001 | ...` / `| ALIAS002 |`
_RULE_ROW = re.compile(
    r"^\|\s*((?:IR|SHAPE|TAB|ARCH|UNIT|RACE|KEY|ALIAS)\d{3})\s*\|",
    re.MULTILINE)


def documented_rules() -> set[str]:
    return set(_RULE_ROW.findall(DOCS.read_text()))


class TestCatalogMatchesDocs:
    def test_every_catalog_rule_has_a_docs_table_row(self):
        missing = set(rule_catalog()) - documented_rules()
        assert not missing, f"rules missing from docs/checks.md: {sorted(missing)}"

    def test_every_documented_rule_exists_in_the_catalog(self):
        stale = documented_rules() - set(rule_catalog())
        assert not stale, f"docs/checks.md documents unknown rules: {sorted(stale)}"

    def test_catalog_covers_all_six_passes(self):
        prefixes = {re.match(r"[A-Z]+", rule).group() for rule in rule_catalog()}
        assert prefixes == {"IR", "SHAPE", "TAB", "ARCH", "UNIT", "RACE",
                            "KEY", "ALIAS"}


class TestListRulesVerb:
    def test_text_listing_prints_every_rule(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in rule_catalog():
            assert rule in out

    def test_text_listing_shows_severities(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "error" in out
        assert "warning" in out  # UNIT008 / KEY003

    def test_json_listing_round_trips_the_catalog(self, capsys):
        assert main(["check", "--list-rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert set(payload["rules"]) == set(rule_catalog())
        for rule, (severity, description) in rule_catalog().items():
            assert payload["rules"][rule]["severity"] == severity.value
            assert payload["rules"][rule]["description"] == description

    def test_listing_ignores_pass_selection_and_never_checks(self, capsys):
        # --list-rules answers from the catalog alone; pass names are moot
        assert main(["check", "effects", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RACE001" in out
        assert "no findings" not in out
