"""Finding records, the shared reporter, and the rule catalog."""

import json

from repro.check import rule_catalog
from repro.check.findings import (
    Finding,
    Severity,
    count_by_severity,
    render_github,
    render_json,
    render_text,
    suppress,
)


def _finding(rule="IR001", severity=Severity.ERROR):
    return Finding(rule, severity, "graph:TinyNet/conv_1", "something is off")


class TestFinding:
    def test_render_names_rule_location_and_message(self):
        line = _finding().render()
        assert "IR001" in line
        assert "graph:TinyNet/conv_1" in line
        assert "something is off" in line

    def test_to_dict_round_trips_severity_as_string(self):
        assert _finding().to_dict()["severity"] == "error"


class TestSuppression:
    def test_exact_rule_is_dropped(self):
        findings = [_finding("IR001"), _finding("TAB004")]
        assert [f.rule for f in suppress(findings, ["IR001"])] == ["TAB004"]

    def test_suppression_is_case_insensitive(self):
        assert suppress([_finding("IR001")], ["ir001"]) == []

    def test_unrelated_rules_survive(self):
        findings = [_finding("ARCH003")]
        assert suppress(findings, ["ARCH001"]) == findings


class TestReporter:
    def test_text_report_has_summary_line(self):
        report = render_text([_finding(), _finding("IR002", Severity.WARNING)])
        assert "2 finding(s): 1 error(s), 1 warning(s), 0 info" in report

    def test_empty_report_says_no_findings(self):
        assert render_text([]) == "no findings"

    def test_json_report_schema(self):
        payload = json.loads(render_json([_finding()]))
        assert payload["version"] == 1
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "IR001"

    def test_count_by_severity_covers_all_levels(self):
        counts = count_by_severity([_finding()])
        assert set(counts) == {"error", "warning", "info"}


class TestRuleCatalog:
    def test_every_pass_contributes_rules(self):
        catalog = rule_catalog()
        prefixes = {rule[:2] for rule in catalog} | {rule[:3] for rule in catalog}
        assert "IR" in prefixes
        assert "TAB" in prefixes
        assert "ARC" in prefixes
        assert "UN" in prefixes

    def test_rule_ids_are_stable(self):
        catalog = rule_catalog()
        for expected in ("IR001", "IR008", "IR101", "IR104", "TAB001", "TAB012",
                         "ARCH001", "ARCH004", "UNIT001", "UNIT008"):
            assert expected in catalog

    def test_catalog_entries_carry_severity_and_description(self):
        for severity, description in rule_catalog().values():
            assert isinstance(severity, Severity)
            assert description


class TestGithubReporter:
    def test_file_locations_become_file_annotations(self):
        finding = Finding("UNIT001", Severity.ERROR,
                          "repro/analysis/example.py:12", "cannot add s and J")
        line = render_github([finding]).splitlines()[0]
        assert line.startswith("::error file=repro/analysis/example.py,line=12,")
        assert "title=UNIT001" in line
        assert line.endswith("::UNIT001: cannot add s and J")

    def test_warning_maps_to_warning_level(self):
        finding = Finding("UNIT008", Severity.WARNING,
                          "repro/x.py:3", "undeclared public return")
        assert render_github([finding]).startswith("::warning file=")

    def test_non_file_locations_become_bare_annotations(self):
        line = render_github([_finding()]).splitlines()[0]
        assert line.startswith("::error title=IR001::")
        assert "graph:TinyNet/conv_1" in line

    def test_message_newlines_and_percents_are_escaped(self):
        finding = Finding("TAB001", Severity.INFO, "device:nano",
                          "50% off\nsecond line")
        line = render_github([finding]).splitlines()[0]
        assert "%25" in line and "%0A" in line and "\n" not in line

    def test_summary_line_matches_text_reporter(self):
        report = render_github([_finding()])
        assert report.splitlines()[-1] == "1 finding(s): 1 error(s), 0 warning(s), 0 info"

    def test_empty_report_says_no_findings(self):
        assert render_github([]) == "no findings"
