"""Architectural linter: the real tree is contract-clean; seeded snippets
report their stable rule ids; suppression works line-by-line."""

import textwrap

from repro.check import arch


def lint(snippet, path="src/repro/analysis/example.py"):
    return arch.lint_source(textwrap.dedent(snippet), path)


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRealTreeIsClean:
    def test_package_lints_clean(self):
        assert arch.run() == []

    def test_package_root_is_the_installed_package(self):
        assert (arch.package_root() / "cli.py").exists()


class TestArch001SessionConstruction:
    SNIPPET = """
    from repro.engine.executor import InferenceSession

    def price(deployed):
        return InferenceSession(deployed).latency_s
    """

    def test_flagged_outside_the_runtime_layer(self):
        findings = lint(self.SNIPPET)
        assert rules_of(findings) == {"ARCH001"}
        assert findings[0].location == "repro/analysis/example.py:5"

    def test_allowed_inside_runtime_engine_and_measurement(self):
        for layer in ("runtime", "engine", "measurement"):
            assert lint(self.SNIPPET, f"src/repro/{layer}/example.py") == []

    def test_timer_construction_is_flagged_too(self):
        snippet = """
        from repro.measurement.timer import InferenceTimer

        timer = InferenceTimer(seed=7)
        """
        assert rules_of(lint(snippet)) == {"ARCH001"}

    def test_inline_suppression_silences_the_line(self):
        snippet = """
        from repro.engine.executor import InferenceSession

        def price(deployed):
            return InferenceSession(deployed).latency_s  # repro: allow[ARCH001]
        """
        assert lint(snippet) == []

    def test_suppressing_a_different_rule_does_not_help(self):
        snippet = """
        from repro.engine.executor import InferenceSession

        def price(deployed):
            return InferenceSession(deployed).latency_s  # repro: allow[ARCH003]
        """
        assert rules_of(lint(snippet)) == {"ARCH001"}


class TestArch002DeprecatedWrappers:
    def test_wrapper_call_is_flagged(self):
        snippet = """
        from repro.harness.figures import measurement_seed

        seed = measurement_seed("ResNet-18", "Jetson Nano", "TensorRT")
        """
        assert rules_of(lint(snippet)) == {"ARCH002"}

    def test_deploy_key_call_is_flagged_even_as_attribute(self):
        snippet = """
        from repro.engine import cache

        key = cache.deploy_key("m", "d", "f")
        """
        assert rules_of(lint(snippet)) == {"ARCH002"}

    def test_scenario_deploy_key_property_is_fine(self):
        snippet = """
        from repro.runtime import Scenario

        key = Scenario("m", "d", "f").deploy_key
        """
        assert lint(snippet) == []


class TestArch003FloatEquality:
    def test_float_literal_equality_is_flagged(self):
        assert rules_of(lint("ok = x == 0.5\n")) == {"ARCH003"}

    def test_float_literal_inequality_is_flagged(self):
        assert rules_of(lint("ok = temperature != 0.0\n")) == {"ARCH003"}

    def test_integer_equality_is_fine(self):
        assert lint("ok = x == 1\n") == []

    def test_ordering_comparisons_are_fine(self):
        assert lint("ok = x <= 0.5\n") == []

    def test_variable_equality_is_fine(self):
        assert lint("ok = x == other\n") == []


class TestArch004PurityContract:
    def test_random_call_in_pure_path_is_flagged(self):
        snippet = """
        import random

        def jitter():
            return random.random()
        """
        assert rules_of(lint(snippet, "src/repro/engine/example.py")) == {"ARCH004"}

    def test_from_import_alias_is_tracked(self):
        snippet = """
        from random import random

        def jitter():
            return random()
        """
        assert rules_of(lint(snippet, "src/repro/graphs/example.py")) == {"ARCH004"}

    def test_wall_clock_in_pure_path_is_flagged(self):
        snippet = """
        import time

        def stamp():
            return time.perf_counter()
        """
        assert rules_of(lint(snippet, "src/repro/frameworks/example.py")) == {"ARCH004"}

    def test_unseeded_default_rng_is_flagged(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng()
        """
        assert "ARCH004" in rules_of(lint(snippet, "src/repro/models/example.py"))

    def test_seeded_default_rng_is_fine(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert lint(snippet, "src/repro/models/example.py") == []

    def test_random_outside_pure_paths_is_fine(self):
        snippet = """
        import random

        def jitter():
            return random.random()
        """
        assert lint(snippet, "src/repro/harness/example.py") == []


class TestArch005CompiledPathPurity:
    COMPILE = "src/repro/engine/compile.py"

    def test_session_construction_is_flagged_despite_engine_exemption(self):
        snippet = """
        from repro.engine.executor import InferenceSession

        def scatter(deployed):
            return InferenceSession(deployed).latency_s
        """
        assert rules_of(lint(snippet, self.COMPILE)) == {"ARCH005"}

    def test_timer_and_meter_construction_are_flagged(self):
        snippet = """
        from repro.measurement.energy import EnergyMeter
        from repro.measurement.timer import InferenceTimer

        timer = InferenceTimer(seed=7)
        meter = EnergyMeter(seed=7)
        """
        findings = lint(snippet, self.COMPILE)
        assert rules_of(findings) == {"ARCH005"}
        assert len(findings) == 2

    def test_seeded_rng_is_flagged_unlike_arch004(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert rules_of(lint(snippet, self.COMPILE)) == {"ARCH005"}
        # The same snippet is fine one directory over — ARCH005 is stricter
        # than the engine-wide purity contract.
        assert lint(snippet, "src/repro/engine/example.py") == []

    def test_wall_clock_is_flagged_once_not_twice(self):
        snippet = """
        import time

        def stamp():
            return time.perf_counter()
        """
        findings = lint(snippet, self.COMPILE)
        assert rules_of(findings) == {"ARCH005"}
        assert len(findings) == 1

    def test_random_module_call_is_flagged(self):
        snippet = """
        import random

        def jitter():
            return random.random()
        """
        assert rules_of(lint(snippet, self.COMPILE)) == {"ARCH005"}

    def test_pure_lowering_code_is_clean(self):
        snippet = """
        import numpy as np

        def lower(macs, rate):
            return np.asarray(macs, dtype=float) / rate
        """
        assert lint(snippet, self.COMPILE) == []

    def test_other_engine_modules_are_not_held_to_arch005(self):
        snippet = """
        from repro.engine.executor import InferenceSession

        def build(deployed):
            return InferenceSession(deployed)
        """
        assert lint(snippet, "src/repro/engine/cache.py") == []

    def test_inline_suppression_works(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)  # repro: allow[ARCH005]
        """
        assert lint(snippet, self.COMPILE) == []


class TestArch006FleetDeterminism:
    FLEET = "src/repro/fleet/simulate.py"

    def test_seeded_rng_is_flagged_anywhere_in_the_fleet_layer(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert rules_of(lint(snippet, self.FLEET)) == {"ARCH006"}
        assert rules_of(lint(snippet, "src/repro/fleet/router.py")) == {"ARCH006"}

    def test_wall_clock_is_flagged(self):
        snippet = """
        import time

        def stamp():
            return time.perf_counter()
        """
        findings = lint(snippet, self.FLEET)
        assert rules_of(findings) == {"ARCH006"}
        assert len(findings) == 1

    def test_random_module_and_from_import_are_flagged(self):
        snippet = """
        import random
        from uuid import uuid4

        def tag():
            return (random.random(), uuid4())
        """
        findings = lint(snippet, "src/repro/fleet/cluster.py")
        assert rules_of(findings) == {"ARCH006"}
        assert len(findings) == 2

    def test_datetime_now_is_flagged(self):
        snippet = """
        import datetime

        stamp = datetime.now()
        """
        assert rules_of(lint(snippet, self.FLEET)) == {"ARCH006"}

    def test_session_construction_in_fleet_still_reports_arch001(self):
        snippet = """
        from repro.engine.executor import InferenceSession

        def price(deployed):
            return InferenceSession(deployed).latency_s
        """
        assert rules_of(lint(snippet, self.FLEET)) == {"ARCH001"}

    def test_simulated_time_arithmetic_is_clean(self):
        snippet = """
        import numpy as np

        def advance(pending, service_s, free_at_s):
            offsets = service_s * np.arange(pending.size)
            level = np.maximum.accumulate(pending - offsets)
            return offsets + service_s + np.maximum(free_at_s, level)
        """
        assert lint(snippet, self.FLEET) == []

    def test_outside_the_fleet_layer_seeded_rng_is_fine(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert lint(snippet, "src/repro/workloads/arrivals.py") == []

    def test_inline_suppression_works(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)  # repro: allow[ARCH006]
        """
        assert lint(snippet, self.FLEET) == []


class TestArch007PlacementDeterminism:
    """The placement layer is held to the fleet's determinism contract
    under its own rule id — same inputs, same frontier."""

    OPTIMIZER = "src/repro/placement/optimizer.py"

    def test_seeded_rng_is_flagged_anywhere_in_the_placement_layer(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert rules_of(lint(snippet, self.OPTIMIZER)) == {"ARCH007"}
        assert rules_of(lint(
            snippet, "src/repro/placement/deployment.py")) == {"ARCH007"}

    def test_wall_clock_is_flagged(self):
        snippet = """
        import time

        def stamp():
            return time.perf_counter()
        """
        findings = lint(snippet, self.OPTIMIZER)
        assert rules_of(findings) == {"ARCH007"}
        assert len(findings) == 1

    def test_random_module_and_from_import_are_flagged(self):
        snippet = """
        import random
        from uuid import uuid4

        def tag():
            return (random.random(), uuid4())
        """
        findings = lint(snippet, "src/repro/placement/cost.py")
        assert rules_of(findings) == {"ARCH007"}
        assert len(findings) == 2

    def test_datetime_now_is_flagged(self):
        snippet = """
        import datetime

        stamp = datetime.now()
        """
        assert rules_of(lint(snippet, self.OPTIMIZER)) == {"ARCH007"}

    def test_session_construction_in_placement_reports_arch001(self):
        """Pricing must go through the Runner, not ad-hoc sessions — the
        existing layering rule covers the new package too."""
        snippet = """
        from repro.engine.executor import InferenceSession

        def price(deployed):
            return InferenceSession(deployed).latency_s
        """
        assert rules_of(lint(snippet, self.OPTIMIZER)) == {"ARCH001"}

    def test_pure_search_code_is_clean(self):
        snippet = """
        def frontier(candidates):
            return sorted(candidates, key=lambda c: c.latency_s)
        """
        assert lint(snippet, self.OPTIMIZER) == []

    def test_fleet_snippets_still_report_arch006(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)
        """
        assert rules_of(lint(snippet, "src/repro/fleet/simulate.py")) == {"ARCH006"}

    def test_inline_suppression_works(self):
        snippet = """
        import numpy as np

        rng = np.random.default_rng(1234)  # repro: allow[ARCH007]
        """
        assert lint(snippet, self.OPTIMIZER) == []


class TestPathHandling:
    def test_paths_without_a_repro_root_are_linted_globally(self):
        findings = arch.lint_source("ok = x == 0.5\n", "scratch.py")
        assert rules_of(findings) == {"ARCH003"}
        assert findings[0].location == "scratch.py:1"

    def test_locations_are_package_relative(self):
        findings = lint("ok = x == 0.5\n", "/somewhere/src/repro/cli_extras.py")
        assert findings[0].location == "repro/cli_extras.py:1"


class TestFileLevelSuppression:
    SNIPPET = """
    # repro: allow-file[ARCH003] fixture module full of golden constants

    ok_a = x == 0.5
    ok_b = y != 1.25
    """

    def test_allow_file_silences_every_occurrence(self):
        assert lint(self.SNIPPET) == []

    def test_allow_file_is_rule_specific(self):
        snippet = """
        # repro: allow-file[ARCH001]

        ok = x == 0.5
        """
        assert rules_of(lint(snippet)) == {"ARCH003"}

    def test_allow_file_names_multiple_rules(self):
        snippet = """
        # repro: allow-file[ARCH003, ARCH001]
        from repro.engine.executor import InferenceSession

        session = InferenceSession(deployed)
        ok = x == 0.5
        """
        assert lint(snippet) == []
