"""Serving simulation, validated against queueing theory."""

import numpy as np
import pytest

from repro.workloads import (
    PeriodicArrivals,
    PoissonArrivals,
    simulate_serving,
)


class TestBasics:
    def test_underloaded_periodic_never_waits(self):
        arrivals = PeriodicArrivals(10.0).generate(10.0)
        stats = simulate_serving(arrivals, service_time_s=0.05)
        assert stats.mean_wait_s == 0.0
        assert stats.p99_sojourn_s == pytest.approx(0.05)
        assert stats.p999_sojourn_s == pytest.approx(0.05)
        assert stats.max_queue_depth == 1
        assert stats.dropped == 0

    def test_utilization_equals_rate_times_service(self):
        arrivals = PeriodicArrivals(10.0).generate(60.0)
        stats = simulate_serving(arrivals, service_time_s=0.05)
        assert stats.utilization == pytest.approx(0.5, abs=0.01)

    def test_overload_grows_the_queue(self):
        arrivals = PeriodicArrivals(30.0).generate(10.0)
        stats = simulate_serving(arrivals, service_time_s=0.05)  # 1.5x overload
        assert stats.utilization > 0.99
        # Last request waits roughly (1.5 - 1) * horizon.
        assert stats.p99_sojourn_s > 2.0
        assert stats.max_queue_depth > 50

    def test_back_to_back_service(self):
        stats = simulate_serving(np.array([0.0, 0.0, 0.0]), service_time_s=1.0)
        assert stats.mean_sojourn_s == pytest.approx(2.0)  # 1, 2, 3 seconds

    def test_validation(self):
        with pytest.raises(ValueError, match="no arrivals"):
            simulate_serving(np.array([]), 0.1)
        with pytest.raises(ValueError, match="sorted"):
            simulate_serving(np.array([1.0, 0.5]), 0.1)
        with pytest.raises(ValueError, match="service"):
            simulate_serving(np.array([0.0]), 0.0)


class TestDropPolicy:
    def test_capacity_drops_excess(self):
        # 5 simultaneous arrivals, queue holds 1 waiting + 1 in service.
        stats = simulate_serving(np.zeros(5), service_time_s=1.0, queue_capacity=1)
        assert stats.completed == 2
        assert stats.dropped == 3
        assert stats.drop_fraction == pytest.approx(0.6)

    def test_unbounded_queue_never_drops(self):
        stats = simulate_serving(np.zeros(100), service_time_s=0.01)
        assert stats.dropped == 0

    def test_deadline_check_fails_on_drops(self):
        stats = simulate_serving(np.zeros(5), service_time_s=1.0, queue_capacity=0)
        assert not stats.meets_deadline(10.0)


class TestDeadline:
    def test_meets_deadline_percentiles(self):
        arrivals = PeriodicArrivals(10.0).generate(10.0)
        stats = simulate_serving(arrivals, service_time_s=0.02)
        assert stats.meets_deadline(0.05, percentile=0.99)
        assert not stats.meets_deadline(0.01, percentile=0.99)
        with pytest.raises(ValueError):
            stats.meets_deadline(0.05, percentile=0.42)

    def test_p999_orders_above_p99_and_gates_deadlines(self):
        arrivals = PoissonArrivals(70.0, seed=14).generate(500.0)
        stats = simulate_serving(arrivals, service_time_s=0.01)
        assert stats.p50_sojourn_s <= stats.p99_sojourn_s <= stats.p999_sojourn_s
        # The 99.9th percentile is the stricter gate at the same deadline.
        assert stats.meets_deadline(stats.p999_sojourn_s, percentile=0.999)
        assert not stats.meets_deadline(
            (stats.p99_sojourn_s + stats.p999_sojourn_s) / 2,
            percentile=0.999) or stats.p99_sojourn_s == stats.p999_sojourn_s


class TestAgainstTheory:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_md1_waiting_time_matches_pollaczek_khinchine(self, rho):
        """M/D/1: E[W] = rho * s / (2 * (1 - rho))."""
        service = 0.01
        rate = rho / service
        arrivals = PoissonArrivals(rate, seed=11).generate(2000.0)
        stats = simulate_serving(arrivals, service_time_s=service)
        expected_wait = rho * service / (2 * (1 - rho))
        assert stats.mean_wait_s == pytest.approx(expected_wait, rel=0.15)

    def test_sojourn_is_wait_plus_service(self):
        arrivals = PoissonArrivals(40.0, seed=12).generate(500.0)
        stats = simulate_serving(arrivals, service_time_s=0.01)
        assert stats.mean_sojourn_s == pytest.approx(stats.mean_wait_s + 0.01, rel=1e-6)

    def test_jittered_service_increases_waits(self):
        """Service-time variance raises queueing delay (P-K's second term)."""
        arrivals = PoissonArrivals(60.0, seed=13).generate(1000.0)
        deterministic = simulate_serving(arrivals, 0.01)
        jittered = simulate_serving(arrivals, 0.01, service_jitter_fraction=0.5, seed=13)
        assert jittered.mean_wait_s > deterministic.mean_wait_s
