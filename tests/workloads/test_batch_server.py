"""Dynamic-batching server."""

import numpy as np
import pytest

from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model
from repro.workloads import (
    PoissonArrivals,
    batched_latency_fn,
    simulate_batch_serving,
    simulate_serving,
)


def _linear_batch_time(per_item: float, setup: float = 0.0):
    """Synthetic batch model: setup + per_item * batch (perfect batching
    amortizes setup)."""
    return lambda batch: setup + per_item * batch


class TestMechanics:
    def test_batch_one_matches_fifo(self):
        arrivals = PoissonArrivals(20.0, seed=1).generate(60.0)
        fifo = simulate_serving(arrivals, 0.02)
        batched = simulate_batch_serving(arrivals, _linear_batch_time(0.02), 1)
        assert batched.mean_sojourn_s == pytest.approx(fifo.mean_sojourn_s)
        assert batched.mean_batch_size == 1.0

    def test_simultaneous_burst_forms_one_batch(self):
        stats = simulate_batch_serving(np.zeros(8), _linear_batch_time(0.01), 16)
        assert stats.batches == 1
        assert stats.max_batch_observed == 8

    def test_max_batch_respected(self):
        stats = simulate_batch_serving(np.zeros(10), _linear_batch_time(0.01), 4)
        assert stats.max_batch_observed <= 4
        assert stats.batches == 3  # 4 + 4 + 2

    def test_p999_tracks_the_sojourn_tail(self):
        arrivals = PoissonArrivals(80.0, seed=5).generate(60.0)
        stats = simulate_batch_serving(arrivals, _linear_batch_time(0.01), 8)
        assert stats.p99_sojourn_s <= stats.p999_sojourn_s
        # Deterministic burst: every sojourn identical, so all tails agree.
        burst = simulate_batch_serving(np.zeros(8), _linear_batch_time(0.01), 16)
        assert burst.p999_sojourn_s == pytest.approx(burst.p99_sojourn_s)

    def test_low_load_stays_unbatched(self):
        arrivals = np.arange(0.0, 10.0, 1.0)  # 1 Hz vs 10 ms service
        stats = simulate_batch_serving(arrivals, _linear_batch_time(0.01), 32)
        assert stats.mean_batch_size == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_batch_serving(np.array([]), _linear_batch_time(0.01), 4)
        with pytest.raises(ValueError):
            simulate_batch_serving(np.array([1.0, 0.0]), _linear_batch_time(0.01), 4)
        with pytest.raises(ValueError):
            simulate_batch_serving(np.zeros(2), _linear_batch_time(0.01), 0)


class TestBatchingPaysOff:
    def test_heavy_load_tail_latency_collapses_with_batching(self):
        """Near the unbatched capacity, batching eats the queue: p99 drops
        by an order of magnitude."""
        arrivals = PoissonArrivals(80.0, seed=2).generate(30.0)
        batch_time = _linear_batch_time(per_item=0.002, setup=0.01)
        unbatched = simulate_batch_serving(arrivals, batch_time, 1)
        batched = simulate_batch_serving(arrivals, batch_time, 32)
        assert batched.p99_sojourn_s < unbatched.p99_sojourn_s / 5
        assert batched.mean_batch_size > 1.1

    def test_overload_throughput_raised_by_amortization(self):
        """Beyond unbatched capacity (83 rps here), only batching keeps up."""
        arrivals = PoissonArrivals(150.0, seed=4).generate(30.0)
        batch_time = _linear_batch_time(per_item=0.002, setup=0.01)
        unbatched = simulate_batch_serving(arrivals, batch_time, 1)
        batched = simulate_batch_serving(arrivals, batch_time, 32)
        assert unbatched.utilization > 0.99
        assert batched.throughput_rps > 1.5 * unbatched.throughput_rps
        assert batched.mean_batch_size > 2.0

    def test_engine_backed_batching_on_hpc(self):
        """RTX 2080 under a 300 rps stream: the engine's batch speedup is
        what keeps the queue bounded."""
        deployed = load_framework("PyTorch").deploy(
            load_model("ResNet-50"), load_device("RTX 2080"))
        batch_time = batched_latency_fn(deployed, max_batch=32)
        arrivals = PoissonArrivals(300.0, seed=3).generate(20.0)
        unbatched = simulate_batch_serving(arrivals, batch_time, 1)
        batched = simulate_batch_serving(arrivals, batch_time, 32)
        # Single-batch capacity is ~123 rps: the unbatched server saturates.
        assert unbatched.utilization > 0.99
        assert batched.throughput_rps > 2 * unbatched.throughput_rps
        assert batched.p99_sojourn_s < unbatched.p99_sojourn_s / 5

    def test_batched_latency_fn_caches_and_validates(self):
        deployed = load_framework("PyTorch").deploy(
            load_model("ResNet-50"), load_device("RTX 2080"))
        fn = batched_latency_fn(deployed, max_batch=8)
        assert fn(8) == fn(8)  # cached
        # Per-batch time grows with batch, per-item time shrinks.
        assert fn(8) > fn(1)
        assert fn(8) / 8 < fn(1)

    def test_batched_latency_fn_surfaces_oom_upfront(self):
        from repro.core.errors import OutOfMemoryError

        deployed = load_framework("PyTorch").deploy(
            load_model("VGG16"), load_device("GTX Titan X"))
        with pytest.raises(OutOfMemoryError):
            batched_latency_fn(deployed, max_batch=50000)
