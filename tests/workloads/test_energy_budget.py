"""Duty-cycled energy budgeting."""

import pytest

from repro.measurement.energy import active_power_w
from repro.workloads import duty_cycle_budget


class TestDutyCycleBudget:
    def test_duty_cycle_definition(self, session_factory):
        session = session_factory("MobileNet-v2", "Jetson Nano", "TensorRT")
        budget = duty_cycle_budget(session, request_rate_hz=10.0)
        assert budget.duty_cycle == pytest.approx(10.0 * session.latency_s)

    def test_power_between_idle_and_busy(self, session_factory):
        session = session_factory("MobileNet-v2", "Jetson Nano", "TensorRT")
        budget = duty_cycle_budget(session, request_rate_hz=10.0)
        device = session.deployed.device
        assert device.power.idle_w < budget.average_power_w < active_power_w(session)

    def test_low_rates_are_idle_dominated(self, session_factory):
        """At 1 request/minute, idle power owns the budget — the practical
        point the continuous-inference Figure 11 numbers hide."""
        session = session_factory("MobileNet-v2", "EdgeTPU", "TFLite")
        budget = duty_cycle_budget(session, request_rate_hz=1 / 60.0)
        assert budget.idle_share > 0.99
        # Per-request energy is enormous compared to the 10 mJ burst cost.
        assert budget.energy_per_request_j > 100.0

    def test_high_rates_approach_continuous_power(self, session_factory):
        session = session_factory("MobileNet-v2", "EdgeTPU", "TFLite")
        capacity = 1.0 / session.latency_s
        budget = duty_cycle_budget(session, request_rate_hz=0.99 * capacity)
        assert budget.average_power_w == pytest.approx(
            active_power_w(session), rel=0.02)

    def test_rate_beyond_capacity_rejected(self, session_factory):
        session = session_factory("Inception-v4", "Raspberry Pi 3B", "TFLite")
        with pytest.raises(ValueError, match="exceeds capacity"):
            duty_cycle_budget(session, request_rate_hz=100.0)

    def test_battery_life(self, session_factory):
        session = session_factory("MobileNet-v2", "Movidius NCS", "NCSDK")
        budget = duty_cycle_budget(session, request_rate_hz=1.0)
        hours = budget.battery_life_hours(20.0)
        assert hours == pytest.approx(20.0 / budget.average_power_w)
        with pytest.raises(ValueError):
            budget.battery_life_hours(0.0)

    def test_daily_energy(self, session_factory):
        session = session_factory("MobileNet-v2", "Movidius NCS", "NCSDK")
        budget = duty_cycle_budget(session, request_rate_hz=1.0)
        assert budget.daily_energy_wh() == pytest.approx(24 * budget.average_power_w)

    def test_frugal_idle_wins_at_low_rates(self, session_factory):
        """Movidius (0.36 W idle) beats EdgeTPU (3.24 W idle) for sparse
        workloads even though EdgeTPU wins the per-inference contest."""
        movidius = duty_cycle_budget(
            session_factory("MobileNet-v2", "Movidius NCS", "NCSDK"), 0.1)
        edgetpu = duty_cycle_budget(
            session_factory("MobileNet-v2", "EdgeTPU", "TFLite"), 0.1)
        assert movidius.average_power_w < edgetpu.average_power_w

    def test_invalid_rate(self, session_factory):
        session = session_factory("MobileNet-v2", "EdgeTPU", "TFLite")
        with pytest.raises(ValueError):
            duty_cycle_budget(session, request_rate_hz=0.0)
