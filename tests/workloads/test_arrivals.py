"""Arrival process generators."""

import numpy as np
import pytest

from repro.workloads import (
    Arrivals,
    BurstyArrivals,
    DiurnalArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    first_n,
    reseeded,
)


class TestPeriodic:
    def test_exact_rate(self):
        times = PeriodicArrivals(30.0).generate(10.0)
        assert len(times) == 300
        assert np.allclose(np.diff(times), 1 / 30.0)

    def test_jitter_stays_sorted_and_in_horizon(self):
        times = PeriodicArrivals(30.0, jitter_fraction=0.5, seed=1).generate(10.0)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 10.0

    def test_jittered_stream_clipped_to_both_horizon_edges(self):
        for seed in range(8):
            times = PeriodicArrivals(
                30.0, jitter_fraction=0.9, seed=seed).generate(10.0)
            assert np.all(times >= 0.0)
            assert np.all(times < 10.0)
            assert np.all(np.diff(times) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(0.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0).generate(0.0)


class TestPoisson:
    def test_mean_rate_converges(self):
        times = PoissonArrivals(50.0, seed=2).generate(200.0)
        assert len(times) == pytest.approx(50.0 * 200.0, rel=0.05)

    def test_sorted_within_horizon(self):
        times = PoissonArrivals(10.0, seed=3).generate(30.0)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 30.0

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(10.0, seed=4).generate(10.0)
        b = PoissonArrivals(10.0, seed=4).generate(10.0)
        assert np.array_equal(a, b)

    def test_exponential_gaps(self):
        times = PoissonArrivals(100.0, seed=5).generate(100.0)
        gaps = np.diff(times)
        # Exponential: mean == std (coefficient of variation 1).
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)


class TestBursty:
    def test_burst_multiplicity(self):
        arrivals = BurstyArrivals(burst_rate_hz=2.0, burst_size=5, seed=6)
        times = arrivals.generate(100.0)
        # Each burst instant repeats burst_size times.
        unique, counts = np.unique(times, return_counts=True)
        assert set(counts) == {5}
        assert arrivals.rate_hz == 10.0

    def test_total_rate(self):
        times = BurstyArrivals(5.0, 4, seed=7).generate(200.0)
        assert len(times) == pytest.approx(5.0 * 4 * 200.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(0.0, 2)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, 0)


class TestDiurnal:
    def test_rate_peaks_and_troughs_over_the_cycle(self):
        process = DiurnalArrivals(100.0, amplitude=0.8, period_s=100.0)
        assert process.rate_at(25.0) == pytest.approx(180.0)  # quarter cycle
        assert process.rate_at(75.0) == pytest.approx(20.0)
        assert process.peak_rate_hz == pytest.approx(180.0)
        assert process.rate_hz == 100.0

    def test_mean_rate_converges_over_whole_cycles(self):
        times = DiurnalArrivals(50.0, period_s=100.0, seed=8).generate(400.0)
        assert len(times) == pytest.approx(50.0 * 400.0, rel=0.05)

    def test_traffic_concentrates_around_the_peak(self):
        process = DiurnalArrivals(100.0, amplitude=0.9, period_s=100.0, seed=9)
        times = process.generate(100.0)
        peak_half = np.count_nonzero(times < 50.0)  # sin > 0 half-cycle
        assert peak_half > 0.7 * len(times)

    def test_zero_amplitude_degenerates_to_poisson(self):
        flat = DiurnalArrivals(40.0, amplitude=0.0, period_s=50.0, seed=10)
        poisson = PoissonArrivals(40.0, seed=10)
        assert np.array_equal(flat.generate(30.0), poisson.generate(30.0))

    def test_deterministic_and_sorted(self):
        process = DiurnalArrivals(60.0, period_s=20.0, seed=11)
        a = process.generate(60.0)
        b = process.generate(60.0)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        assert a[-1] < 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, period_s=0.0)


class TestProtocol:
    PROCESSES = [
        PeriodicArrivals(10.0, jitter_fraction=0.2, seed=1),
        PoissonArrivals(10.0, seed=1),
        BurstyArrivals(2.0, 5, seed=1),
        DiurnalArrivals(10.0, period_s=30.0, seed=1),
    ]

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_every_process_satisfies_the_contract(self, process):
        assert isinstance(process, Arrivals)
        times = process.generate(20.0)
        assert np.all(times >= 0.0)
        assert np.all(times < 20.0)
        assert np.all(np.diff(times) >= 0)

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_first_n_is_a_prefix_of_the_stream(self, process):
        times = first_n(process, 100)
        assert len(times) == 100
        # Regenerating over any horizon that covers the prefix agrees.
        full = process.generate(float(times[-1]) + 1.0)
        assert np.array_equal(times, full[:100])

    def test_first_n_validation(self):
        with pytest.raises(ValueError):
            first_n(PoissonArrivals(10.0), 0)

    def test_reseeded_changes_the_stream_only(self):
        process = PoissonArrivals(25.0, seed=3)
        other = reseeded(process, 4)
        assert isinstance(other, PoissonArrivals)
        assert other.rate_hz == process.rate_hz
        assert other.seed == 4
        assert not np.array_equal(process.generate(10.0), other.generate(10.0))
