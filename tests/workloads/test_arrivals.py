"""Arrival process generators."""

import numpy as np
import pytest

from repro.workloads import BurstyArrivals, PeriodicArrivals, PoissonArrivals


class TestPeriodic:
    def test_exact_rate(self):
        times = PeriodicArrivals(30.0).generate(10.0)
        assert len(times) == 300
        assert np.allclose(np.diff(times), 1 / 30.0)

    def test_jitter_stays_sorted_and_in_horizon(self):
        times = PeriodicArrivals(30.0, jitter_fraction=0.5, seed=1).generate(10.0)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(0.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0, jitter_fraction=1.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0).generate(0.0)


class TestPoisson:
    def test_mean_rate_converges(self):
        times = PoissonArrivals(50.0, seed=2).generate(200.0)
        assert len(times) == pytest.approx(50.0 * 200.0, rel=0.05)

    def test_sorted_within_horizon(self):
        times = PoissonArrivals(10.0, seed=3).generate(30.0)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] < 30.0

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(10.0, seed=4).generate(10.0)
        b = PoissonArrivals(10.0, seed=4).generate(10.0)
        assert np.array_equal(a, b)

    def test_exponential_gaps(self):
        times = PoissonArrivals(100.0, seed=5).generate(100.0)
        gaps = np.diff(times)
        # Exponential: mean == std (coefficient of variation 1).
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)


class TestBursty:
    def test_burst_multiplicity(self):
        arrivals = BurstyArrivals(burst_rate_hz=2.0, burst_size=5, seed=6)
        times = arrivals.generate(100.0)
        # Each burst instant repeats burst_size times.
        unique, counts = np.unique(times, return_counts=True)
        assert set(counts) == {5}
        assert arrivals.rate_hz == 10.0

    def test_total_rate(self):
        times = BurstyArrivals(5.0, 4, seed=7).generate(200.0)
        assert len(times) == pytest.approx(5.0 * 4 * 200.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(0.0, 2)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, 0)
