"""ASCII table rendering."""

from repro.core.result import ResultTable
from repro.harness.report import ratio_or_none, render_table


def _table() -> ResultTable:
    table = ResultTable("Demo Table", ["measured", "paper"], caption="a caption")
    table.add_row("row-a", measured=1.5, paper=2.0)
    table.add_row("row-b", measured=None, paper=0.123456)
    table.add_note("a note")
    return table


class TestRenderTable:
    def test_contains_title_rows_caption_notes(self):
        text = render_table(_table())
        assert "Demo Table" in text
        assert "row-a" in text and "row-b" in text
        assert "a caption" in text
        assert "note: a note" in text

    def test_none_rendered_as_dash(self):
        text = render_table(_table())
        row_b = next(line for line in text.splitlines() if line.startswith("row-b"))
        assert "-" in row_b.split()[1]

    def test_booleans_render_yes_no(self):
        table = ResultTable("t", ["flag"])
        table.add_row("x", flag=True)
        table.add_row("y", flag=False)
        text = render_table(table)
        assert "yes" in text and "no" in text

    def test_large_and_small_floats_compact(self):
        table = ResultTable("t", ["v"])
        table.add_row("big", v=16485.2)
        table.add_row("tiny", v=0.0029)
        text = render_table(table)
        assert "1.65e+04" in text
        assert "0.0029" in text

    def test_columns_aligned(self):
        lines = render_table(_table()).splitlines()
        header = next(line for line in lines if "measured" in line)
        row = next(line for line in lines if line.startswith("row-a"))
        assert len(header) == len(row)


class TestRatioOrNone:
    def test_ratio(self):
        assert ratio_or_none(2.0, 4.0) == 0.5

    def test_none_propagates(self):
        assert ratio_or_none(None, 4.0) is None
        assert ratio_or_none(2.0, None) is None
        assert ratio_or_none(2.0, 0.0) is None
