"""ASCII chart rendering."""

import pytest

from repro.core.result import ResultTable
from repro.harness.charts import bar_chart, scatter_loglog


def _table() -> ResultTable:
    table = ResultTable("Latency", ["ms"])
    table.add_row("fast", ms=10.0)
    table.add_row("slow", ms=100.0)
    table.add_row("missing", ms=None)
    return table


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = bar_chart(_table(), "ms", unit="ms")
        lines = chart.splitlines()
        fast = next(line for line in lines if line.startswith("fast"))
        slow = next(line for line in lines if line.startswith("slow"))
        assert slow.count("#") > fast.count("#")

    def test_none_rendered_as_na(self):
        chart = bar_chart(_table(), "ms")
        assert "n/a" in chart

    def test_log_scale_compresses(self):
        table = ResultTable("t", ["v"])
        table.add_row("small", v=1.0)
        table.add_row("mid", v=10.0)
        table.add_row("big", v=100.0)

        def bars(chart, label):
            return next(l for l in chart.splitlines() if l.startswith(label)).count("#")

        linear = bar_chart(table, "v")
        log = bar_chart(table, "v", log_scale=True)
        # Linear: mid is 10% of big. Log: mid is half of big.
        assert bars(linear, "big") / bars(linear, "mid") > 5
        assert bars(log, "big") / bars(log, "mid") < 3

    def test_values_printed(self):
        assert "100" in bar_chart(_table(), "ms")

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            bar_chart(_table(), "watts")

    def test_log_scale_rejects_nonpositive(self):
        table = ResultTable("t", ["v"])
        table.add_row("zero", v=0.0)
        with pytest.raises(ValueError):
            bar_chart(table, "v", log_scale=True)

    def test_experiment_table_renders(self):
        from repro.harness import run_experiment

        chart = bar_chart(run_experiment("fig07"), "speedup")
        assert "AlexNet" in chart


class TestRoofline:
    def test_renders_with_ridge_summary(self):
        from repro.harness.charts import roofline_chart
        from repro.models import load_model

        chart = roofline_chart(load_model("ResNet-50"), 333e9, 35e9)
        assert "ridge at" in chart
        assert "compute-bound" in chart
        assert "legend:" in chart

    def test_markers_split_by_ridge(self):
        from repro.harness.charts import roofline_chart
        from repro.models import load_model

        chart = roofline_chart(load_model("VGG16"), 1548e9, 70e9)
        legend = chart.splitlines()[-1]
        assert "C=" in legend  # compute-bound convs
        assert "M=" in legend  # memory-bound FC layers

    def test_rejects_zero_compute(self):
        from repro.graphs import GraphBuilder
        from repro.harness.charts import roofline_chart

        b = GraphBuilder("empty")
        x = b.input((4,))
        b.flatten(x)
        with pytest.raises(ValueError, match="no compute"):
            roofline_chart(b.build(), 1e9, 1e9)


class TestScatter:
    def _points(self):
        return [("EdgeTPU", 4.0, 3.0), ("Movidius", 1.5, 50.0), ("GTX", 100.0, 8.0)]

    def test_markers_and_legend(self):
        chart = scatter_loglog(self._points(), x_label="W", y_label="ms")
        assert "E=EdgeTPU" in chart
        assert "M=Movidius" in chart
        assert chart.count("E") >= 1

    def test_axes_labelled(self):
        chart = scatter_loglog(self._points(), x_label="power", y_label="time")
        assert "power (log)" in chart
        assert "time (log)" in chart

    def test_extremes_land_on_edges(self):
        chart = scatter_loglog(self._points())
        rows = chart.splitlines()[1:-2]
        # Movidius (lowest x, highest y) in the top-left region.
        top_half = "\n".join(rows[: len(rows) // 2])
        assert "M" in top_half

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_loglog([])
        with pytest.raises(ValueError):
            scatter_loglog([("a", 0.0, 1.0)])
