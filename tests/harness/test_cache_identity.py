"""Caching is observationally invisible: cached == uncached, bit for bit.

This is the purity contract's enforcement point.  Every registered
experiment is exported twice — once through the memoization layer (warm
caches, shared graphs/deployments/plans) and once with caching bypassed
entirely — and the two snapshots are diffed at **zero** tolerance.  Any
cached object leaking mutation, any seed depending on execution order,
any float rounding difference in the vectorized roofline shows up here as
a differing cell.
"""

from __future__ import annotations

import pytest

from repro.engine.cache import cache_stats, caching_disabled, clear_caches
from repro.harness.registry import list_experiments
from repro.harness.suite import compare_results, export_results


@pytest.fixture(scope="module")
def cached_snapshot():
    clear_caches()
    snapshot = export_results()  # whole registry, memoization on
    stats = cache_stats()
    clear_caches()
    return snapshot, stats


@pytest.fixture(scope="module")
def uncached_snapshot():
    clear_caches()
    with caching_disabled():
        snapshot = export_results()  # whole registry, every build from scratch
    stats = cache_stats()
    clear_caches()
    return snapshot, stats


class TestCacheIdentity:
    def test_covers_every_registered_experiment(self, cached_snapshot):
        snapshot, _ = cached_snapshot
        assert set(snapshot["experiments"]) == set(list_experiments())

    def test_cached_run_actually_hit_the_caches(self, cached_snapshot):
        _, stats = cached_snapshot
        assert stats["graph"]["hits"] > 0
        assert stats["deploy"]["hits"] > 0
        assert stats["plan"]["hits"] > 0

    def test_uncached_run_actually_bypassed_them(self, uncached_snapshot):
        _, stats = uncached_snapshot
        assert all(snapshot["entries"] == 0 for snapshot in stats.values())

    def test_bit_identical_at_zero_tolerance(self, cached_snapshot,
                                             uncached_snapshot):
        cached, _ = cached_snapshot
        uncached, _ = uncached_snapshot
        differences = compare_results(cached, uncached, rel_tolerance=0.0)
        assert differences == [], "\n".join(d.describe() for d in differences)

    def test_repeat_cached_export_is_deterministic(self, cached_snapshot):
        cached, _ = cached_snapshot
        again = export_results()
        clear_caches()
        assert again == cached
