"""The CI bench-regression guard over BENCH_sweep.json."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "bench_guard", REPO / "tools" / "bench_guard.py")
bench_guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_guard)

GOOD = {
    "speedup_warm": 600.0,
    "min_warm_speedup": 3.0,
    "compiled_warm_s": 0.004,
    "max_compiled_warm_s": 0.2,
    "compiled_uncached_s": 0.75,
    "max_compiled_uncached_s": 1.0,
    "dedup_ratio": 1.9,
    "identical_at_zero_tolerance": True,
}


class TestCheck:
    def test_good_bench_passes(self):
        assert bench_guard.check(dict(GOOD)) == []

    def test_committed_bench_passes(self):
        bench = json.loads((REPO / "BENCH_sweep.json").read_text())
        assert bench_guard.check(bench) == []

    def test_each_budget_is_enforced(self):
        for field, bad in [("speedup_warm", 2.0),
                           ("compiled_warm_s", 0.5),
                           ("compiled_uncached_s", 1.5),
                           ("dedup_ratio", 1.0),
                           ("identical_at_zero_tolerance", False)]:
            bench = dict(GOOD, **{field: bad})
            failures = bench_guard.check(bench)
            assert failures, field
            assert any(field.split("_")[0] in line or "identical" in line
                       for line in failures), field

    def test_missing_field_is_reported(self):
        bench = dict(GOOD)
        del bench["compiled_warm_s"]
        assert any("compiled_warm_s" in line
                   for line in bench_guard.check(bench))

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(GOOD))
        assert bench_guard.main(["bench_guard.py", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(dict(GOOD, compiled_warm_s=5.0)))
        assert bench_guard.main(["bench_guard.py", str(bad)]) == 1
        assert bench_guard.main(["bench_guard.py", str(tmp_path / "nope")]) == 2
        capsys.readouterr()
