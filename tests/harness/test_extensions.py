"""Extension experiment generators."""

import pytest

from repro.harness import run_experiment


class TestExtBatch:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-batch")

    def test_crossover_noted(self, table):
        assert any("crosses below" in note for note in table.notes)

    def test_hpc_gap_grows(self, table):
        tx2 = table.row("Jetson TX2")
        rtx = table.row("RTX 2080")
        assert tx2["batch 1"] / rtx["batch 1"] < tx2["batch 64"] / rtx["batch 64"]


class TestExtPruning:
    def test_exploiters_vs_flat(self):
        table = run_experiment("ext-pruning")
        tf = table.row("TensorFlow")
        pt = table.row("PyTorch")
        assert tf["90% sparse"] < 0.6 * tf["0% sparse"]
        assert pt["90% sparse"] == pytest.approx(pt["0% sparse"], rel=1e-6)


class TestExtDtype:
    def test_three_dtypes(self):
        table = run_experiment("ext-dtype")
        assert table.labels() == ["fp32", "fp16", "int8"]


class TestExtRnn:
    def test_rnns_underfill_every_platform(self):
        table = run_experiment("ext-rnn")
        fractions = [row["peak_fraction"] for row in table
                     if row["peak_fraction"] is not None]
        assert fractions
        assert all(f < 0.1 for f in fractions)


class TestExtSustained:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-sustained")

    def test_rpi_shutdown_vs_dvfs(self, table):
        assert table.row("Raspberry Pi 3B")["outcome"] == "shutdown"
        dvfs = table.row("Raspberry Pi 3B (DVFS)")
        assert dvfs["outcome"] == "throttled"
        assert dvfs["sustained_fps"] > 0

    def test_fan_devices_stable(self, table):
        for device in ("Jetson TX2", "Jetson Nano", "EdgeTPU", "Movidius NCS"):
            assert table.row(device)["outcome"] == "stable"
            assert table.row(device)["slowdown"] == pytest.approx(1.0)


class TestExtSplit:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-split")

    def test_all_three_decisions_occur(self, table):
        decisions = set(table.column("decision"))
        assert decisions == {"offload all", "stay local", "split"}

    def test_best_never_exceeds_endpoints(self, table):
        for row in table:
            assert row["best_ms"] <= row["all_edge_ms"] + 1e-9
            assert row["best_ms"] <= row["all_remote_ms"] + 1e-9

    def test_slow_edge_always_offloads(self, table):
        for row in table:
            if row.label.startswith("VGG16 @ Raspberry"):
                assert row["decision"] == "offload all"


class TestExtPipeline:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-pipeline")

    def test_throughput_scales_then_saturates(self, table):
        fps = table.column("throughput_fps")
        assert fps[1] > fps[0]
        assert fps[-1] == pytest.approx(fps[3])  # saturated

    def test_end_to_end_latency_grows_with_stages(self, table):
        latency = table.column("end_to_end_ms")
        assert latency == sorted(latency)


class TestExtServing:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-serving")

    def test_rpi_saturates(self, table):
        row = table.row("Raspberry Pi 3B")
        assert row["utilization"] == pytest.approx(1.0, abs=0.01)
        assert not row["meets_150ms"]

    def test_fast_devices_meet_the_deadline(self, table):
        for device in ("Jetson TX2", "Jetson Nano", "EdgeTPU", "Movidius NCS"):
            assert table.row(device)["meets_150ms"], device

    def test_underloaded_p99_near_service_time(self, table):
        row = table.row("EdgeTPU")
        assert row["p99_ms"] == pytest.approx(row["service_ms"], rel=0.1)


class TestExtPowerModes:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-power-modes")

    def test_budget_modes_slower_lower_power(self, table):
        maxn = table.row("Jetson TX2 @ Max-N")
        maxq = table.row("Jetson TX2 @ Max-Q")
        assert maxq["latency_ms"] > maxn["latency_ms"]
        assert maxq["power_w"] < maxn["power_w"]

    def test_tx2_maxq_wins_on_energy(self, table):
        assert (table.row("Jetson TX2 @ Max-Q")["energy_mj"]
                < table.row("Jetson TX2 @ Max-N")["energy_mj"])


class TestExtBatchServing:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-batch-serving")

    def test_batch1_saturates_past_capacity(self, table):
        row = table.row("200 req/s")
        assert row["util_batch1"] > 0.99
        assert row["p99_ms_batch1"] > 1000  # queue blowout

    def test_batching_holds_the_tail(self, table):
        for row in table:
            assert row["p99_ms_batch32"] < 100, row.label

    def test_batch_size_grows_with_load(self, table):
        batches = table.column("mean_batch")
        assert batches == sorted(batches)


class TestExtPareto:
    def test_extremes_on_frontier(self):
        table = run_experiment("ext-pareto")
        devices = {row["device"] for row in table}
        # Figure 12's extremes: EdgeTPU (fastest) and Movidius (most frugal).
        assert "EdgeTPU" in devices
        assert "Movidius NCS" in devices
        # Frontier latencies ascend while powers descend.
        latencies = table.column("latency_ms")
        powers = table.column("power_w")
        assert latencies == sorted(latencies)
        assert powers == sorted(powers, reverse=True)
