"""Result snapshots and run-to-run comparison."""

import json

import pytest

from repro.cli import main
from repro.harness.suite import (
    compare_results,
    export_results,
    load_results,
    save_results,
)

FAST_IDS = ["table6", "fig13"]


class TestExport:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return export_results(FAST_IDS)

    def test_structure(self, snapshot):
        assert set(snapshot["experiments"]) == set(FAST_IDS)
        table6 = snapshot["experiments"]["table6"]
        assert table6["paper_reference"].startswith("Table VI")
        assert table6["rows"]
        assert all("label" in row for row in table6["rows"])

    def test_json_safe(self, snapshot):
        json.dumps(snapshot)

    def test_save_and_load(self, tmp_path, snapshot):
        path = tmp_path / "results.json"
        save_results(path, FAST_IDS)
        loaded = load_results(path)
        assert loaded["experiments"].keys() == snapshot["experiments"].keys()

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"snapshot_version": 99, "experiments": {}}))
        with pytest.raises(ValueError, match="version"):
            load_results(path)


class TestCompare:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return export_results(FAST_IDS)

    def test_identical_snapshots_have_no_differences(self, snapshot):
        assert compare_results(snapshot, snapshot) == []

    def test_numeric_drift_within_tolerance_ignored(self, snapshot):
        import copy

        drifted = copy.deepcopy(snapshot)
        row = drifted["experiments"]["fig13"]["rows"][0]
        row["bare_s"] *= 1.005  # 0.5% drift, under the 1% tolerance
        assert compare_results(snapshot, drifted) == []

    def test_numeric_drift_beyond_tolerance_reported(self, snapshot):
        import copy

        drifted = copy.deepcopy(snapshot)
        row = drifted["experiments"]["fig13"]["rows"][0]
        row["bare_s"] *= 1.10
        differences = compare_results(snapshot, drifted)
        assert len(differences) == 1
        assert differences[0].column == "bare_s"
        assert "fig13" in differences[0].describe()

    def test_boolean_flips_always_reported(self, snapshot):
        import copy

        drifted = copy.deepcopy(snapshot)
        row = drifted["experiments"]["table6"]["rows"][0]
        row["fan"] = not row["fan"]
        differences = compare_results(snapshot, drifted)
        assert any(d.column == "fan" for d in differences)

    def test_missing_experiment_reported(self, snapshot):
        import copy

        partial = copy.deepcopy(snapshot)
        del partial["experiments"]["fig13"]
        differences = compare_results(snapshot, partial)
        assert any(d.experiment_id == "fig13" and d.column == "(presence)"
                   for d in differences)

    def test_missing_row_reported(self, snapshot):
        import copy

        partial = copy.deepcopy(snapshot)
        partial["experiments"]["table6"]["rows"].pop()
        differences = compare_results(snapshot, partial)
        assert any(d.column == "(presence)" for d in differences)


class TestCliVerbs:
    def test_export_and_diff_round_trip(self, tmp_path, capsys):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        assert main(["export", str(path_a), "table6"]) == 0
        assert main(["export", str(path_b), "table6"]) == 0
        capsys.readouterr()
        assert main(["diff", str(path_a), str(path_b)]) == 0
        assert "0 differing cells" in capsys.readouterr().out

    def test_diff_detects_change(self, tmp_path, capsys):
        path_a = tmp_path / "a.json"
        main(["export", str(path_a), "table6"])
        payload = json.loads(path_a.read_text())
        payload["experiments"]["table6"]["rows"][0]["idle_surface_c"] += 10
        path_b = tmp_path / "b.json"
        path_b.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["diff", str(path_a), str(path_b)]) == 1
        assert "idle_surface_c" in capsys.readouterr().out
