"""The claims validator (and its CLI verb)."""

import pytest

from repro.cli import main
from repro.harness.validation import ClaimResult, list_claims, validate_claims


class TestValidateClaims:
    @pytest.fixture(scope="class")
    def results(self):
        return validate_claims()

    def test_eleven_claims(self, results):
        assert len(results) == 11
        assert len(list_claims()) == 11

    def test_all_claims_hold(self, results):
        failing = [r.claim_id for r in results if not r.passed]
        assert not failing, failing

    def test_evidence_is_populated(self, results):
        for result in results:
            assert result.evidence
            assert result.section.startswith("VI")

    def test_subset_selection(self):
        results = validate_claims(["docker-overhead"])
        assert len(results) == 1
        assert results[0].claim_id == "docker-overhead"

    def test_unknown_claim(self):
        with pytest.raises(KeyError, match="unknown claims"):
            validate_claims(["flat-earth"])

    def test_result_is_frozen(self):
        result = ClaimResult("x", "VI", "s", True, "e")
        with pytest.raises(AttributeError):
            result.passed = False


class TestCliVerb:
    def test_validate_all(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "11/11 claims hold" in out
        assert "[PASS]" in out

    def test_validate_subset(self, capsys):
        assert main(["validate", "table5-exact"]) == 0
        assert "1/1 claims hold" in capsys.readouterr().out

    def test_validate_unknown(self, capsys):
        assert main(["validate", "nonsense"]) == 2
        assert "unknown" in capsys.readouterr().err
