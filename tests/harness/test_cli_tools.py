"""CLI calibration/summary verbs and the verbose graph summary."""


from repro.cli import main
from repro.models import load_model


class TestCalibrationVerb:
    def test_prints_all_anchors_unclamped(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "0 clamped anchors" in out
        assert "TensorRT" in out and "Jetson Nano" in out
        assert out.count("ms") > 20


class TestSummaryVerb:
    def test_per_layer_listing(self, capsys):
        assert main(["summary", "CifarNet"]) == 0
        out = capsys.readouterr().out
        assert "conv_1" in out
        assert "total" in out

    def test_unknown_model(self, capsys):
        assert main(["summary", "NoNet"]) == 2
        assert capsys.readouterr().err


class TestVerboseSummary:
    def test_totals_row_matches_graph(self):
        graph = load_model("CifarNet 32x32")
        text = graph.summary(verbose=True)
        assert f"{graph.total_params:,d}" in text
        assert f"{graph.total_macs:,d}" in text

    def test_every_op_listed(self):
        graph = load_model("CifarNet 32x32")
        text = graph.summary(verbose=True)
        for op in graph.ops:
            assert op.name[:24] in text

    def test_fused_ops_marked(self):
        from repro.graphs.transforms import fuse_graph

        fused = fuse_graph(load_model("ResNet-18"))
        assert "(fused)" in fused.summary(verbose=True)

    def test_terse_by_default(self):
        graph = load_model("CifarNet 32x32")
        assert "\n" not in graph.summary()
