"""Markdown/CSV export of result tables."""

import csv
import io

from repro.core.result import ResultTable
from repro.harness.report import render_csv, render_markdown


def _table() -> ResultTable:
    table = ResultTable("Demo", ["measured", "paper"], caption="cap")
    table.add_row("row,with,commas", measured=1.5, paper=None)
    table.add_row("plain", measured=2.0, paper=3.0)
    table.add_note("a note")
    return table


class TestMarkdown:
    def test_structure(self):
        text = render_markdown(_table())
        lines = text.splitlines()
        assert lines[0] == "| | measured | paper |"
        assert lines[1] == "|---|---|---|"
        assert "| plain | 2 | 3 |" in lines

    def test_none_rendered_as_dash(self):
        assert "| row,with,commas | 1.5 | - |" in render_markdown(_table())

    def test_caption_and_notes(self):
        text = render_markdown(_table())
        assert "*cap*" in text
        assert "> a note" in text

    def test_experiment_table_renders(self):
        from repro.harness import run_experiment

        text = render_markdown(run_experiment("table6"))
        assert text.count("|---") > 0
        assert "Raspberry Pi 3B" in text


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        rows = list(csv.reader(io.StringIO(render_csv(_table()))))
        assert rows[0] == ["label", "measured", "paper"]
        assert rows[1] == ["row,with,commas", "1.5", ""]
        assert rows[2] == ["plain", "2.0", "3.0"]

    def test_commas_in_labels_escaped(self):
        rows = list(csv.reader(io.StringIO(render_csv(_table()))))
        assert rows[1][0] == "row,with,commas"
