"""Curve-level Figure 14 reproduction."""

import pytest

from repro.harness import run_experiment


@pytest.fixture(scope="module")
def table():
    return run_experiment("fig14-curves")


def _series(table, device):
    rows = [row for row in table if row["device"] == device]
    return sorted(rows, key=lambda r: r["time_s"])


class TestCurveShapes:
    def test_all_devices_present(self, table):
        devices = {row["device"] for row in table}
        assert devices == {"Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                           "EdgeTPU", "Movidius NCS"}

    @pytest.mark.parametrize("device", ["Jetson TX2", "Jetson Nano", "EdgeTPU",
                                        "Movidius NCS"])
    def test_monotone_warmup(self, table, device):
        temps = [row["surface_c"] for row in _series(table, device)]
        # Camera noise is +/-0.3 C; the trend must rise.
        assert all(b >= a - 0.7 for a, b in zip(temps, temps[1:]))
        assert temps[-1] > temps[0]

    def test_curves_start_at_idle_temperature(self, table):
        from repro.harness.paper_data import TABLE6_COOLING

        for device, (_hs, _fan, idle_c) in TABLE6_COOLING.items():
            first = _series(table, device)[0]
            tolerance = 4.0 if device == "Movidius NCS" else 1.5
            assert first["surface_c"] == pytest.approx(idle_c, abs=tolerance)

    def test_fan_kink_slows_the_rise(self, table):
        """After the TX2 fan engages, the warming rate drops sharply."""
        series = _series(table, "Jetson TX2")
        pre = [r for r in series if not r["fan_on"]]
        post = [r for r in series if r["fan_on"]]
        assert pre and len(post) >= 3

        def rate(rows):
            dt = rows[-1]["time_s"] - rows[0]["time_s"]
            return (rows[-1]["surface_c"] - rows[0]["surface_c"]) / max(dt, 1)

        assert rate(post) < rate(pre) / 2

    def test_rpi_curve_ends_in_shutdown(self, table):
        series = _series(table, "Raspberry Pi 3B")
        assert series[-1]["shutdown"]
        assert not series[0]["shutdown"]
        # Final reading is near the shutdown threshold, surface side.
        assert series[-1]["surface_c"] > 60.0

    def test_passive_devices_never_fan(self, table):
        for device in ("EdgeTPU", "Movidius NCS", "Raspberry Pi 3B"):
            assert not any(row["fan_on"] for row in _series(table, device))

    def test_accelerator_sticks_have_the_flattest_curves(self, table):
        """At curve granularity the +/-0.3 degC camera noise blurs the
        Movidius-vs-EdgeTPU tie (the noiseless fig14 endpoints resolve it);
        both must sit far below every SBC's swing."""
        spans = {}
        for device in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano",
                       "EdgeTPU", "Movidius NCS"):
            temps = [row["surface_c"] for row in _series(table, device)]
            spans[device] = max(temps) - min(temps)
        assert spans["Movidius NCS"] < 4.0
        assert spans["EdgeTPU"] < 4.0
        for device in ("Raspberry Pi 3B", "Jetson TX2", "Jetson Nano"):
            assert spans[device] > 2 * spans["Movidius NCS"]
