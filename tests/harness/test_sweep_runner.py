"""The parallel sweep runner and its ``suite`` CLI verb.

The load-bearing claim: the snapshot a worker pool assembles is identical
to the serial one — experiment order comes from the input list (not from
completion order) and measurement noise is seeded per cell, so parallelism
cannot leak into the numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine.cache import clear_caches
from repro.harness.registry import list_experiments
from repro.harness.suite import compare_results, export_results
from repro.harness.sweep_runner import ExperimentRun, SweepResult, run_sweep

FAST_IDS = ["table6", "fig13", "fig08", "table1"]


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestRunSweep:
    @pytest.fixture(scope="class")
    def serial(self):
        clear_caches()
        return run_sweep(FAST_IDS, jobs=1)

    def test_snapshot_matches_export_results(self, serial):
        assert serial.snapshot == export_results(FAST_IDS)

    def test_runs_in_input_order_with_timings(self, serial):
        assert [run.experiment_id for run in serial.runs] == FAST_IDS
        assert all(run.wall_s >= 0 for run in serial.runs)
        assert serial.wall_s >= 0
        assert serial.experiment_s == sum(run.wall_s for run in serial.runs)

    def test_threaded_snapshot_identical_to_serial(self, serial):
        parallel = run_sweep(FAST_IDS, jobs=4, executor="thread")
        assert parallel.snapshot == serial.snapshot
        assert compare_results(serial.snapshot, parallel.snapshot,
                               rel_tolerance=0.0) == []

    def test_process_snapshot_identical_to_serial(self, serial):
        parallel = run_sweep(FAST_IDS[:2], jobs=2, executor="process")
        for experiment_id in FAST_IDS[:2]:
            assert (parallel.snapshot["experiments"][experiment_id]
                    == serial.snapshot["experiments"][experiment_id])

    def test_explicit_ids_resolve(self):
        # The full-registry default is exercised by test_cache_identity.
        result = run_sweep(["table6"])
        assert set(result.snapshot["experiments"]) == {"table6"}
        assert "table6" in list_experiments()

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_sweep(FAST_IDS, jobs=2, executor="rayon")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_sweep(["fig99"])

    def test_describe_reports_totals(self, serial):
        text = serial.describe()
        assert f"{len(FAST_IDS)} experiments" in text
        for experiment_id in FAST_IDS:
            assert experiment_id in text

    def test_cache_stats_attached(self):
        result = run_sweep(["fig08"], jobs=1)
        assert set(result.cache) == {"graph", "deploy", "plan", "record",
                                     "payload"}
        assert result.cache["deploy"]["entries"] > 0


class TestExportResultsJobs:
    def test_parallel_export_identical(self):
        serial = export_results(FAST_IDS)
        parallel = export_results(FAST_IDS, jobs=3)
        assert parallel == serial


class TestSweepResult:
    def test_experiment_s_sums(self):
        result = SweepResult(
            snapshot={"snapshot_version": 1, "experiments": {}},
            runs=[ExperimentRun("a", 0.25), ExperimentRun("b", 0.5)],
            wall_s=0.5, jobs=2, executor="thread", cache={})
        assert result.experiment_s == 0.75
        assert "2 experiments" in result.describe()


class TestSuiteCliVerb:
    def test_suite_verb_runs_and_prints_stats(self, capsys):
        assert main(["suite", "table6", "fig13", "--jobs", "2", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "2 experiments" in out
        assert "cache statistics" in out
        assert "deploy" in out

    def test_suite_verb_snapshot_matches_export(self, tmp_path, capsys):
        suite_path = tmp_path / "suite.json"
        export_path = tmp_path / "export.json"
        assert main(["suite", "table6", "fig13", "--jobs", "2",
                     "--output", str(suite_path)]) == 0
        assert main(["export", str(export_path), "table6", "fig13"]) == 0
        capsys.readouterr()
        assert (json.loads(suite_path.read_text())
                == json.loads(export_path.read_text()))
        assert main(["diff", str(suite_path), str(export_path),
                     "--tolerance", "0.0"]) == 0

    def test_suite_verb_no_cache(self, capsys):
        from repro.engine.cache import cache_stats, caching_enabled

        assert main(["suite", "table6", "--no-cache"]) == 0
        assert caching_enabled()  # restored afterwards
        assert all(snapshot["entries"] == 0
                   for snapshot in cache_stats().values())

    def test_suite_verb_rejects_unknown_experiment(self, capsys):
        assert main(["suite", "fig99"]) == 2
        assert "error" in capsys.readouterr().err
