"""Experiment grids and precompiled exports.

The declared grids let the suite hand every gridded experiment's cells to
the sweep compiler before the generators run.  The claims pinned here: the
precompiled export is bit-identical to the scalar one, grids dedup by
scenario key, and undeclared experiments degrade to the scalar path.
"""

from __future__ import annotations

import pytest

from repro.engine.cache import caching_enabled, clear_caches, set_caching
from repro.harness.grids import GRID_BUILDERS, suite_grid
from repro.harness.registry import list_experiments
from repro.harness.suite import compare_results, export_results


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestSuiteGrid:
    def test_builders_cover_known_experiments(self):
        registered = set(list_experiments())
        assert set(GRID_BUILDERS) <= registered
        assert {"fig02", "fig09", "fig12", "fig13"} <= set(GRID_BUILDERS)

    def test_grids_are_deduplicated_by_key(self):
        timed, untimed = suite_grid(list(GRID_BUILDERS))
        assert len({s.key for s in timed}) == len(timed)
        assert len({s.key for s in untimed}) == len(untimed)
        assert timed and untimed

    def test_overlapping_experiments_keep_first_appearance_order(self):
        # fig10's cells are a subset of fig09's platform sweep, so the
        # combined grid is exactly fig09's, in fig09's order.
        timed_both, _ = suite_grid(["fig09", "fig10"])
        timed_fig09, _ = suite_grid(["fig09"])
        assert timed_both == timed_fig09
        timed_fig10, _ = suite_grid(["fig10"])
        assert {s.key for s in timed_fig10} <= {s.key for s in timed_fig09}

    def test_unknown_experiment_contributes_nothing(self):
        assert suite_grid(["no-such-experiment"]) == ([], [])


class TestPrecompiledExportIdentity:
    IDS = ["fig02", "fig08", "fig09", "fig12", "fig13"]

    def test_precompiled_equals_scalar_export(self):
        set_caching(False)
        try:
            scalar = export_results(self.IDS)  # no precompile, no caches
        finally:
            set_caching(True)
        clear_caches()
        compiled = export_results(self.IDS)  # precompiled through run_grid
        assert compiled == scalar
        assert compare_results(scalar, compiled, rel_tolerance=0.0) == []

    def test_warm_export_replays_from_payload_cache(self):
        assert caching_enabled()
        first = export_results(self.IDS)
        assert export_results(self.IDS) == first
