"""Sanity of the transcribed paper reference data."""

from repro.harness import paper_data as paper


class TestTable1Data:
    def test_sixteen_configurations(self):
        assert len(paper.TABLE1_MODELS) == 16

    def test_positive_values(self):
        for name, (input_size, gflop, params) in paper.TABLE1_MODELS.items():
            assert gflop > 0 and params > 0, name
            assert "x" in input_size


class TestFigureData:
    def test_fig2_devices_cover_table_v(self):
        assert set(paper.FIG2_BEST_S) == set(paper.TABLE5_EXPECTED["ResNet-18"])

    def test_fig2_rows_cover_all_models(self):
        for device, row in paper.FIG2_BEST_S.items():
            assert set(row) == set(paper.FIG2_MODELS), device

    def test_fig7_rows_aligned(self):
        assert set(paper.FIG7_NANO_S["PyTorch"]) == set(paper.FIG7_NANO_S["TensorRT"])

    def test_fig7_paper_average_speedup_consistent(self):
        """The 4.1x headline must follow from the per-model bars."""
        speedups = [paper.FIG7_NANO_S["PyTorch"][m] / paper.FIG7_NANO_S["TensorRT"][m]
                    for m in paper.FIG7_MODELS]
        average = sum(speedups) / len(speedups)
        assert abs(average - paper.FIG7_AVG_SPEEDUP) < 0.6

    def test_fig8_speedup_headlines_consistent(self):
        tf = [paper.FIG8_RPI_S["TensorFlow"][m] / paper.FIG8_RPI_S["TFLite"][m]
              for m in paper.FIG8_MODELS]
        pt = [paper.FIG8_RPI_S["PyTorch"][m] / paper.FIG8_RPI_S["TFLite"][m]
              for m in paper.FIG8_MODELS]
        assert abs(sum(tf) / len(tf) - paper.FIG8_SPEEDUP_OVER_TF) < 0.3
        assert abs(sum(pt) / len(pt) - paper.FIG8_SPEEDUP_OVER_PT) < 2.0

    def test_fig13_overhead_within_published_bound(self):
        for model in paper.FIG13_MODELS:
            bare = paper.FIG13_BARE_S[model]
            docker = paper.FIG13_DOCKER_S[model]
            assert (docker - bare) / bare <= paper.FIG13_MAX_OVERHEAD + 1e-9

    def test_fig5_fractions_are_probabilities(self):
        for targets in paper.FIG5_FRACTIONS.values():
            assert all(0 < f < 1 for f in targets.values())
            # OCR'd pie labels carry rounding error; allow a whisker over 1.
            assert sum(targets.values()) <= 1.0 + 5e-3

    def test_table5_matrix_is_rectangular(self):
        devices = set(next(iter(paper.TABLE5_EXPECTED.values())))
        for model, row in paper.TABLE5_EXPECTED.items():
            assert set(row) == devices, model
