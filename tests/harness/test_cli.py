"""Command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out
        assert "ResNet-18" in out
        assert "Jetson Nano" in out
        assert "TensorRT" in out


class TestRun:
    def test_runs_named_experiments(self, capsys):
        assert main(["run", "table6"]) == 0
        out = capsys.readouterr().out
        assert "Table VI" in out

    def test_multiple_experiments(self, capsys):
        assert main(["run", "table6", "fig13"]) == 0
        out = capsys.readouterr().out
        assert "Table VI" in out and "Figure 13" in out

    def test_no_experiments_is_an_error(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err


class TestTime:
    def test_times_a_deployment(self, capsys):
        assert main(["time", "ResNet-18", "Jetson Nano", "TensorRT"]) == 0
        assert "ms/inference" in capsys.readouterr().out

    def test_reports_deployment_failures(self, capsys):
        assert main(["time", "VGG16", "Raspberry Pi 3B", "TensorFlow"]) == 1
        assert "deployment failed" in capsys.readouterr().err

    def test_accepts_paper_aliases(self, capsys):
        assert main(["time", "resnet18", "Nano", "T-RT"]) == 0


class TestCompat:
    def test_prints_table_v(self, capsys):
        assert main(["compat"]) == 0
        assert "Table V" in capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
