"""Figure generators: structure and internal consistency.

Shape-level agreement with the paper is asserted separately in
tests/integration/test_paper_claims.py; these tests pin the mechanics.
"""

import pytest

from repro.harness import run_experiment
from repro.harness.figures import best_framework_latency
from repro.harness.paper_data import FIG2_MODELS, FIG9_MODELS, FIG13_MAX_OVERHEAD


class TestBestFramework:
    def test_edgetpu_only_offers_tflite(self):
        best = best_framework_latency("MobileNet-v2", "EdgeTPU")
        assert best is not None and best[0] == "TFLite"

    def test_incompatible_everywhere_returns_none(self):
        assert best_framework_latency("ResNet-18", "EdgeTPU") is None

    def test_nano_picks_tensorrt(self):
        best = best_framework_latency("ResNet-18", "Jetson Nano")
        assert best is not None and best[0] == "TensorRT"


class TestFig01:
    def test_sorted_by_intensity(self):
        table = run_experiment("fig01")
        values = table.column("flop_per_param")
        assert values == sorted(values)


class TestFig02:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("fig02")

    def test_grid_is_complete(self, table):
        assert len(table) == 6 * len(FIG2_MODELS)

    def test_failures_marked(self, table):
        row = table.row("Raspberry Pi 3B / SSD MobileNet-v1")
        assert row["framework"] == "(fails)"

    def test_ratios_present_when_paper_value_known(self, table):
        row = table.row("Jetson Nano / ResNet-18")
        assert row["ratio"] == pytest.approx(1.0, abs=0.1)  # anchored


class TestFig03And04:
    def test_rpi_memory_errors_marked(self):
        table = run_experiment("fig03")
        row = table.row("AlexNet")
        assert row["TensorFlow (s)"] is None  # memory error
        assert row["PyTorch (s)"] is not None  # dynamic graph runs

    def test_darknet_gaps(self):
        table = run_experiment("fig03")
        assert table.row("Xception")["DarkNet (s)"] is None
        assert table.row("ResNet-50")["DarkNet (s)"] is not None

    def test_tx2_runs_everything_on_gpu_frameworks(self):
        table = run_experiment("fig04")
        for row in table:
            assert row["PyTorch (ms)"] is not None
            assert row["TensorFlow (ms)"] is not None


class TestFig05:
    def test_every_paper_bucket_has_a_row(self):
        table = run_experiment("fig05")
        assert len(table) == 23  # total buckets across the four pies
        for row in table:
            assert 0 <= row["measured_fraction"] <= 1
            assert 0 < row["paper_fraction"] <= 1


class TestFig07:
    def test_note_reports_average_speedup(self):
        table = run_experiment("fig07")
        assert any("average speedup" in note for note in table.notes)

    def test_speedup_consistency(self):
        table = run_experiment("fig07")
        for row in table:
            assert row["speedup"] == pytest.approx(
                row["pytorch_ms"] / row["tensorrt_ms"], rel=1e-6)


class TestFig09And10:
    def test_platform_columns(self):
        table = run_experiment("fig09")
        assert len(table) == len(FIG9_MODELS)
        assert table.row("ResNet-18")["Jetson TX2 (ms)"] is not None

    def test_geomean_note(self):
        table = run_experiment("fig10")
        assert any("geomean" in note for note in table.notes)


class TestFig11And12:
    def test_energy_units_are_millijoules(self):
        table = run_experiment("fig11")
        edgetpu = table.row("EdgeTPU / MobileNet-v2")
        assert 5 < edgetpu["energy_mj"] < 20

    def test_scatter_has_power_and_latency(self):
        table = run_experiment("fig12")
        for row in table:
            assert row["power_w"] > 0
            assert row["latency_ms"] > 0


class TestFig13:
    def test_overheads_under_cap(self):
        table = run_experiment("fig13")
        for row in table:
            assert 0 < row["slowdown"] <= FIG13_MAX_OVERHEAD + 1e-9


class TestFig14:
    def test_expected_events(self):
        table = run_experiment("fig14")
        assert "shutdown" in table.row("Raspberry Pi 3B")["events"]
        assert "fan_on" in table.row("Jetson TX2")["events"]
        assert "fan_on" in table.row("Jetson Nano")["events"]
        assert table.row("EdgeTPU")["events"] == "steady"
        assert table.row("Movidius NCS")["events"] == "steady"
