"""Experiment registry and the Table I/II/III/VI generators."""

import pytest

from repro.harness import list_experiments, run_experiment
from repro.harness.paper_data import TABLE1_MODELS, TABLE3_POWER_W


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(list_experiments())
        expected = {"table1", "table2", "table3", "table5", "table6"} | {
            f"fig{n:02d}" for n in range(1, 15)
        }
        assert expected <= ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("table1")

    def test_all_models_present(self, table):
        assert set(table.labels()) == set(TABLE1_MODELS)

    def test_paper_columns_filled(self, table):
        for row in table:
            assert row["paper_gflop"] > 0
            assert row["paper_params_m"] > 0

    def test_exact_models_within_tolerance(self, table):
        for name in ("ResNet-50", "VGG16", "Inception-v4", "MobileNet-v2"):
            row = table.row(name)
            assert row["gflop"] == pytest.approx(row["paper_gflop"], rel=0.05)
            assert row["params_m"] == pytest.approx(row["paper_params_m"], rel=0.02)


class TestTable2:
    def test_structure(self):
        table = run_experiment("table2")
        assert "TensorRT" in table.columns
        assert "Auto tuning" in table.labels()
        # TensorRT is the only auto-tuning framework (Table II).
        auto_row = table.row("Auto tuning")
        assert auto_row["TensorRT"] is True
        assert sum(1 for c in table.columns if auto_row[c]) == 1


class TestTable3:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("table3")

    def test_all_devices(self, table):
        assert set(table.labels()) == set(TABLE3_POWER_W)

    def test_measured_power_matches_paper(self, table):
        for row in table:
            assert row["idle_w"] == pytest.approx(row["paper_idle_w"], rel=0.05)
            assert row["average_w"] == pytest.approx(row["paper_average_w"], rel=0.05)


class TestTable5:
    def test_every_row_matches_paper(self):
        table = run_experiment("table5")
        assert all(row["matches_paper"] for row in table)


class TestTable6:
    def test_idle_temperatures(self):
        table = run_experiment("table6")
        for row in table:
            tolerance = 4.0 if row.label == "Movidius NCS" else 1.0
            assert row["idle_surface_c"] == pytest.approx(row["paper_idle_c"], abs=tolerance)
