"""CLI verbs added after the core set: formats, charts, recommend."""


import pytest

from repro.cli import main


class TestRunFormats:
    def test_markdown_output(self, capsys):
        assert main(["run", "table6", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out
        assert "| Raspberry Pi 3B |" in out

    def test_csv_output(self, capsys):
        assert main(["run", "table6", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("label,")

    def test_chart_flag(self, capsys):
        assert main(["run", "fig07", "--chart", "speedup"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "speedup" in out

    def test_chart_unknown_column(self, capsys):
        assert main(["run", "fig07", "--chart", "nonsense"]) == 2
        assert "no column" in capsys.readouterr().err


class TestRecommend:
    def test_feasible_run(self, capsys):
        assert main(["recommend", "MobileNet-v2", "--deadline-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "satisfy" in out

    def test_infeasible_returns_one(self, capsys):
        assert main(["recommend", "Inception-v4", "--deadline-ms", "1"]) == 1
        out = capsys.readouterr().out
        assert "0/" in out

    def test_unknown_model(self, capsys):
        assert main(["recommend", "NoSuchNet"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_top_limits_rows(self, capsys):
        assert main(["recommend", "MobileNet-v2", "--top", "2"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if " via " in line]
        assert len(rows) == 2


class TestTimeScenarioFlags:
    def test_timed_output_includes_seed_and_cache(self, capsys):
        assert main(["time", "ResNet-18", "Jetson Nano", "TensorRT"]) == 0
        out = capsys.readouterr().out
        assert "ms/inference" in out
        assert "seed 0xa503b5ef" in out      # golden Scenario.seed
        assert "deploy cache" in out

    def test_no_timer_skips_timing_loop(self, capsys):
        assert main(["time", "ResNet-18", "Jetson Nano", "TensorRT",
                     "--no-timer"]) == 0
        assert "timed:" not in capsys.readouterr().out

    def test_scenario_axes_accepted(self, capsys):
        assert main(["time", "MobileNet-v2", "Jetson TX2", "PyTorch",
                     "--dtype", "fp16", "--batch", "4",
                     "--power-mode", "Max-Q", "--container"]) == 0
        assert "ms/inference" in capsys.readouterr().out

    def test_failure_reports_taxonomy_kind(self, capsys):
        assert main(["time", "VGG16", "Raspberry Pi 3B", "TensorFlow"]) == 1
        err = capsys.readouterr().err
        assert "deployment failed" in err
        assert "[memory_error]" in err


class TestExportParallel:
    def test_jobs_flag_produces_identical_snapshot(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        threaded = tmp_path / "threaded.json"
        assert main(["export", str(serial), "fig07", "table6"]) == 0
        assert main(["export", str(threaded), "fig07", "table6",
                     "--jobs", "2"]) == 0
        assert serial.read_text() == threaded.read_text()

    def test_bad_executor_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["export", "out.json", "--executor", "rayon"])
        assert excinfo.value.code == 2
