"""CLI verbs added after the core set: formats, charts, recommend."""

import pytest

from repro.cli import main


class TestRunFormats:
    def test_markdown_output(self, capsys):
        assert main(["run", "table6", "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "|---" in out
        assert "| Raspberry Pi 3B |" in out

    def test_csv_output(self, capsys):
        assert main(["run", "table6", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("label,")

    def test_chart_flag(self, capsys):
        assert main(["run", "fig07", "--chart", "speedup"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "speedup" in out

    def test_chart_unknown_column(self, capsys):
        assert main(["run", "fig07", "--chart", "nonsense"]) == 2
        assert "no column" in capsys.readouterr().err


class TestRecommend:
    def test_feasible_run(self, capsys):
        assert main(["recommend", "MobileNet-v2", "--deadline-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "satisfy" in out

    def test_infeasible_returns_one(self, capsys):
        assert main(["recommend", "Inception-v4", "--deadline-ms", "1"]) == 1
        out = capsys.readouterr().out
        assert "0/" in out

    def test_unknown_model(self, capsys):
        assert main(["recommend", "NoSuchNet"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_top_limits_rows(self, capsys):
        assert main(["recommend", "MobileNet-v2", "--top", "2"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if " via " in line]
        assert len(rows) == 2
