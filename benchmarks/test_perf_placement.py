"""Placement-optimizer performance: full-zoo search and pipelined serving.

Not a paper artifact: this guards the two perf contracts of the
Deployment refactor.  First, `search_placements` prices every shape —
single nodes via one ``run_grid`` sweep, every split cut via one
prefix-sum sweep per device pair, pipelines via the partitioning DP — so
searching the ENTIRE model zoo against the full edge fleet plus a cloud
GPU must stay interactive (seconds, not minutes).  Second, pipelined
deployment pools are served by chained per-stage Lindley scans, the same
array-work contract as single-node pools, so a million requests through
a pipelined fleet must finish inside the fleet simulator's own budget.
Numbers land in ``BENCH_placement.json`` at the repo root so regressions
show up in review diffs (``tools/bench_guard.py`` re-checks the
committed file in CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.distribution import lower_pipeline
from repro.fleet import FleetSimulation, PoolSpec
from repro.models import list_models
from repro.placement import search_placements
from repro.runtime import Scenario, default_runner
from repro.workloads.arrivals import PoissonArrivals, first_n, reseeded

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_placement.json"
PIPELINE_REQUESTS = 1_000_000
MAX_SEARCH_S = 15.0
MAX_PIPELINE_SIMULATE_S = 5.0
SEED = 7


def test_placement_search_and_pipelined_serving_under_budget():
    runner = default_runner()
    models = list_models()

    # -- full-zoo search: every model, full edge fleet + one cloud GPU.
    start = time.perf_counter()
    frontiers = [search_placements(model, remote_devices=("GTX Titan X",),
                                   runner=runner)
                 for model in models]
    search_s = time.perf_counter() - start

    candidates = sum(len(frontier.candidates) for frontier in frontiers)
    frontier_size = sum(len(frontier.frontier) for frontier in frontiers)
    for frontier in frontiers:
        assert frontier.frontier, f"empty frontier for {frontier.model}"
    assert search_s < MAX_SEARCH_S, (
        f"searched {len(models)} models in {search_s:.2f}s "
        f">= {MAX_SEARCH_S}s budget")

    # Determinism: the search is a pure function of its inputs.
    repeat = search_placements(models[0], remote_devices=("GTX Titan X",),
                               runner=runner)
    search_deterministic = repeat.to_dict() == frontiers[0].to_dict()
    assert search_deterministic, "same-input searches differ"

    # -- pipelined serving at fleet scale.
    chain = (Scenario("MobileNet-v2", "Jetson Nano", "TensorRT"),) * 2
    deployment = lower_pipeline(chain, "lan", runner=runner)
    pool = PoolSpec.from_deployment("nano-pipe", deployment, replicas=8)
    simulation = FleetSimulation([pool], epochs=1024, runner=runner)
    rate_hz = 0.7 * simulation.capacity_rps
    arrival_times = first_n(reseeded(PoissonArrivals(rate_hz=rate_hz), SEED),
                            PIPELINE_REQUESTS)

    start = time.perf_counter()
    stats = simulation.run(arrival_times, seed=SEED)
    pipeline_simulate_s = time.perf_counter() - start

    assert stats.completed + stats.dropped + stats.rejected == PIPELINE_REQUESTS
    assert pipeline_simulate_s < MAX_PIPELINE_SIMULATE_S, (
        f"simulated {PIPELINE_REQUESTS} pipelined requests in "
        f"{pipeline_simulate_s:.2f}s >= {MAX_PIPELINE_SIMULATE_S}s budget")

    repeat_stats = simulation.run(arrival_times, seed=SEED)
    serving_deterministic = stats.to_json() == repeat_stats.to_json()
    assert serving_deterministic, "same-seed pipelined reports differ"

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "placement full-zoo search + pipelined 1M-request serving",
        "models": len(models),
        "remote_devices": ["GTX Titan X"],
        "search_s": round(search_s, 4),
        "candidates": candidates,
        "frontier_size": frontier_size,
        "pipeline_deployment": deployment.key,
        "pipeline_requests": PIPELINE_REQUESTS,
        "pipeline_simulate_s": round(pipeline_simulate_s, 4),
        "pipeline_completed": stats.completed,
        "pipeline_dropped": stats.dropped,
        "pipeline_rejected": stats.rejected,
        "max_search_s": MAX_SEARCH_S,
        "max_pipeline_simulate_s": MAX_PIPELINE_SIMULATE_S,
        "search_deterministic": search_deterministic,
        "serving_deterministic": serving_deterministic,
    }, indent=1) + "\n")
