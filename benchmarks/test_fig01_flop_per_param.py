"""Bench: regenerate Figure 1 (models sorted by FLOP/Param)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig01_flop_per_param(benchmark):
    table = run_and_report(benchmark, "fig01")
    values = table.column("flop_per_param")
    assert values == sorted(values)
    labels = table.labels()
    # Shape: the paper's extremes hold — VGG-S 32x32 least intense, C3D most.
    assert labels[0] == "VGG-S 32x32"
    assert labels[-1] == "C3D"
