"""Ablation 1 (DESIGN.md): roofline memory term.

Disable the memory term (pure-FLOP latency model) and show that the
paper-observed memory phenomena vanish: the Xeon's VGG16 parity with the
TX2 and the dynamic-graph paging penalty both depend on it.
"""

import pytest

from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


def _latency(model, device, framework, **cfg):
    deployed = load_framework(framework).deploy(load_model(model), load_device(device))
    return InferenceSession(deployed, config=EngineConfig(**cfg)).latency_s


@pytest.mark.benchmark(group="ablations")
def test_ablation_memory_term(benchmark):
    def run():
        full = {
            "xeon_vgg": _latency("VGG16", "Xeon E5-2696 v4", "PyTorch"),
            "tx2_vgg": _latency("VGG16", "Jetson TX2", "PyTorch"),
            "rpi_paged": _latency("VGG16", "Raspberry Pi 3B", "PyTorch"),
        }
        ablated = {
            "xeon_vgg": _latency("VGG16", "Xeon E5-2696 v4", "PyTorch",
                                 include_memory_term=False),
            "tx2_vgg": _latency("VGG16", "Jetson TX2", "PyTorch",
                                include_memory_term=False),
            "rpi_paged": _latency("VGG16", "Raspberry Pi 3B", "PyTorch",
                                  include_memory_term=False),
        }
        return full, ablated

    full, ablated = benchmark(run)
    print()
    print(f"Xeon/TX2 VGG16 ratio: full {full['xeon_vgg'] / full['tx2_vgg']:.2f}, "
          f"pure-FLOP {ablated['xeon_vgg'] / ablated['tx2_vgg']:.2f}")
    print(f"RPi paged VGG16: full {full['rpi_paged']:.1f} s, "
          f"pure-FLOP {ablated['rpi_paged']:.1f} s")
    # The SD-card paging tax (~7 s of weight streaming) vanishes with the
    # memory term; the remainder is RPi compute.
    assert full["rpi_paged"] - ablated["rpi_paged"] > 4.0
    # Pure-FLOP makes the Xeon look comparatively worse on VGG16 than the
    # full model does (the memory term is what rescues it).
    assert (ablated["xeon_vgg"] / ablated["tx2_vgg"]
            >= full["xeon_vgg"] / full["tx2_vgg"])
