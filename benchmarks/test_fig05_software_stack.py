"""Bench: regenerate Figure 5 (software-stack profiles)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig05_software_stack(benchmark):
    table = run_and_report(benchmark, "fig05")
    # Shape: the dominant bucket of each pie matches the paper's.
    dominant = {
        "RPi/PyTorch": "conv2d",
        "RPi/TensorFlow": "base_layer",
        "TX2/PyTorch": "_C._TensorBase.to()",
    }
    for prefix, bucket in dominant.items():
        rows = [row for row in table if row.label.startswith(prefix)]
        best = max(rows, key=lambda r: r["measured_fraction"])
        assert best.label.endswith(bucket), (prefix, best.label)
    # Every measured fraction within 0.25 absolute of the paper's label.
    for row in table:
        assert row["measured_fraction"] == pytest.approx(
            row["paper_fraction"], abs=0.25), row.label
