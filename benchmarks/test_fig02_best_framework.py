"""Bench: regenerate Figure 2 (best-framework latency per edge device)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig02_best_framework(benchmark):
    table = run_and_report(benchmark, "fig02")
    # Shape: where the paper's bars are legible, we land within ~3x, and
    # the anchored points are spot-on.
    ratios = [row["ratio"] for row in table if row["ratio"] is not None]
    assert ratios, "no comparable points"
    within_3x = sum(1 for r in ratios if 1 / 3 <= r <= 3)
    assert within_3x / len(ratios) >= 0.75
    assert table.row("Jetson Nano / ResNet-18")["ratio"] == pytest.approx(1.0, abs=0.1)
