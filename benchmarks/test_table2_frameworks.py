"""Bench: regenerate Table II (framework feature/optimization matrix)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="tables")
def test_table2_frameworks(benchmark):
    table = run_and_report(benchmark, "table2")
    fusion = table.row("Fusion")
    assert fusion["TensorRT"] and fusion["TFLite"] and fusion["NCSDK"]
    assert not fusion["PyTorch"] and not fusion["DarkNet"]
