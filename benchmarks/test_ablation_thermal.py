"""Ablation 5 (DESIGN.md): lumped-RC thermal model with fan hysteresis.

Remove the TX2's fan and show Figure 14's story inverts: the fan is why the
highest-power edge board runs the coolest.
"""

import dataclasses

import pytest

from repro.hardware import load_device
from repro.hardware.thermal import ThermalSimulator


@pytest.mark.benchmark(group="ablations")
def test_ablation_fan(benchmark):
    def run():
        tx2 = load_device("Jetson TX2")
        power = tx2.average_power_w()
        with_fan = ThermalSimulator(tx2.thermal)
        with_fan.run_to_steady_state(power, dt_s=2.0)
        no_fan_spec = dataclasses.replace(tx2.thermal, has_fan=False)
        without_fan = ThermalSimulator(no_fan_spec)
        without_fan.run_to_steady_state(power, dt_s=2.0)
        return with_fan, without_fan

    with_fan, without_fan = benchmark.pedantic(run, rounds=3, iterations=1)
    print()
    print(f"TX2 under Table III load: {with_fan.temperature_c:.1f} C with fan "
          f"(events: {[e.kind for e in with_fan.events]}), "
          f"{without_fan.temperature_c:.1f} C without")
    assert any(e.kind == "fan_on" for e in with_fan.events)
    assert not without_fan.events
    # Fanless, the TX2 would soar far beyond its fan-controlled equilibrium.
    assert without_fan.temperature_c > with_fan.temperature_c + 30
