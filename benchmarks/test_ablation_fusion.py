"""Ablation 4 (DESIGN.md): kernel fusion gains.

Re-dispatch every fused-away op and show TensorRT loses a meaningful part
of its Figure 7 advantage: fusion is load-bearing, not decorative.
"""

import pytest

from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model


@pytest.mark.benchmark(group="ablations")
def test_ablation_fusion(benchmark):
    def run():
        pytorch = InferenceSession(load_framework("PyTorch").deploy(
            load_model("ResNet-50"), load_device("Jetson Nano"))).latency_s
        tensorrt_deployed = load_framework("TensorRT").deploy(
            load_model("ResNet-50"), load_device("Jetson Nano"))
        fused = InferenceSession(tensorrt_deployed).latency_s
        unfused = InferenceSession(
            tensorrt_deployed, config=EngineConfig(respect_fusion=False)).latency_s
        return pytorch, fused, unfused

    pytorch, fused, unfused = benchmark(run)
    print()
    print(f"Nano ResNet-50: PyTorch {pytorch * 1e3:.1f} ms, TensorRT fused "
          f"{fused * 1e3:.1f} ms, TensorRT fusion-ablated {unfused * 1e3:.1f} ms")
    print(f"TensorRT speedup: {pytorch / fused:.2f}x fused, "
          f"{pytorch / unfused:.2f}x without fusion")
    assert unfused > fused
    # Fusion contributes a visible slice of the TensorRT speedup.
    assert pytorch / fused > 1.1 * (pytorch / unfused)
