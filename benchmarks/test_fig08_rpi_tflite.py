"""Bench: regenerate Figure 8 (RPi: TensorFlow vs PyTorch vs TFLite)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig08_rpi_tflite(benchmark):
    table = run_and_report(benchmark, "fig08")
    tf_speedups = table.column("speedup_vs_tf")
    pt_speedups = table.column("speedup_vs_pt")
    # Paper: TFLite averages 1.58x over TF and 4.53x over PyTorch.
    assert all(s > 1.0 for s in tf_speedups)
    assert 1.1 < sum(tf_speedups) / len(tf_speedups) < 2.5
    assert 3.0 < sum(pt_speedups) / len(pt_speedups) < 12.0
    # The TFLite gain is biggest on MobileNet-v2 (quantized depthwise path).
    assert table.row("MobileNet-v2")["speedup_vs_tf"] == max(tf_speedups)
