"""Bench: regenerate Figure 14 (temperature behaviour under Inception-v4)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig14_temperature(benchmark):
    table = run_and_report(benchmark, "fig14")
    assert "shutdown" in table.row("Raspberry Pi 3B")["events"]
    assert "fan_on" in table.row("Jetson TX2")["events"]
    assert "fan_on" in table.row("Jetson Nano")["events"]
    # Movidius: lowest variation and lowest absolute temperature.
    variations = {row.label: row["steady_surface_c"] - row["idle_surface_c"]
                  for row in table}
    assert min(variations, key=variations.get) == "Movidius NCS"
    steady = {row.label: row["steady_surface_c"] for row in table}
    assert min(steady, key=steady.get) == "Movidius NCS"
    # Idle temperatures match Table VI within instrument tolerance.
    for row in table:
        tolerance = 4.0 if row.label == "Movidius NCS" else 1.5
        assert row["idle_surface_c"] == pytest.approx(row["paper_idle_c"], abs=tolerance)
