"""Ablation 2 (DESIGN.md): framework overhead decomposition.

Zero the framework bookkeeping (session entry + per-op dispatch above the
kernel launch) and quantify how much of each framework's latency is
overhead rather than kernels — the distinction the paper's Figure 5
profiling drills into.
"""

import pytest

from repro.engine import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model

FRAMEWORKS = ("TensorFlow", "Caffe", "PyTorch", "DarkNet")


def _latencies(model: str, device: str, include_overheads: bool) -> dict[str, float]:
    config = EngineConfig(include_framework_overheads=include_overheads)
    result = {}
    for framework_name in FRAMEWORKS:
        deployed = load_framework(framework_name).deploy(
            load_model(model), load_device(device))
        result[framework_name] = InferenceSession(deployed, config=config).latency_s
    return result


@pytest.mark.benchmark(group="ablations")
def test_ablation_framework_overheads(benchmark):
    def run():
        return (_latencies("ResNet-50", "Jetson TX2", True),
                _latencies("ResNet-50", "Jetson TX2", False))

    full, bare = benchmark(run)
    print()
    for framework_name in FRAMEWORKS:
        share = 1 - bare[framework_name] / full[framework_name]
        print(f"{framework_name:11s}: {full[framework_name] * 1e3:7.1f} ms, "
              f"overhead share {share:6.1%}")
        # Every framework pays some overhead, and it never exceeds half the
        # latency of a GPU-resident ResNet-50 run.
        assert 0.0 < share < 0.5
    # PyTorch's dynamic dispatch makes it the biggest relative payer among
    # the GPU frameworks (Figure 5c's 'forward' bucket).
    shares = {f: 1 - bare[f] / full[f] for f in FRAMEWORKS}
    assert shares["PyTorch"] > shares["Caffe"]
    assert shares["PyTorch"] > shares["DarkNet"]
