"""Static-check performance: all six passes stay pre-commit cheap.

Not a paper artifact: this guards the "cheap enough to run locally before
every commit" contract in docs/checks.md.  The six passes share one parse
of the package source, and the whole strict run — every zoo graph
re-derived three ways by the shapes pass, the interprocedural effects
fixpoint, all of it — must finish well inside an interactive budget while
reporting zero findings.  Numbers land in ``BENCH_check.json`` at the
repo root so regressions show up in review diffs
(``tools/bench_guard.py`` re-checks the committed file in CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.check import PASSES, run_checks

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_check.json"
MAX_TOTAL_S = 10.0


def test_all_six_passes_clean_and_under_budget():
    timings: dict[str, float] = {}
    start = time.perf_counter()
    findings = run_checks(timings=timings)
    total_s = time.perf_counter() - start

    assert sorted(timings) == sorted(PASSES)
    assert findings == [], [str(finding) for finding in findings]
    assert total_s < MAX_TOTAL_S, (
        f"six-pass check took {total_s:.2f}s >= {MAX_TOTAL_S}s budget")

    bench = {
        "benchmark": "check six-pass static verification",
        "passes": list(PASSES),
        "per_pass_s": {name: round(seconds, 4)
                       for name, seconds in timings.items()},
        "total_s": round(total_s, 4),
        "findings": len(findings),
        "strict_clean": not findings,
        "max_total_s": MAX_TOTAL_S,
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=1) + "\n")
