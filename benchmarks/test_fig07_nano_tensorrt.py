"""Bench: regenerate Figure 7 (Jetson Nano: PyTorch vs TensorRT)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig07_nano_tensorrt(benchmark):
    table = run_and_report(benchmark, "fig07")
    speedups = table.column("speedup")
    average = sum(speedups) / len(speedups)
    # Paper: 4.1x average; we accept the 3-8x band for the simulator.
    assert 3.0 < average < 8.0
    # Memory-bound AlexNet gains least, exactly as the paper observes.
    assert table.row("AlexNet")["speedup"] == min(speedups)
    # Anchored ResNet-18 lands on the paper's bar.
    row = table.row("ResNet-18")
    assert row["tensorrt_ms"] == pytest.approx(row["paper_tensorrt_ms"], rel=0.1)
