"""Bench: regenerate Figure 10 (speedup over Jetson TX2)."""

import re

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig10_speedup_over_tx2(benchmark):
    table = run_and_report(benchmark, "fig10")
    note = next(note for note in table.notes if "geomean" in note)
    geomean = float(re.search(r"([\d.]+)x", note).group(1))
    # Paper headline: "the average speedup over Jetson TX2 ... is only 3x".
    assert 2.0 < geomean < 5.0
    # VGG/C3D gain more from HPC GPUs than ResNets do.
    assert (table.row("VGG16")["RTX 2080 (x)"]
            > table.row("ResNet-50")["RTX 2080 (x)"])
    assert (table.row("C3D")["RTX 2080 (x)"]
            > table.row("ResNet-101")["RTX 2080 (x)"])
