"""Bench: regenerate Figure 9 (edge vs HPC time per inference, PyTorch)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig09_edge_vs_hpc(benchmark):
    table = run_and_report(benchmark, "fig09")
    # Shape: HPC GPUs always beat the TX2; Xeon loses on compute-bound
    # models and competes only on the memory-bound VGG family.
    for row in table:
        tx2 = row["Jetson TX2 (ms)"]
        for gpu in ("GTX Titan X (ms)", "Titan Xp (ms)", "RTX 2080 (ms)"):
            assert row[gpu] < tx2, (row.label, gpu)
    assert table.row("ResNet-50")["Xeon E5-2696 v4 (ms)"] > table.row("ResNet-50")["Jetson TX2 (ms)"]
    assert table.row("VGG16")["Xeon E5-2696 v4 (ms)"] < 1.3 * table.row("VGG16")["Jetson TX2 (ms)"]
