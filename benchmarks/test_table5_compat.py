"""Bench: regenerate Table V (model x platform compatibility matrix)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="tables")
def test_table5_compat(benchmark):
    table = run_and_report(benchmark, "table5")
    assert all(row["matches_paper"] for row in table)
