"""Bench: regenerate Table I (model FLOP/parameter inventory)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="tables")
def test_table1_models(benchmark):
    table = run_and_report(benchmark, "table1")
    # Shape: exact-architecture rows track the paper closely.
    for name in ("ResNet-50", "VGG16", "Inception-v4"):
        row = table.row(name)
        assert row["gflop"] == pytest.approx(row["paper_gflop"], rel=0.05)
        assert row["params_m"] == pytest.approx(row["paper_params_m"], rel=0.02)
