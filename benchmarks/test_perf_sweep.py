"""Sweep-engine performance: uncached vs cold vs warm full-suite export.

Not a paper artifact: this guards the perf_opt work on the sweep hot path
(engine memoization + vectorized roofline + cached plan totals).  It runs
the whole registry three ways —

* **uncached** — memoization bypassed, every graph/deployment/plan rebuilt;
* **cold** — caches enabled but empty (first sweep of a process);
* **warm** — caches populated (every later sweep, and every figure that
  revisits cells an earlier figure already priced);

asserts the warm path wins by the ISSUE's >= 3x bar while staying
bit-identical, and records the numbers in ``BENCH_sweep.json`` at the repo
root so regressions show up in review diffs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.harness.registry import list_experiments
from repro.harness.suite import compare_results, export_results
from repro.engine.cache import (
    cache_stats,
    caching_disabled,
    clear_caches,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"
MIN_WARM_SPEEDUP = 3.0


def _timed_export():
    start = time.perf_counter()
    snapshot = export_results()
    return snapshot, time.perf_counter() - start


def test_sweep_cache_speedup_and_identity():
    clear_caches()
    with caching_disabled():
        uncached_snapshot, uncached_s = _timed_export()

    clear_caches()
    cold_snapshot, cold_s = _timed_export()
    cold_stats = cache_stats()

    warm_snapshot, warm_s = _timed_export()
    warm_stats = cache_stats()
    clear_caches()

    # The caches were exercised: cold run populates, warm run mostly hits.
    assert cold_stats["deploy"]["entries"] > 0
    for cache in ("graph", "deploy", "plan"):
        assert warm_stats[cache]["hit_rate"] > 0, cache
    assert warm_stats["deploy"]["hits"] > warm_stats["deploy"]["misses"]

    # Observationally invisible: all three snapshots byte-identical.
    assert compare_results(uncached_snapshot, cold_snapshot,
                           rel_tolerance=0.0) == []
    assert warm_snapshot == cold_snapshot

    # The point of the exercise: warm sweeps beat the uncached baseline.
    speedup_warm = uncached_s / warm_s
    assert speedup_warm >= MIN_WARM_SPEEDUP, (
        f"warm export {warm_s:.3f}s vs uncached {uncached_s:.3f}s "
        f"({speedup_warm:.1f}x < {MIN_WARM_SPEEDUP}x)")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "full-suite export_results()",
        "experiments": len(list_experiments()),
        "uncached_s": round(uncached_s, 4),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_cold": round(uncached_s / cold_s, 2),
        "speedup_warm": round(speedup_warm, 2),
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "warm_cache_stats": warm_stats,
        "identical_at_zero_tolerance": True,
    }, indent=1) + "\n")
