"""Sweep-engine performance: uncached vs compiled-cold vs compiled-warm.

Not a paper artifact: this guards the perf_opt work on the sweep hot path
(engine memoization + vectorized roofline + the batched sweep compiler).
It runs the whole registry three ways —

* **uncached** — memoization bypassed, every graph/deployment/plan rebuilt
  one scalar cell at a time (the pre-compiler baseline);
* **compiled uncached** — caches enabled but empty: the suite grid is
  batched through the sweep compiler from a cold start;
* **compiled warm** — caches populated: a re-export replays straight from
  the payload cache;

asserts the warm path wins by >= 3x while staying bit-identical, holds the
compiled paths to their absolute budgets (warm < 0.2 s, uncached < 1 s),
and records the numbers in ``BENCH_sweep.json`` at the repo root so
regressions show up in review diffs (``tools/bench_guard.py`` re-checks
the committed file in CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.engine.cache import (
    cache_stats,
    caching_disabled,
    clear_caches,
)
from repro.engine.compile import compile_stats, reset_compile_stats
from repro.harness.registry import list_experiments
from repro.harness.suite import compare_results, export_results

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"
MIN_WARM_SPEEDUP = 3.0
MAX_COMPILED_WARM_S = 0.2
MAX_COMPILED_UNCACHED_S = 1.0


def _timed_export():
    start = time.perf_counter()
    snapshot = export_results()
    return snapshot, time.perf_counter() - start


def test_sweep_cache_speedup_and_identity():
    clear_caches()
    with caching_disabled():
        uncached_snapshot, uncached_s = _timed_export()

    clear_caches()
    reset_compile_stats()
    cold_snapshot, cold_s = _timed_export()
    cold_stats = cache_stats()
    sweep_stats = compile_stats()

    warm_snapshot, warm_s = _timed_export()
    warm_stats = cache_stats()
    clear_caches()
    reset_compile_stats()

    # The caches were exercised: cold run populates, warm run mostly hits.
    assert cold_stats["deploy"]["entries"] > 0
    for cache in ("graph", "deploy", "plan"):
        assert warm_stats[cache]["hit_rate"] > 0, cache
    assert warm_stats["deploy"]["hits"] > warm_stats["deploy"]["misses"]

    # The cold run routed the suite grid through the sweep compiler.
    assert sweep_stats["cells"] > 0
    assert sweep_stats["array_programs"] > 0
    dedup_ratio = sweep_stats["dedup_ratio"]
    assert dedup_ratio > 1.0

    # Observationally invisible: all three snapshots byte-identical.
    assert compare_results(uncached_snapshot, cold_snapshot,
                           rel_tolerance=0.0) == []
    assert warm_snapshot == cold_snapshot

    # The point of the exercise: warm sweeps beat the uncached baseline...
    speedup_warm = uncached_s / warm_s
    assert speedup_warm >= MIN_WARM_SPEEDUP, (
        f"warm export {warm_s:.3f}s vs uncached {uncached_s:.3f}s "
        f"({speedup_warm:.1f}x < {MIN_WARM_SPEEDUP}x)")

    # ...and the compiled paths hold their absolute budgets.
    assert warm_s < MAX_COMPILED_WARM_S, (
        f"compiled warm export {warm_s:.3f}s >= {MAX_COMPILED_WARM_S}s")
    assert cold_s < MAX_COMPILED_UNCACHED_S, (
        f"compiled cold-from-empty export {cold_s:.3f}s >= "
        f"{MAX_COMPILED_UNCACHED_S}s")

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "full-suite export_results()",
        "experiments": len(list_experiments()),
        "uncached_s": round(uncached_s, 4),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "compiled_uncached_s": round(cold_s, 4),
        "compiled_warm_s": round(warm_s, 4),
        "dedup_ratio": round(dedup_ratio, 2),
        "speedup_cold": round(uncached_s / cold_s, 2),
        "speedup_warm": round(speedup_warm, 2),
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "max_compiled_warm_s": MAX_COMPILED_WARM_S,
        "max_compiled_uncached_s": MAX_COMPILED_UNCACHED_S,
        "sweep_compiler": {
            key: sweep_stats[key]
            for key in ("grids", "cells", "unique_deploys", "unique_plans",
                        "plan_cache_hits", "array_programs", "ops_lowered")
        },
        "warm_cache_stats": warm_stats,
        "identical_at_zero_tolerance": True,
    }, indent=1) + "\n")
