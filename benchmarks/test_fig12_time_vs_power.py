"""Bench: regenerate Figure 12 (inference time vs active power scatter)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig12_time_vs_power(benchmark):
    table = run_and_report(benchmark, "fig12")
    by_device: dict[str, list] = {}
    for row in table:
        by_device.setdefault(row.label.split(" / ")[0], []).append(row)
    # Paper: Movidius has the lowest active power usage ...
    min_power = {d: min(r["power_w"] for r in rows) for d, rows in by_device.items()}
    assert min(min_power, key=min_power.get) == "Movidius NCS"
    # ... EdgeTPU the lowest inference time ...
    min_latency = {d: min(r["latency_ms"] for r in rows) for d, rows in by_device.items()}
    assert min(min_latency, key=min_latency.get) == "EdgeTPU"
    # ... and GTX Titan X sits far right at ~100 W.
    assert min(r["power_w"] for r in by_device["GTX Titan X"]) > 50
