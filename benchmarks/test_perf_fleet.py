"""Fleet-simulator performance: a million requests in single-digit seconds.

Not a paper artifact: this guards the vectorized event loop in
``repro.fleet.simulate``.  The loop's contract is that per-request work is
array work — Lindley scans for batch-1 pools, one lean iteration per
*batch* for dynamic-batching pools — so simulating 10^6 requests over a
three-pool heterogeneous fleet must finish well under the 5 s budget (a
per-request Python heap takes minutes).  The run also re-simulates the
same stream and asserts the two reports serialize byte-identically, the
determinism half of the fleet contract.  Numbers land in
``BENCH_fleet.json`` at the repo root so regressions show up in review
diffs (``tools/bench_guard.py`` re-checks the committed file in CI).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.fleet import FleetSimulation, PoolSpec
from repro.runtime import Scenario
from repro.workloads.arrivals import PoissonArrivals, first_n, reseeded

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"
REQUESTS = 1_000_000
MAX_SIMULATE_S = 5.0
SEED = 7


def _pools() -> list[PoolSpec]:
    return [
        PoolSpec(name="nano", replicas=8, max_batch=8,
                 scenario=Scenario("ResNet-18", "Jetson Nano", "TensorRT")),
        PoolSpec(name="tx2", replicas=4, max_batch=4,
                 scenario=Scenario("ResNet-18", "Jetson TX2", "PyTorch")),
        PoolSpec(name="pi", replicas=2,
                 scenario=Scenario("ResNet-18", "Raspberry Pi 3B", "TFLite")),
    ]


def test_fleet_million_requests_under_budget():
    pools = _pools()
    simulation = FleetSimulation(pools, epochs=1024)
    rate_hz = 0.7 * simulation.capacity_rps

    start = time.perf_counter()
    arrival_times = first_n(reseeded(PoissonArrivals(rate_hz=rate_hz), SEED),
                            REQUESTS)
    generate_s = time.perf_counter() - start

    start = time.perf_counter()
    stats = simulation.run(arrival_times, seed=SEED)
    simulate_s = time.perf_counter() - start

    # Conservation and coverage: every request is accounted for.
    assert stats.requests == REQUESTS
    assert stats.completed + stats.dropped + stats.rejected == REQUESTS
    for pool in stats.pools:
        assert pool.assigned == pool.completed + pool.dropped

    # The budget that makes fleet-scale studies interactive.
    assert simulate_s < MAX_SIMULATE_S, (
        f"simulated {REQUESTS} requests in {simulate_s:.2f}s "
        f">= {MAX_SIMULATE_S}s budget")

    # Determinism: the same stream re-simulated is byte-identical.
    repeat = simulation.run(arrival_times, seed=SEED)
    identical = stats.to_json() == repeat.to_json()
    assert identical, "same-seed fleet reports differ"

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "fleet simulate 1M requests over 3 pools",
        "requests": REQUESTS,
        "pools": [pool.describe() for pool in pools],
        "policy": stats.policy,
        "epochs": stats.epochs,
        "rate_rps": round(rate_hz, 1),
        "generate_s": round(generate_s, 4),
        "simulate_s": round(simulate_s, 4),
        "requests_per_wall_s": round(REQUESTS / simulate_s),
        "completed": stats.completed,
        "dropped": stats.dropped,
        "rejected": stats.rejected,
        "p99_sojourn_s": round(stats.sojourn.p99_s, 6),
        "min_requests": REQUESTS,
        "max_simulate_s": MAX_SIMULATE_S,
        "identical_across_seed_repeat": identical,
    }, indent=1) + "\n")
