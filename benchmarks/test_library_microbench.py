"""Micro-benchmarks of the library's own hot paths.

Not a paper artifact: these keep the substrate fast enough that the whole
paper regenerates in seconds (graph construction, engine planning, the
calibration fit, serialization, and the pipeline DP).
"""

import pytest

from repro.distribution import load_link, partition_pipeline
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.graphs.serialize import graph_from_dict, graph_to_dict
from repro.hardware import load_device
from repro.models import load_model


@pytest.mark.benchmark(group="library")
def test_build_inception_graph(benchmark):
    graph = benchmark(load_model, "Inception-v4")
    assert graph.total_params > 40e6


@pytest.mark.benchmark(group="library")
def test_deploy_and_plan_resnet50(benchmark):
    framework = load_framework("PyTorch")
    device = load_device("Jetson TX2")
    model = load_model("ResNet-50")

    def deploy_and_plan():
        return InferenceSession(framework.deploy(model, device))

    session = benchmark(deploy_and_plan)
    assert session.latency_s > 0


@pytest.mark.benchmark(group="library")
def test_serialize_round_trip_vgg16(benchmark):
    graph = load_model("VGG16")

    def round_trip():
        return graph_from_dict(graph_to_dict(graph))

    restored = benchmark(round_trip)
    assert restored.total_params == graph.total_params


@pytest.mark.benchmark(group="library")
def test_pipeline_partition_yolov3(benchmark):
    deployed = load_framework("PyTorch").deploy(load_model("YOLOv3"),
                                                load_device("Jetson TX2"))
    link = load_link("ethernet")
    plan = benchmark(partition_pipeline, deployed, 4, link)
    assert len(plan.stages) == 4


@pytest.mark.benchmark(group="library")
def test_peak_memory_liveness_inception(benchmark):
    graph = load_model("Inception-v4")
    peak = benchmark(graph.peak_activation_bytes)
    assert peak > 0


@pytest.mark.benchmark(group="library")
def test_serving_simulation_throughput(benchmark):
    from repro.workloads import PoissonArrivals, simulate_serving

    arrivals = PoissonArrivals(200.0, seed=5).generate(120.0)  # ~24k requests

    stats = benchmark(simulate_serving, arrivals, 0.004)
    assert stats.completed == stats.requests


@pytest.mark.benchmark(group="library")
def test_calibration_fit(benchmark):
    from repro.engine.calibration import _fit

    def fit_fresh():
        _fit.cache_clear()
        return _fit("TensorRT", "Jetson Nano")

    scale = benchmark(fit_fresh)
    assert 0 < scale < 100
