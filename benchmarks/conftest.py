"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure through the harness,
records paper-vs-measured pairs into pytest-benchmark's ``extra_info`` and
prints the rendered ASCII table (visible with ``-s`` or in the captured
output of a failing run).
"""

from __future__ import annotations

from repro.core.result import ResultTable
from repro.harness import render_table


def run_and_report(benchmark, experiment_id: str) -> ResultTable:
    """Benchmark one experiment generator and report its table."""
    from repro.harness import run_experiment

    table = benchmark(run_experiment, experiment_id)
    print()
    print(render_table(table))
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["rows"] = len(table)
    return table
