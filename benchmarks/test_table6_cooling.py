"""Bench: regenerate Table VI (cooling hardware + idle temperatures)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="tables")
def test_table6_cooling(benchmark):
    table = run_and_report(benchmark, "table6")
    for row in table:
        tolerance = 4.0 if row.label == "Movidius NCS" else 1.0
        assert row["idle_surface_c"] == pytest.approx(row["paper_idle_c"], abs=tolerance)
