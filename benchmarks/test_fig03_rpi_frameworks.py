"""Bench: regenerate Figure 3 (RPi cross-framework latency)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig03_rpi_frameworks(benchmark):
    table = run_and_report(benchmark, "fig03")
    # Shape: TensorFlow fastest where it runs; PyTorch slowest but runs the
    # big models TensorFlow cannot (memory errors marked as '-').
    for row in table:
        tf, pt = row["TensorFlow (s)"], row["PyTorch (s)"]
        assert pt is not None
        if tf is not None:
            assert tf < pt
    assert table.row("AlexNet")["TensorFlow (s)"] is None
    assert table.row("VGG16")["TensorFlow (s)"] is None
