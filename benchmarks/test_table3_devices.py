"""Bench: regenerate Table III (device specs + measured power)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="tables")
def test_table3_devices(benchmark):
    table = run_and_report(benchmark, "table3")
    for row in table:
        assert row["idle_w"] == pytest.approx(row["paper_idle_w"], rel=0.05)
        assert row["average_w"] == pytest.approx(row["paper_average_w"], rel=0.05)
