"""Bench: regenerate Figure 4 (Jetson TX2 cross-framework latency)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig04_tx2_frameworks(benchmark):
    table = run_and_report(benchmark, "fig04")
    for row in table:
        # PyTorch fastest on the GPU platform (Section VI-B1).
        others = [row[c] for c in table.columns
                  if not c.startswith("PyTorch") and row[c] is not None]
        assert all(row["PyTorch (ms)"] < other for other in others), row.label
    # Caffe beats TensorFlow except on depthwise-separable models, where
    # its CUDA grouped-conv loop collapses (the paper calls out
    # MobileNet-v2; Xception shares the same kernel path).
    depthwise_models = ("MobileNet-v2", "Xception")
    for row in table:
        if row["Caffe (ms)"] is None or row["TensorFlow (ms)"] is None:
            continue
        if row.label in depthwise_models:
            assert row["Caffe (ms)"] > row["TensorFlow (ms)"]
        else:
            assert row["Caffe (ms)"] < row["TensorFlow (ms)"]
