"""Bench: the six extension experiments (beyond the paper's figures)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="extensions")
def test_ext_batch_crossover(benchmark):
    table = run_and_report(benchmark, "ext-batch")
    tx2, xeon = table.row("Jetson TX2"), table.row("Xeon E5-2696 v4")
    assert xeon["batch 1"] > tx2["batch 1"]
    assert xeon["batch 64"] < tx2["batch 64"]


@pytest.mark.benchmark(group="extensions")
def test_ext_pruning_exploitation(benchmark):
    table = run_and_report(benchmark, "ext-pruning")
    assert table.row("TFLite")["90% sparse"] < table.row("TFLite")["0% sparse"]
    assert table.row("Caffe")["90% sparse"] == pytest.approx(
        table.row("Caffe")["0% sparse"], rel=1e-6)


@pytest.mark.benchmark(group="extensions")
def test_ext_dtype_sensitivity(benchmark):
    table = run_and_report(benchmark, "ext-dtype")
    latencies = {row.label: row["latency_ms"] for row in table}
    assert latencies["fp16"] < latencies["fp32"]


@pytest.mark.benchmark(group="extensions")
def test_ext_rnn_models(benchmark):
    table = run_and_report(benchmark, "ext-rnn")
    fractions = [row["peak_fraction"] for row in table if row["peak_fraction"]]
    assert all(f < 0.1 for f in fractions)


@pytest.mark.benchmark(group="extensions")
def test_ext_sustained_throughput(benchmark):
    table = run_and_report(benchmark, "ext-sustained")
    assert table.row("Raspberry Pi 3B")["outcome"] == "shutdown"
    assert table.row("Raspberry Pi 3B (DVFS)")["outcome"] == "throttled"


@pytest.mark.benchmark(group="extensions")
def test_ext_pareto_frontier(benchmark):
    table = run_and_report(benchmark, "ext-pareto")
    assert {row["device"] for row in table} >= {"EdgeTPU", "Movidius NCS"}


@pytest.mark.benchmark(group="extensions")
def test_ext_cloud_edge_split(benchmark):
    table = run_and_report(benchmark, "ext-split")
    assert set(table.column("decision")) == {"offload all", "stay local", "split"}


@pytest.mark.benchmark(group="extensions")
def test_ext_collaborative_pipeline(benchmark):
    table = run_and_report(benchmark, "ext-pipeline")
    fps = table.column("throughput_fps")
    assert fps[2] > 2 * fps[0] * 0.9  # near-2.4x by three devices


@pytest.mark.benchmark(group="extensions")
def test_ext_serving_deadlines(benchmark):
    table = run_and_report(benchmark, "ext-serving")
    assert not table.row("Raspberry Pi 3B")["meets_150ms"]
    assert table.row("EdgeTPU")["meets_150ms"]


@pytest.mark.benchmark(group="extensions")
def test_ext_batch_serving(benchmark):
    table = run_and_report(benchmark, "ext-batch-serving")
    row = table.row("400 req/s")
    assert row["p99_ms_batch32"] < row["p99_ms_batch1"] / 100


@pytest.mark.benchmark(group="extensions")
def test_ext_power_modes(benchmark):
    table = run_and_report(benchmark, "ext-power-modes")
    assert (table.row("Jetson TX2 @ Max-Q")["power_w"]
            < table.row("Jetson TX2 @ Max-N")["power_w"])
