"""Bench: regenerate Figure 6 (GTX Titan X: TensorFlow vs PyTorch)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig06_gtx_tf_vs_pytorch(benchmark):
    table = run_and_report(benchmark, "fig06")
    # Shape: PyTorch faster than TensorFlow on the HPC GPU, every model.
    for row in table:
        assert row["speedup"] > 1.0, row.label
    # ... by a believable margin (the paper's bars sit between ~1.2 and 2.5x).
    speedups = table.column("speedup")
    assert 1.1 < sum(speedups) / len(speedups) < 3.0
