"""Bench: regenerate Figure 13 (bare metal vs Docker on RPi)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig13_virtualization(benchmark):
    table = run_and_report(benchmark, "fig13")
    # Paper: overhead "almost negligible, within 5%, in all cases".
    for row in table:
        assert 0 <= row["slowdown"] <= 0.05 + 1e-9, row.label
    # Longer-running models amortize the fixed syscall tax.
    assert (table.row("Inception-v4")["slowdown"]
            <= table.row("ResNet-18")["slowdown"])
