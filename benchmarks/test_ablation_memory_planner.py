"""Ablation 3 (DESIGN.md): memory planner with dynamic-graph fallback.

Give the Raspberry Pi infinite memory and show Table V's diamond column
evaporates: every RPi failure/fallback in the paper is a memory-planner
phenomenon, not a kernel one.
"""

import dataclasses

import pytest

from repro.core.errors import OutOfMemoryError
from repro.core.quantity import GIBI
from repro.engine import InferenceSession
from repro.frameworks import load_framework
from repro.hardware import load_device
from repro.models import load_model

DIAMOND_MODELS = ("AlexNet", "VGG16", "C3D")


@pytest.mark.benchmark(group="ablations")
def test_ablation_memory_planner(benchmark):
    def run():
        rpi = load_device("Raspberry Pi 3B")
        big_rpi = dataclasses.replace(
            rpi, memory=dataclasses.replace(rpi.memory, capacity_bytes=64 * GIBI))
        outcomes = {}
        for model_name in DIAMOND_MODELS:
            # Real RPi: TensorFlow OOMs, PyTorch pages.
            try:
                load_framework("TensorFlow").deploy(load_model(model_name), rpi)
                tf_outcome = "resident"
            except OutOfMemoryError:
                tf_outcome = "oom"
            pt_real = load_framework("PyTorch").deploy(load_model(model_name), rpi)
            pt_big = load_framework("PyTorch").deploy(load_model(model_name), big_rpi)
            outcomes[model_name] = {
                "tf_real": tf_outcome,
                "pt_real_mode": pt_real.storage_mode,
                "pt_big_mode": pt_big.storage_mode,
                "pt_real_latency": InferenceSession(pt_real).latency_s,
                "pt_big_latency": InferenceSession(pt_big).latency_s,
            }
        return outcomes

    outcomes = benchmark(run)
    print()
    for model_name, entry in outcomes.items():
        print(f"{model_name:8s}: real RPi TF={entry['tf_real']}, "
              f"PyTorch {entry['pt_real_mode']} {entry['pt_real_latency']:.1f} s; "
              f"infinite-memory RPi {entry['pt_big_mode']} "
              f"{entry['pt_big_latency']:.1f} s")
        assert entry["tf_real"] == "oom"
        assert entry["pt_real_mode"] == "paged"
        assert entry["pt_big_mode"] == "resident"
        assert entry["pt_big_latency"] < entry["pt_real_latency"]
