"""Bench: regenerate Figure 11 (energy per inference, log scale)."""

import pytest

from benchmarks.conftest import run_and_report


@pytest.mark.benchmark(group="figures")
def test_fig11_energy(benchmark):
    table = run_and_report(benchmark, "fig11")
    # Paper's ordering: RPi worst; edge accelerators down to ~11 mJ.
    rpi = table.row("Raspberry Pi 3B / ResNet-18")["energy_mj"]
    for device in ("Jetson TX2", "Jetson Nano", "Movidius NCS", "EdgeTPU"):
        row = table.row(f"{device} / ResNet-18")
        if row["energy_mj"] is not None:
            assert rpi > row["energy_mj"], device
    assert table.row("EdgeTPU / MobileNet-v2")["energy_mj"] < 20
    # Where the paper's prose gives values, stay within ~3x.
    for row in table:
        if row["paper_mj"] is None or row["energy_mj"] is None:
            continue
        assert 1 / 3 < row["energy_mj"] / row["paper_mj"] < 3, row.label
