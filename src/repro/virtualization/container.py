"""Docker-style container overhead (Section VI-D).

Virtualization costs come from system-call translation and environment
isolation: a fixed per-inference tax (namespace/cgroup bookkeeping around
the I/O each inference performs) plus a small proportional tax on
user-space time.  Both are tiny, which reproduces the paper's finding that
the slowdown stays within 5% — "contrary to popular belief".

Containerized runs are normally described declaratively — set
``containerized=True`` on a :class:`repro.runtime.Scenario` and the Runner
wraps the session in :data:`DEFAULT_CONTAINER`; construct a
:class:`Container` directly only to model a non-default runtime profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantity import Seconds
from repro.engine.executor import InferenceSession

MAX_OVERHEAD_FRACTION = 0.05


@dataclass(frozen=True)
class Container:
    """A container runtime profile.

    Attributes:
        fixed_tax_s: per-inference syscall-translation cost at reference-core
            speed (scaled by the device's CPU slowness like all bookkeeping).
        proportional_tax: fraction added to user-space execution time.
    """

    name: str = "docker"
    fixed_tax_s: float = 1.2e-3
    proportional_tax: float = 0.012

    def wrap(self, session: InferenceSession) -> "ContainerizedSession":
        return ContainerizedSession(container=self, session=session)

    def taxed_latency_s(self, bare_s: float, cpu_scale: float) -> float:
        """The taxed latency for a bare-metal latency (compiled-grid path)."""
        fixed = self.fixed_tax_s * cpu_scale
        taxed = bare_s * (1.0 + self.proportional_tax) + fixed
        return min(taxed, bare_s * (1.0 + MAX_OVERHEAD_FRACTION))


@dataclass
class ContainerizedSession:
    """An inference session running inside a container."""

    container: Container
    session: InferenceSession

    @property
    def latency_s(self) -> float:
        return self.container.taxed_latency_s(self.session.latency_s,
                                              self.session.deployed.cpu_scale)

    @property
    def overhead_fraction(self) -> float:
        bare = self.session.latency_s
        return (self.latency_s - bare) / bare

    @property
    def utilization(self) -> float:
        return self.session.utilization

    @property
    def init_time_s(self) -> float:
        # Image start-up adds seconds, but like bare-metal init it sits
        # outside the timed loop.
        return self.session.init_time_s + 2.0

    def run(self, n_inferences: int) -> list[Seconds]:
        return [Seconds(self.latency_s)] * n_inferences

    @property
    def deployed(self):
        return self.session.deployed

    @property
    def plan(self):
        """The underlying bare-metal execution plan (the container adds no ops)."""
        return self.session.plan

    def describe(self) -> str:
        return (f"{self.session.describe()} "
                f"[{self.container.name}: +{self.overhead_fraction:.1%}]")


# The profile Runner uses for ``Scenario(containerized=True)`` cells.
DEFAULT_CONTAINER = Container()
