"""Container virtualization overhead model (Section VI-D, Figure 13)."""

from repro.virtualization.container import Container, ContainerizedSession

__all__ = ["Container", "ContainerizedSession"]
