"""Power instruments (Section V).

Two meters, matching the paper's bench:

* :class:`USBMultimeter` — for USB-powered devices; records voltage and
  current once per second with accuracies of +/-(0.05% + 2 digits) and
  +/-(0.1% + 4 digits) respectively.
* :class:`PowerAnalyzer` — for outlet-powered devices; +/-0.005 W.

Both sample a caller-provided ``power_fn(t) -> watts`` so the same
instrument can watch an idle device, an inference loop, or a thermal
soak run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

USB_VOLTAGE = 5.0
VOLTAGE_DIGIT = 0.01  # last display digit of the voltage readout (V)
CURRENT_DIGIT = 0.001  # last display digit of the current readout (A)


@dataclass(frozen=True)
class PowerSample:
    time_s: float
    power_w: float


class USBMultimeter:
    """UM25C-style USB power meter: 1 Hz sampling, datasheet accuracy."""

    sample_interval_s = 1.0

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def sample(self, true_power_w: float, time_s: float = 0.0) -> PowerSample:
        """One reading: voltage and current measured independently."""
        if true_power_w < 0:
            raise ValueError(f"power cannot be negative, got {true_power_w}")
        true_current = true_power_w / USB_VOLTAGE
        voltage = self._read(USB_VOLTAGE, relative=0.0005, digits=2 * VOLTAGE_DIGIT)
        current = self._read(true_current, relative=0.001, digits=4 * CURRENT_DIGIT)
        return PowerSample(time_s=time_s, power_w=voltage * current)

    def record(self, power_fn: Callable[[float], float], duration_s: float) -> list[PowerSample]:
        """Sample ``power_fn`` once per second for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        times = np.arange(0.0, duration_s, self.sample_interval_s)
        return [self.sample(power_fn(float(t)), float(t)) for t in times]

    def _read(self, true_value: float, relative: float, digits: float) -> float:
        """Datasheet accuracy: +/-(relative% of reading + N digits)."""
        bound = abs(true_value) * relative + digits
        return true_value + self._rng.uniform(-bound, bound)


class PowerAnalyzer:
    """Outlet power analyzer: +/-0.005 W accuracy, 10 Hz sampling."""

    sample_interval_s = 0.1
    accuracy_w = 0.005

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def sample(self, true_power_w: float, time_s: float = 0.0) -> PowerSample:
        if true_power_w < 0:
            raise ValueError(f"power cannot be negative, got {true_power_w}")
        noise = self._rng.uniform(-self.accuracy_w, self.accuracy_w)
        return PowerSample(time_s=time_s, power_w=true_power_w + noise)

    def record(self, power_fn: Callable[[float], float], duration_s: float) -> list[PowerSample]:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        times = np.arange(0.0, duration_s, self.sample_interval_s)
        return [self.sample(power_fn(float(t)), float(t)) for t in times]


def average_power_w(samples: list[PowerSample]) -> float:
    """Mean power over a recording."""
    if not samples:
        raise ValueError("cannot average an empty recording")
    return float(np.mean([s.power_w for s in samples]))
