"""Energy-per-inference measurement (Section VI-E, Figure 11).

The paper computes energy as measured device power (total draw, including
idle) integrated over the inference loop, divided by the number of
inferences — total watts times latency reproduces every Figure 11 point
(e.g. EdgeTPU MobileNet-v2: 2.9 ms x 4.14 W = 12 mJ vs the reported
11 mJ).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import Measurement
from repro.engine.executor import InferenceSession
from repro.measurement.power_meter import PowerAnalyzer, USBMultimeter, average_power_w

# Devices the paper powers over USB use the multimeter; others the analyzer.
USB_POWERED = ("Raspberry Pi 3B", "EdgeTPU", "Movidius NCS")


@dataclass
class EnergyMeter:
    """Pairs a power instrument with the timing loop."""

    seed: int = 0

    def instrument_for(self, device_name: str):
        if device_name in USB_POWERED:
            return USBMultimeter(seed=self.seed)
        return PowerAnalyzer(seed=self.seed)

    def measure(self, session: InferenceSession, loop_seconds: float = 30.0) -> Measurement:
        """Energy per inference (joules) over a recorded power trace."""
        device = session.deployed.device
        true_power = device.power.power(session.utilization)
        meter = self.instrument_for(device.name)
        samples = meter.record(lambda _t: true_power, loop_seconds)
        mean_power = average_power_w(samples)
        inferences = loop_seconds / session.latency_s
        energy_per_inference = mean_power * loop_seconds / inferences
        return Measurement(
            value=energy_per_inference,
            unit="J",
            samples=len(samples),
        )


def measure_energy_per_inference(session: InferenceSession, seed: int = 0) -> Measurement:
    """Convenience wrapper: one EnergyMeter measurement with defaults."""
    return EnergyMeter(seed=seed).measure(session)


def active_power_w(session: InferenceSession) -> float:
    """Device draw while inferencing — the x-axis of Figure 12."""
    device = session.deployed.device
    return device.power.power(session.utilization)
