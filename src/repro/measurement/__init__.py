"""Measurement instruments and methodology (Section V).

Simulated equivalents of the paper's bench equipment: the timing loop that
runs 200-1000 single-batch inferences and excludes initialization, the USB
digital multimeter and outlet power analyzer with their stated accuracies,
the energy integration, and the FLIR One thermal camera.
"""

from repro.measurement.energy import EnergyMeter, measure_energy_per_inference
from repro.measurement.power_meter import PowerAnalyzer, PowerSample, USBMultimeter
from repro.measurement.thermal_camera import ThermalCamera, ThermalReading
from repro.measurement.timer import InferenceTimer, choose_run_count

__all__ = [
    "EnergyMeter",
    "InferenceTimer",
    "PowerAnalyzer",
    "PowerSample",
    "ThermalCamera",
    "ThermalReading",
    "USBMultimeter",
    "choose_run_count",
    "measure_energy_per_inference",
]
