"""FLIR One thermal camera model (Section V, Figure 14).

The camera sees the *surface* of the processor (or heatsink), which sits
5-10 degC below the in-package junction; readings carry the small absolute
error of a consumer microbolometer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.thermal import ThermalSimulator


@dataclass(frozen=True)
class ThermalReading:
    time_s: float
    surface_c: float


class ThermalCamera:
    """Consumer thermal camera: +/-0.3 degC repeatability."""

    repeatability_c = 0.3

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def read(self, simulator: ThermalSimulator) -> ThermalReading:
        noise = self._rng.uniform(-self.repeatability_c, self.repeatability_c)
        return ThermalReading(
            time_s=simulator.time_s,
            surface_c=simulator.surface_temperature_c + noise,
        )

    def record_soak(self, simulator: ThermalSimulator, power_w: float,
                    dt_s: float = 5.0, max_time_s: float = 3600.0) -> list[ThermalReading]:
        """Watch a device soak at constant power until steady state.

        Mirrors the paper's methodology: "each experiment runs until the
        temperature reaches steady-state in the room temperature".
        """
        readings = [self.read(simulator)]
        tolerance_c = 0.02
        while simulator.time_s < max_time_s:
            before = simulator.temperature_c
            simulator.step(power_w, dt_s)
            readings.append(self.read(simulator))
            if simulator.shutdown:
                break
            if abs(simulator.temperature_c - before) < tolerance_c:
                break
        return readings
