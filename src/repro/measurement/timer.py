"""The paper's timing methodology (Section V).

Execution time is measured by running several single-batch inferences in a
loop (200-1000 runs), excluding all initialization (library load, model
build, weight load) as a one-time device-setup cost.  Run-to-run jitter is
modelled as a small lognormal perturbation — DVFS and scheduler noise —
seeded explicitly for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import Measurement
from repro.engine.executor import InferenceSession

MIN_RUNS = 200
MAX_RUNS = 1000
# Target wall time for one timing loop; the paper sizes run counts so slow
# devices still finish (200 runs of a 16 s VGG16 would take 55 minutes).
TARGET_LOOP_SECONDS = 60.0
DEFAULT_JITTER_FRACTION = 0.02


def choose_run_count(latency_s: float) -> int:
    """Pick the run count the paper's loop would use for this latency."""
    if latency_s <= 0:
        raise ValueError(f"latency must be positive, got {latency_s}")
    by_budget = int(TARGET_LOOP_SECONDS / latency_s)
    return max(MIN_RUNS, min(MAX_RUNS, by_budget))


@dataclass
class InferenceTimer:
    """Times an :class:`InferenceSession` the way the paper does.

    Attributes:
        jitter_fraction: relative standard deviation of run-to-run noise.
        seed: RNG seed; identical seeds give identical measurements.
    """

    jitter_fraction: float = DEFAULT_JITTER_FRACTION
    seed: int = 0

    def measure(self, session: InferenceSession, n_runs: int | None = None) -> Measurement:
        """Run the timing loop and summarize it as a Measurement (seconds)."""
        return self.measure_latency(session.latency_s, n_runs)

    def measure_latency(self, latency_s: float, n_runs: int | None = None) -> Measurement:
        """Apply the timing loop to a bare latency (the compiled-grid path).

        Sessions run deterministically — every simulated inference takes
        ``session.latency_s`` — so the loop only needs the latency itself.
        ``np.full`` here is bit-identical to materializing the session's
        per-run list.
        """
        if n_runs is None:
            n_runs = choose_run_count(latency_s)
        if n_runs <= 0:
            raise ValueError(f"n_runs must be positive, got {n_runs}")
        rng = np.random.default_rng(self.seed)
        base = np.full(n_runs, float(latency_s))
        noisy = base * rng.lognormal(
            mean=0.0, sigma=self.jitter_fraction, size=n_runs
        )
        return Measurement.from_samples(noisy.tolist(), unit="s")

    def measure_with_init(self, session: InferenceSession, n_runs: int | None = None,
                          ) -> tuple[float, Measurement]:
        """Return (one-time init seconds, steady-state Measurement)."""
        return session.init_time_s, self.measure(session, n_runs)
