"""Pareto-frontier extraction for the Figure 12 scatter — and beyond.

The paper reads its time-vs-power plot qualitatively ("Movidius is the
platform with the lowest active power usage ... EdgeTPU is the platform
with the lowest inference time ... Jetson Nano resides in the middle").
This module makes that reading precise: which (platform, model) points are
non-dominated in (latency, power)?

The placement optimizer generalizes the question to N minimized axes —
(latency, energy, cost) deployments — so :func:`frontier_indices` extracts
the non-dominated subset of arbitrary objective tuples; the classic
two-axis :class:`ParetoPoint` API is the N=2 special case and is kept
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate configuration in the latency-power plane."""

    label: str
    latency_s: float
    power_w: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both axes and strictly
        better on at least one."""
        no_worse = (self.latency_s <= other.latency_s and self.power_w <= other.power_w)
        strictly = (self.latency_s < other.latency_s or self.power_w < other.power_w)
        return no_worse and strictly


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by latency (ascending)."""
    candidates = list(points)
    if not candidates:
        return []
    frontier = [
        point for point in candidates
        if not any(other.dominates(point) for other in candidates)
    ]
    return sorted(frontier, key=lambda p: (p.latency_s, p.power_w))


def dominated_by(point: ParetoPoint, points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Every point that dominates ``point`` — the 'why is this off the
    frontier' explanation."""
    return [other for other in points if other.dominates(point)]


# -- N-dimensional frontier ---------------------------------------------------

def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Minimize-all dominance: ``a`` no worse on every axis, strictly
    better on at least one."""
    if len(a) != len(b):
        raise ValueError(f"objective arity mismatch: {len(a)} vs {len(b)}")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly = any(x < y for x, y in zip(a, b))
    return no_worse and strictly


def frontier_indices(objectives: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated objective tuples, in input order.

    Every axis is minimized.  Duplicated tuples are all kept (neither
    strictly beats the other), so callers dedup by identity first if they
    want a set-like frontier.
    """
    rows = [tuple(row) for row in objectives]
    return [index for index, row in enumerate(rows)
            if not any(dominates(other, row) for other in rows)]


def frontier_points(objectives: Sequence[Sequence[float]]) -> list[tuple[float, ...]]:
    """The non-dominated objective tuples themselves, sorted ascending."""
    rows = [tuple(row) for row in objectives]
    return sorted(rows[index] for index in frontier_indices(rows))
