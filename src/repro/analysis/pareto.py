"""Pareto-frontier extraction for the Figure 12 scatter.

The paper reads its time-vs-power plot qualitatively ("Movidius is the
platform with the lowest active power usage ... EdgeTPU is the platform
with the lowest inference time ... Jetson Nano resides in the middle").
This module makes that reading precise: which (platform, model) points are
non-dominated in (latency, power)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate configuration in the latency-power plane."""

    label: str
    latency_s: float
    power_w: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both axes and strictly
        better on at least one."""
        no_worse = (self.latency_s <= other.latency_s and self.power_w <= other.power_w)
        strictly = (self.latency_s < other.latency_s or self.power_w < other.power_w)
        return no_worse and strictly


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by latency (ascending)."""
    candidates = list(points)
    if not candidates:
        return []
    frontier = [
        point for point in candidates
        if not any(other.dominates(point) for other in candidates)
    ]
    return sorted(frontier, key=lambda p: (p.latency_s, p.power_w))


def dominated_by(point: ParetoPoint, points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Every point that dominates ``point`` — the 'why is this off the
    frontier' explanation."""
    return [other for other in points if other.dominates(point)]
