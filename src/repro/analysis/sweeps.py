"""Parameter sweeps: batch size, weight sparsity, and datatype.

Each sweep returns a :class:`ResultTable` in the harness format, so the
extension benchmarks and examples render them like the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ReproError
from repro.core.result import ResultTable
from repro.engine.executor import EngineConfig, InferenceSession
from repro.frameworks import load_framework
from repro.graphs.tensor import DType
from repro.graphs.transforms import prune_graph
from repro.hardware import load_device
from repro.models import load_model

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64)


def batch_size_sweep(
    model_name: str,
    device_names: Sequence[str],
    framework_name: str = "PyTorch",
    batches: Sequence[int] = DEFAULT_BATCHES,
) -> ResultTable:
    """Per-inference latency vs batch size across devices.

    Quantifies Section VI-C's thesis: HPC platforms are throughput
    machines — their advantage over edge devices grows with batch size,
    and the single-batch regime is where edge silicon competes.
    """
    table = ResultTable(
        f"Extension: per-inference latency (ms) of {model_name} vs batch size",
        [f"batch {b}" for b in batches],
        caption="'-' marks batches whose activations exceed device memory.",
    )
    framework = load_framework(framework_name)
    for device_name in device_names:
        deployed = framework.deploy(load_model(model_name), load_device(device_name))
        cells = {}
        for batch in batches:
            try:
                session = InferenceSession(deployed, config=EngineConfig(batch_size=batch))
            except ReproError:
                cells[f"batch {batch}"] = None
                continue
            cells[f"batch {batch}"] = session.latency_s * 1e3
        table.add_row(device_name, **cells)
    return table


def sparsity_sweep(
    model_name: str,
    device_name: str,
    framework_names: Sequence[str] = ("TensorFlow", "PyTorch"),
    sparsities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
) -> ResultTable:
    """Latency vs weight sparsity per framework.

    Table II's pruning row in action: every framework stores a pruned
    model, but only the exploiters (TensorFlow, TFLite, TensorRT) convert
    sparsity into speed.
    """
    table = ResultTable(
        f"Extension: {model_name} on {device_name}, latency (ms) vs pruned sparsity",
        [f"{s:.0%} sparse" for s in sparsities],
        caption="Frameworks without sparse kernels stay flat across the row "
        "(Table II, 'Pruning').",
    )
    device = load_device(device_name)
    for framework_name in framework_names:
        framework = load_framework(framework_name)
        cells = {}
        for sparsity in sparsities:
            graph = prune_graph(load_model(model_name), sparsity)
            try:
                deployed = framework.deploy(graph, device)
            except ReproError:
                cells[f"{sparsity:.0%} sparse"] = None
                continue
            cells[f"{sparsity:.0%} sparse"] = InferenceSession(deployed).latency_s * 1e3
        table.add_row(framework_name, **cells)
    return table


def dtype_sweep(
    model_name: str,
    device_name: str,
    framework_name: str,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16, DType.INT8),
) -> ResultTable:
    """Latency and weight footprint per deployment datatype."""
    table = ResultTable(
        f"Extension: {model_name} on {device_name} via {framework_name}, per datatype",
        ["latency_ms", "weights_mib"],
    )
    framework = load_framework(framework_name)
    device = load_device(device_name)
    for dtype in dtypes:
        try:
            deployed = framework.deploy(load_model(model_name), device, dtype=dtype)
        except ReproError:
            table.add_row(dtype.value, latency_ms=None, weights_mib=None)
            continue
        session = InferenceSession(deployed)
        table.add_row(
            dtype.value,
            latency_ms=session.latency_s * 1e3,
            weights_mib=deployed.graph.weight_bytes() / 2**20,
        )
    return table
