"""Parameter sweeps: batch size, weight sparsity, and datatype.

Each sweep returns a :class:`ResultTable` in the harness format, so the
extension benchmarks and examples render them like the paper's figures.
All cells run through the shared :class:`repro.runtime.Runner`, so
deployment failures arrive as failure records (rendered "-") and every
deployment shares the engine memo cache.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.quantity import MEBI
from repro.core.result import ResultTable
from repro.graphs.tensor import DType
from repro.graphs.transforms import prune_graph
from repro.models import load_model
from repro.runtime import Scenario, default_runner

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64)

_RUNNER = default_runner()


def batch_size_sweep(
    model_name: str,
    device_names: Sequence[str],
    framework_name: str = "PyTorch",
    batches: Sequence[int] = DEFAULT_BATCHES,
) -> ResultTable:
    """Per-inference latency vs batch size across devices.

    Quantifies Section VI-C's thesis: HPC platforms are throughput
    machines — their advantage over edge devices grows with batch size,
    and the single-batch regime is where edge silicon competes.
    """
    table = ResultTable(
        f"Extension: per-inference latency (ms) of {model_name} vs batch size",
        [f"batch {b}" for b in batches],
        caption="'-' marks batches whose activations exceed device memory.",
    )
    for device_name in device_names:
        cells = {}
        for batch in batches:
            record = _RUNNER.run(
                Scenario(model_name, device_name, framework_name, batch_size=batch),
                use_timer=False)
            cells[f"batch {batch}"] = (
                None if record.failed else record.model_latency_s * 1e3)
        table.add_row(device_name, **cells)
    return table


def sparsity_sweep(
    model_name: str,
    device_name: str,
    framework_names: Sequence[str] = ("TensorFlow", "PyTorch"),
    sparsities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
) -> ResultTable:
    """Latency vs weight sparsity per framework.

    Table II's pruning row in action: every framework stores a pruned
    model, but only the exploiters (TensorFlow, TFLite, TensorRT) convert
    sparsity into speed.  Pruned graphs are explicit inputs, so these
    deployments bypass the memo cache by construction.
    """
    table = ResultTable(
        f"Extension: {model_name} on {device_name}, latency (ms) vs pruned sparsity",
        [f"{s:.0%} sparse" for s in sparsities],
        caption="Frameworks without sparse kernels stay flat across the row "
        "(Table II, 'Pruning').",
    )
    # prune_graph and deploy both clone their input, so one source graph and
    # one pruned graph per sparsity can be shared across every framework.
    source = load_model(model_name)
    pruned = {sparsity: prune_graph(source, sparsity) for sparsity in sparsities}
    for framework_name in framework_names:
        cells = {}
        for sparsity in sparsities:
            graph = pruned[sparsity]
            record = _RUNNER.run(
                Scenario(model_name, device_name, framework_name),
                use_timer=False, graph=graph)
            cells[f"{sparsity:.0%} sparse"] = (
                None if record.failed else record.model_latency_s * 1e3)
        table.add_row(framework_name, **cells)
    return table


def dtype_sweep(
    model_name: str,
    device_name: str,
    framework_name: str,
    dtypes: Sequence[DType] = (DType.FP32, DType.FP16, DType.INT8),
) -> ResultTable:
    """Latency and weight footprint per deployment datatype."""
    table = ResultTable(
        f"Extension: {model_name} on {device_name} via {framework_name}, per datatype",
        ["latency_ms", "weights_mib"],
    )
    for dtype in dtypes:
        record = _RUNNER.run(
            Scenario(model_name, device_name, framework_name, dtype=dtype),
            use_timer=False)
        if record.failed:
            table.add_row(dtype.value, latency_ms=None, weights_mib=None)
            continue
        table.add_row(
            dtype.value,
            latency_ms=record.model_latency_s * 1e3,
            weights_mib=record.plan.weight_bytes / MEBI,
        )
    return table
