"""Thermally-aware sustained throughput.

Figure 14 shows temperature behaviour; this extension closes the loop:
clock throttling (and the Raspberry Pi's shutdown) feed back into the
achieved inference rate.  The simulation advances the lumped-RC thermal
model while the device runs back-to-back inferences, slowing down whenever
DVFS throttles, and reports burst vs sustained performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import InferenceSession

# Clock factors at or below this floor mean the device is off (thermal
# shutdown reports exactly 0.0; real throttle factors are orders larger).
_MIN_CLOCK_FACTOR = 1e-9


@dataclass
class SustainedResult:
    """Outcome of a thermal soak under continuous inference."""

    device: str
    model: str
    burst_latency_s: float
    sustained_latency_s: float
    completed_inferences: int
    duration_s: float
    shutdown: bool
    shutdown_time_s: float | None
    throttle_events: int
    trace: list[tuple[float, float, float]] = field(default_factory=list)
    # trace rows: (time_s, junction_c, instantaneous_latency_s)

    @property
    def burst_fps(self) -> float:
        return 1.0 / self.burst_latency_s

    @property
    def sustained_fps(self) -> float:
        if self.shutdown:
            return 0.0
        return 1.0 / self.sustained_latency_s

    @property
    def slowdown(self) -> float:
        """Sustained over burst latency; 1.0 means no thermal impact."""
        return self.sustained_latency_s / self.burst_latency_s


def simulate_sustained(
    session: InferenceSession,
    duration_s: float = 1800.0,
    dt_s: float = 5.0,
    ambient_c: float | None = None,
) -> SustainedResult:
    """Run ``session`` back-to-back for ``duration_s`` under the device's
    thermal model.

    Throttling stretches latency by ``1 / clock_factor`` (compute-bound
    assumption — conservative for memory-bound models) and proportionally
    reduces the dynamic power component.  A shutdown ends the run.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    device = session.deployed.device
    simulator = device.thermal_simulator(ambient_c)
    simulator.temperature_c = device.thermal.steady_state_c(
        device.power.idle_w, simulator.ambient_c)

    base_latency = session.latency_s
    utilization = session.utilization
    completed = 0.0
    throttle_events = 0
    shutdown_time: float | None = None
    trace: list[tuple[float, float, float]] = []
    last_latency = base_latency

    while simulator.time_s < duration_s:
        clock = simulator.clock_factor
        if clock < _MIN_CLOCK_FACTOR:
            break
        latency = base_latency / clock
        power = device.power.idle_w + (
            device.power.power(utilization) - device.power.idle_w
        ) * clock
        was_throttled = simulator.throttled
        simulator.step(power, dt_s)
        if simulator.throttled and not was_throttled:
            throttle_events += 1
        if simulator.shutdown and shutdown_time is None:
            shutdown_time = simulator.time_s
        completed += dt_s / latency
        last_latency = latency
        trace.append((simulator.time_s, simulator.temperature_c, latency))

    return SustainedResult(
        device=device.name,
        model=session.deployed.graph.name,
        burst_latency_s=base_latency,
        sustained_latency_s=last_latency,
        completed_inferences=int(completed),
        duration_s=min(simulator.time_s, duration_s),
        shutdown=simulator.shutdown,
        shutdown_time_s=shutdown_time,
        throttle_events=throttle_events,
        trace=trace,
    )
