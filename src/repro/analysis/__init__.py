"""Higher-level analyses built on the engine.

Extensions beyond the paper's published figures: batch-size crossover
studies (the single- vs multi-batch argument of Section VI-C made
quantitative), pruning/quantization sensitivity (the Table II optimization
rows exercised), Pareto-frontier extraction for Figure 12, and
thermally-aware sustained-throughput simulation (Figure 14 turned into a
performance number).
"""

from repro.analysis.advisor import (
    Recommendation,
    Requirements,
    best_deployment,
    recommend_deployments,
    recommend_placements,
)
from repro.analysis.efficiency import energy_delay_metrics, energy_delay_table
from repro.analysis.pareto import (
    ParetoPoint,
    frontier_indices,
    frontier_points,
    pareto_frontier,
)
from repro.analysis.sustained import SustainedResult, simulate_sustained
from repro.analysis.sweeps import batch_size_sweep, dtype_sweep, sparsity_sweep

__all__ = [
    "ParetoPoint",
    "Recommendation",
    "Requirements",
    "SustainedResult",
    "best_deployment",
    "recommend_deployments",
    "recommend_placements",
    "batch_size_sweep",
    "dtype_sweep",
    "energy_delay_metrics",
    "energy_delay_table",
    "frontier_indices",
    "frontier_points",
    "pareto_frontier",
    "simulate_sustained",
    "sparsity_sweep",
]
