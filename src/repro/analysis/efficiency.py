"""Energy-delay metrics.

Figure 12 plots time against power and leaves the reader to trade them
off; energy-delay product (EDP) and ED^2P are the standard scalarizations
of that trade-off (delay-emphasis for latency-critical deployments).
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.core.result import ResultTable
from repro.engine.executor import InferenceSession
from repro.measurement.energy import active_power_w


def energy_delay_metrics(session: InferenceSession) -> tuple[float, float, float]:
    """(energy J, EDP J*s, ED2P J*s^2) for one deployment."""
    delay = session.latency_s
    energy = active_power_w(session) * delay
    return energy, energy * delay, energy * delay * delay


def energy_delay_table(model_name: str, device_framework_pairs,
                       session_factory=None) -> ResultTable:
    """Rank deployments of one model by EDP.

    Args:
        model_name: zoo model to deploy everywhere.
        device_framework_pairs: iterable of (device, framework) names.
        session_factory: callable (model, device, framework) -> session;
            defaults to the runtime layer's ``Runner.session``.
    """
    if session_factory is None:
        from repro.runtime import Scenario, default_runner

        runner = default_runner()

        def session_factory(model, device, framework):
            return runner.session(Scenario(model, device, framework))

    table = ResultTable(
        f"Energy-delay ranking for {model_name}",
        ["framework", "latency_ms", "energy_mj", "edp_mj_ms", "ed2p"],
        caption="Sorted by EDP (energy x delay): the balanced-efficiency "
        "ranking of the Figure 12 plane.",
    )
    rows = []
    for device_name, framework_name in device_framework_pairs:
        try:
            session = session_factory(model_name, device_name, framework_name)
        except ReproError:
            continue
        energy, edp, ed2p = energy_delay_metrics(session)
        rows.append((edp, device_name, framework_name, session.latency_s, energy, ed2p))
    for edp, device_name, framework_name, latency, energy, ed2p in sorted(rows):
        table.add_row(
            device_name,
            framework=framework_name,
            latency_ms=latency * 1e3,
            energy_mj=energy * 1e3,
            edp_mj_ms=edp * 1e6,
            ed2p=ed2p,
        )
    return table
