"""Deployment advisor: the paper's conclusion, operationalized.

Section IX: "we hope that the following insights ... lead users to
knowingly choose their required package (i.e., a combination of framework
and platform) for a specific edge application."  The advisor searches the
(device, framework, operating point) space for one model under the user's
constraints and ranks the feasible deployments.  Every candidate runs
through the shared :class:`repro.runtime.Runner`, so the search space is a
list of scenarios and Table V failures are skipped as failure records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import list_operating_points
from repro.models import load_model
from repro.runtime import BEST_FRAMEWORK_CANDIDATES, Scenario, default_runner

EDGE_DEVICES = tuple(BEST_FRAMEWORK_CANDIDATES)

_RUNNER = default_runner()


@dataclass(frozen=True)
class Requirements:
    """Constraints a deployment must satisfy."""

    deadline_s: float | None = None
    power_budget_w: float | None = None
    energy_budget_j: float | None = None

    def check(self, latency_s: float, power_w: float,
              energy_j: float) -> tuple[bool, str]:
        """(feasible, reason-if-not)."""
        if self.deadline_s is not None and latency_s > self.deadline_s:
            return False, f"misses {self.deadline_s * 1e3:.0f} ms deadline"
        if self.power_budget_w is not None and power_w > self.power_budget_w:
            return False, f"exceeds {self.power_budget_w:.1f} W budget"
        if self.energy_budget_j is not None and energy_j > self.energy_budget_j:
            return False, f"exceeds {self.energy_budget_j * 1e3:.0f} mJ/inference"
        return True, ""


@dataclass(frozen=True)
class Recommendation:
    """One evaluated deployment."""

    device: str
    framework: str
    operating_point: str
    latency_s: float
    power_w: float
    energy_j: float
    feasible: bool
    reason: str = ""

    def describe(self) -> str:
        mode = f" @ {self.operating_point}" if self.operating_point != "default" else ""
        verdict = "OK" if self.feasible else f"rejected ({self.reason})"
        return (f"{self.device}{mode} via {self.framework}: "
                f"{self.latency_s * 1e3:.1f} ms, {self.power_w:.2f} W, "
                f"{self.energy_j * 1e3:.1f} mJ — {verdict}")


def recommend_deployments(
    model_name: str,
    requirements: Requirements,
    devices: tuple[str, ...] = EDGE_DEVICES,
    include_operating_points: bool = True,
) -> list[Recommendation]:
    """Evaluate the search space; feasible results first, by energy.

    Deployment failures (Table V territory) are silently skipped — they
    are not *rejections*, the configuration simply does not exist.
    """
    load_model(model_name)  # unknown models fail fast, before the sweep
    recommendations: list[Recommendation] = []
    for device_name in devices:
        points = list_operating_points(device_name)
        if not include_operating_points:
            points = points[:1]
        for point in points:
            for framework_name in BEST_FRAMEWORK_CANDIDATES.get(
                    device_name, ("PyTorch",)):
                record = _RUNNER.run(
                    Scenario(model_name, device_name, framework_name,
                             power_mode=point.name),
                    use_timer=False)
                if record.failed:
                    continue
                latency = record.model_latency_s
                power = record.power_w
                energy = power * latency
                feasible, reason = requirements.check(latency, power, energy)
                recommendations.append(Recommendation(
                    device=device_name,
                    framework=framework_name,
                    operating_point=point.name,
                    latency_s=latency,
                    power_w=power,
                    energy_j=energy,
                    feasible=feasible,
                    reason=reason,
                ))
    recommendations.sort(key=lambda r: (not r.feasible, r.energy_j))
    return recommendations


def best_deployment(model_name: str, requirements: Requirements,
                    **kwargs) -> Recommendation | None:
    """The lowest-energy feasible deployment, or None."""
    for recommendation in recommend_deployments(model_name, requirements, **kwargs):
        if recommendation.feasible:
            return recommendation
    return None


def recommend_placements(model_name: str, requirements: Requirements, *,
                         link: str = "wifi",
                         devices: tuple[str, ...] = EDGE_DEVICES,
                         remote_devices: tuple[str, ...] = (),
                         max_pipeline_depth: int = 3):
    """The multi-device counterpart of :func:`recommend_deployments`.

    Maps the advisor's :class:`Requirements` onto the placement
    optimizer's SLO and returns its
    :class:`~repro.placement.optimizer.PlacementFrontier`: single nodes,
    splits and pipelines ranked together.  (The power budget has no
    placement analogue — a multi-stage deployment has one draw per
    stage — so it maps to nothing; use the energy budget instead.)
    """
    # Imported lazily: repro.placement imports this package's pareto
    # module at import time, so a top-level import here would cycle.
    from repro.placement import SLO, search_placements

    slo = SLO(deadline_s=requirements.deadline_s,
              max_energy_j=requirements.energy_budget_j)
    return search_placements(
        model_name, edge_devices=devices, remote_devices=remote_devices,
        link=link, slo=slo, max_pipeline_depth=max_pipeline_depth,
        runner=_RUNNER)
