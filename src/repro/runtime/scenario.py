"""Scenario: the frozen description of one experiment cell.

A scenario names everything that determines a run's outcome: the model,
device and framework triple the paper sweeps, plus the deployment datatype,
batch size, DVFS power mode and whether the session runs inside a
container.  Its canonical key is the single source of truth for

* the deploy-cache key (``Scenario.deploy_key`` subsumes
  :func:`repro.engine.cache.deploy_key`), and
* the per-cell measurement seed (``Scenario.seed`` subsumes
  :func:`repro.harness.figures.measurement_seed`).

Both derive from :func:`repro.core.registry.canonical_name`, so aliases
("resnet18", "ResNet_18") describe the same cell and reproduce the exact
seed/key streams the harness has always used.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.core.registry import canonical_name
from repro.graphs.tensor import DType

DEFAULT_POWER_MODE = "default"


@dataclass(frozen=True)
class Scenario:
    """One deployable experiment cell, hashable and JSON-serializable.

    Attributes:
        model / device / framework: names as the user spells them; keys and
            seeds always canonicalize, so aliases are equivalent.
        dtype: deployment datatype, or None for the framework default.
        batch_size: inputs per invocation (1 = the paper's edge regime).
        power_mode: DVFS operating-point name ("default" = as shipped).
        containerized: run the session inside the Docker profile
            (Section VI-D) instead of bare metal.
    """

    model: str
    device: str
    framework: str
    dtype: DType | None = None
    batch_size: int = 1
    power_mode: str = DEFAULT_POWER_MODE
    containerized: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.dtype, str):
            object.__setattr__(self, "dtype", DType(self.dtype))
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    # -- canonical identity ------------------------------------------------
    @property
    def cell(self) -> tuple[str, str, str]:
        """The canonical (model, device, framework) triple."""
        return (
            canonical_name(self.model),
            canonical_name(self.device),
            canonical_name(self.framework),
        )

    @property
    def cell_id(self) -> str:
        """Canonical ``model|device|framework`` string (the seed domain)."""
        return "|".join(self.cell)

    @property
    def key(self) -> str:
        """Full canonical key covering every axis of the scenario."""
        dtype = self.dtype.value if self.dtype is not None else "default"
        return (
            f"{self.cell_id}|dtype={dtype}|batch={self.batch_size}"
            f"|power={self.power_mode.lower()}"
            f"|container={'yes' if self.containerized else 'no'}"
        )

    @property
    def seed(self) -> int:
        """Deterministic measurement seed for this cell.

        Hashes only the canonical triple — datatype, batch size and power
        mode never entered the seed, and keeping it that way preserves the
        harness's historical noise streams (run order, caching and worker
        scheduling independent).
        """
        digest = hashlib.blake2s(self.cell_id.encode(), digest_size=4).digest()
        return int.from_bytes(digest, "big")

    @property
    def deploy_key(self) -> tuple:
        """Deploy-cache key; reproduces ``engine.cache.deploy_key`` exactly."""
        return (*self.cell, self.dtype)

    @property
    def is_default_runtime(self) -> bool:
        """Whether deployment may go through the shared memo cache.

        Non-default power modes rebuild the device with scaled physics, so
        their deployments must not share cache entries with the stock
        device.  Batch size and containerization only affect the session
        built on top of a deployment, never the deployment itself.
        """
        return self.power_mode.lower() == DEFAULT_POWER_MODE

    # -- derived scenarios -------------------------------------------------
    def with_framework(self, framework: str) -> "Scenario":
        """The same cell deployed through a different framework."""
        return replace(self, framework=framework)

    # -- JSON round trip ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "device": self.device,
            "framework": self.framework,
            "dtype": None if self.dtype is None else self.dtype.value,
            "batch_size": self.batch_size,
            "power_mode": self.power_mode,
            "containerized": self.containerized,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        dtype = payload.get("dtype")
        return cls(
            model=payload["model"],
            device=payload["device"],
            framework=payload["framework"],
            dtype=None if dtype is None else DType(dtype),
            batch_size=payload.get("batch_size", 1),
            power_mode=payload.get("power_mode", DEFAULT_POWER_MODE),
            containerized=payload.get("containerized", False),
        )

    def describe(self) -> str:
        extras = []
        if self.dtype is not None:
            extras.append(self.dtype.value)
        if self.batch_size != 1:
            extras.append(f"batch {self.batch_size}")
        if self.power_mode.lower() != DEFAULT_POWER_MODE:
            extras.append(f"@ {self.power_mode}")
        if self.containerized:
            extras.append("containerized")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"{self.model} on {self.device} via {self.framework}{suffix}"


__all__ = ["DEFAULT_POWER_MODE", "Scenario"]
