"""RunRecord: the structured result of running one Scenario.

A record carries everything a downstream consumer might re-derive from a
session — latency statistics from the paper's timing loop, the plan's
roofline decomposition, power/energy, deploy-cache provenance — plus a
failure taxonomy so Table V incompatibilities travel as data instead of
``try/except ReproError`` control flow.  Records round-trip through JSON
losslessly, which is what makes them a stable contract for sharding,
serving and multi-backend work later.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.core.errors import (
    CompatibilityError,
    ConversionError,
    DeploymentError,
    IncompatibleModelError,
    OutOfMemoryError,
    ReproError,
    ThermalShutdownError,
    UnknownEntryError,
)
from repro.core.quantity import Seconds
from repro.core.result import Measurement
from repro.engine.executor import EngineConfig
from repro.runtime.scenario import Scenario

# Failure taxonomy: most-derived exception first, mapped to the outcome
# vocabulary the paper's Table V uses ("Memory Error", "Not Available", ...).
_FAILURE_KINDS: tuple[tuple[type[ReproError], str], ...] = (
    (OutOfMemoryError, "memory_error"),
    (ConversionError, "conversion_error"),
    (IncompatibleModelError, "incompatible_model"),
    (UnknownEntryError, "unknown_entry"),
    (DeploymentError, "deployment_error"),
    (CompatibilityError, "not_available"),
    (ThermalShutdownError, "thermal_shutdown"),
    (ReproError, "repro_error"),
)


def failure_kind(error: ReproError) -> str:
    """The taxonomy bucket for one harness error."""
    for error_type, kind in _FAILURE_KINDS:
        if isinstance(error, error_type):
            return kind
    return "repro_error"


@dataclass(frozen=True)
class FailureRecord:
    """A structured deployment/measurement failure.

    Attributes:
        kind: taxonomy bucket (``memory_error``, ``not_available``, ...).
        error_type: the Python exception class name, for exact re-raising.
        message: the exception's message.
        details: typed payload where the exception carries one (byte
            counts for OOM, temperature for thermal shutdown).
    """

    kind: str
    error_type: str
    message: str
    details: dict[str, Any]

    @classmethod
    def from_error(cls, error: ReproError) -> "FailureRecord":
        details: dict[str, Any] = {}
        if isinstance(error, OutOfMemoryError):
            details = {"required_bytes": error.required_bytes,
                       "available_bytes": error.available_bytes}
        elif isinstance(error, ThermalShutdownError):
            details = {"temperature_c": error.temperature_c}
        return cls(
            kind=failure_kind(error),
            error_type=type(error).__name__,
            message=str(error),
            details=details,
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FailureRecord":
        return cls(
            kind=payload["kind"],
            error_type=payload["error_type"],
            message=payload["message"],
            details=dict(payload.get("details", {})),
        )


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one timing loop (Section V methodology)."""

    median_s: float
    samples: int
    stddev_s: float
    min_s: float
    max_s: float

    @classmethod
    def from_measurement(cls, measurement: Measurement) -> "LatencyStats":
        return cls(
            median_s=measurement.value,
            samples=measurement.samples,
            stddev_s=measurement.stddev,
            min_s=measurement.minimum,
            max_s=measurement.maximum,
        )

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LatencyStats":
        return cls(**payload)


@dataclass(frozen=True)
class PlanBreakdown:
    """Aggregates of the session's ExecutionPlan, per single inference."""

    compute_s: float
    memory_s: float
    dispatch_s: float
    roofline_s: float
    session_overhead_s: float
    input_transfer_s: float
    op_count: int
    weight_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlanBreakdown":
        return cls(**payload)


@dataclass(frozen=True)
class Provenance:
    """How a record was produced, for auditability.

    Attributes:
        seed: the cell's measurement seed (``Scenario.seed``).
        deploy_cache: ``"hit"``/``"miss"`` through the memo layer, or
            ``"bypass"`` when the deployment could not be cached (explicit
            graph, non-default power mode, caching disabled).
        timed: whether the paper's timing loop ran (vs the noise-free
            plan latency).
        engine: the :class:`EngineConfig` switches the session ran under.
    """

    seed: int
    deploy_cache: str
    timed: bool
    engine: dict[str, Any]

    @classmethod
    def build(cls, scenario: Scenario, deploy_cache: str, timed: bool,
              config: EngineConfig) -> "Provenance":
        return cls(seed=scenario.seed, deploy_cache=deploy_cache,
                   timed=timed, engine=asdict(config))

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Provenance":
        return cls(
            seed=payload["seed"],
            deploy_cache=payload["deploy_cache"],
            timed=payload["timed"],
            engine=dict(payload.get("engine", {})),
        )


RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """The outcome of running one scenario through the Runner.

    Exactly one of two shapes: ``status == "ok"`` with measurement fields
    populated, or ``status == "failed"`` with a :class:`FailureRecord` and
    every measurement field ``None``.

    Attributes:
        latency_s: the headline seconds-per-inference — the timing loop's
            median when timed, else the noise-free plan latency.  Equals
            the float the old ``measure_latency_s`` helper returned.
        model_latency_s: the noise-free plan latency (always available).
        stats: timing-loop statistics when the loop ran.
        init_time_s: one-time setup cost (outside the timed loop).
        utilization: compute-unit busy fraction in [0, 1].
        power_w: total device draw while inferencing (Figure 12's x-axis).
        energy_j: measured energy per inference, when a meter was attached.
        container_overhead: latency fraction added by the container, for
            containerized scenarios.
        plan: roofline decomposition of the executed plan.
        provenance: seed, cache outcome and engine config.
        failure: the structured failure, for failed records.
    """

    scenario: Scenario
    status: str
    provenance: Provenance
    latency_s: float | None = None
    model_latency_s: float | None = None
    stats: LatencyStats | None = None
    init_time_s: float | None = None
    utilization: float | None = None
    power_w: float | None = None
    energy_j: float | None = None
    container_overhead: float | None = None
    plan: PlanBreakdown | None = None
    failure: FailureRecord | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def failed(self) -> bool:
        return not self.ok

    def latency(self) -> Seconds:
        """The headline latency, raising the structured failure if any."""
        if self.failure is not None or self.latency_s is None:
            message = self.failure.message if self.failure else "no latency recorded"
            raise ReproError(f"{self.scenario.describe()} failed: {message}")
        return Seconds(self.latency_s)

    def describe(self) -> str:
        if self.failed:
            assert self.failure is not None
            return (f"{self.scenario.describe()}: FAILED "
                    f"[{self.failure.kind}] {self.failure.message}")
        assert self.latency_s is not None
        return (f"{self.scenario.describe()}: "
                f"{self.latency_s * 1e3:.1f} ms/inference "
                f"(deploy cache {self.provenance.deploy_cache})")

    # -- JSON round trip ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "record_version": RECORD_VERSION,
            "scenario": self.scenario.to_dict(),
            "status": self.status,
            "latency_s": self.latency_s,
            "model_latency_s": self.model_latency_s,
            "stats": None if self.stats is None else self.stats.to_dict(),
            "init_time_s": self.init_time_s,
            "utilization": self.utilization,
            "power_w": self.power_w,
            "energy_j": self.energy_j,
            "container_overhead": self.container_overhead,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "provenance": self.provenance.to_dict(),
            "failure": None if self.failure is None else self.failure.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        version = payload.get("record_version")
        if version != RECORD_VERSION:
            raise ValueError(f"unsupported record version {version!r}")
        stats = payload.get("stats")
        plan = payload.get("plan")
        failure = payload.get("failure")
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            status=payload["status"],
            latency_s=payload.get("latency_s"),
            model_latency_s=payload.get("model_latency_s"),
            stats=None if stats is None else LatencyStats.from_dict(stats),
            init_time_s=payload.get("init_time_s"),
            utilization=payload.get("utilization"),
            power_w=payload.get("power_w"),
            energy_j=payload.get("energy_j"),
            container_overhead=payload.get("container_overhead"),
            plan=None if plan is None else PlanBreakdown.from_dict(plan),
            provenance=Provenance.from_dict(payload["provenance"]),
            failure=None if failure is None else FailureRecord.from_dict(failure),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))
