"""First-class run descriptions: Scenario -> Runner -> RunRecord.

The harness used to thread bare ``(model, device, framework)`` string
triples through every layer — cache keys in :mod:`repro.engine.cache`,
measurement seeds in :mod:`repro.harness.figures`, candidate loops and
``try/except ReproError`` blocks scattered per figure.  This package makes
the run itself the object:

* :class:`Scenario` — a frozen description of one experiment cell (model,
  device, framework, plus dtype, batch size, power mode and container
  flag).  Its canonical key is the single source of truth for deploy-cache
  keys and measurement seeds, subsuming ``engine.cache.deploy_key`` and
  ``harness.figures.measurement_seed`` (both remain as thin wrappers).
* :class:`RunRecord` — the structured result of running one scenario:
  latency statistics, plan aggregates, power/energy, cache provenance, and
  a failure taxonomy that turns Table V incompatibilities into data
  instead of control flow.  JSON round-trips losslessly.
* :class:`Runner` — the one audited measurement path: deploy through the
  memo cache, build the session, attach the paper-methodology timer, and
  fan batches of cells across a worker pool via :meth:`Runner.run_cells`.

Example::

    from repro.runtime import Runner, Scenario

    record = Runner().run(Scenario("ResNet-18", "Jetson Nano", "TensorRT"))
    if record.ok:
        print(record.latency_s, record.provenance.deploy_cache)
    else:
        print(record.failure.kind)   # e.g. "memory_error"
"""

from repro.runtime.record import (
    FailureRecord,
    LatencyStats,
    PlanBreakdown,
    Provenance,
    RunRecord,
    failure_kind,
)
from repro.runtime.runner import (
    BEST_FRAMEWORK_CANDIDATES,
    Runner,
    default_runner,
)
from repro.runtime.scenario import Scenario

__all__ = [
    "BEST_FRAMEWORK_CANDIDATES",
    "FailureRecord",
    "LatencyStats",
    "PlanBreakdown",
    "Provenance",
    "RunRecord",
    "Runner",
    "Scenario",
    "default_runner",
    "failure_kind",
]
