"""Runner: the one audited measurement path for every harness consumer.

Every figure, validation claim, sweep and CLI verb used to hand-roll the
same pipeline — deploy, build a session, seed a timer, catch ReproError —
each with its own string-triple plumbing.  The Runner owns that pipeline:

* deployments go through the engine memo cache whenever the scenario is
  cacheable (and record whether they hit);
* sessions honour the scenario's batch size, power mode and container flag;
* the paper-methodology timer is seeded from the scenario's canonical key,
  reproducing the exact per-cell noise streams the harness has always had;
* failures come back as :class:`RunRecord` data, classified by the Table V
  taxonomy, instead of propagating control flow.

``run_cells`` fans a batch of scenarios across a thread or process pool
with order-preserving results, mirroring the experiment-level sweep runner.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.errors import ReproError, UnknownEntryError
from repro.core.quantity import Seconds
from repro.core.registry import canonical_name
from repro.engine.cache import DEPLOY_CACHE, cached_deploy, caching_enabled
from repro.engine.executor import EngineConfig, InferenceSession
from repro.measurement.energy import EnergyMeter, active_power_w
from repro.measurement.timer import InferenceTimer
from repro.runtime.record import (
    FailureRecord,
    LatencyStats,
    PlanBreakdown,
    Provenance,
    RunRecord,
)
from repro.runtime.scenario import Scenario
from repro.virtualization.container import DEFAULT_CONTAINER, Container

EXECUTORS = ("thread", "process")

# Frameworks a user would try on each device, best-first — the paper's
# "best performing framework" per-device configuration (Figure 2).  This is
# the single copy; the harness and the deployment advisor both import it.
BEST_FRAMEWORK_CANDIDATES: dict[str, tuple[str, ...]] = {
    "Raspberry Pi 3B": ("TFLite", "TensorFlow", "Caffe", "DarkNet", "PyTorch"),
    "Jetson TX2": ("PyTorch", "TensorFlow", "Caffe", "DarkNet"),
    "Jetson Nano": ("TensorRT", "PyTorch"),
    "EdgeTPU": ("TFLite",),
    "Movidius NCS": ("NCSDK",),
    "PYNQ-Z1": ("TVM VTA", "FINN"),
}


@dataclass(frozen=True)
class Runner:
    """Facade over deploy -> session -> instruments for one scenario.

    Stateless apart from its configuration, so one module-level instance
    serves the whole harness and pickles cleanly into process pools.

    Attributes:
        container: the container runtime profile used for containerized
            scenarios.
    """

    container: Container = DEFAULT_CONTAINER

    # -- pipeline stages ---------------------------------------------------
    def deploy(self, scenario: Scenario, graph: Any = None) -> tuple[Any, str]:
        """Deploy the scenario; returns (deployed, cache outcome).

        Cacheable scenarios (stock power mode, no explicit graph) go
        through :func:`repro.engine.cache.cached_deploy`; everything else
        deploys directly and reports ``"bypass"``.
        """
        from repro.frameworks import load_framework
        from repro.hardware import apply_operating_point, load_device

        if graph is None and scenario.is_default_runtime:
            if caching_enabled():
                outcome = "hit" if DEPLOY_CACHE.contains(scenario.deploy_key) else "miss"
            else:
                outcome = "bypass"
            return cached_deploy(scenario.model, scenario.device,
                                 scenario.framework, dtype=scenario.dtype), outcome

        device = load_device(scenario.device)
        if not scenario.is_default_runtime:
            device = apply_operating_point(device, scenario.power_mode)
        if graph is None:
            from repro.models import load_model

            graph = load_model(scenario.model)
        deployed = load_framework(scenario.framework).deploy(
            graph, device, dtype=scenario.dtype)
        return deployed, "bypass"

    def session(self, scenario: Scenario, graph: Any = None):
        """Deploy and build the (possibly containerized) session."""
        session, _ = self._session(scenario, graph)
        return session

    def _session(self, scenario: Scenario, graph: Any = None):
        deployed, cache_outcome = self.deploy(scenario, graph)
        config = EngineConfig(batch_size=scenario.batch_size)
        session = InferenceSession(deployed, config=config)
        if scenario.containerized:
            session = self.container.wrap(session)
        return session, cache_outcome

    def timer(self, scenario: Scenario) -> InferenceTimer:
        """The paper-methodology timer seeded for this cell."""
        return InferenceTimer(seed=scenario.seed)

    # -- measurement -------------------------------------------------------
    def measure(self, scenario: Scenario, use_timer: bool = True,
                graph: Any = None) -> Seconds:
        """Seconds per inference; raises :class:`ReproError` on failure.

        The exact semantics of the old ``measure_latency_s`` helper: with
        ``use_timer`` the paper's timing loop runs on the cell-seeded
        timer, without it the noise-free plan latency is returned.
        """
        session = self.session(scenario, graph)
        if use_timer:
            return Seconds(self.timer(scenario).measure(session))
        return Seconds(session.latency_s)

    def run(self, scenario: Scenario, *, use_timer: bool = True,
            graph: Any = None, energy_meter: EnergyMeter | None = None,
            n_runs: int | None = None) -> RunRecord:
        """Run one scenario into a :class:`RunRecord`; never raises for
        harness failures — they come back as failure records.

        Args:
            use_timer: run the Section V timing loop (seeded per cell);
                otherwise record the noise-free plan latency.
            graph: explicit (e.g. pruned) graph; bypasses the memo cache.
            energy_meter: when given, also measure energy per inference.
            n_runs: timing-loop length override (default: paper policy).
        """
        config = EngineConfig(batch_size=scenario.batch_size)
        try:
            session, cache_outcome = self._session(scenario, graph)
            stats = None
            if use_timer:
                measurement = self.timer(scenario).measure(session, n_runs)
                stats = LatencyStats.from_measurement(measurement)
                latency_s = measurement.value
            else:
                latency_s = session.latency_s
            plan = session.plan
            deployed = session.deployed
            overhead = session.overhead_fraction if scenario.containerized else None
            energy_j = None
            if energy_meter is not None:
                energy_j = float(energy_meter.measure(session))
        except ReproError as error:
            return RunRecord(
                scenario=scenario,
                status="failed",
                provenance=Provenance.build(scenario, "none", use_timer, config),
                failure=FailureRecord.from_error(error),
            )
        return RunRecord(
            scenario=scenario,
            status="ok",
            provenance=Provenance.build(scenario, cache_outcome, use_timer, config),
            latency_s=latency_s,
            model_latency_s=session.latency_s,
            stats=stats,
            init_time_s=session.init_time_s,
            utilization=session.utilization,
            power_w=active_power_w(session),
            energy_j=energy_j,
            container_overhead=overhead,
            plan=PlanBreakdown(
                compute_s=plan.compute_s,
                memory_s=plan.memory_s,
                dispatch_s=plan.dispatch_s,
                roofline_s=plan.roofline_s,
                session_overhead_s=plan.session_overhead_s,
                input_transfer_s=plan.input_transfer_s,
                op_count=len(plan.timings),
                weight_bytes=deployed.graph.weight_bytes(),
            ),
        )

    # -- batch API ---------------------------------------------------------
    def run_cells(self, scenarios: Iterable[Scenario], *, jobs: int = 1,
                  executor: str = "thread", use_timer: bool = True) -> list[RunRecord]:
        """Run many scenarios, optionally across a worker pool.

        Results come back in input order regardless of completion order.
        Thread workers share the engine memo layer; process workers build
        their own per-process caches (records are identical either way —
        every cell's noise is seeded from its own canonical key).
        """
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        cells = list(scenarios)
        if jobs <= 1 or len(cells) <= 1:
            return [self.run(scenario, use_timer=use_timer) for scenario in cells]
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        payloads = [(self, scenario, use_timer) for scenario in cells]
        with pool_cls(max_workers=min(jobs, len(cells))) as pool:
            return list(pool.map(_run_cell, payloads))

    # -- candidate search --------------------------------------------------
    def candidates_for(self, device_name: str,
                       default: Sequence[str] | None = None) -> tuple[str, ...]:
        """Best-first framework candidates for a device.

        Unknown devices surface a structured :class:`UnknownEntryError`
        (which is both a ReproError and a KeyError) instead of a bare
        ``KeyError`` from the candidates table.
        """
        canon = canonical_name(device_name)
        for name, frameworks in BEST_FRAMEWORK_CANDIDATES.items():
            if canonical_name(name) == canon:
                return frameworks
        from repro.hardware import load_device

        load_device(device_name)  # raises UnknownEntryError for unknown devices
        if default is not None:
            return tuple(default)
        known = ", ".join(sorted(BEST_FRAMEWORK_CANDIDATES))
        raise UnknownEntryError(
            f"no best-framework candidates for device {device_name!r} "
            f"(candidates are defined for: {known})")

    def best_latency(self, model_name: str, device_name: str,
                     use_timer: bool = True) -> tuple[str, float] | None:
        """(framework, seconds) of the fastest deployable candidate, or None."""
        best: tuple[str, float] | None = None
        for framework_name in self.candidates_for(device_name):
            record = self.run(Scenario(model_name, device_name, framework_name),
                              use_timer=use_timer)
            if record.failed:
                continue
            assert record.latency_s is not None
            if best is None or record.latency_s < best[1]:
                best = (framework_name, record.latency_s)
        return best

    def first_session(self, model_name: str, device_name: str,
                      candidates: Sequence[str] | None = None,
                      default: Sequence[str] = ("PyTorch",)):
        """(framework, session) for the first deployable candidate, or None."""
        if candidates is None:
            candidates = self.candidates_for(device_name, default=default)
        for framework_name in candidates:
            try:
                session = self.session(Scenario(model_name, device_name, framework_name))
            except ReproError:
                continue
            return framework_name, session
        return None


def _run_cell(payload: tuple[Runner, Scenario, bool]) -> RunRecord:
    """Worker body for :meth:`Runner.run_cells`; module-level so it pickles."""
    runner, scenario, use_timer = payload
    return runner.run(scenario, use_timer=use_timer)


_DEFAULT_RUNNER = Runner()


def default_runner() -> Runner:
    """The shared module-level Runner the harness routes through."""
    return _DEFAULT_RUNNER
