"""Runner: the one audited measurement path for every harness consumer.

Every figure, validation claim, sweep and CLI verb used to hand-roll the
same pipeline — deploy, build a session, seed a timer, catch ReproError —
each with its own string-triple plumbing.  The Runner owns that pipeline:

* deployments go through the engine memo cache whenever the scenario is
  cacheable (and record whether they hit);
* sessions honour the scenario's batch size, power mode and container flag;
* the paper-methodology timer is seeded from the scenario's canonical key,
  reproducing the exact per-cell noise streams the harness has always had;
* failures come back as :class:`RunRecord` data, classified by the Table V
  taxonomy, instead of propagating control flow.

``run_grid`` hands a whole batch of scenarios to the sweep compiler
(:mod:`repro.engine.compile`): deployments and plans are deduplicated
across the grid, the rooflines are lowered into one array program, and the
results are scattered back into per-cell records that are bit-identical to
running each cell alone.  Finished records land in the engine's record
cache, so re-running a grid (or any overlapping figure) is a lookup.
``run_cells`` routes serial batches through ``run_grid`` and fans larger
ones across a thread or process pool with order-preserving results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.core.errors import ReproError, UnknownEntryError
from repro.core.quantity import Seconds
from repro.core.registry import canonical_name
from repro.engine.cache import (
    DEPLOY_CACHE,
    RECORD_CACHE,
    cached_deploy,
    caching_enabled,
)
from repro.engine.executor import EngineConfig, InferenceSession
from repro.measurement.energy import EnergyMeter, active_power_w
from repro.measurement.timer import InferenceTimer
from repro.runtime.record import (
    FailureRecord,
    LatencyStats,
    PlanBreakdown,
    Provenance,
    RunRecord,
)
from repro.runtime.scenario import Scenario
from repro.virtualization.container import DEFAULT_CONTAINER, Container

EXECUTORS = ("thread", "process")

# Frameworks a user would try on each device, best-first — the paper's
# "best performing framework" per-device configuration (Figure 2).  This is
# the single copy; the harness and the deployment advisor both import it.
BEST_FRAMEWORK_CANDIDATES: dict[str, tuple[str, ...]] = {
    "Raspberry Pi 3B": ("TFLite", "TensorFlow", "Caffe", "DarkNet", "PyTorch"),
    "Jetson TX2": ("PyTorch", "TensorFlow", "Caffe", "DarkNet"),
    "Jetson Nano": ("TensorRT", "PyTorch"),
    "EdgeTPU": ("TFLite",),
    "Movidius NCS": ("NCSDK",),
    "PYNQ-Z1": ("TVM VTA", "FINN"),
}


@dataclass(frozen=True)
class Runner:
    """Facade over deploy -> session -> instruments for one scenario.

    Stateless apart from its configuration, so one module-level instance
    serves the whole harness and pickles cleanly into process pools.

    Attributes:
        container: the container runtime profile used for containerized
            scenarios.
    """

    container: Container = DEFAULT_CONTAINER

    # -- pipeline stages ---------------------------------------------------
    def deploy(self, scenario: Scenario, graph: Any = None) -> tuple[Any, str]:
        """Deploy the scenario; returns (deployed, cache outcome).

        Cacheable scenarios (stock power mode, no explicit graph) go
        through :func:`repro.engine.cache.cached_deploy`; everything else
        deploys directly and reports ``"bypass"``.
        """
        from repro.frameworks import load_framework
        from repro.hardware import apply_operating_point, load_device

        if graph is None and scenario.is_default_runtime:
            if caching_enabled():
                outcome = "hit" if DEPLOY_CACHE.contains(scenario.deploy_key) else "miss"
            else:
                outcome = "bypass"
            return cached_deploy(scenario.model, scenario.device,
                                 scenario.framework, dtype=scenario.dtype), outcome

        device = load_device(scenario.device)
        if not scenario.is_default_runtime:
            device = apply_operating_point(device, scenario.power_mode)
        if graph is None:
            from repro.models import load_model

            graph = load_model(scenario.model)
        deployed = load_framework(scenario.framework).deploy(
            graph, device, dtype=scenario.dtype)
        return deployed, "bypass"

    def session(self, scenario: Scenario, graph: Any = None):
        """Deploy and build the (possibly containerized) session."""
        session, _ = self._session(scenario, graph)
        return session

    def _session(self, scenario: Scenario, graph: Any = None):
        deployed, cache_outcome = self.deploy(scenario, graph)
        config = EngineConfig(batch_size=scenario.batch_size)
        session = InferenceSession(deployed, config=config)
        if scenario.containerized:
            session = self.container.wrap(session)
        return session, cache_outcome

    def timer(self, scenario: Scenario) -> InferenceTimer:
        """The paper-methodology timer seeded for this cell."""
        return InferenceTimer(seed=scenario.seed)

    # -- measurement -------------------------------------------------------
    def measure(self, scenario: Scenario, use_timer: bool = True,
                graph: Any = None) -> Seconds:
        """Seconds per inference; raises :class:`ReproError` on failure.

        The exact semantics of the old ``measure_latency_s`` helper: with
        ``use_timer`` the paper's timing loop runs on the cell-seeded
        timer, without it the noise-free plan latency is returned.
        """
        if graph is None and caching_enabled():
            found, record = RECORD_CACHE.cached_value(
                self._record_key(scenario, use_timer, None))
            if found and record.ok:
                return Seconds(record.latency_s)
            # Cached failures fall through so the original error type
            # propagates from the deploy pipeline, exactly as before.
        session = self.session(scenario, graph)
        if use_timer:
            return Seconds(self.timer(scenario).measure(session))
        return Seconds(session.latency_s)

    def run(self, scenario: Scenario, *, use_timer: bool = True,
            graph: Any = None, energy_meter: EnergyMeter | None = None,
            n_runs: int | None = None) -> RunRecord:
        """Run one scenario into a :class:`RunRecord`; never raises for
        harness failures — they come back as failure records.

        Args:
            use_timer: run the Section V timing loop (seeded per cell);
                otherwise record the noise-free plan latency.
            graph: explicit (e.g. pruned) graph; bypasses the memo cache.
            energy_meter: when given, also measure energy per inference.
            n_runs: timing-loop length override (default: paper policy).
        """
        cacheable = graph is None and energy_meter is None and caching_enabled()
        if cacheable:
            key = self._record_key(scenario, use_timer, n_runs)
            found, cached = RECORD_CACHE.cached_value(key)
            if found:
                return self._refresh_provenance(cached)
        record = self._run_uncached(scenario, use_timer=use_timer, graph=graph,
                                    energy_meter=energy_meter, n_runs=n_runs)
        if cacheable:
            record = RECORD_CACHE.store(key, record)
        return record

    def _run_uncached(self, scenario: Scenario, *, use_timer: bool,
                      graph: Any, energy_meter: EnergyMeter | None,
                      n_runs: int | None) -> RunRecord:
        """The scalar measurement pipeline behind :meth:`run`."""
        config = EngineConfig(batch_size=scenario.batch_size)
        try:
            session, cache_outcome = self._session(scenario, graph)
            stats = None
            if use_timer:
                measurement = self.timer(scenario).measure(session, n_runs)
                stats = LatencyStats.from_measurement(measurement)
                latency_s = measurement.value
            else:
                latency_s = session.latency_s
            plan = session.plan
            deployed = session.deployed
            overhead = session.overhead_fraction if scenario.containerized else None
            energy_j = None
            if energy_meter is not None:
                energy_j = float(energy_meter.measure(session))
        except ReproError as error:
            return RunRecord(
                scenario=scenario,
                status="failed",
                provenance=Provenance.build(scenario, "none", use_timer, config),
                failure=FailureRecord.from_error(error),
            )
        return RunRecord(
            scenario=scenario,
            status="ok",
            provenance=Provenance.build(scenario, cache_outcome, use_timer, config),
            latency_s=latency_s,
            model_latency_s=session.latency_s,
            stats=stats,
            init_time_s=session.init_time_s,
            utilization=session.utilization,
            power_w=active_power_w(session),
            energy_j=energy_j,
            container_overhead=overhead,
            plan=PlanBreakdown(
                compute_s=plan.compute_s,
                memory_s=plan.memory_s,
                dispatch_s=plan.dispatch_s,
                roofline_s=plan.roofline_s,
                session_overhead_s=plan.session_overhead_s,
                input_transfer_s=plan.input_transfer_s,
                op_count=len(plan.timings),
                weight_bytes=deployed.weight_bytes(),
            ),
        )

    # -- record caching ----------------------------------------------------
    @staticmethod
    def _record_key(scenario: Scenario, use_timer: bool,
                    n_runs: int | None) -> tuple:
        """Record-cache key: the cell's canonical key + measurement flags."""
        return (scenario.key, bool(use_timer), n_runs)

    @staticmethod
    def _refresh_provenance(record: RunRecord) -> RunRecord:
        """Re-derive the deploy-cache outcome for a cached record.

        A record stored on a cold run says ``"miss"``; replaying the same
        cell scalar-style would now find the deployment cached and say
        ``"hit"``, so hits are refreshed to match.  Failures (``"none"``)
        and uncacheable runtimes (``"bypass"``) replay unchanged.
        """
        if record.failed or not record.scenario.is_default_runtime:
            return record
        if record.provenance.deploy_cache == "hit":
            return record
        return replace(record,
                       provenance=replace(record.provenance, deploy_cache="hit"))

    # -- batch API ---------------------------------------------------------
    def run_cells(self, scenarios: Iterable[Scenario], *, jobs: int = 1,
                  executor: str = "thread", use_timer: bool = True) -> list[RunRecord]:
        """Run many scenarios, optionally across a worker pool.

        Results come back in input order regardless of completion order.
        Thread workers share the engine memo layer; process workers build
        their own per-process caches (records are identical either way —
        every cell's noise is seeded from its own canonical key).
        """
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        cells = list(scenarios)
        if jobs <= 1 or len(cells) <= 1:
            return self.run_grid(cells, use_timer=use_timer)
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        payloads = [(self, scenario, use_timer) for scenario in cells]
        with pool_cls(max_workers=min(jobs, len(cells))) as pool:
            return list(pool.map(_run_cell, payloads))

    def run_grid(self, scenarios: Iterable[Scenario], *,
                 use_timer: bool = True) -> list[RunRecord]:
        """Run a whole scenario grid through the sweep compiler.

        Bit-identical to calling :meth:`run` on each cell in order, but the
        grid is compiled as one unit: deployments and plans are shared
        across cells, the rooflines are lowered into a single array
        program, and already-finished cells come straight out of the
        record cache.  Per-phase wall times land in the process-wide
        compiler stats (``repro.engine.compile.compile_stats``).
        """
        from repro.engine import compile as sweep_compile

        cells = list(scenarios)
        use_cache = caching_enabled()
        records: list[RunRecord | None] = [None] * len(cells)
        pending: list[int] = []
        pending_keys: set = set()
        duplicates: list[tuple[int, tuple]] = []
        for index, scenario in enumerate(cells):
            if use_cache:
                key = self._record_key(scenario, use_timer, None)
                if key in pending_keys:
                    # In-grid duplicate of a cell being compiled: resolve it
                    # from the record cache afterwards, like a scalar replay.
                    duplicates.append((index, key))
                    continue
                found, cached = RECORD_CACHE.cached_value(key)
                if found:
                    records[index] = self._refresh_provenance(cached)
                    continue
                pending_keys.add(key)
            pending.append(index)
        if pending:
            start = time.perf_counter()
            program = sweep_compile.gather([cells[i] for i in pending])
            gathered = time.perf_counter()
            sweep_compile.lower(program)
            lowered = time.perf_counter()
            compiled = sweep_compile.scatter(program)
            scattered = time.perf_counter()
            for index, cell in zip(pending, compiled):
                record = self._record_from_cell(cell, use_timer)
                if use_cache:
                    record = RECORD_CACHE.store(
                        self._record_key(cell.scenario, use_timer, None), record)
                records[index] = record
            stats = program.stats
            stats.gather_s = gathered - start
            stats.lower_s = lowered - gathered
            stats.scatter_s = scattered - lowered
            stats.timer_s = time.perf_counter() - scattered
            sweep_compile.record_compile(stats)
        for index, key in duplicates:
            found, cached = RECORD_CACHE.cached_value(key)
            assert found  # the first occurrence was compiled and stored above
            records[index] = self._refresh_provenance(cached)
        return records  # type: ignore[return-value]  # every slot is filled

    def _record_from_cell(self, cell: Any, use_timer: bool) -> RunRecord:
        """Assemble one :class:`RunRecord` from a compiled cell.

        Field for field the same arithmetic as the scalar :meth:`run`
        pipeline — container taxes via :meth:`Container.taxed_latency_s`, the
        cell-seeded timing loop via ``measure_latency`` — so records match
        the scalar path bitwise.
        """
        scenario = cell.scenario
        config = EngineConfig(batch_size=scenario.batch_size)
        if cell.error is not None:
            return RunRecord(
                scenario=scenario,
                status="failed",
                provenance=Provenance.build(scenario, "none", use_timer, config),
                failure=FailureRecord.from_error(cell.error),
            )
        bare_s = cell.latency_s
        if scenario.containerized:
            model_latency_s = self.container.taxed_latency_s(bare_s, cell.cpu_scale)
            overhead = (model_latency_s - bare_s) / bare_s
            init_time_s = cell.init_time_s + 2.0
        else:
            model_latency_s = bare_s
            overhead = None
            init_time_s = cell.init_time_s
        stats = None
        if use_timer:
            measurement = self.timer(scenario).measure_latency(model_latency_s)
            stats = LatencyStats.from_measurement(measurement)
            latency_s = measurement.value
        else:
            latency_s = model_latency_s
        plan = cell.plan
        return RunRecord(
            scenario=scenario,
            status="ok",
            provenance=Provenance.build(scenario, cell.cache_outcome,
                                        use_timer, config),
            latency_s=latency_s,
            model_latency_s=model_latency_s,
            stats=stats,
            init_time_s=init_time_s,
            utilization=cell.utilization,
            power_w=cell.power_w,
            energy_j=None,
            container_overhead=overhead,
            plan=PlanBreakdown(
                compute_s=plan.compute_s,
                memory_s=plan.memory_s,
                dispatch_s=plan.dispatch_s,
                roofline_s=plan.roofline_s,
                session_overhead_s=plan.session_overhead_s,
                input_transfer_s=plan.input_transfer_s,
                op_count=len(plan.timings),
                weight_bytes=cell.weight_bytes,
            ),
        )

    # -- candidate search --------------------------------------------------
    def candidates_for(self, device_name: str,
                       default: Sequence[str] | None = None) -> tuple[str, ...]:
        """Best-first framework candidates for a device.

        Unknown devices surface a structured :class:`UnknownEntryError`
        (which is both a ReproError and a KeyError) instead of a bare
        ``KeyError`` from the candidates table.
        """
        canon = canonical_name(device_name)
        for name, frameworks in BEST_FRAMEWORK_CANDIDATES.items():
            if canonical_name(name) == canon:
                return frameworks
        from repro.hardware import load_device

        load_device(device_name)  # raises UnknownEntryError for unknown devices
        if default is not None:
            return tuple(default)
        known = ", ".join(sorted(BEST_FRAMEWORK_CANDIDATES))
        raise UnknownEntryError(
            f"no best-framework candidates for device {device_name!r} "
            f"(candidates are defined for: {known})")

    def best_latency(self, model_name: str, device_name: str,
                     use_timer: bool = True) -> tuple[str, float] | None:
        """(framework, seconds) of the fastest deployable candidate, or None."""
        best: tuple[str, float] | None = None
        for framework_name in self.candidates_for(device_name):
            record = self.run(Scenario(model_name, device_name, framework_name),
                              use_timer=use_timer)
            if record.failed:
                continue
            assert record.latency_s is not None
            if best is None or record.latency_s < best[1]:
                best = (framework_name, record.latency_s)
        return best

    def first_session(self, model_name: str, device_name: str,
                      candidates: Sequence[str] | None = None,
                      default: Sequence[str] = ("PyTorch",)):
        """(framework, session) for the first deployable candidate, or None."""
        if candidates is None:
            candidates = self.candidates_for(device_name, default=default)
        for framework_name in candidates:
            try:
                session = self.session(Scenario(model_name, device_name, framework_name))
            except ReproError:
                continue
            return framework_name, session
        return None


def _run_cell(payload: tuple[Runner, Scenario, bool]) -> RunRecord:
    """Worker body for :meth:`Runner.run_cells`; module-level so it pickles."""
    runner, scenario, use_timer = payload
    return runner.run(scenario, use_timer=use_timer)


_DEFAULT_RUNNER = Runner()


def default_runner() -> Runner:
    """The shared module-level Runner the harness routes through."""
    return _DEFAULT_RUNNER
