"""Deployment: the one type every serving layer speaks.

Before this package, the repo had three disjoint notions of "where a model
runs": a :class:`~repro.runtime.scenario.Scenario` served on one node, a
:class:`~repro.distribution.split.SplitPlan` across a link, and a
:class:`~repro.distribution.pipeline.PipelinePlan` across a chain of
stages — and only the first could be priced and served by the fleet.  A
:class:`Deployment` subsumes all three: an ordered tuple of
:class:`StageSpec` stages, each a contiguous slice of the model's
schedulable ops on one scenario, with the outgoing transfer cost of the
cut that follows it.

The lowering rules in :mod:`repro.distribution.split` and
:mod:`repro.distribution.pipeline` emit Deployments; the placement
optimizer (:mod:`repro.placement.optimizer`) enumerates and ranks them;
``fleet.cluster`` prices a :class:`~repro.fleet.cluster.ServiceProfile`
from any of them, and ``fleet.simulate`` serves the multi-stage ones as
chained stage queues.  Single-stage Deployments degrade to the plain
scenario path, bit-identical to the pre-Deployment fleet.

A stage's *service* time is ``compute_s + transfer_s`` — the sender owns
its egress, exactly the ``PipelineStage.stage_s`` convention — so a
Deployment's end-to-end latency is the sum of stage services and its
steady-state throughput is set by the slowest stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.runtime.scenario import Scenario

#: provenance of a deployment: one node, a Neurosurgeon-style split across
#: a link, or a multi-stage pipeline.
DEPLOYMENT_KINDS = ("single", "split", "pipeline")


@dataclass(frozen=True)
class StageSpec:
    """One stage of a deployment: a slice of the model on one scenario.

    Attributes:
        scenario: where this stage runs (model/device/framework cell).
        op_names: the schedulable ops this stage executes, in order; None
            means the whole model (single-node stages).  May be empty for
            a pure transfer stage (the all-remote split's input ship).
        compute_s: engine-priced time for this stage's ops, including the
            stage's session overheads.
        transfer_s: time to ship the crossing activations to the next
            stage (0.0 for the last stage — results return in place).
        transfer_bytes: size of the crossing tensor set.
        power_w: device draw while this stage computes.
        idle_w: device draw while this stage waits.
        init_time_s: one-time session setup cost on this stage's device.
    """

    scenario: Scenario
    op_names: tuple[str, ...] | None
    compute_s: float
    transfer_s: float = 0.0
    transfer_bytes: int = 0
    power_w: float = 0.0
    idle_w: float = 0.0
    init_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op_names is not None and not isinstance(self.op_names, tuple):
            object.__setattr__(self, "op_names", tuple(self.op_names))
        if self.compute_s < 0:
            raise ValueError(f"compute_s must be >= 0, got {self.compute_s}")
        if self.transfer_s < 0:
            raise ValueError(f"transfer_s must be >= 0, got {self.transfer_s}")
        if self.transfer_bytes < 0:
            raise ValueError(
                f"transfer_bytes must be >= 0, got {self.transfer_bytes}")

    @property
    def service_s(self) -> float:
        """Time this stage occupies per inference: compute plus egress."""
        return self.compute_s + self.transfer_s

    @property
    def energy_j(self) -> float:
        """Active energy of one inference through this stage."""
        return self.power_w * self.compute_s

    @property
    def span(self) -> str:
        """Human-readable op range ("all", "input", "op_a..op_b")."""
        if self.op_names is None:
            return "all"
        if not self.op_names:
            return "input"
        if len(self.op_names) == 1:
            return self.op_names[0]
        return f"{self.op_names[0]}..{self.op_names[-1]}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "op_names": None if self.op_names is None else list(self.op_names),
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "transfer_bytes": self.transfer_bytes,
            "power_w": self.power_w,
            "idle_w": self.idle_w,
            "init_time_s": self.init_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageSpec":
        op_names = payload["op_names"]
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            op_names=None if op_names is None else tuple(op_names),
            compute_s=payload["compute_s"],
            transfer_s=payload["transfer_s"],
            transfer_bytes=payload["transfer_bytes"],
            power_w=payload["power_w"],
            idle_w=payload["idle_w"],
            init_time_s=payload["init_time_s"],
        )


@dataclass(frozen=True)
class Deployment:
    """One servable placement of a model over one or more devices.

    Attributes:
        kind: "single", "split" or "pipeline" (provenance; the serving
            semantics depend only on the stage tuple).
        stages: the ordered stage specs; one per device position.
        link: name of the :class:`~repro.distribution.network.NetworkLink`
            preset pricing the inter-stage transfers (None for single).
    """

    kind: str
    stages: tuple[StageSpec, ...]
    link: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in DEPLOYMENT_KINDS:
            raise ValueError(
                f"kind must be one of {DEPLOYMENT_KINDS}, got {self.kind!r}")
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError("a deployment needs at least one stage")
        if self.kind == "single":
            if len(self.stages) != 1:
                raise ValueError("single deployments have exactly one stage")
            if self.link is not None:
                raise ValueError("single deployments carry no link")
        else:
            if len(self.stages) < 2:
                raise ValueError(f"{self.kind} deployments need >= 2 stages")
            if self.link is None:
                raise ValueError(f"{self.kind} deployments must name a link")
        if self.stages[-1].transfer_s > 0 or self.stages[-1].transfer_bytes > 0:
            raise ValueError("the last stage has no outgoing transfer")
        models = {stage.scenario.cell[0] for stage in self.stages}
        if len(models) != 1:
            raise ValueError(
                f"all stages must serve one model, got {sorted(models)}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(cls, scenario: Scenario, *, compute_s: float,
               power_w: float = 0.0, idle_w: float = 0.0,
               init_time_s: float = 0.0) -> "Deployment":
        """The whole model on one node — the classic fleet pool shape."""
        return cls(kind="single", link=None, stages=(StageSpec(
            scenario=scenario, op_names=None, compute_s=compute_s,
            power_w=power_w, idle_w=idle_w, init_time_s=init_time_s),))

    # -- aggregate quantities ----------------------------------------------
    @property
    def model(self) -> str:
        return self.stages[0].scenario.model

    @property
    def devices(self) -> tuple[str, ...]:
        return tuple(stage.scenario.device for stage in self.stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def is_single_node(self) -> bool:
        return len(self.stages) == 1

    @property
    def latency_s(self) -> float:
        """End-to-end latency of one inference through every stage."""
        return sum(stage.service_s for stage in self.stages)

    @property
    def bottleneck_s(self) -> float:
        """Steady-state per-replica service time: the slowest stage."""
        return max(stage.service_s for stage in self.stages)

    @property
    def throughput_rps(self) -> float:
        """Sustained inferences/s of one replica chain."""
        return 1.0 / self.bottleneck_s

    @property
    def energy_per_inference_j(self) -> float:
        """Active energy across all stages for one inference."""
        return sum(stage.energy_j for stage in self.stages)

    @property
    def key(self) -> str:
        """Canonical identity for dedup and deterministic ordering."""
        stages = ";".join(f"{stage.scenario.key}#{stage.span}"
                          for stage in self.stages)
        return f"{self.kind}|{self.link or '-'}|{stages}"

    def describe(self) -> str:
        if self.is_single_node:
            stage = self.stages[0]
            return (f"single {stage.scenario.describe()}: "
                    f"{self.latency_s * 1e3:.1f} ms, "
                    f"{self.energy_per_inference_j * 1e3:.1f} mJ")
        lines = [f"{self.kind} over {self.link}: "
                 f"{self.latency_s * 1e3:.1f} ms end-to-end, "
                 f"{self.throughput_rps:.2f} inf/s "
                 f"(bottleneck {self.bottleneck_s * 1e3:.1f} ms), "
                 f"{self.energy_per_inference_j * 1e3:.1f} mJ"]
        for position, stage in enumerate(self.stages):
            ops = ("whole model" if stage.op_names is None
                   else f"{len(stage.op_names)} ops")
            lines.append(
                f"  stage {position}: {stage.scenario.device} via "
                f"{stage.scenario.framework} [{ops}] "
                f"compute {stage.compute_s * 1e3:.1f} ms"
                + (f" + send {stage.transfer_s * 1e3:.1f} ms"
                   if stage.transfer_s > 0 else ""))
        return "\n".join(lines)

    # -- JSON round trip ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "link": self.link,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Deployment":
        return cls(
            kind=payload["kind"],
            link=payload["link"],
            stages=tuple(StageSpec.from_dict(stage)
                         for stage in payload["stages"]),
        )


__all__ = ["DEPLOYMENT_KINDS", "Deployment", "StageSpec"]
