"""Placement optimizer: search the deployment space, emit the frontier.

Given a model, a device fleet, a link and an SLO, enumerate every
placement shape the repo can serve — the whole model on each single node,
Neurosurgeon-style splits across each ordered device pair (best cut plus
the all-remote cut), and homogeneous device pipelines up to a depth — and
price each as a :class:`~repro.placement.deployment.Deployment`.

Pricing reuses the serving stack's own machinery: single-node candidates
go through ONE :meth:`Runner.run_grid` sweep (deployments, plans and
rooflines dedup across cells), and each split pair is priced by one
prefix-sum sweep of the cut space, so enumerating every cut of a pair
costs no more than pricing its best one.

The result is the Pareto frontier of (latency, energy, cost): latency is
the deployment's end-to-end seconds, energy its active joules per
inference summed over stages, cost the USD price of the boards it
occupies (:mod:`repro.placement.cost`).  When an SLO is given, the
frontier is drawn over the SLO-feasible candidates only — the infeasible
ones stay in ``candidates`` with their rejection reason.

Everything here is deterministic: fixed iteration orders, no wall clock,
no RNG, no sessions outside the Runner (the ARCH007 lint enforces the
first three).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.pareto import frontier_indices
from repro.placement.cost import device_price_usd
from repro.placement.deployment import Deployment
from repro.runtime.runner import (
    BEST_FRAMEWORK_CANDIDATES,
    Runner,
    default_runner,
)
from repro.runtime.scenario import Scenario

#: framework fallbacks for devices outside the edge candidates table
#: (the HPC comparison points serve as remote/cloud endpoints).
REMOTE_FRAMEWORK_CANDIDATES = ("TensorFlow", "PyTorch", "Caffe")


@dataclass(frozen=True)
class SLO:
    """Service-level objective a served placement must meet.

    Any subset of the axes may be constrained; ``None`` means
    unconstrained.  Throughput is per replica chain (the steady-state
    rate one deployment sustains), latency is end-to-end per inference.
    """

    deadline_s: float | None = None
    min_throughput_rps: float | None = None
    max_energy_j: float | None = None

    def check(self, deployment: Deployment) -> tuple[bool, str]:
        """(feasible, reason) for one deployment."""
        if (self.deadline_s is not None
                and deployment.latency_s > self.deadline_s):
            return False, (
                f"latency {deployment.latency_s * 1e3:.1f} ms exceeds "
                f"deadline {self.deadline_s * 1e3:.1f} ms")
        if (self.min_throughput_rps is not None
                and deployment.throughput_rps < self.min_throughput_rps):
            return False, (
                f"throughput {deployment.throughput_rps:.2f} inf/s below "
                f"required {self.min_throughput_rps:.2f} inf/s")
        if (self.max_energy_j is not None
                and deployment.energy_per_inference_j > self.max_energy_j):
            return False, (
                f"energy {deployment.energy_per_inference_j:.3f} J exceeds "
                f"budget {self.max_energy_j:.3f} J")
        return True, "meets SLO"

    def to_dict(self) -> dict[str, Any]:
        return {
            "deadline_s": self.deadline_s,
            "min_throughput_rps": self.min_throughput_rps,
            "max_energy_j": self.max_energy_j,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SLO":
        return cls(deadline_s=payload.get("deadline_s"),
                   min_throughput_rps=payload.get("min_throughput_rps"),
                   max_energy_j=payload.get("max_energy_j"))


@dataclass(frozen=True)
class PlacementCandidate:
    """One priced deployment with its optimizer objectives."""

    deployment: Deployment
    latency_s: float
    throughput_rps: float
    energy_j: float
    cost_usd: float
    meets_slo: bool
    slo_reason: str

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(latency, energy, cost) — all minimized."""
        return (self.latency_s, self.energy_j, self.cost_usd)

    def to_dict(self) -> dict[str, Any]:
        return {
            "deployment": self.deployment.to_dict(),
            "latency_s": self.latency_s,
            "throughput_rps": self.throughput_rps,
            "energy_j": self.energy_j,
            "cost_usd": self.cost_usd,
            "meets_slo": self.meets_slo,
            "slo_reason": self.slo_reason,
        }


@dataclass(frozen=True)
class PlacementFrontier:
    """The optimizer's full answer for one model.

    ``candidates`` is every deduped placement, sorted by
    (latency, energy, cost); ``frontier`` is the non-dominated subset of
    the SLO-feasible ones (of everything when no SLO was given), in the
    same order.
    """

    model: str
    link: str
    slo: SLO | None
    candidates: tuple[PlacementCandidate, ...]
    frontier: tuple[PlacementCandidate, ...]

    def best(self) -> PlacementCandidate | None:
        """Lowest-latency frontier point, or None if nothing is feasible."""
        return self.frontier[0] if self.frontier else None

    def describe(self) -> str:
        lines = [f"placement frontier for {self.model} over {self.link}: "
                 f"{len(self.frontier)} of {len(self.candidates)} "
                 f"candidates non-dominated"]
        if self.slo is not None and not self.frontier:
            lines.append("  (no candidate meets the SLO)")
        for candidate in self.frontier:
            deployment = candidate.deployment
            shape = (deployment.kind if deployment.is_single_node
                     else f"{deployment.kind} x{deployment.num_stages}")
            lines.append(
                f"  [{shape}] {' + '.join(deployment.devices)}: "
                f"{candidate.latency_s * 1e3:.1f} ms, "
                f"{candidate.throughput_rps:.2f} inf/s, "
                f"{candidate.energy_j * 1e3:.1f} mJ, "
                f"${candidate.cost_usd:.0f}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "link": self.link,
            "slo": None if self.slo is None else self.slo.to_dict(),
            "candidates": [c.to_dict() for c in self.candidates],
            "frontier": [c.to_dict() for c in self.frontier],
        }


def _deployment_cost_usd(deployment: Deployment) -> float:
    return sum(device_price_usd(device) for device in deployment.devices)


def _single_node_deployments(model: str, devices: Sequence[str],
                             runner: Runner) -> list[Deployment]:
    """Price the whole model on every device in ONE run_grid sweep."""
    from repro.hardware.catalog import load_device

    grid: list[Scenario] = []
    spans: list[tuple[str, int, int]] = []
    for device in devices:
        frameworks = runner.candidates_for(
            device, default=REMOTE_FRAMEWORK_CANDIDATES)
        start = len(grid)
        grid.extend(Scenario(model=model, device=device, framework=framework)
                    for framework in frameworks)
        spans.append((device, start, len(grid)))
    # run_grid's wall-clock calls stamp compile-stage *stats* only; the
    # records it returns are seeded and bit-identical run to run.
    records = runner.run_grid(grid, use_timer=False)  # repro: allow[RACE004] perf_counter stamps stats, results deterministic

    deployments = []
    for device, start, stop in spans:
        best = None
        for record in records[start:stop]:
            if record.status != "ok":
                continue
            if best is None or record.model_latency_s < best.model_latency_s:
                best = record
        if best is None:
            continue  # device cannot serve this model at all
        deployments.append(Deployment.single(
            best.scenario,
            compute_s=best.model_latency_s,
            power_w=best.power_w,
            idle_w=load_device(device).power.idle_w,
            init_time_s=best.init_time_s,
        ))
    return deployments


def _split_deployments(model: str, edge_devices: Sequence[str],
                       all_devices: Sequence[str],
                       singles: Sequence[Deployment], link: str,
                       runner: Runner) -> list[Deployment]:
    """Best-cut and all-remote splits for every ordered device pair.

    Each side runs its single-node-best framework (already picked by the
    grid sweep), so a pair costs one prefix-sum sweep of the cut space.
    """
    from repro.distribution.split import split_deployments

    best_scenario = {d.devices[0]: d.stages[0].scenario for d in singles}
    deployments: list[Deployment] = []
    for edge_device in edge_devices:
        edge_scenario = best_scenario.get(edge_device)
        if edge_scenario is None:
            continue
        for remote_device in all_devices:
            if remote_device == edge_device:
                continue
            remote_scenario = best_scenario.get(remote_device)
            if remote_scenario is None:
                continue
            swept = split_deployments(
                edge_scenario, remote_scenario, link, runner=runner)
            best = min(swept, key=lambda d: d.latency_s)
            all_remote = swept[0]
            deployments.append(best)
            if all_remote is not best:
                deployments.append(all_remote)
    return deployments


def _pipeline_deployments(singles: Sequence[Deployment],
                          edge_devices: Sequence[str], link: str,
                          max_depth: int, runner: Runner) -> list[Deployment]:
    """Homogeneous device pipelines, depth 2..max_depth, per edge device."""
    from repro.distribution.pipeline import lower_pipeline

    best_scenario = {d.devices[0]: d.stages[0].scenario for d in singles}
    deployments = []
    for device in edge_devices:
        scenario = best_scenario.get(device)
        if scenario is None:
            continue
        for depth in range(2, max_depth + 1):
            try:
                deployments.append(lower_pipeline(
                    [scenario] * depth, link, runner=runner))
            except ValueError:
                break  # more stages than schedulable ops
    return deployments


def search_placements(model: str, *,
                      edge_devices: Sequence[str] | None = None,
                      remote_devices: Sequence[str] = (),
                      link: str = "wifi",
                      slo: SLO | None = None,
                      max_pipeline_depth: int = 3,
                      runner: Runner | None = None) -> PlacementFrontier:
    """Enumerate, price and rank every placement of ``model``.

    Args:
        model: zoo model name.
        edge_devices: devices that may host the input-side stage
            (default: every edge platform in the candidates table).
        remote_devices: additional offload-only endpoints (HPC/cloud) —
            they join splits as the remote side and compete as single
            nodes, but never start a pipeline.
        link: NetworkLink preset name pricing every transfer.
        slo: optional feasibility gate; the frontier is drawn over the
            feasible candidates when given.
        max_pipeline_depth: deepest homogeneous pipeline to consider.
        runner: scenario runner (defaults to the process-wide one).
    """
    from repro.distribution.network import resolve_link

    if runner is None:
        runner = default_runner()
    if edge_devices is None:
        edge_devices = tuple(BEST_FRAMEWORK_CANDIDATES)
    edge_devices = tuple(edge_devices)
    all_devices = edge_devices + tuple(
        device for device in remote_devices if device not in edge_devices)
    link_name = resolve_link(link).name

    singles = _single_node_deployments(model, all_devices, runner)
    deployments = list(singles)
    deployments.extend(_split_deployments(
        model, edge_devices, all_devices, singles, link_name, runner))
    deployments.extend(_pipeline_deployments(
        singles, edge_devices, link_name, max_pipeline_depth, runner))

    unique: dict[str, Deployment] = {}
    for deployment in deployments:
        unique.setdefault(deployment.key, deployment)

    candidates = []
    for deployment in unique.values():
        feasible, reason = (True, "no SLO") if slo is None \
            else slo.check(deployment)
        candidates.append(PlacementCandidate(
            deployment=deployment,
            latency_s=deployment.latency_s,
            throughput_rps=deployment.throughput_rps,
            energy_j=deployment.energy_per_inference_j,
            cost_usd=_deployment_cost_usd(deployment),
            meets_slo=feasible,
            slo_reason=reason,
        ))
    candidates.sort(key=lambda c: (c.latency_s, c.energy_j, c.cost_usd,
                                   c.deployment.key))

    pool = [c for c in candidates if c.meets_slo] if slo is not None \
        else candidates
    kept = frontier_indices([c.objectives for c in pool])
    frontier = tuple(pool[index] for index in kept)

    return PlacementFrontier(model=model, link=link_name, slo=slo,
                             candidates=tuple(candidates), frontier=frontier)


__all__ = [
    "PlacementCandidate",
    "PlacementFrontier",
    "REMOTE_FRAMEWORK_CANDIDATES",
    "SLO",
    "search_placements",
]
