"""Placement: one Deployment type for every way a model can be served.

:mod:`repro.placement.deployment` defines the unified type; the lowering
rules in :mod:`repro.distribution` emit it; the fleet prices and serves
it; and :mod:`repro.placement.optimizer` searches the placement space —
single-node, Neurosurgeon splits, device pipelines — for the Pareto
frontier of (latency, energy, cost) under an SLO.
"""

from repro.placement.deployment import DEPLOYMENT_KINDS, Deployment, StageSpec
from repro.placement.cost import DEVICE_PRICE_USD, device_price_usd
from repro.placement.optimizer import (
    SLO,
    PlacementCandidate,
    PlacementFrontier,
    search_placements,
)

__all__ = [
    "DEPLOYMENT_KINDS",
    "DEVICE_PRICE_USD",
    "Deployment",
    "PlacementCandidate",
    "PlacementFrontier",
    "SLO",
    "StageSpec",
    "device_price_usd",
    "search_placements",
]
