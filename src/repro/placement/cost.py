"""Hardware cost axis for the placement optimizer.

The paper characterizes latency, energy and temperature; a deployment
decision in practice also weighs what the hardware *costs*.  This table
records one launch-era street price (USD) per registered device —
Table III's edge boards at their retail prices, the HPC comparison
points at their launch MSRPs.  A deployment's cost is the sum of its
stage devices' prices (two Nanos in a pipeline are two boards).

The table is validated against the device registry by the TAB014 rule
(:mod:`repro.check.tables`): every registered device must be priced and
every price must name a registered device.
"""

from __future__ import annotations

from repro.core.errors import UnknownEntryError
from repro.core.registry import canonical_name

#: device name -> approximate unit price in USD at the paper's timeframe.
DEVICE_PRICE_USD: dict[str, float] = {
    "Raspberry Pi 3B": 35.0,
    "Jetson TX2": 599.0,
    "Jetson Nano": 99.0,
    "EdgeTPU": 149.0,
    "Movidius NCS": 79.0,
    "PYNQ-Z1": 199.0,
    "Xeon E5-2696 v4": 4599.0,
    "GTX Titan X": 999.0,
    "Titan Xp": 1199.0,
    "RTX 2080": 699.0,
}

_CANONICAL_PRICES = {canonical_name(name): price
                     for name, price in DEVICE_PRICE_USD.items()}


def device_price_usd(device_name: str) -> float:
    """Unit price of one device (aliases canonicalize like everywhere else)."""
    try:
        return _CANONICAL_PRICES[canonical_name(device_name)]
    except KeyError:
        options = ", ".join(sorted(DEVICE_PRICE_USD))
        raise UnknownEntryError(
            f"no price for device {device_name!r}; priced: {options}") from None


__all__ = ["DEVICE_PRICE_USD", "device_price_usd"]
