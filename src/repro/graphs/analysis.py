"""Graph analysis: arithmetic intensity and liveness timelines.

The paper's Table I column FLOP/Param is a whole-model compute-intensity
proxy; the engine's behaviour is really decided per op.  These utilities
expose that structure: each op's operational intensity (MACs per byte
moved), its position against a device's roofline ridge, and the activation
liveness timeline behind ``peak_activation_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs import ops as O
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class OpIntensity:
    """One op's roofline coordinates."""

    name: str
    op_type: str
    macs: int
    bytes_moved: int
    intensity: float  # MACs per byte

    def bound_on(self, ridge_macs_per_byte: float) -> str:
        """"compute" when the op sits right of the device's ridge point."""
        return "compute" if self.intensity >= ridge_macs_per_byte else "memory"


def op_intensity(op: O.Op) -> OpIntensity:
    """Operational intensity of one op (dense weights, annotated dtypes)."""
    bytes_moved = (op.traffic_weight_bytes(False)
                   + op.input_bytes() + op.output_bytes())
    return OpIntensity(
        name=op.name,
        op_type=type(op).__name__,
        macs=op.macs,
        bytes_moved=bytes_moved,
        intensity=op.macs / bytes_moved if bytes_moved else float("inf"),
    )


def intensity_profile(graph: Graph) -> list[OpIntensity]:
    """Roofline coordinates for every schedulable op, in schedule order."""
    return [op_intensity(op) for op in graph.schedulable_ops()]


def ridge_point(peak_macs_per_s: float, bandwidth_bytes_per_s: float) -> float:
    """The intensity (MACs/byte) where a device's roofline bends."""
    if peak_macs_per_s <= 0 or bandwidth_bytes_per_s <= 0:
        raise ValueError("peak and bandwidth must be positive")
    # The MACs/byte intensity has no Quantity class; the roofline name is
    # standard vocabulary, so it stays suffix-free.
    return peak_macs_per_s / bandwidth_bytes_per_s  # repro: allow[UNIT008]


def bound_split(graph: Graph, peak_macs_per_s: float,
                bandwidth_bytes_per_s: float) -> tuple[float, float]:
    """(compute-bound, memory-bound) MAC fractions against a roofline.

    A purely analytical classification (no framework efficiencies): the
    structural version of the engine's per-op ``bound`` labels.
    """
    ridge = ridge_point(peak_macs_per_s, bandwidth_bytes_per_s)
    compute_macs = 0
    total_macs = 0
    for entry in intensity_profile(graph):
        total_macs += entry.macs
        if entry.bound_on(ridge) == "compute":
            compute_macs += entry.macs
    if total_macs == 0:
        return 0.0, 0.0
    compute_fraction = compute_macs / total_macs
    return compute_fraction, 1.0 - compute_fraction


@dataclass(frozen=True)
class LivenessSample:
    """Live activation bytes while one op executes (inputs + its output)."""

    op_name: str
    live_bytes: int


def liveness_timeline(graph: Graph) -> list[LivenessSample]:
    """Activation liveness at each materializing op (inputs included), in
    schedule order.

    ``max(sample.live_bytes)`` equals ``graph.peak_activation_bytes()``;
    the timeline shows WHERE the peak sits (mid-network for DenseNet's
    dense concatenations, at the first convolutions for VGG).
    """
    remaining_uses: dict[int, int] = {id(op): 0 for op in graph.ops}
    anchor = graph._chain_anchor
    for op in graph.ops:
        consumer = anchor(op)
        for parent in op.inputs:
            producer = anchor(parent)
            if producer is not consumer:
                remaining_uses[id(producer)] += 1
    for op in graph.outputs:
        remaining_uses[id(anchor(op))] += 1

    timeline: list[LivenessSample] = []
    live = 0
    alive: dict[int, int] = {}
    for op in graph.ops:
        if not op.is_fused_away:
            produced = op.output_bytes()
            alive[id(op)] = produced
            live += produced
            timeline.append(LivenessSample(op_name=op.name, live_bytes=live))
        consumer = anchor(op)
        for parent in op.inputs:
            producer = anchor(parent)
            if producer is consumer:
                continue
            remaining_uses[id(producer)] -= 1
            if remaining_uses[id(producer)] == 0:
                live -= alive.pop(id(producer), 0)
    return timeline


def peak_location(graph: Graph) -> tuple[str, int]:
    """(op name, bytes) where activation liveness peaks."""
    timeline = liveness_timeline(graph)
    if not timeline:
        raise ValueError(f"graph {graph.name!r} has no schedulable ops")
    sample = max(timeline, key=lambda s: s.live_bytes)
    return sample.op_name, sample.live_bytes
