"""Neural-network computation-graph IR.

This package is the substrate every framework model operates on: a small
dataflow IR with enough fidelity to account for multiply-accumulates,
parameters, weight bytes and activation liveness — the quantities that drive
Table I and the execution engine's roofline model.
"""

from repro.graphs.graph import Graph, GraphBuilder
from repro.graphs.ops import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Conv3D,
    Dense,
    DepthwiseConv2D,
    DetectionOutput,
    Dropout,
    Flatten,
    GlobalPool2D,
    Input,
    LocalResponseNorm,
    Op,
    OpCategory,
    Pad,
    Pool2D,
    Pool3D,
    Reshape,
    Softmax,
    Upsample2D,
)
from repro.graphs.tensor import DType, TensorShape

__all__ = [
    "Activation",
    "Add",
    "BatchNorm",
    "Concat",
    "Conv2D",
    "Conv3D",
    "DType",
    "Dense",
    "DepthwiseConv2D",
    "DetectionOutput",
    "Dropout",
    "Flatten",
    "GlobalPool2D",
    "Graph",
    "GraphBuilder",
    "Input",
    "LocalResponseNorm",
    "Op",
    "OpCategory",
    "Pad",
    "Pool2D",
    "Pool3D",
    "Reshape",
    "Softmax",
    "TensorShape",
    "Upsample2D",
]
