"""Weight pruning.

Pruning annotates parametric ops with a weight sparsity.  Whether that
sparsity turns into saved compute/traffic is a *framework* property: every
framework saves storage, but only TensorFlow/TFLite/TensorRT exploit the
fragmented weights during execution (Table II, "Pruning" row).
"""

from __future__ import annotations

from repro.graphs import ops as O
from repro.graphs.graph import Graph

PRUNABLE = (O.Conv2D, O.Conv3D, O.Dense)


def prune_graph(graph: Graph, sparsity: float, structured: bool = False) -> Graph:
    """Return a clone with ``sparsity`` fraction of weights zeroed.

    Args:
        graph: source graph.
        sparsity: fraction in [0, 1) of weights removed from conv/dense ops.
        structured: structured pruning removes whole filters, which every
            backend can exploit; it is recorded in metadata so frameworks
            without sparse kernels may still benefit.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    pruned = graph.clone()
    for op in pruned.ops:
        if isinstance(op, PRUNABLE):
            op.weight_sparsity = sparsity
    pruned.metadata["weight_sparsity"] = sparsity
    pruned.metadata["structured_pruning"] = structured
    return pruned
