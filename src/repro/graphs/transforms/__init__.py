"""Graph-level optimizations (the Table II feature set).

Each transform takes a :class:`~repro.graphs.graph.Graph` and returns a new
annotated clone; zoo instances are never mutated.  Which transforms a
deployment actually applies is decided by the framework models in
:mod:`repro.frameworks`.
"""

from repro.graphs.transforms.fusion import fuse_graph, fusion_ratio
from repro.graphs.transforms.freeze import freeze_graph
from repro.graphs.transforms.pruning import prune_graph
from repro.graphs.transforms.quantization import quantize_graph

__all__ = ["freeze_graph", "fuse_graph", "fusion_ratio", "prune_graph", "quantize_graph"]
