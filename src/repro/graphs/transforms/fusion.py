"""Kernel fusion.

Fuses BatchNorm and pointwise Activation ops into their producing
convolution / dense layer when the chain is linear (each intermediate has a
single consumer).  Fused ops keep their accounting but are marked
``fused_into``, so the engine skips their kernel dispatch and the memory
round-trip of the intermediate activation — exactly the traffic-saving the
paper describes for TFLite, NCSDK and TensorRT (Section III-B).
"""

from __future__ import annotations

from repro.graphs import ops as O
from repro.graphs.graph import Graph

FUSABLE_PRODUCERS = (O.Conv2D, O.Conv3D, O.Dense)
FUSABLE_FOLLOWERS = (O.BatchNorm, O.Activation)


def _consumer_map(graph: Graph) -> dict[int, list[O.Op]]:
    consumers: dict[int, list[O.Op]] = {id(op): [] for op in graph.ops}
    for op in graph.ops:
        for parent in op.inputs:
            consumers[id(parent)].append(op)
    return consumers


def fuse_graph(graph: Graph) -> Graph:
    """Return a clone with conv→bn→activation chains fused."""
    fused = graph.clone()
    consumers = _consumer_map(fused)
    for op in fused.ops:
        if not isinstance(op, FUSABLE_PRODUCERS) or op.is_fused_away:
            continue
        anchor = op
        cursor = op
        while True:
            next_ops = consumers[id(cursor)]
            if len(next_ops) != 1:
                break
            follower = next_ops[0]
            if not isinstance(follower, FUSABLE_FOLLOWERS) or follower.is_fused_away:
                break
            # Softmax subclasses Activation conceptually but is a separate
            # class here, so only true pointwise activations reach this point.
            follower.fused_into = anchor
            anchor.absorbed.append(follower)
            cursor = follower
    fused.metadata["fused"] = True
    return fused


def fusion_ratio(graph: Graph) -> float:
    """Fraction of non-input ops whose dispatch was eliminated by fusion."""
    candidates = [op for op in graph.ops if not isinstance(op, O.Input)]
    if not candidates:
        return 0.0
    return sum(1 for op in candidates if op.is_fused_away) / len(candidates)
