"""Weight/activation quantization.

Post-training quantization rewrites the datatype annotations of every op;
quantization-aware deployments (EdgeTPU via TFLite) additionally require the
model to advertise QAT support — that gate lives in the framework layer and
reproduces the paper's EdgeTPU conversion barriers (Table V, Section VI-A).
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.graphs.tensor import DType


def quantize_graph(graph: Graph, weight_dtype: DType, act_dtype: DType | None = None) -> Graph:
    """Return a clone whose ops carry the requested datatypes.

    Args:
        graph: source graph (not modified).
        weight_dtype: storage/compute type for parameters.
        act_dtype: activation type; defaults to ``weight_dtype`` except for
            binary weights, where activations stay INT8 (FINN-style).
    """
    if act_dtype is None:
        act_dtype = DType.INT8 if weight_dtype is DType.BINARY else weight_dtype
    quantized = graph.clone()
    for op in quantized.ops:
        op.weight_dtype = weight_dtype
        op.act_dtype = act_dtype
    quantized.metadata["weight_dtype"] = weight_dtype.value
    quantized.metadata["act_dtype"] = act_dtype.value
    return quantized
