"""Graph freezing (TFLite-style deployment preparation).

Freezing converts variables to constants and strips training-only
operations, which the paper credits for TFLite's reduced memory footprint
(Section III-A).  Here it marks Dropout ops as folded away and flags the
graph so frameworks skip variable-initialization work during session setup.
"""

from __future__ import annotations

from repro.graphs import ops as O
from repro.graphs.graph import Graph


def freeze_graph(graph: Graph) -> Graph:
    """Return a frozen clone: training-only ops folded, variables constant."""
    frozen = graph.clone()
    for op in frozen.ops:
        if isinstance(op, O.Dropout) and not op.is_fused_away:
            producer = op.inputs[0]
            op.fused_into = producer
            producer.absorbed.append(op)
    frozen.metadata["frozen"] = True
    return frozen
