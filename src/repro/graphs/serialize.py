"""Graph serialization: a minimal ONNX-like exchange format.

Section III laments that "each framework usually requires its own model
description format" and points at the nascent ONNX effort.  This module
gives the IR one canonical JSON form so models round-trip between tools:
``graph_to_dict`` / ``graph_from_dict`` plus file helpers.

The format stores topology (ops reference producers by name), constructor
attributes, and the transform annotations (datatypes, sparsity, fusion
links), so a converted-and-reloaded graph deploys identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.graphs import ops as O
from repro.graphs.graph import Graph
from repro.graphs.tensor import DType, TensorShape

FORMAT_VERSION = 1

# type name -> (attribute extractor, constructor). Constructors receive
# (name, inputs, attrs) and return the op.
_SERIALIZERS: dict[str, tuple[Callable[[O.Op], dict], Callable[[str, list, dict], O.Op]]] = {}


def _register(op_cls, extract, construct):
    _SERIALIZERS[op_cls.__name__] = (extract, construct)


_register(
    O.Input,
    lambda op: {"shape": list(op.output_shape.dims)},
    lambda name, inputs, a: O.Input(name, TensorShape(*a["shape"])),
)
_register(
    O.Conv2D,
    lambda op: {
        "out_channels": op.out_channels, "kernel": list(op.kernel),
        "stride": list(op.stride), "padding": op.padding,
        "groups": op.groups, "dilation": op.dilation, "use_bias": op.use_bias,
    },
    lambda name, inputs, a: O.Conv2D(
        name, inputs, a["out_channels"], tuple(a["kernel"]),
        stride=tuple(a["stride"]), padding=a["padding"], groups=a["groups"],
        dilation=a["dilation"], use_bias=a["use_bias"],
    ),
)
_register(
    O.DepthwiseConv2D,
    lambda op: {
        "kernel": list(op.kernel), "stride": list(op.stride),
        "padding": op.padding, "channel_multiplier": op.channel_multiplier,
        "use_bias": op.use_bias,
    },
    lambda name, inputs, a: O.DepthwiseConv2D(
        name, inputs, tuple(a["kernel"]), stride=tuple(a["stride"]),
        padding=a["padding"], channel_multiplier=a["channel_multiplier"],
        use_bias=a["use_bias"],
    ),
)
_register(
    O.Conv3D,
    lambda op: {
        "out_channels": op.out_channels, "kernel": list(op.kernel),
        "stride": list(op.stride), "padding": op.padding, "use_bias": op.use_bias,
    },
    lambda name, inputs, a: O.Conv3D(
        name, inputs, a["out_channels"], tuple(a["kernel"]),
        stride=tuple(a["stride"]), padding=a["padding"], use_bias=a["use_bias"],
    ),
)
_register(
    O.Dense,
    lambda op: {"units": op.units, "use_bias": op.use_bias},
    lambda name, inputs, a: O.Dense(name, inputs, a["units"], use_bias=a["use_bias"]),
)
_register(O.BatchNorm, lambda op: {}, lambda name, inputs, a: O.BatchNorm(name, inputs))
_register(
    O.Activation,
    lambda op: {"kind": op.kind},
    lambda name, inputs, a: O.Activation(name, inputs, kind=a["kind"]),
)
_register(
    O.Pool2D,
    lambda op: {
        "kernel": list(op.kernel), "stride": list(op.stride),
        "padding": op.padding, "kind": op.kind,
    },
    lambda name, inputs, a: O.Pool2D(
        name, inputs, tuple(a["kernel"]), stride=tuple(a["stride"]),
        padding=a["padding"], kind=a["kind"],
    ),
)
_register(
    O.Pool3D,
    lambda op: {
        "kernel": list(op.kernel), "stride": list(op.stride), "kind": op.kind,
        "out": list(op.output_shape.dims),
    },
    # ceil_mode is not stored on the op; reconstruct by matching output.
    lambda name, inputs, a: _rebuild_pool3d(name, inputs, a),
)
_register(
    O.GlobalPool2D,
    lambda op: {"kind": op.kind},
    lambda name, inputs, a: O.GlobalPool2D(name, inputs, kind=a["kind"]),
)
_register(O.Add, lambda op: {}, lambda name, inputs, a: O.Add(name, inputs))
_register(O.Concat, lambda op: {}, lambda name, inputs, a: O.Concat(name, inputs))
_register(O.Flatten, lambda op: {}, lambda name, inputs, a: O.Flatten(name, inputs))
_register(
    O.Reshape,
    lambda op: {"shape": list(op.output_shape.dims)},
    lambda name, inputs, a: O.Reshape(name, inputs, TensorShape(*a["shape"])),
)
_register(
    O.Dropout,
    lambda op: {"rate": op.rate},
    lambda name, inputs, a: O.Dropout(name, inputs, rate=a["rate"]),
)
_register(O.Softmax, lambda op: {}, lambda name, inputs, a: O.Softmax(name, inputs))
_register(
    O.LocalResponseNorm,
    lambda op: {"size": op.size},
    lambda name, inputs, a: O.LocalResponseNorm(name, inputs, size=a["size"]),
)
_register(
    O.Upsample2D,
    lambda op: {"factor": op.factor},
    lambda name, inputs, a: O.Upsample2D(name, inputs, factor=a["factor"]),
)
_register(
    O.Pad,
    lambda op: {"pad": list(op.pad)},
    lambda name, inputs, a: O.Pad(name, inputs, pad=tuple(a["pad"])),
)
_register(
    O.DetectionOutput,
    lambda op: {"num_anchors": op.num_anchors, "num_classes": op.num_classes},
    lambda name, inputs, a: O.DetectionOutput(
        name, inputs, num_anchors=a["num_anchors"], num_classes=a["num_classes"]),
)
_register(
    O.Embedding,
    lambda op: {"vocab_size": op.vocab_size, "dim": op.dim},
    lambda name, inputs, a: O.Embedding(name, inputs, vocab_size=a["vocab_size"],
                                        dim=a["dim"]),
)
_register(
    O.LSTM,
    lambda op: {"hidden": op.hidden, "return_sequences": op.return_sequences},
    lambda name, inputs, a: O.LSTM(name, inputs, hidden=a["hidden"],
                                   return_sequences=a["return_sequences"]),
)
_register(
    O.GRU,
    lambda op: {"hidden": op.hidden, "return_sequences": op.return_sequences},
    lambda name, inputs, a: O.GRU(name, inputs, hidden=a["hidden"],
                                  return_sequences=a["return_sequences"]),
)
_register(O.LastTimestep, lambda op: {}, lambda name, inputs, a: O.LastTimestep(name, inputs))


def _rebuild_pool3d(name: str, inputs: list, attrs: dict) -> O.Pool3D:
    for ceil_mode in (False, True):
        candidate = O.Pool3D(name, inputs, tuple(attrs["kernel"]),
                             stride=tuple(attrs["stride"]), kind=attrs["kind"],
                             ceil_mode=ceil_mode)
        if list(candidate.output_shape.dims) == attrs["out"]:
            return candidate
    raise ValueError(f"cannot reconstruct Pool3D {name!r}: no ceil mode matches")


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialize a graph (topology, attributes, annotations) to plain data."""
    ops_payload = []
    for op in graph.ops:
        type_name = type(op).__name__
        if type_name not in _SERIALIZERS:
            raise ValueError(f"no serializer registered for op type {type_name}")
        extract, _construct = _SERIALIZERS[type_name]
        ops_payload.append({
            "name": op.name,
            "type": type_name,
            "inputs": [parent.name for parent in op.inputs],
            "attrs": extract(op),
            "annotations": {
                "weight_dtype": op.weight_dtype.value,
                "act_dtype": op.act_dtype.value,
                "weight_sparsity": op.weight_sparsity,
                "fused_into": op.fused_into.name if op.fused_into else None,
            },
        })
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "metadata": dict(graph.metadata),
        "ops": ops_payload,
    }


def graph_from_dict(payload: dict[str, Any]) -> Graph:
    """Reconstruct a graph serialized by :func:`graph_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    by_name: dict[str, O.Op] = {}
    ops: list[O.Op] = []
    for entry in payload["ops"]:
        type_name = entry["type"]
        if type_name not in _SERIALIZERS:
            raise ValueError(f"unknown op type {type_name!r}")
        _extract, construct = _SERIALIZERS[type_name]
        try:
            inputs = [by_name[parent] for parent in entry["inputs"]]
        except KeyError as missing:
            raise ValueError(
                f"op {entry['name']!r} references undefined producer {missing}"
            ) from None
        op = construct(entry["name"], inputs, entry["attrs"])
        annotations = entry.get("annotations", {})
        op.weight_dtype = DType(annotations.get("weight_dtype", "fp32"))
        op.act_dtype = DType(annotations.get("act_dtype", "fp32"))
        op.weight_sparsity = annotations.get("weight_sparsity", 0.0)
        by_name[op.name] = op
        ops.append(op)
    # Second pass: restore fusion links.
    for entry, op in zip(payload["ops"], ops):
        anchor_name = entry.get("annotations", {}).get("fused_into")
        if anchor_name:
            anchor = by_name[anchor_name]
            op.fused_into = anchor
            anchor.absorbed.append(op)
    return Graph(payload["name"], ops, metadata=payload.get("metadata", {}))


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=1))


def load_graph(path: str | Path) -> Graph:
    """Read a graph from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
