"""Symbolic dimension algebra for shape inference.

The shapes pass (``repro check shapes``) re-derives every tensor shape in a
graph from first principles.  To prove a graph is valid for *all* batch sizes
``N >= 1`` — not just the baked-in concrete dims — it needs dimensions that can
stay symbolic through conv/pool arithmetic.  This module provides that
algebra: :class:`SymDim` is an immutable affine-plus-products expression over
named dimensions, with floor division as an opaque-but-evaluable atom (the one
operation conv/pool output-length formulas need that affine arithmetic cannot
fold).

Design points:

* Expressions normalize on construction: ``dim("N") * 2 + dim("N")`` and
  ``3 * dim("N")`` are structurally equal (same hash, ``==``).  Constant
  subexpressions fold to plain ``int`` — arithmetic never returns a
  :class:`SymDim` wrapping a constant, so concrete graphs pay nothing.
* Floor division folds exactly when every coefficient and the constant are
  divisible (``(4 * N) // 2 == 2 * N``); otherwise it becomes an opaque atom
  evaluated at binding time.  ``ceil_div(x, k)`` normalizes to
  ``(x + k - 1) // k`` so the two spellings compare equal.
* ``evaluate(bindings)`` plugs concrete ints in for named dims and returns a
  plain ``int`` — the bridge between the symbolic run and the stored concrete
  accounting, compared at zero tolerance.

A dimension value anywhere in :mod:`repro.graphs` is ``int | SymDim`` (the
:data:`Dim` alias); helpers here (:func:`evaluate_dim`, :func:`free_symbols`,
:func:`prod_dims`) accept either.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

__all__ = [
    "Dim",
    "SymDim",
    "UnboundDimensionError",
    "ceil_div",
    "dim",
    "evaluate_dim",
    "floor_div",
    "free_symbols",
    "is_concrete",
    "prod_dims",
]


class UnboundDimensionError(KeyError):
    """Raised by ``evaluate`` when a named dim has no binding."""


# --------------------------------------------------------------------------
# atoms: the opaque factors a normalized expression is a combination of
# --------------------------------------------------------------------------


class _Atom:
    """A non-constant factor: a named dim, a floor-div, or a product."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        raise NotImplementedError

    def free_symbols(self) -> frozenset[str]:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError


class _Var(_Atom):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def key(self) -> tuple:
        return ("var", self.name)

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        try:
            return int(bindings[self.name])
        except KeyError:
            raise UnboundDimensionError(self.name) from None

    def free_symbols(self) -> frozenset[str]:
        return frozenset((self.name,))

    def render(self) -> str:
        return self.name


class _FloorDiv(_Atom):
    __slots__ = ("num", "den")

    def __init__(self, num: "SymDim", den: int):
        self.num = num
        self.den = den

    def key(self) -> tuple:
        return ("floordiv", self.num._key(), self.den)

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        return self.num.evaluate(bindings) // self.den

    def free_symbols(self) -> frozenset[str]:
        return self.num.free_symbols

    def render(self) -> str:
        return f"({self.num})//{self.den}"


class _Prod(_Atom):
    __slots__ = ("factors",)

    def __init__(self, factors: tuple[_Atom, ...]):
        self.factors = factors  # sorted by key, len >= 2

    def key(self) -> tuple:
        return ("prod",) + tuple(f.key() for f in self.factors)

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        out = 1
        for factor in self.factors:
            out *= factor.evaluate(bindings)
        return out

    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for factor in self.factors:
            out |= factor.free_symbols()
        return out

    def render(self) -> str:
        return "*".join(f.render() for f in self.factors)


def _atom_product(left: _Atom, right: _Atom) -> _Atom:
    factors: list[_Atom] = []
    for atom in (left, right):
        factors.extend(atom.factors if isinstance(atom, _Prod) else (atom,))
    factors.sort(key=lambda a: a.key())
    return _Prod(tuple(factors))


# --------------------------------------------------------------------------
# the expression: const + sum(coeff * atom)
# --------------------------------------------------------------------------


class SymDim:
    """An immutable symbolic dimension expression.

    Normal form: an integer constant plus a sorted sum of ``coeff * atom``
    terms with non-zero integer coefficients and at least one term (pure
    constants fold to plain ``int`` before a SymDim is ever built).
    """

    __slots__ = ("_const", "_terms", "_hash")

    def __init__(self, const: int, terms: tuple[tuple[_Atom, int], ...]):
        if not terms:
            raise ValueError("SymDim requires at least one symbolic term; "
                             "use a plain int for constants")
        self._const = const
        self._terms = terms
        self._hash = hash((const,) + tuple((a.key(), c) for a, c in terms))

    # -- construction ------------------------------------------------------

    @staticmethod
    def _make(const: int, terms: dict[tuple, tuple[_Atom, int]]) -> Dim:
        live = [(atom, coeff) for atom, coeff in terms.values() if coeff != 0]
        if not live:
            return const
        live.sort(key=lambda pair: pair[0].key())
        return SymDim(const, tuple(live))

    def _key(self) -> tuple:
        return (self._const,) + tuple((a.key(), c) for a, c in self._terms)

    # -- queries -----------------------------------------------------------

    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for atom, _ in self._terms:
            out |= atom.free_symbols()
        return out

    def evaluate(self, bindings: Mapping[str, int]) -> int:
        total = self._const
        for atom, coeff in self._terms:
            total += coeff * atom.evaluate(bindings)
        return total

    # -- arithmetic --------------------------------------------------------

    def _term_map(self) -> dict[tuple, tuple[_Atom, int]]:
        return {atom.key(): (atom, coeff) for atom, coeff in self._terms}

    def __add__(self, other: Dim) -> Dim:
        if isinstance(other, int):
            return SymDim(self._const + other, self._terms)
        if not isinstance(other, SymDim):
            return NotImplemented
        terms = self._term_map()
        for atom, coeff in other._terms:
            key = atom.key()
            prev = terms.get(key, (atom, 0))[1]
            terms[key] = (atom, prev + coeff)
        return SymDim._make(self._const + other._const, terms)

    __radd__ = __add__

    def __neg__(self) -> "SymDim":
        return SymDim(-self._const, tuple((a, -c) for a, c in self._terms))

    def __sub__(self, other: Dim) -> Dim:
        if isinstance(other, int):
            return SymDim(self._const - other, self._terms)
        if not isinstance(other, SymDim):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Dim) -> Dim:
        if isinstance(other, int):
            return (-self) + other
        return NotImplemented

    def __mul__(self, other: Dim) -> Dim:
        if isinstance(other, int):
            if other == 0:
                return 0
            return SymDim(self._const * other,
                          tuple((a, c * other) for a, c in self._terms))
        if not isinstance(other, SymDim):
            return NotImplemented
        terms: dict[tuple, tuple[_Atom, int]] = {}

        def _accumulate(atom: _Atom, coeff: int) -> None:
            key = atom.key()
            prev = terms.get(key, (atom, 0))[1]
            terms[key] = (atom, prev + coeff)

        # (c1 + sum a_i t_i) * (c2 + sum b_j u_j), distributed
        for atom, coeff in self._terms:
            if other._const:
                _accumulate(atom, coeff * other._const)
            for oatom, ocoeff in other._terms:
                _accumulate(_atom_product(atom, oatom), coeff * ocoeff)
        if self._const:
            for oatom, ocoeff in other._terms:
                _accumulate(oatom, self._const * ocoeff)
        return SymDim._make(self._const * other._const, terms)

    __rmul__ = __mul__

    def __floordiv__(self, den: int) -> Dim:
        if not isinstance(den, int):
            return NotImplemented
        if den <= 0:
            raise ValueError(f"floor division by non-positive {den}")
        if den == 1:
            return self
        if self._const % den == 0 and all(c % den == 0 for _, c in self._terms):
            return SymDim(self._const // den,
                          tuple((a, c // den) for a, c in self._terms))
        return SymDim(0, ((_FloorDiv(self, den), 1),))

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SymDim):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts: list[str] = []
        for atom, coeff in self._terms:
            text = atom.render()
            if coeff == 1:
                parts.append(text)
            elif coeff == -1:
                parts.append(f"-{text}")
            else:
                parts.append(f"{coeff}*{text}")
        rendered = " + ".join(parts).replace("+ -", "- ")
        if self._const:
            rendered = f"{rendered} + {self._const}" if self._const > 0 \
                else f"{rendered} - {-self._const}"
        return rendered

    def __bool__(self) -> bool:
        return True


Dim = Union[int, SymDim]


# --------------------------------------------------------------------------
# module-level helpers over int | SymDim
# --------------------------------------------------------------------------


def dim(name: str) -> SymDim:
    """A named symbolic dimension, e.g. ``dim("N")``."""
    if not name or not name.isidentifier():
        raise ValueError(f"dimension name must be an identifier, got {name!r}")
    return SymDim(0, ((_Var(name), 1),))


def floor_div(value: Dim, den: int) -> Dim:
    """``value // den`` for either a concrete or symbolic value."""
    if isinstance(value, int):
        if den <= 0:
            raise ValueError(f"floor division by non-positive {den}")
        return value // den
    return value // den


def ceil_div(value: Dim, den: int) -> Dim:
    """``ceil(value / den)``, normalized to ``(value + den - 1) // den``."""
    return floor_div(value + (den - 1), den)


def evaluate_dim(value: Dim, bindings: Mapping[str, int]) -> int:
    """Concretize a dim: ints pass through, SymDims are evaluated."""
    if isinstance(value, int):
        return value
    return value.evaluate(bindings)


def free_symbols(value: Dim) -> frozenset[str]:
    if isinstance(value, int):
        return frozenset()
    return value.free_symbols


def is_concrete(value: Dim) -> bool:
    return isinstance(value, int)


def prod_dims(values: Iterable[Dim]) -> Dim:
    """Product of dims; stays a plain int when every factor is concrete."""
    out: Dim = 1
    for value in values:
        out = out * value
    return out
