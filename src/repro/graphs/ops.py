"""Graph operators with cost accounting.

Every operator knows its output shape, learnable parameter count and
multiply-accumulate count for one single-batch inference.  The convention
follows the paper's Table I: "FLOP" counts one multiply-accumulate as one
operation, and cheap pointwise work (batch-norm, activations, pooling) is
counted at one operation per output element.

Transforms (`repro.graphs.transforms`) annotate ops in place: datatypes,
weight sparsity, and fusion markers.  The execution engine interprets these
annotations; operators themselves stay framework-agnostic.
"""

from __future__ import annotations

import enum
import math

from repro.graphs.tensor import (
    DType,
    TensorShape,
    conv_output_length,
    pool_output_length,
)


class OpCategory(enum.Enum):
    """Operator classes the engine prices differently."""

    INPUT = "input"
    CONV = "conv"
    DENSE = "dense"
    NORM = "norm"
    ACTIVATION = "activation"
    POOL = "pool"
    ELEMENTWISE = "elementwise"
    SHAPE = "shape"
    DETECTION = "detection"
    EMBEDDING = "embedding"
    RECURRENT = "recurrent"


class Op:
    """Base operator.

    Subclasses set ``output_shape``, ``params`` and ``macs`` during
    construction; they never change afterwards.  The mutable annotation
    fields (``weight_dtype``, ``act_dtype``, ``weight_sparsity``,
    ``fused_into`` / ``absorbed``) are written by graph transforms.
    """

    category: OpCategory = OpCategory.ELEMENTWISE

    def __init__(self, name: str, inputs: list["Op"]):
        self.name = name
        self.inputs = list(inputs)
        self.output_shape: TensorShape = TensorShape(1)
        self.params: int = 0
        self.macs: int = 0
        # --- transform annotations -------------------------------------
        self.weight_dtype: DType = DType.FP32
        self.act_dtype: DType = DType.FP32
        self.weight_sparsity: float = 0.0
        self.fused_into: "Op | None" = None
        self.absorbed: list["Op"] = []

    # -- accounting ------------------------------------------------------
    @property
    def is_fused_away(self) -> bool:
        """True when this op's work has been merged into a producer op."""
        return self.fused_into is not None

    def weight_bytes(self) -> int:
        """Bytes of weights this op reads per inference (dense layout)."""
        return math.ceil(self.params * self.weight_dtype.bytes)

    def effective_weight_bytes(self, exploit_sparsity: bool) -> int:
        """Weight bytes after (optionally) skipping pruned weights."""
        dense = self.weight_bytes()
        if not exploit_sparsity or self.weight_sparsity <= 0.0:
            return dense
        return math.ceil(dense * (1.0 - self.weight_sparsity))

    def effective_macs(self, exploit_sparsity: bool) -> int:
        """MACs after (optionally) skipping work on pruned weights."""
        if not exploit_sparsity or self.weight_sparsity <= 0.0 or self.params == 0:
            return self.macs
        return math.ceil(self.macs * (1.0 - self.weight_sparsity))

    def traffic_weight_bytes(self, exploit_sparsity: bool) -> int:
        """Weight bytes actually read per inference.

        Defaults to the full (sparsity-adjusted) weight set; ops that touch
        only part of their parameters (embedding lookups) override this.
        """
        return self.effective_weight_bytes(exploit_sparsity)

    @property
    def parallel_macs(self) -> int:
        """MACs available to execute concurrently.

        Equal to ``macs`` for feed-forward ops; recurrent ops expose only
        one timestep of work at a time, which is why they fill wide units
        poorly.
        """
        return self.macs

    def input_bytes(self) -> int:
        return sum(math.ceil(op.output_shape.numel * self.act_dtype.bytes) for op in self.inputs)

    def output_bytes(self) -> int:
        return math.ceil(self.output_shape.numel * self.act_dtype.bytes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, out={self.output_shape.dims})"


def _single_input(inputs: list[Op], op_name: str) -> Op:
    if len(inputs) != 1:
        raise ValueError(f"{op_name} expects exactly one input, got {len(inputs)}")
    return inputs[0]


class Input(Op):
    """Graph input placeholder."""

    category = OpCategory.INPUT

    def __init__(self, name: str, shape: TensorShape):
        super().__init__(name, [])
        self.output_shape = shape


class Conv2D(Op):
    """2-D convolution (optionally grouped / dilated)."""

    category = OpCategory.CONV

    def __init__(
        self,
        name: str,
        inputs: list[Op],
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str | int = "same",
        groups: int = 1,
        dilation: int = 1,
        use_bias: bool = True,
    ):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Conv2D")
        if source.output_shape.rank != 3:
            raise ValueError(f"Conv2D needs a (C, H, W) input, got {source.output_shape}")
        in_channels, in_h, in_w = source.output_shape.dims
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        sh, sw = (stride, stride) if isinstance(stride, int) else stride
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} and out_channels={out_channels}"
            )
        out_h = conv_output_length(in_h, kh, sh, padding, dilation)
        out_w = conv_output_length(in_w, kw, sw, padding, dilation)
        self.out_channels = out_channels
        self.kernel = (kh, kw)
        self.stride = (sh, sw)
        self.padding = padding
        self.groups = groups
        self.dilation = dilation
        self.use_bias = use_bias
        self.output_shape = TensorShape(out_channels, out_h, out_w)
        weights = kh * kw * (in_channels // groups) * out_channels
        self.params = weights + (out_channels if use_bias else 0)
        self.macs = weights * out_h * out_w


class DepthwiseConv2D(Conv2D):
    """Depthwise convolution: one filter (per multiplier) per input channel."""

    def __init__(
        self,
        name: str,
        inputs: list[Op],
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] = 1,
        padding: str | int = "same",
        channel_multiplier: int = 1,
        use_bias: bool = True,
    ):
        in_channels = _single_input(inputs, "DepthwiseConv2D").output_shape.channels
        super().__init__(
            name,
            inputs,
            out_channels=in_channels * channel_multiplier,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=in_channels,
            use_bias=use_bias,
        )
        self.channel_multiplier = channel_multiplier


class Conv3D(Op):
    """3-D convolution over (C, T, H, W) video tensors (C3D)."""

    category = OpCategory.CONV

    def __init__(
        self,
        name: str,
        inputs: list[Op],
        out_channels: int,
        kernel: int | tuple[int, int, int],
        stride: int | tuple[int, int, int] = 1,
        padding: str | int = "same",
        use_bias: bool = True,
    ):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Conv3D")
        if source.output_shape.rank != 4:
            raise ValueError(f"Conv3D needs a (C, T, H, W) input, got {source.output_shape}")
        in_channels, in_t, in_h, in_w = source.output_shape.dims
        kt, kh, kw = (kernel,) * 3 if isinstance(kernel, int) else kernel
        st, sh, sw = (stride,) * 3 if isinstance(stride, int) else stride
        out_t = conv_output_length(in_t, kt, st, padding)
        out_h = conv_output_length(in_h, kh, sh, padding)
        out_w = conv_output_length(in_w, kw, sw, padding)
        self.out_channels = out_channels
        self.kernel = (kt, kh, kw)
        self.stride = (st, sh, sw)
        self.padding = padding
        self.use_bias = use_bias
        self.output_shape = TensorShape(out_channels, out_t, out_h, out_w)
        weights = kt * kh * kw * in_channels * out_channels
        self.params = weights + (out_channels if use_bias else 0)
        self.macs = weights * out_t * out_h * out_w


class Dense(Op):
    """Fully connected layer over a flat input."""

    category = OpCategory.DENSE

    def __init__(self, name: str, inputs: list[Op], units: int, use_bias: bool = True):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Dense")
        in_features = source.output_shape.numel
        self.units = units
        self.use_bias = use_bias
        self.output_shape = TensorShape(units)
        self.params = in_features * units + (units if use_bias else 0)
        self.macs = in_features * units


class BatchNorm(Op):
    """Batch normalization (inference mode: one scale-add per element).

    Only the learnable scale/shift count as parameters, matching the
    trainable-parameter convention the paper's Table I follows; the running
    statistics are buffers tracked in ``buffer_params``.
    """

    category = OpCategory.NORM

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        source = _single_input(inputs, "BatchNorm")
        channels = source.output_shape.channels
        self.output_shape = source.output_shape
        self.params = 2 * channels
        self.buffer_params = 2 * channels
        self.macs = source.output_shape.numel


class Activation(Op):
    """Pointwise nonlinearity (relu, relu6, leaky_relu, sigmoid, tanh, ...)."""

    category = OpCategory.ACTIVATION
    KINDS = ("relu", "relu6", "leaky_relu", "sigmoid", "tanh", "swish", "elu", "linear")

    def __init__(self, name: str, inputs: list[Op], kind: str = "relu"):
        super().__init__(name, inputs)
        if kind not in self.KINDS:
            raise ValueError(f"unknown activation kind {kind!r}; expected one of {self.KINDS}")
        source = _single_input(inputs, "Activation")
        self.kind = kind
        self.output_shape = source.output_shape
        self.macs = source.output_shape.numel


class Pool2D(Op):
    """2-D max/average pooling."""

    category = OpCategory.POOL

    def __init__(
        self,
        name: str,
        inputs: list[Op],
        kernel: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: str | int = "valid",
        kind: str = "max",
        ceil_mode: bool = False,
    ):
        super().__init__(name, inputs)
        if kind not in ("max", "avg"):
            raise ValueError(f"pool kind must be 'max' or 'avg', got {kind!r}")
        source = _single_input(inputs, "Pool2D")
        channels, in_h, in_w = source.output_shape.dims
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        if stride is None:
            stride = (kh, kw)
        sh, sw = (stride, stride) if isinstance(stride, int) else stride
        out_h = pool_output_length(in_h, kh, sh, padding, ceil_mode)
        out_w = pool_output_length(in_w, kw, sw, padding, ceil_mode)
        self.kind = kind
        self.kernel = (kh, kw)
        self.stride = (sh, sw)
        self.padding = padding
        self.ceil_mode = ceil_mode
        self.output_shape = TensorShape(channels, out_h, out_w)
        self.macs = out_h * out_w * channels * kh * kw


class Pool3D(Op):
    """3-D pooling for video tensors (C3D)."""

    category = OpCategory.POOL

    def __init__(
        self,
        name: str,
        inputs: list[Op],
        kernel: int | tuple[int, int, int],
        stride: int | tuple[int, int, int] | None = None,
        padding: str | int = "valid",
        kind: str = "max",
        ceil_mode: bool = False,
    ):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Pool3D")
        channels, in_t, in_h, in_w = source.output_shape.dims
        kt, kh, kw = (kernel,) * 3 if isinstance(kernel, int) else kernel
        if stride is None:
            stride = (kt, kh, kw)
        st, sh, sw = (stride,) * 3 if isinstance(stride, int) else stride
        out_t = pool_output_length(in_t, kt, st, padding, ceil_mode)
        out_h = pool_output_length(in_h, kh, sh, padding, ceil_mode)
        out_w = pool_output_length(in_w, kw, sw, padding, ceil_mode)
        self.kind = kind
        self.kernel = (kt, kh, kw)
        self.stride = (st, sh, sw)
        self.padding = padding
        self.ceil_mode = ceil_mode
        self.output_shape = TensorShape(channels, out_t, out_h, out_w)
        self.macs = out_t * out_h * out_w * channels * kt * kh * kw


class GlobalPool2D(Op):
    """Global spatial pooling down to (C,)."""

    category = OpCategory.POOL

    def __init__(self, name: str, inputs: list[Op], kind: str = "avg"):
        super().__init__(name, inputs)
        source = _single_input(inputs, "GlobalPool2D")
        self.kind = kind
        self.output_shape = TensorShape(source.output_shape.channels)
        self.macs = source.output_shape.numel


class Add(Op):
    """Elementwise addition (residual connections)."""

    category = OpCategory.ELEMENTWISE

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        if len(inputs) < 2:
            raise ValueError("Add needs at least two inputs")
        shapes = {op.output_shape.dims for op in inputs}
        if len(shapes) != 1:
            raise ValueError(f"Add inputs must share a shape, got {sorted(shapes)}")
        self.output_shape = inputs[0].output_shape
        self.macs = self.output_shape.numel * (len(inputs) - 1)


class Concat(Op):
    """Channel-axis concatenation (Inception/DenseNet-style blocks)."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        if len(inputs) < 2:
            raise ValueError("Concat needs at least two inputs")
        spatial = {op.output_shape.spatial for op in inputs}
        if len(spatial) != 1:
            raise ValueError(f"Concat inputs must share spatial dims, got {sorted(spatial)}")
        channels = sum(op.output_shape.channels for op in inputs)
        self.output_shape = TensorShape(channels, *inputs[0].output_shape.spatial)


class Flatten(Op):
    """Collapse a feature map to a flat vector."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        self.output_shape = _single_input(inputs, "Flatten").output_shape.flattened()


class Reshape(Op):
    """Element-preserving shape change."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op], shape: TensorShape):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Reshape")
        if shape.numel != source.output_shape.numel:
            raise ValueError(
                f"cannot reshape {source.output_shape} ({source.output_shape.numel} elements) "
                f"to {shape} ({shape.numel} elements)"
            )
        self.output_shape = shape


class Dropout(Op):
    """Dropout: identity at inference time, zero cost."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op], rate: float = 0.5):
        super().__init__(name, inputs)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.output_shape = _single_input(inputs, "Dropout").output_shape


class Softmax(Op):
    """Softmax over the final classifier logits."""

    category = OpCategory.ACTIVATION

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Softmax")
        self.output_shape = source.output_shape
        self.macs = 5 * source.output_shape.numel  # exp + sum + divide, amortized


class LocalResponseNorm(Op):
    """AlexNet-era local response normalization."""

    category = OpCategory.NORM

    def __init__(self, name: str, inputs: list[Op], size: int = 5):
        super().__init__(name, inputs)
        source = _single_input(inputs, "LocalResponseNorm")
        self.size = size
        self.output_shape = source.output_shape
        self.macs = source.output_shape.numel * size


class Upsample2D(Op):
    """Nearest-neighbour upsampling (YOLOv3 feature pyramid)."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op], factor: int = 2):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Upsample2D")
        channels, in_h, in_w = source.output_shape.dims
        self.factor = factor
        self.output_shape = TensorShape(channels, in_h * factor, in_w * factor)


class Pad(Op):
    """Explicit spatial zero-padding (DarkNet-style)."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op], pad: tuple[int, int]):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Pad")
        channels, in_h, in_w = source.output_shape.dims
        self.pad = pad
        self.output_shape = TensorShape(channels, in_h + 2 * pad[0], in_w + 2 * pad[1])


class Embedding(Op):
    """Token-embedding lookup over an integer sequence.

    Input is a token-id sequence shaped ``(T,)``; output is ``(T, dim)``.
    The whole table counts toward parameters/deployment footprint, but a
    single inference only reads the T looked-up rows.
    """

    category = OpCategory.EMBEDDING

    def __init__(self, name: str, inputs: list[Op], vocab_size: int, dim: int):
        super().__init__(name, inputs)
        source = _single_input(inputs, "Embedding")
        if source.output_shape.rank != 1:
            raise ValueError(f"Embedding needs a (T,) token sequence, got {source.output_shape}")
        if vocab_size <= 0 or dim <= 0:
            raise ValueError("vocab_size and dim must be positive")
        self.vocab_size = vocab_size
        self.dim = dim
        self.seq_len = source.output_shape.dims[0]
        self.output_shape = TensorShape(self.seq_len, dim)
        self.params = vocab_size * dim
        self.macs = 0  # a gather, no arithmetic

    def traffic_weight_bytes(self, exploit_sparsity: bool) -> int:
        touched = self.seq_len * self.dim
        return math.ceil(touched * self.weight_dtype.bytes)


class _RecurrentLayer(Op):
    """Shared machinery for gated recurrent layers over (T, F) inputs."""

    category = OpCategory.RECURRENT
    GATES = 1  # overridden

    def __init__(self, name: str, inputs: list[Op], hidden: int,
                 return_sequences: bool = True):
        super().__init__(name, inputs)
        source = _single_input(inputs, type(self).__name__)
        if source.output_shape.rank != 2:
            raise ValueError(
                f"{type(self).__name__} needs a (T, features) input, got {source.output_shape}"
            )
        if hidden <= 0:
            raise ValueError("hidden size must be positive")
        seq_len, features = source.output_shape.dims
        self.hidden = hidden
        self.seq_len = seq_len
        self.features = features
        self.return_sequences = return_sequences
        self.output_shape = (
            TensorShape(seq_len, hidden) if return_sequences else TensorShape(hidden)
        )
        gates = type(self).GATES
        self.params = gates * (features * hidden + hidden * hidden + hidden)
        per_step = gates * hidden * (features + hidden) + 4 * hidden
        self.macs = seq_len * per_step

    @property
    def parallel_macs(self) -> int:
        """The sequential recurrence exposes one timestep at a time."""
        return max(1, self.macs // self.seq_len)


class LSTM(_RecurrentLayer):
    """Long short-term memory layer: 4 gates per timestep."""

    GATES = 4


class GRU(_RecurrentLayer):
    """Gated recurrent unit: 3 gates per timestep."""

    GATES = 3


class LastTimestep(Op):
    """Select the final timestep of a (T, H) sequence -> (H,)."""

    category = OpCategory.SHAPE

    def __init__(self, name: str, inputs: list[Op]):
        super().__init__(name, inputs)
        source = _single_input(inputs, "LastTimestep")
        if source.output_shape.rank != 2:
            raise ValueError(f"LastTimestep needs a (T, H) input, got {source.output_shape}")
        self.output_shape = TensorShape(source.output_shape.dims[1])


class DetectionOutput(Op):
    """SSD-style box decoding + non-maximum suppression.

    Modelled as a fixed per-anchor cost; this is the "extra image processing
    library" that broke SSD on Raspberry Pi in the paper (Table V).
    """

    category = OpCategory.DETECTION
    MACS_PER_ANCHOR = 40  # decode (8) + score/sort/NMS share, amortized

    def __init__(self, name: str, inputs: list[Op], num_anchors: int, num_classes: int):
        super().__init__(name, inputs)
        self.num_anchors = num_anchors
        self.num_classes = num_classes
        self.output_shape = TensorShape(num_anchors, 6)  # class, score, box
        self.macs = num_anchors * self.MACS_PER_ANCHOR
