"""The dataflow graph and its builder.

A :class:`Graph` is an immutable-by-convention DAG of ops in topological
order (the builder can only reference already-created ops, so construction
order is a valid schedule).  It exposes the aggregate quantities Table I
reports (MACs, parameters, compute intensity) plus the memory figures the
execution engine needs (weight bytes, peak activation liveness).
"""

from __future__ import annotations

import copy
from typing import Iterator

from repro.graphs import ops as O
from repro.graphs.tensor import DType, TensorShape


class Graph:
    """A topologically ordered op DAG for one DNN model."""

    def __init__(self, name: str, operations: list[O.Op], metadata: dict | None = None):
        self.name = name
        self.ops = list(operations)
        self.metadata = dict(metadata or {})
        self._validate()

    def _validate(self) -> None:
        seen: set[int] = set()
        names: set[str] = set()
        for op in self.ops:
            for parent in op.inputs:
                if id(parent) not in seen:
                    raise ValueError(
                        f"graph {self.name!r} is not topologically ordered: "
                        f"{op.name!r} consumes {parent.name!r} before it is defined"
                    )
            if op.name in names:
                raise ValueError(f"graph {self.name!r} has duplicate op name {op.name!r}")
            names.add(op.name)
            seen.add(id(op))
        if not any(isinstance(op, O.Input) for op in self.ops):
            raise ValueError(f"graph {self.name!r} has no Input op")

    # -- structure ---------------------------------------------------------
    @property
    def inputs(self) -> list[O.Op]:
        return [op for op in self.ops if isinstance(op, O.Input)]

    @property
    def outputs(self) -> list[O.Op]:
        consumed = {id(parent) for op in self.ops for parent in op.inputs}
        return [op for op in self.ops if id(op) not in consumed]

    def op(self, name: str) -> O.Op:
        for candidate in self.ops:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no op named {name!r} in graph {self.name!r}")

    def __iter__(self) -> Iterator[O.Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def clone(self) -> "Graph":
        """Structural copy, so transforms never mutate a shared zoo instance.

        Ops reference each other only through ``inputs``, ``fused_into`` and
        ``absorbed``; everything else they hold (shapes, dtypes, scalars) is
        immutable and safe to share.  Copying each op shallowly and remapping
        those three fields is equivalent to ``copy.deepcopy`` on a valid
        graph while skipping the per-attribute recursion that made cloning
        the dominant cost of a deployment sweep.
        """
        mapping: dict[int, O.Op] = {}
        for op in self.ops:
            # Ops are plain __dict__ classes, so this is ``copy.copy``
            # without the __reduce_ex__ round-trip it dispatches through.
            shallow = object.__new__(type(op))
            shallow.__dict__.update(op.__dict__)
            mapping[id(op)] = shallow
        for op in self.ops:
            cloned = mapping[id(op)]
            cloned.inputs = [mapping[id(parent)] for parent in op.inputs]
            if op.fused_into is not None:
                cloned.fused_into = mapping[id(op.fused_into)]
            cloned.absorbed = [mapping[id(a)] for a in op.absorbed]
        # The op list is a valid schedule by construction; skip re-validation.
        cloned_graph = Graph.__new__(Graph)
        cloned_graph.name = self.name
        cloned_graph.ops = [mapping[id(op)] for op in self.ops]
        cloned_graph.metadata = copy.deepcopy(self.metadata)
        return cloned_graph

    # -- Table I accounting -------------------------------------------------
    @property
    def total_params(self) -> int:
        return sum(op.params for op in self.ops)

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops)

    @property
    def flop_per_param(self) -> float:
        """Compute intensity — the sorting key of the paper's Figure 1."""
        params = self.total_params
        if params == 0:
            raise ValueError(f"graph {self.name!r} has no parameters")
        return self.total_macs / params

    def weight_bytes(self, dtype: DType | None = None) -> int:
        """Total weight bytes; ``dtype`` overrides per-op annotations."""
        if dtype is None:
            return sum(op.weight_bytes() for op in self.ops)
        total = 0.0
        for op in self.ops:
            total += op.params * dtype.bytes
        return int(total)

    # -- memory liveness ----------------------------------------------------
    @staticmethod
    def _chain_anchor(op: O.Op) -> O.Op:
        """The op whose kernel materializes ``op``'s output buffer.

        For a fused chain conv->bn->relu the conv's kernel writes the single
        output buffer all chain-external consumers read.
        """
        while op.fused_into is not None:
            op = op.fused_into
        return op

    def peak_activation_bytes(self) -> int:
        """Peak live activation memory for a sequential single-batch run.

        Computed by reference-counting each materialized buffer until its
        last chain-external consumer has executed — the same liveness a
        framework memory planner sees.  Fused-away ops share their anchor's
        buffer instead of materializing an intermediate.
        """
        remaining_uses = {id(op): 0 for op in self.ops}
        for op in self.ops:
            consumer_anchor = self._chain_anchor(op)
            for parent in op.inputs:
                producer_anchor = self._chain_anchor(parent)
                if producer_anchor is consumer_anchor:
                    continue  # edge internal to one fused kernel
                remaining_uses[id(producer_anchor)] += 1
        # Graph outputs stay live until the end of the inference.
        for op in self.outputs:
            remaining_uses[id(self._chain_anchor(op))] += 1

        live_bytes = 0
        peak = 0
        alive: dict[int, int] = {}
        for op in self.ops:
            if not op.is_fused_away:
                produced = op.output_bytes()
                alive[id(op)] = produced
                live_bytes += produced
                peak = max(peak, live_bytes)
            consumer_anchor = self._chain_anchor(op)
            for parent in op.inputs:
                producer_anchor = self._chain_anchor(parent)
                if producer_anchor is consumer_anchor:
                    continue
                remaining_uses[id(producer_anchor)] -= 1
                if remaining_uses[id(producer_anchor)] == 0:
                    live_bytes -= alive.pop(id(producer_anchor), 0)
        return peak

    def inference_footprint_bytes(self) -> int:
        """Weights + peak activations: the deployment footprint the paper's
        Table V memory failures are about."""
        return self.weight_bytes() + self.peak_activation_bytes()

    # -- convenience --------------------------------------------------------
    def ops_by_category(self) -> dict[O.OpCategory, list[O.Op]]:
        grouped: dict[O.OpCategory, list[O.Op]] = {}
        for op in self.ops:
            grouped.setdefault(op.category, []).append(op)
        return grouped

    def schedulable_ops(self) -> list[O.Op]:
        """Ops that still dispatch a kernel (not fused into a producer)."""
        return [op for op in self.ops if not op.is_fused_away and not isinstance(op, O.Input)]

    def summary(self, verbose: bool = False) -> str:
        """One-line totals; ``verbose`` adds a per-op table (Keras-style)."""
        lines = [
            f"Graph {self.name!r}: {len(self.ops)} ops, "
            f"{self.total_params / 1e6:.2f} M params, "
            f"{self.total_macs / 1e9:.2f} GFLOP (MAC convention), "
            f"FLOP/Param {self.flop_per_param:.1f}"
        ]
        if verbose:
            header = (f"{'op':24s} {'type':18s} {'output':>18s} "
                      f"{'params':>12s} {'MACs':>14s}")
            lines += [header, "-" * len(header)]
            for op in self.ops:
                shape = "x".join(str(d) for d in op.output_shape.dims)
                fused = " (fused)" if op.is_fused_away else ""
                lines.append(
                    f"{op.name[:24]:24s} {type(op).__name__[:18]:18s} "
                    f"{shape:>18s} {op.params:>12,d} {op.macs:>14,d}{fused}"
                )
            lines.append("-" * len(header))
            lines.append(
                f"{'total':24s} {'':18s} {'':>18s} "
                f"{self.total_params:>12,d} {self.total_macs:>14,d}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Graph({self.name!r}, ops={len(self.ops)})"


class GraphBuilder:
    """Fluent construction API for model definitions.

    Every method creates one op wired to its inputs and returns it, so model
    code reads like a framework model definition::

        b = GraphBuilder("TinyNet")
        x = b.input((3, 224, 224))
        x = b.conv_bn_act(x, 32, 3, stride=2)
        x = b.global_avg_pool(x)
        x = b.dense(x, 1000)
        graph = b.build()
    """

    def __init__(self, name: str, metadata: dict | None = None):
        self.name = name
        self.metadata = dict(metadata or {})
        self._ops: list[O.Op] = []
        self._counts: dict[str, int] = {}

    def _register(self, op: O.Op) -> O.Op:
        self._ops.append(op)
        return op

    def _auto_name(self, prefix: str, name: str | None) -> str:
        if name is not None:
            return name
        self._counts[prefix] = self._counts.get(prefix, 0) + 1
        return f"{prefix}_{self._counts[prefix]}"

    # -- op constructors ----------------------------------------------------
    def input(self, shape: tuple[int, ...] | TensorShape, name: str | None = None) -> O.Op:
        if not isinstance(shape, TensorShape):
            shape = TensorShape(*shape)
        return self._register(O.Input(self._auto_name("input", name), shape))

    def conv2d(self, x: O.Op, out_channels: int, kernel, stride=1, padding="same",
               groups: int = 1, dilation: int = 1, use_bias: bool = True,
               name: str | None = None) -> O.Op:
        return self._register(O.Conv2D(
            self._auto_name("conv", name), [x], out_channels, kernel,
            stride=stride, padding=padding, groups=groups, dilation=dilation,
            use_bias=use_bias,
        ))

    def depthwise_conv2d(self, x: O.Op, kernel, stride=1, padding="same",
                         channel_multiplier: int = 1, use_bias: bool = True,
                         name: str | None = None) -> O.Op:
        return self._register(O.DepthwiseConv2D(
            self._auto_name("dwconv", name), [x], kernel, stride=stride,
            padding=padding, channel_multiplier=channel_multiplier, use_bias=use_bias,
        ))

    def conv3d(self, x: O.Op, out_channels: int, kernel, stride=1, padding="same",
               use_bias: bool = True, name: str | None = None) -> O.Op:
        return self._register(O.Conv3D(
            self._auto_name("conv3d", name), [x], out_channels, kernel,
            stride=stride, padding=padding, use_bias=use_bias,
        ))

    def dense(self, x: O.Op, units: int, use_bias: bool = True, name: str | None = None) -> O.Op:
        return self._register(O.Dense(self._auto_name("dense", name), [x], units, use_bias=use_bias))

    def batch_norm(self, x: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.BatchNorm(self._auto_name("bn", name), [x]))

    def activation(self, x: O.Op, kind: str = "relu", name: str | None = None) -> O.Op:
        return self._register(O.Activation(self._auto_name(kind, name), [x], kind=kind))

    def relu(self, x: O.Op, name: str | None = None) -> O.Op:
        return self.activation(x, "relu", name)

    def max_pool(self, x: O.Op, kernel, stride=None, padding="valid",
                 ceil_mode: bool = False, name: str | None = None) -> O.Op:
        return self._register(O.Pool2D(
            self._auto_name("maxpool", name), [x], kernel, stride=stride,
            padding=padding, kind="max", ceil_mode=ceil_mode,
        ))

    def avg_pool(self, x: O.Op, kernel, stride=None, padding="valid",
                 name: str | None = None) -> O.Op:
        return self._register(O.Pool2D(
            self._auto_name("avgpool", name), [x], kernel, stride=stride,
            padding=padding, kind="avg",
        ))

    def max_pool3d(self, x: O.Op, kernel, stride=None, padding="valid",
                   ceil_mode: bool = False, name: str | None = None) -> O.Op:
        return self._register(O.Pool3D(
            self._auto_name("maxpool3d", name), [x], kernel, stride=stride,
            padding=padding, kind="max", ceil_mode=ceil_mode,
        ))

    def global_avg_pool(self, x: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.GlobalPool2D(self._auto_name("gap", name), [x], kind="avg"))

    def add(self, *xs: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.Add(self._auto_name("add", name), list(xs)))

    def concat(self, *xs: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.Concat(self._auto_name("concat", name), list(xs)))

    def flatten(self, x: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.Flatten(self._auto_name("flatten", name), [x]))

    def reshape(self, x: O.Op, shape: tuple[int, ...], name: str | None = None) -> O.Op:
        return self._register(O.Reshape(self._auto_name("reshape", name), [x], TensorShape(*shape)))

    def dropout(self, x: O.Op, rate: float = 0.5, name: str | None = None) -> O.Op:
        return self._register(O.Dropout(self._auto_name("dropout", name), [x], rate=rate))

    def softmax(self, x: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.Softmax(self._auto_name("softmax", name), [x]))

    def lrn(self, x: O.Op, size: int = 5, name: str | None = None) -> O.Op:
        return self._register(O.LocalResponseNorm(self._auto_name("lrn", name), [x], size=size))

    def upsample(self, x: O.Op, factor: int = 2, name: str | None = None) -> O.Op:
        return self._register(O.Upsample2D(self._auto_name("upsample", name), [x], factor=factor))

    def pad(self, x: O.Op, pad: tuple[int, int], name: str | None = None) -> O.Op:
        return self._register(O.Pad(self._auto_name("pad", name), [x], pad=pad))

    def embedding(self, x: O.Op, vocab_size: int, dim: int,
                  name: str | None = None) -> O.Op:
        return self._register(O.Embedding(
            self._auto_name("embedding", name), [x], vocab_size=vocab_size, dim=dim))

    def lstm(self, x: O.Op, hidden: int, return_sequences: bool = True,
             name: str | None = None) -> O.Op:
        return self._register(O.LSTM(
            self._auto_name("lstm", name), [x], hidden=hidden,
            return_sequences=return_sequences))

    def gru(self, x: O.Op, hidden: int, return_sequences: bool = True,
            name: str | None = None) -> O.Op:
        return self._register(O.GRU(
            self._auto_name("gru", name), [x], hidden=hidden,
            return_sequences=return_sequences))

    def last_timestep(self, x: O.Op, name: str | None = None) -> O.Op:
        return self._register(O.LastTimestep(self._auto_name("last", name), [x]))

    def detection_output(self, x: O.Op, num_anchors: int, num_classes: int,
                         name: str | None = None) -> O.Op:
        return self._register(O.DetectionOutput(
            self._auto_name("detect", name), [x], num_anchors=num_anchors, num_classes=num_classes,
        ))

    # -- common composites ---------------------------------------------------
    def conv_bn_act(self, x: O.Op, out_channels: int, kernel, stride=1,
                    padding="same", groups: int = 1, act: str = "relu",
                    use_bias: bool = False, name: str | None = None) -> O.Op:
        """Conv → BatchNorm → activation, the dominant CNN building block."""
        x = self.conv2d(x, out_channels, kernel, stride=stride, padding=padding,
                        groups=groups, use_bias=use_bias, name=name)
        x = self.batch_norm(x)
        if act != "linear":
            x = self.activation(x, act)
        return x

    def dw_bn_act(self, x: O.Op, kernel, stride=1, padding="same",
                  act: str = "relu", name: str | None = None) -> O.Op:
        """Depthwise conv → BatchNorm → activation (MobileNet/Xception)."""
        x = self.depthwise_conv2d(x, kernel, stride=stride, padding=padding,
                                  use_bias=False, name=name)
        x = self.batch_norm(x)
        if act != "linear":
            x = self.activation(x, act)
        return x

    def build(self) -> Graph:
        return Graph(self.name, self._ops, metadata=self.metadata)
