"""Tensor shapes and datatypes.

Shapes are channel-first without the batch dimension: the paper studies
single-batch inference exclusively (Section I), so batch is always 1 and is
omitted.  Image tensors are ``(channels, height, width)``; video tensors for
C3D are ``(channels, frames, height, width)``; flat tensors are
``(features,)``.

Dimensions may be symbolic (:class:`repro.graphs.symbolic.SymDim`): the shapes
pass builds shapes over a free batch ``N`` or sequence ``SEQ`` dim to verify a
graph for *all* bindings, not just the stored concrete one.  Zoo graphs and
the execution engine only ever see concrete shapes; byte accounting therefore
requires concreteness (``bytes()`` raises on symbolic dims — evaluate first).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.graphs.symbolic import (
    Dim,
    SymDim,
    ceil_div,
    evaluate_dim,
    prod_dims,
)


class DType(enum.Enum):
    """Numeric datatypes the studied frameworks deploy with (Table II).

    ``BINARY`` is the 1-bit weight type used by FINN on the PYNQ board.
    """

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"
    BINARY = "binary"

    @property
    def bits(self) -> int:
        return {"fp32": 32, "fp16": 16, "int8": 8, "binary": 1}[self.value]

    @property
    def bytes(self) -> float:
        """Bytes per element; fractional for sub-byte types."""
        return self.bits / 8


@dataclass(frozen=True)
class TensorShape:
    """An immutable tensor shape (no batch dimension).

    Dims are positive ints, or :class:`SymDim` expressions when built by the
    shapes pass for symbolic-binding verification.
    """

    dims: tuple[Dim, ...]

    def __init__(self, *dims: Dim):
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        if not dims:
            raise ValueError("a tensor shape needs at least one dimension")
        for d in dims:
            if isinstance(d, SymDim):
                continue
            if not isinstance(d, int) or d <= 0:
                raise ValueError(f"dimensions must be positive integers, got {dims}")
        object.__setattr__(self, "dims", tuple(dims))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def numel(self) -> Dim:
        return prod_dims(self.dims)

    @property
    def channels(self) -> Dim:
        """Channel count for channel-first feature maps; features for rank 1."""
        return self.dims[0]

    @property
    def spatial(self) -> tuple[Dim, ...]:
        """Spatial (and temporal, for video) dimensions after the channels."""
        return self.dims[1:]

    @property
    def is_concrete(self) -> bool:
        return all(isinstance(d, int) for d in self.dims)

    def evaluate(self, bindings: dict[str, int]) -> "TensorShape":
        """Concretize symbolic dims at the given bindings."""
        return TensorShape(*(evaluate_dim(d, bindings) for d in self.dims))

    def bytes(self, dtype: DType = DType.FP32) -> int:
        if not self.is_concrete:
            raise TypeError(f"byte accounting needs concrete dims, got {self}")
        return math.ceil(self.numel * dtype.bytes)

    def with_channels(self, channels: Dim) -> "TensorShape":
        return TensorShape(channels, *self.dims[1:])

    def flattened(self) -> "TensorShape":
        return TensorShape(self.numel)

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index: int) -> Dim:
        return self.dims[index]

    def __repr__(self) -> str:
        return f"TensorShape{self.dims}"


def conv_output_length(length: Dim, kernel: int, stride: int, padding: str | int,
                       dilation: int = 1) -> Dim:
    """Output length of a convolution along one spatial axis.

    ``padding`` follows framework conventions: ``"same"`` (output =
    ceil(in/stride)), ``"valid"`` (no padding), or an explicit pad count
    applied to both sides (the PyTorch/Caffe style).

    Symbolic ``length`` returns a symbolic expression and skips the
    collapse check — feasibility is then the shapes pass's job (SHAPE006),
    verified per concrete binding.
    """
    effective_kernel = (kernel - 1) * dilation + 1
    if padding == "same":
        if isinstance(length, SymDim):
            return ceil_div(length, stride)
        return math.ceil(length / stride)
    if padding == "valid":
        pad = 0
    elif isinstance(padding, int):
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        pad = padding
    else:
        raise ValueError(f"unsupported padding spec: {padding!r}")
    out = (length + 2 * pad - effective_kernel) // stride + 1
    if isinstance(out, SymDim):
        return out
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed to {out} "
            f"(length={length}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def pool_output_length(length: Dim, kernel: int, stride: int, padding: str | int,
                       ceil_mode: bool = False) -> Dim:
    """Output length of a pooling window along one spatial axis.

    Same conventions as :func:`conv_output_length`; ``ceil_mode`` rounds the
    window count up (the Caffe/PyTorch option C3D's pools rely on).
    """
    if padding == "same":
        if isinstance(length, SymDim):
            return ceil_div(length, stride)
        return math.ceil(length / stride)
    if padding == "valid":
        pad = 0
    elif isinstance(padding, int):
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        pad = padding
    else:
        raise ValueError(f"unsupported padding spec: {padding!r}")
    numerator = length + 2 * pad - kernel
    if isinstance(numerator, SymDim):
        return (ceil_div(numerator, stride) if ceil_mode
                else numerator // stride) + 1
    if ceil_mode:
        out = math.ceil(numerator / stride) + 1
    else:
        out = numerator // stride + 1
    if out <= 0:
        raise ValueError(
            f"pool output collapsed to {out} (length={length}, kernel={kernel}, stride={stride})"
        )
    return out
