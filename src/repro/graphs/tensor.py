"""Tensor shapes and datatypes.

Shapes are channel-first without the batch dimension: the paper studies
single-batch inference exclusively (Section I), so batch is always 1 and is
omitted.  Image tensors are ``(channels, height, width)``; video tensors for
C3D are ``(channels, frames, height, width)``; flat tensors are
``(features,)``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class DType(enum.Enum):
    """Numeric datatypes the studied frameworks deploy with (Table II).

    ``BINARY`` is the 1-bit weight type used by FINN on the PYNQ board.
    """

    FP32 = "fp32"
    FP16 = "fp16"
    INT8 = "int8"
    BINARY = "binary"

    @property
    def bits(self) -> int:
        return {"fp32": 32, "fp16": 16, "int8": 8, "binary": 1}[self.value]

    @property
    def bytes(self) -> float:
        """Bytes per element; fractional for sub-byte types."""
        return self.bits / 8


@dataclass(frozen=True)
class TensorShape:
    """An immutable tensor shape (no batch dimension)."""

    dims: tuple[int, ...]

    def __init__(self, *dims: int):
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        if not dims:
            raise ValueError("a tensor shape needs at least one dimension")
        if any((not isinstance(d, int)) or d <= 0 for d in dims):
            raise ValueError(f"dimensions must be positive integers, got {dims}")
        object.__setattr__(self, "dims", tuple(dims))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def numel(self) -> int:
        return math.prod(self.dims)

    @property
    def channels(self) -> int:
        """Channel count for channel-first feature maps; features for rank 1."""
        return self.dims[0]

    @property
    def spatial(self) -> tuple[int, ...]:
        """Spatial (and temporal, for video) dimensions after the channels."""
        return self.dims[1:]

    def bytes(self, dtype: DType = DType.FP32) -> int:
        return math.ceil(self.numel * dtype.bytes)

    def with_channels(self, channels: int) -> "TensorShape":
        return TensorShape(channels, *self.dims[1:])

    def flattened(self) -> "TensorShape":
        return TensorShape(self.numel)

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __getitem__(self, index: int) -> int:
        return self.dims[index]

    def __repr__(self) -> str:
        return f"TensorShape{self.dims}"


def conv_output_length(length: int, kernel: int, stride: int, padding: str | int, dilation: int = 1) -> int:
    """Output length of a convolution along one spatial axis.

    ``padding`` follows framework conventions: ``"same"`` (output =
    ceil(in/stride)), ``"valid"`` (no padding), or an explicit pad count
    applied to both sides (the PyTorch/Caffe style).
    """
    effective_kernel = (kernel - 1) * dilation + 1
    if padding == "same":
        return math.ceil(length / stride)
    if padding == "valid":
        pad = 0
    elif isinstance(padding, int):
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        pad = padding
    else:
        raise ValueError(f"unsupported padding spec: {padding!r}")
    out = (length + 2 * pad - effective_kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed to {out} "
            f"(length={length}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def pool_output_length(length: int, kernel: int, stride: int, padding: str | int, ceil_mode: bool = False) -> int:
    """Output length of a pooling window along one spatial axis."""
    if padding == "same":
        return math.ceil(length / stride)
    pad = 0 if padding == "valid" else int(padding)
    numerator = length + 2 * pad - kernel
    if ceil_mode:
        out = math.ceil(numerator / stride) + 1
    else:
        out = numerator // stride + 1
    if out <= 0:
        raise ValueError(
            f"pool output collapsed to {out} (length={length}, kernel={kernel}, stride={stride})"
        )
    return out
