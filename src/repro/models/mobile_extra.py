"""Mobile-specific architectures from the paper's related work.

Section VIII's second group of efforts "develops mobile-specific models":
SqueezeNet (parameter reduction via fire modules) and ShuffleNet (grouped
1x1 convolutions + channel shuffle).  They extend the zoo beyond Table I
for studying the accelerator sweet spots the paper's discussion invites.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op


def _fire_module(b: GraphBuilder, x: Op, squeeze: int, expand: int) -> Op:
    """SqueezeNet fire module: 1x1 squeeze, parallel 1x1/3x3 expands."""
    s = b.conv2d(x, squeeze, 1)
    s = b.relu(s)
    e1 = b.conv2d(s, expand, 1)
    e1 = b.relu(e1)
    e3 = b.conv2d(s, expand, 3)
    e3 = b.relu(e3)
    return b.concat(e1, e3)


def squeezenet(num_classes: int = 1000) -> Graph:
    """SqueezeNet v1.1: AlexNet-level accuracy with ~50x fewer parameters."""
    b = GraphBuilder("SqueezeNet", metadata={
        "task": "classification", "family": "squeezenet", "group": "mobile-extra",
    })
    x = b.input((3, 224, 224))
    x = b.conv2d(x, 64, 3, stride=2, padding="valid")
    x = b.relu(x)
    x = b.max_pool(x, 3, stride=2)
    x = _fire_module(b, x, 16, 64)
    x = _fire_module(b, x, 16, 64)
    x = b.max_pool(x, 3, stride=2)
    x = _fire_module(b, x, 32, 128)
    x = _fire_module(b, x, 32, 128)
    x = b.max_pool(x, 3, stride=2)
    x = _fire_module(b, x, 48, 192)
    x = _fire_module(b, x, 48, 192)
    x = _fire_module(b, x, 64, 256)
    x = _fire_module(b, x, 64, 256)
    x = b.dropout(x)
    x = b.conv2d(x, num_classes, 1)
    x = b.relu(x)
    x = b.global_avg_pool(x)
    x = b.softmax(x)
    return b.build()


# (output channels per stage, units per stage) for ShuffleNet 1x, g=3.
_SHUFFLENET_STAGES = ((240, 4), (480, 8), (960, 4))
_GROUPS = 3


def _shuffle_unit(b: GraphBuilder, x: Op, out_channels: int, stride: int,
                  first_of_network: bool = False) -> Op:
    """ShuffleNet unit: grouped 1x1, shuffle, depthwise 3x3, grouped 1x1."""
    in_channels = x.output_shape.channels
    bottleneck = out_channels // 4
    # The very first unit's 1x1 is ungrouped (24 input channels).
    groups = 1 if first_of_network else _GROUPS
    branch_out = out_channels - in_channels if stride == 2 else out_channels

    branch = b.conv_bn_act(x, bottleneck, 1, groups=groups)
    # Channel shuffle is a permutation: zero-cost reshape.
    branch = b.reshape(branch, branch.output_shape.dims)
    branch = b.dw_bn_act(branch, 3, stride=stride, act="linear")
    branch = b.conv_bn_act(branch, branch_out, 1, groups=_GROUPS, act="linear")
    if stride == 2:
        shortcut = b.avg_pool(x, 3, stride=2, padding=1)
        out = b.concat(branch, shortcut)
    else:
        out = b.add(branch, x)
    return b.relu(out)


def shufflenet(num_classes: int = 1000) -> Graph:
    """ShuffleNet 1x (g=3)."""
    b = GraphBuilder("ShuffleNet", metadata={
        "task": "classification", "family": "shufflenet", "group": "mobile-extra",
    })
    x = b.input((3, 224, 224))
    x = b.conv_bn_act(x, 24, 3, stride=2)
    x = b.max_pool(x, 3, stride=2, padding="same")
    first = True
    for out_channels, units in _SHUFFLENET_STAGES:
        x = _shuffle_unit(b, x, out_channels, stride=2, first_of_network=first)
        first = False
        for _ in range(units - 1):
            x = _shuffle_unit(b, x, out_channels, stride=1)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
