"""AlexNet (Krizhevsky, 2014 single-tower variant, as shipped by torchvision).

Table I lists AlexNet at 0.72 GFLOP, which this construction matches; the
paper's 102.14 M parameter figure does not correspond to any standard
AlexNet (the canonical single-tower network has 61.1 M) and is recorded as a
known discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder


def alexnet(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("AlexNet", metadata={"task": "classification", "family": "alexnet"})
    x = b.input((3, 224, 224))
    x = b.conv2d(x, 64, 11, stride=4, padding=2)
    x = b.relu(x)
    x = b.lrn(x)
    x = b.max_pool(x, 3, stride=2)
    x = b.conv2d(x, 192, 5, padding=2)
    x = b.relu(x)
    x = b.lrn(x)
    x = b.max_pool(x, 3, stride=2)
    x = b.conv2d(x, 384, 3, padding=1)
    x = b.relu(x)
    x = b.conv2d(x, 256, 3, padding=1)
    x = b.relu(x)
    x = b.conv2d(x, 256, 3, padding=1)
    x = b.relu(x)
    x = b.max_pool(x, 3, stride=2)
    x = b.flatten(x)
    x = b.dropout(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
