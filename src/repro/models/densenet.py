"""DenseNet-121 (Huang et al., 2017).

The paper's related work cites the DenseNet lineage (CondenseNet's
"resource-efficient connections"); DenseNet-121 extends the zoo with the
densely-connected pattern: every layer consumes the concatenation of all
previous features, so activation liveness — not parameters — is its edge
bottleneck.  Pre-activation ordering (BN -> ReLU -> conv) as published.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op

GROWTH_RATE = 32
BLOCK_LAYERS = (6, 12, 24, 16)


def _preact_conv(b: GraphBuilder, x: Op, out_channels: int, kernel,
                 stride: int = 1) -> Op:
    x = b.batch_norm(x)
    x = b.relu(x)
    return b.conv2d(x, out_channels, kernel, stride=stride, use_bias=False)


def _dense_layer(b: GraphBuilder, x: Op) -> Op:
    """Bottleneck dense layer: 1x1 to 4k channels, 3x3 to k, concat."""
    new_features = _preact_conv(b, x, 4 * GROWTH_RATE, 1)
    new_features = _preact_conv(b, new_features, GROWTH_RATE, 3)
    return b.concat(x, new_features)


def _transition(b: GraphBuilder, x: Op) -> Op:
    """Compress channels by half and halve the spatial resolution."""
    x = _preact_conv(b, x, x.output_shape.channels // 2, 1)
    return b.avg_pool(x, 2, stride=2)


def densenet121(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("DenseNet-121", metadata={
        "task": "classification", "family": "densenet", "group": "mobile-extra",
    })
    x = b.input((3, 224, 224))
    x = b.conv2d(x, 2 * GROWTH_RATE, 7, stride=2, use_bias=False)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.max_pool(x, 3, stride=2, padding="same")
    for block_index, layers in enumerate(BLOCK_LAYERS):
        for _ in range(layers):
            x = _dense_layer(b, x)
        if block_index != len(BLOCK_LAYERS) - 1:
            x = _transition(b, x)
    x = b.batch_norm(x)
    x = b.relu(x)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
