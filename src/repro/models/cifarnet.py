"""CifarNet: the small cuda-convnet-style CIFAR-10 classifier.

Three 5x5 convolution + pooling stages followed by a small classifier; the
0.01 GFLOP compute footprint matches Table I (it is the smallest model in
the study and the FINN anchor for the PYNQ board).
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder


def cifarnet(num_classes: int = 10) -> Graph:
    b = GraphBuilder("CifarNet 32x32", metadata={"task": "classification", "family": "cifarnet"})
    x = b.input((3, 32, 32))
    x = b.conv2d(x, 32, 5, padding=2)
    x = b.relu(x)
    x = b.max_pool(x, 3, stride=2, padding=1)
    x = b.conv2d(x, 32, 5, padding=2)
    x = b.relu(x)
    x = b.avg_pool(x, 3, stride=2, padding=1)
    x = b.conv2d(x, 96, 5, padding=2)
    x = b.relu(x)
    x = b.avg_pool(x, 3, stride=2, padding=1)
    x = b.flatten(x)
    x = b.dense(x, 384)
    x = b.relu(x)
    x = b.dense(x, 192)
    x = b.relu(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
