"""YOLOv3 (Redmon & Farhadi, 2018) and TinyYolo.

YOLOv3 is the full Darknet-53 backbone with the three-scale detection head
(61.9 M parameters, matching Table I's 62.0 M).  TinyYolo is the
tiny-YOLOv2-style fully convolutional detector (15.9 M parameters vs Table
I's 15.87 M).  Both use leaky-ReLU conv-BN blocks, the DarkNet idiom.

FLOP convention note: DarkNet reports BFLOPs counting multiply and add
separately, so the paper's Table I values for these two models are ~2x this
library's MAC counts; EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op

COCO_CLASSES = 80
ANCHORS_PER_SCALE = 3


def _dark_conv(b: GraphBuilder, x: Op, channels: int, kernel, stride: int = 1) -> Op:
    return b.conv_bn_act(x, channels, kernel, stride=stride, act="leaky_relu")


def _residual(b: GraphBuilder, x: Op, channels: int) -> Op:
    shortcut = x
    x = _dark_conv(b, x, channels // 2, 1)
    x = _dark_conv(b, x, channels, 3)
    return b.add(x, shortcut)


def _detection_conv(b: GraphBuilder, x: Op, num_classes: int) -> Op:
    """The linear 1x1 output convolution (no BN, biased)."""
    out_channels = ANCHORS_PER_SCALE * (num_classes + 5)
    x = b.conv2d(x, out_channels, 1, use_bias=True)
    return x


def yolov3(input_size: int = 320, num_classes: int = COCO_CLASSES) -> Graph:
    """YOLOv3 at 320x320: 2x the resulting MAC count reproduces Table I's
    38.97 GFLOP, confirming the paper used DarkNet's default letterboxed
    input rather than the nominal 224 of the table."""
    b = GraphBuilder("YOLOv3", metadata={"task": "detection", "family": "yolo"})
    x = b.input((3, input_size, input_size))
    x = _dark_conv(b, x, 32, 3)
    x = _dark_conv(b, x, 64, 3, stride=2)
    x = _residual(b, x, 64)
    x = _dark_conv(b, x, 128, 3, stride=2)
    for _ in range(2):
        x = _residual(b, x, 128)
    x = _dark_conv(b, x, 256, 3, stride=2)
    for _ in range(8):
        x = _residual(b, x, 256)
    route_8x = x
    x = _dark_conv(b, x, 512, 3, stride=2)
    for _ in range(8):
        x = _residual(b, x, 512)
    route_16x = x
    x = _dark_conv(b, x, 1024, 3, stride=2)
    for _ in range(4):
        x = _residual(b, x, 1024)

    # Scale 1 (stride 32).
    for _ in range(2):
        x = _dark_conv(b, x, 512, 1)
        x = _dark_conv(b, x, 1024, 3)
    x = _dark_conv(b, x, 512, 1)
    branch = _dark_conv(b, x, 1024, 3)
    _detection_conv(b, branch, num_classes)

    # Scale 2 (stride 16).
    x = _dark_conv(b, x, 256, 1)
    x = b.upsample(x, 2)
    x = b.concat(x, route_16x)
    for _ in range(2):
        x = _dark_conv(b, x, 256, 1)
        x = _dark_conv(b, x, 512, 3)
    x = _dark_conv(b, x, 256, 1)
    branch = _dark_conv(b, x, 512, 3)
    _detection_conv(b, branch, num_classes)

    # Scale 3 (stride 8).
    x = _dark_conv(b, x, 128, 1)
    x = b.upsample(x, 2)
    x = b.concat(x, route_8x)
    for _ in range(2):
        x = _dark_conv(b, x, 128, 1)
        x = _dark_conv(b, x, 256, 3)
    x = _dark_conv(b, x, 128, 1)
    branch = _dark_conv(b, x, 256, 3)
    _detection_conv(b, branch, num_classes)
    return b.build()


def tiny_yolo(input_size: int = 416, num_classes: int = COCO_CLASSES) -> Graph:
    """Tiny-YOLOv2-style detector: six conv+pool stages, two 1024-wide convs.

    Defaults to DarkNet's 416x416 letterboxed input, which is consistent
    with the paper's measured TinyYolo latencies (Figure 2)."""
    b = GraphBuilder("TinyYolo", metadata={"task": "detection", "family": "yolo"})
    x = b.input((3, input_size, input_size))
    for channels in (16, 32, 64, 128, 256):
        x = _dark_conv(b, x, channels, 3)
        x = b.max_pool(x, 2, stride=2)
    x = _dark_conv(b, x, 512, 3)
    x = b.max_pool(x, 2, stride=1, padding="same")
    x = _dark_conv(b, x, 1024, 3)
    x = _dark_conv(b, x, 1024, 3)
    out_channels = 5 * (num_classes + 5)
    b.conv2d(x, out_channels, 1, use_bias=True)
    return b.build()
