"""Xception (Chollet, 2017): depthwise-separable convolutions with residuals.

Built at the paper's 224x224 input, which reproduces Table I's 4.65 GFLOP /
22.91 M figures (at the architecture's native 299x299 the model costs
~8.4 GMACs; the paper evidently evaluated at 224).
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op


def _sep_conv_bn(b: GraphBuilder, x: Op, out_channels: int) -> Op:
    """Separable conv as Keras implements it: depthwise then 1x1, one BN."""
    x = b.depthwise_conv2d(x, 3, use_bias=False)
    x = b.conv2d(x, out_channels, 1, use_bias=False)
    return b.batch_norm(x)


def _entry_block(b: GraphBuilder, x: Op, out_channels: int, relu_first: bool) -> Op:
    shortcut = b.conv_bn_act(x, out_channels, 1, stride=2, act="linear")
    if relu_first:
        x = b.relu(x)
    x = _sep_conv_bn(b, x, out_channels)
    x = b.relu(x)
    x = _sep_conv_bn(b, x, out_channels)
    x = b.max_pool(x, 3, stride=2, padding="same")
    return b.add(x, shortcut)


def _middle_block(b: GraphBuilder, x: Op) -> Op:
    shortcut = x
    for _ in range(3):
        x = b.relu(x)
        x = _sep_conv_bn(b, x, 728)
    return b.add(x, shortcut)


def xception(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("Xception", metadata={"task": "classification", "family": "xception"})
    x = b.input((3, 224, 224))
    x = b.conv_bn_act(x, 32, 3, stride=2, padding="valid")
    x = b.conv_bn_act(x, 64, 3, padding="valid")
    x = _entry_block(b, x, 128, relu_first=False)
    x = _entry_block(b, x, 256, relu_first=True)
    x = _entry_block(b, x, 728, relu_first=True)
    for _ in range(8):
        x = _middle_block(b, x)
    # Exit flow.
    shortcut = b.conv_bn_act(x, 1024, 1, stride=2, act="linear")
    x = b.relu(x)
    x = _sep_conv_bn(b, x, 728)
    x = b.relu(x)
    x = _sep_conv_bn(b, x, 1024)
    x = b.max_pool(x, 3, stride=2, padding="same")
    x = b.add(x, shortcut)
    x = _sep_conv_bn(b, x, 1536)
    x = b.relu(x)
    x = _sep_conv_bn(b, x, 2048)
    x = b.relu(x)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
