"""ResNet family (He et al., 2016): ResNet-18/50/101.

ResNet-18 uses basic blocks (two 3x3 convolutions), ResNet-50/101 use
bottleneck blocks (1x1 reduce, 3x3, 1x1 expand).  Stage layouts follow the
original paper; parameter counts land on Table I's 11.69 M / 25.56 M /
44.55 M.
"""

from __future__ import annotations

from repro.graphs import GraphBuilder, Graph, Op


def _basic_block(b: GraphBuilder, x: Op, channels: int, stride: int) -> Op:
    shortcut = x
    out = b.conv_bn_act(x, channels, 3, stride=stride)
    out = b.conv_bn_act(out, channels, 3, act="linear")
    if stride != 1 or shortcut.output_shape.channels != channels:
        shortcut = b.conv_bn_act(shortcut, channels, 1, stride=stride, act="linear")
    out = b.add(out, shortcut)
    return b.relu(out)


def _bottleneck_block(b: GraphBuilder, x: Op, channels: int, stride: int) -> Op:
    expansion = 4
    shortcut = x
    out = b.conv_bn_act(x, channels, 1)
    out = b.conv_bn_act(out, channels, 3, stride=stride)
    out = b.conv_bn_act(out, channels * expansion, 1, act="linear")
    if stride != 1 or shortcut.output_shape.channels != channels * expansion:
        shortcut = b.conv_bn_act(shortcut, channels * expansion, 1, stride=stride, act="linear")
    out = b.add(out, shortcut)
    return b.relu(out)


def _build_resnet(name: str, block, stage_depths: list[int], num_classes: int = 1000) -> Graph:
    b = GraphBuilder(name, metadata={"task": "classification", "family": "resnet"})
    x = b.input((3, 224, 224))
    x = b.conv_bn_act(x, 64, 7, stride=2)
    x = b.max_pool(x, 3, stride=2, padding="same")
    for stage_index, depth in enumerate(stage_depths):
        channels = 64 * (2**stage_index)
        for block_index in range(depth):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            x = block(b, x, channels, stride)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()


def resnet18() -> Graph:
    return _build_resnet("ResNet-18", _basic_block, [2, 2, 2, 2])


def resnet50() -> Graph:
    return _build_resnet("ResNet-50", _bottleneck_block, [3, 4, 6, 3])


def resnet101() -> Graph:
    return _build_resnet("ResNet-101", _bottleneck_block, [3, 4, 23, 3])
