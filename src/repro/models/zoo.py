"""The model registry (Table I).

``load_model(name)`` returns a *fresh* graph each call, annotated with the
deployment metadata the framework layer needs: whether quantization-aware
training checkpoints exist (the EdgeTPU conversion gate of Table V), whether
the implementation drags in an extra image-processing library (SSD's
Raspberry Pi failure), whether it uses 3-D convolutions (C3D's Movidius
failure), and whether a binarized FINN variant exists (PYNQ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.registry import Registry
from repro.graphs import Graph
from repro.models.alexnet import alexnet
from repro.models.c3d import c3d
from repro.models.cifarnet import cifarnet
from repro.models.densenet import densenet121
from repro.models.inception import inception_v4
from repro.models.mobile_extra import shufflenet, squeezenet
from repro.models.mobilenet import mobilenet_v1, mobilenet_v2
from repro.models.resnet import resnet18, resnet50, resnet101
from repro.models.rnn import char_lstm, gru_encoder, ptb_lstm
from repro.models.ssd import ssd_mobilenet_v1
from repro.models.vgg import vgg16, vgg19, vgg_s
from repro.models.xception import xception
from repro.models.yolo import tiny_yolo, yolov3


@dataclass(frozen=True)
class ModelEntry:
    """Registry entry: a builder plus deployment-relevant traits."""

    builder: Callable[[], Graph]
    qat_available: bool = False
    finn_binarized_available: bool = False
    aliases: tuple[str, ...] = ()


_ENTRIES: dict[str, ModelEntry] = {
    "ResNet-18": ModelEntry(resnet18, qat_available=False,
                            finn_binarized_available=True, aliases=("resnet18",)),
    "ResNet-50": ModelEntry(resnet50, qat_available=True, aliases=("resnet50",)),
    "ResNet-101": ModelEntry(resnet101, qat_available=False, aliases=("resnet101",)),
    "Xception": ModelEntry(xception, qat_available=False),
    "MobileNet-v1": ModelEntry(mobilenet_v1, qat_available=True, aliases=("mobilenetv1",)),
    "MobileNet-v2": ModelEntry(mobilenet_v2, qat_available=True, aliases=("mobilenetv2",)),
    "Inception-v4": ModelEntry(inception_v4, qat_available=True, aliases=("inceptionv4",)),
    "AlexNet": ModelEntry(alexnet, qat_available=False),
    "VGG16": ModelEntry(vgg16, qat_available=True),
    "VGG19": ModelEntry(vgg19, qat_available=True),
    "VGG-S 224x224": ModelEntry(lambda: vgg_s(224), qat_available=False,
                                aliases=("vggs224", "vggs 224")),
    "VGG-S 32x32": ModelEntry(lambda: vgg_s(32), qat_available=False,
                              aliases=("vggs32", "vggs 32")),
    "CifarNet 32x32": ModelEntry(cifarnet, qat_available=True,
                                 finn_binarized_available=True, aliases=("cifarnet",)),
    "SSD MobileNet-v1": ModelEntry(ssd_mobilenet_v1, qat_available=True,
                                   aliases=("ssd", "ssdmobilenetv1")),
    "C3D": ModelEntry(c3d, qat_available=False),
    "YOLOv3": ModelEntry(yolov3, qat_available=False, aliases=("yolo", "yolov3")),
    "TinyYolo": ModelEntry(tiny_yolo, qat_available=False, aliases=("tinyyolov2",)),
    # Mobile-specific models from the paper's related work (Section VIII).
    "SqueezeNet": ModelEntry(squeezenet, qat_available=True),
    "ShuffleNet": ModelEntry(shufflenet, qat_available=False),
    "DenseNet-121": ModelEntry(densenet121, qat_available=False,
                               aliases=("densenet",)),
    # Recurrent models: the paper's stated future work (Section II).
    "CharRNN-LSTM": ModelEntry(char_lstm, qat_available=False, aliases=("charrnn",)),
    "LSTM-PTB": ModelEntry(ptb_lstm, qat_available=False, aliases=("ptb",)),
    "GRU-Encoder": ModelEntry(gru_encoder, qat_available=False, aliases=("gru",)),
}


def _make_factory(name: str, entry: ModelEntry) -> Callable[[], Graph]:
    def factory() -> Graph:
        graph = entry.builder()
        graph.metadata.setdefault("qat_available", entry.qat_available)
        graph.metadata.setdefault("finn_binarized_available", entry.finn_binarized_available)
        graph.metadata.setdefault("zoo_name", name)
        return graph

    return factory


MODEL_REGISTRY: Registry[Graph] = Registry("model")
for _name, _entry in _ENTRIES.items():
    MODEL_REGISTRY.register(_name, _make_factory(_name, _entry), aliases=_entry.aliases)


def load_model(name: str) -> Graph:
    """Build a fresh, annotated graph for the named Table I model."""
    return MODEL_REGISTRY.create(name)


def list_models() -> list[str]:
    """Display names of every Table I model, in registry order."""
    return MODEL_REGISTRY.names()
