"""MobileNet-v1 (Howard et al., 2017) and MobileNet-v2 (Sandler et al., 2018).

MobileNet-v1 is both a Table I proxy (it is the feature extractor inside the
SSD detector) and a standalone classifier; MobileNet-v2 is the
memory-lean model the paper uses to probe accelerator sweet spots
(11 mJ/inference on EdgeTPU, Section VI-E).
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op

# (out_channels, stride) for MobileNet-v1's depthwise-separable stack.
MOBILENET_V1_LAYOUT = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]

# (expansion, out_channels, repeats, first_stride) per MobileNet-v2 stage.
MOBILENET_V2_LAYOUT = [
    (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
    (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
]


def _separable_block(b: GraphBuilder, x: Op, out_channels: int, stride: int) -> Op:
    x = b.dw_bn_act(x, 3, stride=stride)
    return b.conv_bn_act(x, out_channels, 1)


def mobilenet_v1_features(b: GraphBuilder, x: Op, width: float = 1.0) -> Op:
    """The MobileNet-v1 convolutional trunk (shared with the SSD detector)."""
    x = b.conv_bn_act(x, int(32 * width), 3, stride=2)
    for out_channels, stride in MOBILENET_V1_LAYOUT:
        x = _separable_block(b, x, int(out_channels * width), stride)
    return x


def mobilenet_v1(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("MobileNet-v1", metadata={"task": "classification", "family": "mobilenet"})
    x = b.input((3, 224, 224))
    x = mobilenet_v1_features(b, x)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()


def _inverted_residual(b: GraphBuilder, x: Op, expansion: int, out_channels: int, stride: int) -> Op:
    in_channels = x.output_shape.channels
    shortcut = x
    hidden = in_channels * expansion
    if expansion != 1:
        x = b.conv_bn_act(x, hidden, 1, act="relu6")
    x = b.dw_bn_act(x, 3, stride=stride, act="relu6")
    x = b.conv_bn_act(x, out_channels, 1, act="linear")
    if stride == 1 and in_channels == out_channels:
        x = b.add(x, shortcut)
    return x


def mobilenet_v2(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("MobileNet-v2", metadata={"task": "classification", "family": "mobilenet"})
    x = b.input((3, 224, 224))
    x = b.conv_bn_act(x, 32, 3, stride=2, act="relu6")
    for expansion, out_channels, repeats, first_stride in MOBILENET_V2_LAYOUT:
        for block_index in range(repeats):
            stride = first_stride if block_index == 0 else 1
            x = _inverted_residual(b, x, expansion, out_channels, stride)
    x = b.conv_bn_act(x, 1280, 1, act="relu6")
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
