"""SSD object detector with a MobileNet-v1 feature extractor (Liu et al.,
2016 + Howard et al., 2017), at the paper's 300x300 input.

The network truncates MobileNet-v1 after its final separable block, adds the
SSD extra feature pyramid and per-scale box/class heads, and finishes with
box decoding + NMS.  The decode/NMS stage depends on an external image
processing library, which is what made SSD fail on Raspberry Pi in the paper
(Table V) — the graph records that in its metadata.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op
from repro.models.mobilenet import MOBILENET_V1_LAYOUT, _separable_block

VOC_CLASSES = 21  # 20 classes + background


def _backbone(b: GraphBuilder, x: Op) -> tuple[Op, Op]:
    """MobileNet-v1 trunk returning the two feature taps SSD uses."""
    x = b.conv_bn_act(x, 32, 3, stride=2)
    tap_19x19 = None
    for index, (out_channels, stride) in enumerate(MOBILENET_V1_LAYOUT):
        x = _separable_block(b, x, out_channels, stride)
        if index == 10:  # conv11 output: 512 channels at stride 16
            tap_19x19 = x
    assert tap_19x19 is not None
    return tap_19x19, x


def _extra_layer(b: GraphBuilder, x: Op, mid_channels: int, out_channels: int) -> Op:
    """SSDLite-style extra pyramid level: 1x1 reduce, depthwise stride-2, 1x1."""
    x = b.conv_bn_act(x, mid_channels, 1)
    x = b.dw_bn_act(x, 3, stride=2)
    return b.conv_bn_act(x, out_channels, 1)


def _head(b: GraphBuilder, x: Op, anchors: int, num_classes: int) -> Op:
    """Separable box-regression + classification head for one pyramid level."""
    out_channels = anchors * (num_classes + 4)
    x = b.dw_bn_act(x, 3)
    return b.conv2d(x, out_channels, 1, use_bias=True)


def ssd_mobilenet_v1(num_classes: int = VOC_CLASSES) -> Graph:
    b = GraphBuilder(
        "SSD MobileNet-v1",
        metadata={
            "task": "detection",
            "family": "ssd",
            "extra_image_library": True,
        },
    )
    x = b.input((3, 300, 300))
    tap, x = _backbone(b, x)

    pyramid = [tap, x]
    for mid_channels, out_channels in ((128, 256), (64, 128), (64, 128), (32, 64)):
        x = _extra_layer(b, x, mid_channels, out_channels)
        pyramid.append(x)

    anchors_per_cell = (3, 6, 6, 6, 6, 6)
    head_outputs = []
    total_anchors = 0
    for level, anchors in zip(pyramid, anchors_per_cell):
        head_outputs.append(_head(b, level, anchors, num_classes))
        __, h, w = head_outputs[-1].output_shape.dims
        total_anchors += anchors * h * w

    # Heads feed the detection stage; concat requires matching spatial dims,
    # so the decode stage consumes the coarsest head and accounts for the
    # full anchor set explicitly.
    b.detection_output(head_outputs[-1], num_anchors=total_anchors, num_classes=num_classes)
    return b.build()
