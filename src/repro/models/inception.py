"""Inception-v4 (Szegedy et al., 2017).

Full stem + 4xA + ReductionA + 7xB + ReductionB + 3xC layout at the native
299x299 input, reproducing Table I's 12.27 GFLOP / 42.71 M parameters.
All convolutions are conv-BN-ReLU without bias.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op


def _cba(b: GraphBuilder, x: Op, channels: int, kernel, stride=1, padding="same") -> Op:
    return b.conv_bn_act(x, channels, kernel, stride=stride, padding=padding)


def _stem(b: GraphBuilder, x: Op) -> Op:
    x = _cba(b, x, 32, 3, stride=2, padding="valid")
    x = _cba(b, x, 32, 3, padding="valid")
    x = _cba(b, x, 64, 3)
    pool = b.max_pool(x, 3, stride=2)
    conv = _cba(b, x, 96, 3, stride=2, padding="valid")
    x = b.concat(pool, conv)

    left = _cba(b, x, 64, 1)
    left = _cba(b, left, 96, 3, padding="valid")
    right = _cba(b, x, 64, 1)
    right = _cba(b, right, 64, (1, 7))
    right = _cba(b, right, 64, (7, 1))
    right = _cba(b, right, 96, 3, padding="valid")
    x = b.concat(left, right)

    conv = _cba(b, x, 192, 3, stride=2, padding="valid")
    pool = b.max_pool(x, 3, stride=2)
    return b.concat(conv, pool)


def _inception_a(b: GraphBuilder, x: Op) -> Op:
    pool = b.avg_pool(x, 3, stride=1, padding=1)
    branch0 = _cba(b, pool, 96, 1)
    branch1 = _cba(b, x, 96, 1)
    branch2 = _cba(b, _cba(b, x, 64, 1), 96, 3)
    branch3 = _cba(b, _cba(b, _cba(b, x, 64, 1), 96, 3), 96, 3)
    return b.concat(branch0, branch1, branch2, branch3)


def _reduction_a(b: GraphBuilder, x: Op) -> Op:
    pool = b.max_pool(x, 3, stride=2)
    branch1 = _cba(b, x, 384, 3, stride=2, padding="valid")
    branch2 = _cba(b, x, 192, 1)
    branch2 = _cba(b, branch2, 224, 3)
    branch2 = _cba(b, branch2, 256, 3, stride=2, padding="valid")
    return b.concat(pool, branch1, branch2)


def _inception_b(b: GraphBuilder, x: Op) -> Op:
    pool = b.avg_pool(x, 3, stride=1, padding=1)
    branch0 = _cba(b, pool, 128, 1)
    branch1 = _cba(b, x, 384, 1)
    branch2 = _cba(b, x, 192, 1)
    branch2 = _cba(b, branch2, 224, (1, 7))
    branch2 = _cba(b, branch2, 256, (7, 1))
    branch3 = _cba(b, x, 192, 1)
    branch3 = _cba(b, branch3, 192, (7, 1))
    branch3 = _cba(b, branch3, 224, (1, 7))
    branch3 = _cba(b, branch3, 224, (7, 1))
    branch3 = _cba(b, branch3, 256, (1, 7))
    return b.concat(branch0, branch1, branch2, branch3)


def _reduction_b(b: GraphBuilder, x: Op) -> Op:
    pool = b.max_pool(x, 3, stride=2)
    branch1 = _cba(b, x, 192, 1)
    branch1 = _cba(b, branch1, 192, 3, stride=2, padding="valid")
    branch2 = _cba(b, x, 256, 1)
    branch2 = _cba(b, branch2, 256, (1, 7))
    branch2 = _cba(b, branch2, 320, (7, 1))
    branch2 = _cba(b, branch2, 320, 3, stride=2, padding="valid")
    return b.concat(pool, branch1, branch2)


def _inception_c(b: GraphBuilder, x: Op) -> Op:
    pool = b.avg_pool(x, 3, stride=1, padding=1)
    branch0 = _cba(b, pool, 256, 1)
    branch1 = _cba(b, x, 256, 1)
    branch2 = _cba(b, x, 384, 1)
    branch2a = _cba(b, branch2, 256, (1, 3))
    branch2b = _cba(b, branch2, 256, (3, 1))
    branch3 = _cba(b, x, 384, 1)
    branch3 = _cba(b, branch3, 448, (1, 3))
    branch3 = _cba(b, branch3, 512, (3, 1))
    branch3a = _cba(b, branch3, 256, (3, 1))
    branch3b = _cba(b, branch3, 256, (1, 3))
    return b.concat(branch0, branch1, branch2a, branch2b, branch3a, branch3b)


def inception_v4(num_classes: int = 1000) -> Graph:
    b = GraphBuilder("Inception-v4", metadata={"task": "classification", "family": "inception"})
    x = b.input((3, 299, 299))
    x = _stem(b, x)
    for _ in range(4):
        x = _inception_a(b, x)
    x = _reduction_a(b, x)
    for _ in range(7):
        x = _inception_b(b, x)
    x = _reduction_b(b, x)
    for _ in range(3):
        x = _inception_c(b, x)
    x = b.global_avg_pool(x)
    x = b.dropout(x, rate=0.2)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
