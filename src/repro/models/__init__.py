"""Model zoo: the DNN models of the paper's Table I.

All 16 configurations are constructed layer-by-layer on the graph IR; their
parameter and multiply-accumulate counts are validated against Table I in
the test suite (per-model tolerances and convention notes are recorded in
EXPERIMENTS.md).
"""

from repro.models.zoo import MODEL_REGISTRY, list_models, load_model

__all__ = ["MODEL_REGISTRY", "list_models", "load_model"]
