"""Recurrent models — the paper's stated future work.

Section II: "We plan to extend our models to include more varieties of DNN
models, such as RNNs and LSTMs, in the future work."  These three models
exercise the recurrent substrate: a character-level LSTM, the classic PTB
word-level LSTM (Zaremba's medium configuration), and a GRU sequence
encoder.  Their sequential recurrence exposes very little parallel work per
timestep, so — unlike the CNNs — they barely benefit from wide GPUs.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder


def char_lstm(seq_len: int = 128, vocab: int = 256, hidden: int = 512,
              layers: int = 2) -> Graph:
    """Character-level language model (char-rnn style)."""
    b = GraphBuilder("CharRNN-LSTM", metadata={
        "task": "language-modeling", "family": "rnn", "recurrent": True,
    })
    x = b.input((seq_len,))
    x = b.embedding(x, vocab, 128)
    for _ in range(layers):
        x = b.lstm(x, hidden)
        x = b.dropout(x, rate=0.3)
    x = b.last_timestep(x)
    x = b.dense(x, vocab)
    b.softmax(x)
    return b.build()


def ptb_lstm(seq_len: int = 35, vocab: int = 10000, hidden: int = 650) -> Graph:
    """Word-level PTB language model (Zaremba et al., medium)."""
    b = GraphBuilder("LSTM-PTB", metadata={
        "task": "language-modeling", "family": "rnn", "recurrent": True,
    })
    x = b.input((seq_len,))
    x = b.embedding(x, vocab, hidden)
    for _ in range(2):
        x = b.lstm(x, hidden)
        x = b.dropout(x, rate=0.5)
    x = b.last_timestep(x)
    x = b.dense(x, vocab)
    b.softmax(x)
    return b.build()


def gru_encoder(seq_len: int = 64, vocab: int = 32000, hidden: int = 512) -> Graph:
    """GRU sequence encoder (translation-encoder style)."""
    b = GraphBuilder("GRU-Encoder", metadata={
        "task": "sequence-encoding", "family": "rnn", "recurrent": True,
    })
    x = b.input((seq_len,))
    x = b.embedding(x, vocab, 256)
    x = b.gru(x, hidden)
    x = b.gru(x, hidden, return_sequences=False)
    x = b.dense(x, hidden)
    b.activation(x, "tanh")
    return b.build()
