"""VGG family (Simonyan & Zisserman, 2015): VGG16, VGG19, and VGG-S.

VGG16/19 are the standard configurations D and E.  VGG-S is the "slow"
CNN-S of Chatfield et al. that the paper runs at both 224x224 and 32x32
input; at 32x32 the fully connected stack shrinks with the collapsed feature
map, which is why Table I lists two very different parameter counts for the
same architecture.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder, Op


def _vgg_stage(b: GraphBuilder, x: Op, channels: int, convs: int) -> Op:
    for _ in range(convs):
        x = b.conv2d(x, channels, 3, padding="same")
        x = b.relu(x)
    return b.max_pool(x, 2, stride=2)


def _build_vgg(name: str, stage_convs: list[int], num_classes: int = 1000) -> Graph:
    b = GraphBuilder(name, metadata={"task": "classification", "family": "vgg"})
    x = b.input((3, 224, 224))
    for channels, convs in zip((64, 128, 256, 512, 512), stage_convs):
        x = _vgg_stage(b, x, channels, convs)
    x = b.flatten(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()


def vgg16() -> Graph:
    return _build_vgg("VGG16", [2, 2, 3, 3, 3])


def vgg19() -> Graph:
    return _build_vgg("VGG19", [2, 2, 4, 4, 4])


def vgg_s(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """CNN-S ("VGG-S"): 5 conv layers with aggressive early pooling.

    conv1 7x7/2 (96) + 3x3/3 pool, conv2 5x5 (256) + 2x2 pool, conv3-5
    3x3 (512), 3x3/3 pool, then the 4096-4096-1000 classifier.
    """
    if input_size not in (32, 224):
        raise ValueError(f"VGG-S is characterized at 32 or 224 input, got {input_size}")
    name = f"VGG-S {input_size}x{input_size}"
    b = GraphBuilder(name, metadata={"task": "classification", "family": "vgg"})
    x = b.input((3, input_size, input_size))
    x = b.conv2d(x, 96, 7, stride=2, padding="same")
    x = b.relu(x)
    x = b.lrn(x)
    x = b.max_pool(x, 3, stride=3)
    x = b.conv2d(x, 256, 5, padding="same")
    x = b.relu(x)
    x = b.max_pool(x, 2, stride=2)
    for _ in range(3):
        x = b.conv2d(x, 512, 3, padding="same")
        x = b.relu(x)
    if min(x.output_shape.spatial) >= 3:
        x = b.max_pool(x, 3, stride=3)
    else:
        x = b.global_avg_pool(x)
    x = b.flatten(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.dense(x, 4096)
    x = b.relu(x)
    x = b.dropout(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
