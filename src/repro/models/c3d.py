"""C3D (Tran et al., 2015): 3-D convolutions for video recognition.

Built at the paper's 12x112x112 clip size (Table I).  The 3x3x3 convolution
stack and the 4096-4096 classifier give ~80 M parameters and ~29 GMACs —
doubling the MACs (DarkNet/Caffe convention) lands on Table I's 57.99 GFLOP.
Pooling uses ceil mode, matching the original Caffe deployment.
"""

from __future__ import annotations

from repro.graphs import Graph, GraphBuilder

SPORTS_1M_CLASSES = 487


def c3d(frames: int = 12, num_classes: int = SPORTS_1M_CLASSES) -> Graph:
    b = GraphBuilder("C3D", metadata={"task": "video", "family": "c3d", "conv3d": True})
    x = b.input((3, frames, 112, 112))
    x = b.conv3d(x, 64, 3)
    x = b.activation(x, "relu")
    x = b.max_pool3d(x, (1, 2, 2), ceil_mode=True)
    x = b.conv3d(x, 128, 3)
    x = b.activation(x, "relu")
    x = b.max_pool3d(x, (2, 2, 2), ceil_mode=True)
    for channels in (256, 512, 512):
        x = b.conv3d(x, channels, 3)
        x = b.activation(x, "relu")
        x = b.conv3d(x, channels, 3)
        x = b.activation(x, "relu")
        x = b.max_pool3d(x, (2, 2, 2), ceil_mode=True)
    x = b.flatten(x)
    x = b.dense(x, 4096)
    x = b.activation(x, "relu")
    x = b.dropout(x)
    x = b.dense(x, 4096)
    x = b.activation(x, "relu")
    x = b.dropout(x)
    x = b.dense(x, num_classes)
    x = b.softmax(x)
    return b.build()
