"""Command-line interface.

Usage::

    python -m repro list                      # experiments, models, devices
    python -m repro run fig07 fig08           # regenerate specific artifacts
    python -m repro run --all                 # the whole paper
    python -m repro time ResNet-18 "Jetson Nano" TensorRT --batch 4
    python -m repro compat                    # Table V matrix
    python -m repro suite --jobs 4 --stats    # parallel sweep + cache stats
    python -m repro fleet --requests 1000000  # million-request fleet sim
    python -m repro place MobileNet-v2 --link lan --min-rps 2
    python -m repro fleet --placement frontier.json --requests 10000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import (
    ReproError,
    list_devices,
    list_experiments,
    list_frameworks,
    list_models,
    load_model,
    render_table,
    run_experiment,
)
from repro.runtime import Scenario, default_runner


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Experiments:")
    for experiment_id in list_experiments():
        print(f"  {experiment_id}")
    print("\nModels:")
    for name in list_models():
        print(f"  {name}")
    print("\nDevices:")
    for name in list_devices():
        print(f"  {name}")
    print("\nFrameworks:")
    for name in list_frameworks():
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.report import render_csv, render_markdown

    renderers = {"table": render_table, "markdown": render_markdown, "csv": render_csv}
    render = renderers[args.format]
    experiment_ids = list_experiments() if args.all else args.experiments
    if not experiment_ids:
        print("nothing to run: pass experiment ids or --all", file=sys.stderr)
        return 2
    for experiment_id in experiment_ids:
        try:
            table = run_experiment(experiment_id)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(render(table))
        if args.chart:
            from repro.harness.charts import bar_chart

            if args.chart not in table.columns:
                print(f"error: no column {args.chart!r} to chart", file=sys.stderr)
                return 2
            print()
            print(bar_chart(table, args.chart))
        print()
    return 0


def _cmd_time(args: argparse.Namespace) -> int:
    scenario = Scenario(
        args.model, args.device, args.framework,
        dtype=args.dtype, batch_size=args.batch,
        power_mode=args.power_mode, containerized=args.container,
    )
    runner = default_runner()
    record = runner.run(scenario, use_timer=not args.no_timer, n_runs=args.runs)
    if record.failed:
        print(f"deployment failed: {record.failure.message} "
              f"[{record.failure.kind}]", file=sys.stderr)
        return 1
    session = runner.session(scenario)
    print(session.describe())
    if record.stats is not None:
        stats = record.stats
        print(f"timed:  {stats.median_s * 1e3:.2f} ms/inference median over "
              f"{stats.samples} runs (sd {stats.stddev_s * 1e3:.3f} ms, "
              f"seed 0x{record.provenance.seed:08x})")
    print(f"power:  {record.power_w:.2f} W at {record.utilization:.0%} utilization; "
          f"init {record.init_time_s:.2f} s; "
          f"deploy cache {record.provenance.deploy_cache}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import (
        Severity,
        render_github,
        render_json,
        render_text,
        rule_catalog,
        run_checks,
    )

    if args.list_rules:
        catalog = rule_catalog()
        if args.format == "json":
            payload = {rule: {"severity": severity.value,
                              "description": description}
                       for rule, (severity, description) in catalog.items()}
            print(json.dumps({"version": 1, "rules": payload}, indent=1))
        else:
            for rule, (severity, description) in catalog.items():
                print(f"{severity.value:7s} {rule:9s} {description}")
        return 0

    timings: dict[str, float] = {}
    try:
        findings = run_checks(passes=args.passes or None, ignore=args.ignore or (),
                              timings=timings)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    renderers = {"text": render_text, "json": render_json, "github": render_github}
    print(renderers[args.format](findings))
    if args.stats:
        for name, elapsed_s in timings.items():
            print(f"# {name}: {elapsed_s * 1e3:.1f} ms", file=sys.stderr)
        print(f"# total: {sum(timings.values()) * 1e3:.1f} ms", file=sys.stderr)
    if args.strict:
        return 0 if not findings else 1
    errors = sum(1 for finding in findings if finding.severity is Severity.ERROR)
    return 0 if errors == 0 else 1


def _cmd_compat(_args: argparse.Namespace) -> int:
    table = run_experiment("table5")
    print(render_table(table))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validation import validate_claims

    try:
        results = validate_claims(args.claims or None)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        if not result.passed:
            failures += 1
        print(f"[{status}] {result.claim_id} (Sec. {result.section}): "
              f"{result.statement}")
        print(f"       {result.evidence}")
    print(f"\n{len(results) - failures}/{len(results)} claims hold")
    return 0 if failures == 0 else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.engine.cache import cache_stats, set_caching
    from repro.harness.sweep_runner import run_sweep

    if args.no_cache:
        set_caching(False)
    try:
        result = run_sweep(args.experiments or None, jobs=args.jobs,
                           executor=args.executor)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if args.no_cache:
            set_caching(True)
    print(result.describe())
    if args.stats:
        print("\ncache statistics (this process):")
        for name, stats in cache_stats().items():
            print(f"  {name:7s} entries={stats['entries']:4d} "
                  f"hits={stats['hits']:5d} misses={stats['misses']:5d} "
                  f"hit_rate={stats['hit_rate']:.1%}")
        if args.executor == "process" and args.jobs > 1:
            print("  (process workers keep their own caches; "
                  "worker-side hits are not visible here)")
        from repro.engine.compile import compile_stats

        compiled = compile_stats()
        print("\nsweep compiler statistics (this process):")
        print(f"  grids={compiled['grids']} cells={compiled['cells']} "
              f"deploys={compiled['unique_deploys']} "
              f"plans={compiled['unique_plans']} "
              f"plan_hits={compiled['plan_cache_hits']} "
              f"dedup_ratio={compiled['dedup_ratio']:.2f}")
        print(f"  array_programs={compiled['array_programs']} "
              f"ops={compiled['ops_lowered']} "
              f"macs={compiled['macs_lowered']:.3g} "
              f"bytes={compiled['bytes_lowered']:.3g}")
        print(f"  gather={compiled['gather_s'] * 1e3:.1f}ms "
              f"lower={compiled['lower_s'] * 1e3:.1f}ms "
              f"scatter={compiled['scatter_s'] * 1e3:.1f}ms "
              f"timer={compiled['timer_s'] * 1e3:.1f}ms")
    if args.output:
        Path(args.output).write_text(json.dumps(result.snapshot, indent=1))
        print(f"\nwrote {args.output}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.placement import SLO, search_placements

    slo = None
    if (args.deadline_ms is not None or args.min_rps is not None
            or args.energy_j is not None):
        slo = SLO(
            deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
            min_throughput_rps=args.min_rps,
            max_energy_j=args.energy_j,
        )
    try:
        frontier = search_placements(
            args.model,
            edge_devices=args.device or None,
            remote_devices=tuple(args.remote or ()),
            link=args.link,
            slo=slo,
            max_pipeline_depth=args.max_depth,
        )
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    text = (json.dumps(frontier.to_dict(), indent=1)
            if args.format == "json" else frontier.describe())
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0 if frontier.frontier else 1


_DEFAULT_FLEET_POOLS = (
    "8x Jetson Nano:TensorRT:8",
    "4x Jetson TX2:PyTorch:4",
    "2x Raspberry Pi 3B:TFLite",
)


def _parse_pool_spec(spec: str, model: str, index: int) -> "PoolSpec":
    import re

    from repro.fleet import PoolSpec

    match = re.match(r"^\s*(\d+)\s*x\s*(.+)$", spec)
    if not match:
        raise ValueError(
            f"bad pool spec {spec!r}; expected 'COUNTx DEVICE:FRAMEWORK[:MAX_BATCH]'")
    replicas = int(match.group(1))
    parts = [part.strip() for part in match.group(2).split(":")]
    if len(parts) == 2:
        device, framework = parts
        max_batch = 1
    elif len(parts) == 3:
        device, framework = parts[:2]
        max_batch = int(parts[2])
    else:
        raise ValueError(
            f"bad pool spec {spec!r}; expected 'COUNTx DEVICE:FRAMEWORK[:MAX_BATCH]'")
    return PoolSpec(name=f"{index}:{device}", replicas=replicas,
                    scenario=Scenario(model, device, framework),
                    max_batch=max_batch)


def _placement_pool(path: str, replicas: int) -> "PoolSpec":
    """Build the serving pool from a ``repro place`` frontier file.

    Takes the best (lowest-latency) frontier point — the one
    :meth:`PlacementFrontier.best` would return.
    """
    import json
    from pathlib import Path

    from repro.fleet import PoolSpec
    from repro.placement import Deployment

    payload = json.loads(Path(path).read_text())
    frontier = payload.get("frontier", ())
    if not frontier:
        raise ValueError(
            f"{path}: no frontier points (was the SLO satisfiable?); "
            "regenerate with 'repro place ... --format json --output'")
    deployment = Deployment.from_dict(frontier[0]["deployment"])
    return PoolSpec.from_deployment(
        name=f"placement:{'+'.join(deployment.devices)}",
        deployment=deployment, replicas=replicas)


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.fleet import AdmissionControl, Autoscaler, FleetSimulation
    from repro.workloads.arrivals import (
        BurstyArrivals,
        DiurnalArrivals,
        PeriodicArrivals,
        PoissonArrivals,
        first_n,
        reseeded,
    )

    if args.requests is None and args.horizon is None:
        print("error: pass --requests or --horizon", file=sys.stderr)
        return 2
    if args.requests is not None and args.horizon is not None:
        print("error: pass --requests or --horizon, not both", file=sys.stderr)
        return 2
    if args.placement and args.pool:
        print("error: pass --placement or --pool, not both", file=sys.stderr)
        return 2
    try:
        if args.placement:
            pools = [_placement_pool(args.placement, args.replicas)]
        else:
            pools = [_parse_pool_spec(spec, args.model, index)
                     for index, spec in enumerate(args.pool or _DEFAULT_FLEET_POOLS)]
        autoscaler = Autoscaler() if args.autoscale else None
        admission = (AdmissionControl(max_queue_per_node=args.admit_limit)
                     if args.admit_limit else None)
        simulation = FleetSimulation(pools, router=args.policy,
                                     autoscaler=autoscaler,
                                     admission=admission, epochs=args.epochs)
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Default load: 70% of the fleet's peak service rate — busy but stable.
    rate_hz = args.rate if args.rate else 0.7 * simulation.capacity_rps
    span_s = (args.horizon if args.horizon is not None
              else args.requests / rate_hz)
    processes = {
        "poisson": lambda: PoissonArrivals(rate_hz=rate_hz),
        "periodic": lambda: PeriodicArrivals(rate_hz=rate_hz,
                                             jitter_fraction=0.5),
        "bursty": lambda: BurstyArrivals(
            burst_rate_hz=rate_hz / args.burst_size,
            burst_size=args.burst_size),
        "diurnal": lambda: DiurnalArrivals(
            base_rate_hz=rate_hz,
            period_s=args.period if args.period else span_s / 2),
    }
    process = reseeded(processes[args.arrivals](), args.seed)
    if args.requests is not None:
        arrival_times = first_n(process, args.requests)
    else:
        arrival_times = process.generate(args.horizon)
    stats = simulation.run(arrival_times, seed=args.seed)
    text = (json.dumps(stats.to_dict(), indent=1) if args.format == "json"
            else stats.describe())
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.harness.suite import save_results

    try:
        save_results(args.path, args.experiments or None,
                     jobs=args.jobs, executor=args.executor)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"wrote {args.path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.harness.suite import compare_results, load_results

    before = load_results(args.before)
    after = load_results(args.after)
    differences = compare_results(before, after, rel_tolerance=args.tolerance)
    for difference in differences:
        print(difference.describe())
    print(f"{len(differences)} differing cells "
          f"(tolerance {args.tolerance:.1%})")
    return 0 if not differences else 1


def _cmd_calibration(_args: argparse.Namespace) -> int:
    from repro.engine.calibration import calibration_report

    print(f"{'framework':11s} {'device':17s} {'anchor model':16s} "
          f"{'target':>10s} {'achieved':>10s} {'scale':>8s}  source")
    for entry in calibration_report():
        print(f"{entry['framework']:11s} {entry['device']:17s} "
              f"{entry['model']:16s} {entry['target_s'] * 1e3:8.1f}ms "
              f"{entry['achieved_s'] * 1e3:8.1f}ms {entry['scale']:8.3f}  "
              f"{entry['source']}")
    clamped = sum(1 for entry in calibration_report() if entry["clamped"])
    print(f"\n{clamped} clamped anchors")
    return 0 if clamped == 0 else 1


def _cmd_summary(args: argparse.Namespace) -> int:
    try:
        graph = load_model(args.model)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(graph.summary(verbose=True))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.analysis import Requirements, recommend_deployments

    requirements = Requirements(
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        power_budget_w=args.power_w,
        energy_budget_j=None if args.energy_mj is None else args.energy_mj / 1e3,
    )
    try:
        results = recommend_deployments(args.model, requirements)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for recommendation in results[: args.top]:
        print(recommendation.describe())
    feasible = sum(1 for r in results if r.feasible)
    print(f"\n{feasible}/{len(results)} deployable configurations satisfy "
          "the constraints")
    return 0 if feasible else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Characterizing the Deployment "
        "of Deep Neural Networks on Commercial Edge Devices' (IISWC 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments/models/devices")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser("run", help="regenerate paper artifacts")
    run_parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig07)")
    run_parser.add_argument("--all", action="store_true", help="run every experiment")
    run_parser.add_argument("--format", choices=("table", "markdown", "csv"),
                            default="table", help="output format")
    run_parser.add_argument("--chart", metavar="COLUMN",
                            help="also render an ASCII bar chart of COLUMN")
    run_parser.set_defaults(handler=_cmd_run)

    time_parser = subparsers.add_parser("time", help="time one deployment")
    time_parser.add_argument("model")
    time_parser.add_argument("device")
    time_parser.add_argument("framework")
    time_parser.add_argument("--dtype", choices=("fp32", "fp16", "int8", "binary"),
                             default=None, help="deployment datatype")
    time_parser.add_argument("--batch", type=int, default=1,
                             help="batch size (default 1, the edge regime)")
    time_parser.add_argument("--power-mode", default="default",
                             help="DVFS operating point (e.g. MAXN)")
    time_parser.add_argument("--container", action="store_true",
                             help="run inside the Docker profile (Sec. VI-D)")
    time_parser.add_argument("--runs", type=int, default=None,
                             help="timing-loop length (default: paper policy)")
    time_parser.add_argument("--no-timer", action="store_true",
                             help="print the noise-free plan latency only")
    time_parser.set_defaults(handler=_cmd_time)

    check_parser = subparsers.add_parser(
        "check", help="static verification: graph IR, shapes, data tables, "
                      "architecture, units, effects")
    check_parser.add_argument("passes", nargs="*", metavar="PASS",
                              help="passes to run: ir, shapes, tables, arch, "
                                   "units, effects (default: all)")
    check_parser.add_argument("--strict", action="store_true",
                              help="fail on any finding, not just errors")
    check_parser.add_argument("--stats", action="store_true",
                              help="print per-pass wall times to stderr")
    check_parser.add_argument("--list-rules", action="store_true",
                              help="print the rule catalog (honors --format "
                                   "json) and exit")
    check_parser.add_argument("--format", choices=("text", "json", "github"),
                              default="text",
                              help="report format (github emits workflow "
                                   "annotations)")
    check_parser.add_argument("--ignore", action="append", metavar="RULE",
                              help="suppress a rule id (repeatable, e.g. IR008)")
    check_parser.set_defaults(handler=_cmd_check)

    compat_parser = subparsers.add_parser("compat", help="print the Table V matrix")
    compat_parser.set_defaults(handler=_cmd_compat)

    validate_parser = subparsers.add_parser(
        "validate", help="check the paper's headline claims against the simulation")
    validate_parser.add_argument("claims", nargs="*", help="claim ids (default: all)")
    validate_parser.set_defaults(handler=_cmd_validate)

    export_parser = subparsers.add_parser(
        "export", help="snapshot experiment results to a JSON file")
    export_parser.add_argument("path", help="output file")
    export_parser.add_argument("experiments", nargs="*",
                               help="experiment ids (default: all)")
    export_parser.add_argument("--jobs", type=int, default=1,
                               help="worker count (default 1 = serial)")
    export_parser.add_argument("--executor", choices=("thread", "process"),
                               default="thread",
                               help="pool flavour for --jobs > 1")
    export_parser.set_defaults(handler=_cmd_export)

    suite_parser = subparsers.add_parser(
        "suite", help="run the experiment suite through the sweep runner")
    suite_parser.add_argument("experiments", nargs="*",
                              help="experiment ids (default: all)")
    suite_parser.add_argument("--jobs", type=int, default=1,
                              help="worker count (default 1 = serial)")
    suite_parser.add_argument("--executor", choices=("thread", "process"),
                              default="thread",
                              help="pool flavour for --jobs > 1")
    suite_parser.add_argument("--stats", action="store_true",
                              help="print memoization and sweep-compiler "
                                   "statistics")
    suite_parser.add_argument("--output", metavar="PATH",
                              help="also write the snapshot JSON to PATH")
    suite_parser.add_argument("--no-cache", action="store_true",
                              help="bypass the engine memoization layer")
    suite_parser.set_defaults(handler=_cmd_suite)

    calibration_parser = subparsers.add_parser(
        "calibration", help="show the anchor-calibration fit report")
    calibration_parser.set_defaults(handler=_cmd_calibration)

    summary_parser = subparsers.add_parser(
        "summary", help="print a model's per-layer summary")
    summary_parser.add_argument("model")
    summary_parser.set_defaults(handler=_cmd_summary)

    recommend_parser = subparsers.add_parser(
        "recommend", help="find the best deployment for a model under constraints")
    recommend_parser.add_argument("model")
    recommend_parser.add_argument("--deadline-ms", type=float, default=None)
    recommend_parser.add_argument("--power-w", type=float, default=None)
    recommend_parser.add_argument("--energy-mj", type=float, default=None)
    recommend_parser.add_argument("--top", type=int, default=10,
                                  help="rows to print (default 10)")
    recommend_parser.set_defaults(handler=_cmd_recommend)

    place_parser = subparsers.add_parser(
        "place", help="search single-node/split/pipeline placements and "
                      "print the Pareto frontier")
    place_parser.add_argument("model")
    place_parser.add_argument("--device", action="append", metavar="NAME",
                              help="edge device that may host the input "
                                   "stage (repeatable; default: every edge "
                                   "platform)")
    place_parser.add_argument("--remote", action="append", metavar="NAME",
                              help="offload-only remote endpoint, e.g. "
                                   "'GTX Titan X' (repeatable)")
    place_parser.add_argument("--link", default="wifi",
                              help="network link preset: wifi, lte, 5g, "
                                   "lan, loopback (default wifi)")
    place_parser.add_argument("--deadline-ms", type=float, default=None,
                              help="SLO: end-to-end latency bound")
    place_parser.add_argument("--min-rps", type=float, default=None,
                              help="SLO: steady-state inferences per second")
    place_parser.add_argument("--energy-j", type=float, default=None,
                              help="SLO: joules per inference budget")
    place_parser.add_argument("--max-depth", type=int, default=3,
                              help="deepest homogeneous pipeline (default 3)")
    place_parser.add_argument("--format", choices=("text", "json"),
                              default="text", help="output format")
    place_parser.add_argument("--output", metavar="PATH",
                              help="write the frontier to PATH (feed the "
                                   "JSON form to 'fleet --placement')")
    place_parser.set_defaults(handler=_cmd_place)

    fleet_parser = subparsers.add_parser(
        "fleet", help="simulate a heterogeneous serving fleet")
    fleet_parser.add_argument("--model", default="ResNet-18",
                              help="model every pool serves")
    fleet_parser.add_argument("--pool", action="append", metavar="SPEC",
                              help="pool spec 'COUNTx DEVICE:FRAMEWORK"
                                   "[:MAX_BATCH]' (repeatable; default: "
                                   "8x Nano + 4x TX2 + 2x Pi 3B)")
    fleet_parser.add_argument("--placement", metavar="PATH",
                              help="serve the best frontier point from a "
                                   "'repro place --format json' file "
                                   "instead of --pool specs")
    fleet_parser.add_argument("--replicas", type=int, default=2,
                              help="replica chains for --placement "
                                   "(default 2)")
    fleet_parser.add_argument("--requests", type=int, default=None,
                              help="simulate exactly this many requests")
    fleet_parser.add_argument("--horizon", type=float, default=None,
                              metavar="SECONDS",
                              help="simulate this horizon instead of a count")
    fleet_parser.add_argument("--rate", type=float, default=None,
                              help="mean request rate in req/s "
                                   "(default: 70%% of fleet capacity)")
    fleet_parser.add_argument("--arrivals", default="poisson",
                              choices=("poisson", "periodic", "bursty",
                                       "diurnal"),
                              help="arrival process (default poisson)")
    fleet_parser.add_argument("--burst-size", type=int, default=8,
                              help="requests per burst for --arrivals bursty")
    fleet_parser.add_argument("--period", type=float, default=None,
                              metavar="SECONDS",
                              help="cycle length for --arrivals diurnal "
                                   "(default: half the horizon)")
    fleet_parser.add_argument("--policy", default="least-outstanding",
                              choices=("round-robin", "least-outstanding",
                                       "energy-aware"),
                              help="routing policy")
    fleet_parser.add_argument("--epochs", type=int, default=1024,
                              help="routing epochs (default 1024)")
    fleet_parser.add_argument("--seed", type=int, default=0,
                              help="workload seed (reports are byte-identical "
                                   "per seed)")
    fleet_parser.add_argument("--admit-limit", type=int, default=None,
                              metavar="N",
                              help="admission control: max queue per node")
    fleet_parser.add_argument("--autoscale", action="store_true",
                              help="enable the queue-depth autoscaler")
    fleet_parser.add_argument("--format", choices=("json", "text"),
                              default="json", help="output format")
    fleet_parser.add_argument("--output", metavar="PATH",
                              help="write the report to PATH instead of stdout")
    fleet_parser.set_defaults(handler=_cmd_fleet)

    diff_parser = subparsers.add_parser(
        "diff", help="compare two result snapshots")
    diff_parser.add_argument("before")
    diff_parser.add_argument("after")
    diff_parser.add_argument("--tolerance", type=float, default=0.01,
                             help="relative tolerance for numeric cells")
    diff_parser.set_defaults(handler=_cmd_diff)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
