"""Execution timelines and per-layer reports.

Turns an :class:`InferenceSession`'s plan into artifacts an engineer would
pull from a real profiler: a per-layer latency table (the drill-down behind
Figure 5's aggregates) and a Chrome ``chrome://tracing`` / Perfetto JSON
trace of one inference.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.result import ResultTable
from repro.engine.executor import InferenceSession


def layer_table(session: InferenceSession, top: int | None = None) -> ResultTable:
    """Per-op latency decomposition, slowest first.

    Args:
        session: an executed plan.
        top: keep only the N slowest ops (None = all).
    """
    deployed = session.deployed
    table = ResultTable(
        f"Per-layer latency: {deployed.describe()}",
        ["type", "latency_us", "compute_us", "memory_us", "bound", "share"],
        caption="share = fraction of the summed per-op latency.",
    )
    timings = sorted(session.plan.timings, key=lambda t: t.latency_s, reverse=True)
    total = sum(t.latency_s for t in session.plan.timings) or 1.0
    for timing in timings[: top or len(timings)]:
        table.add_row(
            timing.op.name,
            type=type(timing.op).__name__,
            latency_us=timing.latency_s * 1e6,
            compute_us=timing.compute_s * 1e6,
            memory_us=timing.memory_s * 1e6,
            bound=timing.bound,
            share=timing.latency_s / total,
        )
    return table


def chrome_trace(session: InferenceSession) -> dict:
    """One inference as a Chrome trace-event JSON object.

    Ops execute back-to-back on a single lane ("tid" 1); the session
    overhead and input transfer appear as their own slices.  Load the
    result in chrome://tracing or Perfetto.
    """
    deployed = session.deployed
    events = []
    cursor_us = 0.0

    def slice_event(name: str, duration_s: float, category: str, args: dict | None = None):
        nonlocal cursor_us
        duration_us = duration_s * 1e6
        events.append({
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": round(cursor_us, 3),
            "dur": round(duration_us, 3),
            "pid": 1,
            "tid": 1,
            "args": args or {},
        })
        cursor_us += duration_us

    if session.plan.session_overhead_s:
        slice_event("session overhead", session.plan.session_overhead_s, "framework")
    if session.plan.input_transfer_s:
        slice_event("input transfer", session.plan.input_transfer_s, "transfer")
    for timing in session.plan.timings:
        slice_event(
            timing.op.name,
            timing.latency_s,
            timing.op.category.value,
            args={
                "type": type(timing.op).__name__,
                "bound": timing.bound,
                "compute_us": round(timing.compute_s * 1e6, 3),
                "memory_us": round(timing.memory_s * 1e6, 3),
                "macs": timing.op.macs,
            },
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "model": deployed.graph.name,
            "device": deployed.device.name,
            "framework": deployed.framework.name,
            "latency_ms": round(session.latency_s * 1e3, 3),
        },
    }


def save_chrome_trace(session: InferenceSession, path: str | Path) -> None:
    """Write the Chrome trace JSON to ``path``."""
    Path(path).write_text(json.dumps(chrome_trace(session)))
