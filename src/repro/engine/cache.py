"""Content-keyed memoization for the sweep hot path.

Every figure/table generator walks the same model -> deploy -> plan pipeline
for each (model, device, framework) cell, and that pipeline is pure and
deterministic: `load_model` builds the same graph every time, `deploy`
derives the same `DeployedModel` from the same inputs, and
`InferenceSession._build_plan` prices the same ops the same way.  Building
each artifact once and reusing it is therefore an observationally invisible
optimization — which the identity suite proves by diffing cached against
uncached exports at zero tolerance.

Five caches, one per pipeline stage:

* ``GRAPH_CACHE`` — zoo graphs keyed by canonical model name.
* ``DEPLOY_CACHE`` — deployed models keyed by (model, device, framework,
  dtype).  Table V *failures* are cached too: a `ReproError` raised by
  `deploy` is stored and re-raised on every hit, so best-framework candidate
  loops stop re-paying failed deployments.
* ``PLAN_CACHE`` — `ExecutionPlan`s keyed by the deployment's cache key plus
  (`EngineConfig`, efficiency scale).  Only deployments produced by
  :func:`cached_deploy` participate; ad-hoc deployments (mutated devices,
  pruned graphs, tests poking at ``storage_mode``) always re-plan.
* ``RECORD_CACHE`` — finished ``RunRecord``s keyed by the scenario's full
  canonical key plus the measurement flags.  Populated by the Runner and
  the sweep compiler (:mod:`repro.engine.compile`); records are frozen
  dataclasses, so sharing them is safe by construction.
* ``PAYLOAD_CACHE`` — exported experiment payloads keyed by experiment id
  (the warm-suite fast path of ``harness.suite.export_results``).

The purity contract: cached graphs, deployments and plans are SHARED
instances — callers must treat them as immutable.  Transforms already obey
this (they `clone()` before annotating); anything that wants to mutate must
deploy outside the cache (`Framework.deploy` directly) or `clear_caches()`
afterwards.

Thread safety: each cache takes a lock around its table, so the parallel
sweep runner's workers share one memo layer.  A racing build may run twice;
the first result wins and both callers see the same object.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, TypeVar

from repro.core.errors import ReproError
from repro.core.registry import canonical_name

V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoCache:
    """A thread-safe content-keyed memo table with hit/miss statistics.

    Outcomes are stored, not just values: a builder that raises
    :class:`ReproError` has that error cached and re-raised on every
    subsequent lookup (deployment failures are as deterministic as
    successes).  Other exception types propagate uncached.
    """

    def __init__(self, name: str):
        self.name = name
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: dict[Any, tuple[bool, Any]] = {}

    def get_or_build(self, key: Any, builder: Callable[[], V]) -> V:
        with self._lock:
            outcome = self._entries.get(key, _MISSING)
            if outcome is _MISSING:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        if outcome is _MISSING:
            try:
                outcome = (True, builder())
            except ReproError as error:
                outcome = (False, error)
            with self._lock:
                # First build wins on a race so every caller shares one object.
                outcome = self._entries.setdefault(key, outcome)
        ok, value = outcome
        if not ok:
            raise value
        return value

    def cached_value(self, key: Any) -> tuple[bool, Any]:
        """``(found, value)`` for ``key``, counting a hit or miss.

        The two-phase face of :meth:`get_or_build` for callers that build
        many missing entries in one batch (the sweep compiler): a cached
        failure outcome re-raises exactly like ``get_or_build``; a miss
        returns ``(False, None)`` and the caller is expected to
        :meth:`store` the built value afterwards.
        """
        with self._lock:
            outcome = self._entries.get(key, _MISSING)
            if outcome is _MISSING:
                self.stats.misses += 1
                return False, None
            self.stats.hits += 1
        ok, value = outcome
        if not ok:
            raise value
        return True, value

    def store(self, key: Any, value: V) -> V:
        """Insert a successful outcome; first store wins on a race.

        Returns the shared entry, which is ``value`` unless another thread
        stored first.
        """
        with self._lock:
            _ok, stored = self._entries.setdefault(key, (True, value))
        return stored

    def invalidate(self, key: Any) -> bool:
        """Drop one entry; returns whether it existed.

        Counters are left untouched — an invalidation is not a lookup, and
        the hit/miss history stays meaningful across it.  Safe to race with
        :meth:`get_or_build`: a concurrent builder re-inserts via
        ``setdefault``, so callers still converge on one shared object.
        """
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def contains(self, key: Any) -> bool:
        """Whether an outcome is cached for ``key`` (no stats bump)."""
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe statistics for reports and the ``suite --stats`` verb."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "hit_rate": self.stats.hit_rate,
            }


GRAPH_CACHE = MemoCache("graph")
DEPLOY_CACHE = MemoCache("deploy")
PLAN_CACHE = MemoCache("plan")
RECORD_CACHE = MemoCache("record")
PAYLOAD_CACHE = MemoCache("payload")
_CACHES = (GRAPH_CACHE, DEPLOY_CACHE, PLAN_CACHE, RECORD_CACHE, PAYLOAD_CACHE)

_enabled = True


def caching_enabled() -> bool:
    """Whether the memoization layer is currently active."""
    return _enabled


def set_caching(enabled: bool) -> bool:
    """Globally enable/disable the memo layer; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Run a block with every lookup bypassing the caches."""
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


def clear_caches() -> None:
    """Explicit invalidation: drop all cached graphs/deployments/plans."""
    for cache in _CACHES:
        cache.clear()


def cache_stats() -> dict[str, dict[str, Any]]:
    """Per-cache entry/hit/miss statistics, keyed by cache name."""
    return {cache.name: cache.snapshot() for cache in _CACHES}


# -- content keys --------------------------------------------------------
def graph_key(model_name: str) -> str:
    return canonical_name(model_name)


def deploy_key(model_name: str, device_name: str, framework_name: str,
               dtype: Any = None) -> tuple:
    """Deploy-cache key; the canonical form lives on ``Scenario.deploy_key``."""
    from repro.runtime.scenario import Scenario

    return Scenario(model_name, device_name, framework_name, dtype=dtype).deploy_key


def plan_key(deployed: Any, config: Any, efficiency_scale: float) -> tuple | None:
    """Plan-cache key, or None when this deployment must not be cached."""
    if not _enabled:
        return None
    base = getattr(deployed, "cache_key", None)
    if base is None:
        return None
    return (base, config, efficiency_scale)


# -- cached pipeline stages ----------------------------------------------
def cached_graph(model_name: str):
    """The zoo graph for ``model_name``, built once and shared (do not mutate)."""
    from repro.models import load_model

    if not _enabled:
        return load_model(model_name)
    return GRAPH_CACHE.get_or_build(graph_key(model_name),
                                    lambda: load_model(model_name))


def cached_deploy(model_name: str, device_name: str, framework_name: str,
                  dtype: Any = None):
    """Deploy ``model_name`` on ``device_name`` via ``framework_name`` once.

    Returns the shared :class:`~repro.frameworks.base.DeployedModel` (or
    re-raises the cached Table V failure).  The deployment is tagged with
    its content key so sessions built on it share plan-cache entries.
    """
    from repro.frameworks import load_framework
    from repro.hardware import load_device

    def build():
        graph = cached_graph(model_name)
        deployed = load_framework(framework_name).deploy(
            graph, load_device(device_name), dtype=dtype)
        deployed.cache_key = key
        return deployed

    if not _enabled:
        from repro.models import load_model

        return load_framework(framework_name).deploy(
            load_model(model_name), load_device(device_name), dtype=dtype)
    from repro.runtime.scenario import Scenario

    key = Scenario(model_name, device_name, framework_name, dtype=dtype).deploy_key
    # The builder reads `_enabled` transitively (via cached_graph), but only
    # to decide *whether* to memoize the graph lookup — the deployed value is
    # identical either way, and this line is unreachable when caching is off.
    return DEPLOY_CACHE.get_or_build(key, build)  # repro: allow[KEY001] _enabled gates memoization, not the value
