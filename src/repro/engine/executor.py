"""Inference session: the engine's user-facing entry point.

Builds an :class:`ExecutionPlan` (per-op roofline timings) for a deployed
model and exposes the quantities the measurement layer consumes: steady
per-inference latency, one-time initialization cost (excluded from the
paper's timing loop, Section V), and compute utilization (which maps to
power draw).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import NamedTuple

from repro.core.errors import OutOfMemoryError
from repro.core.quantity import Seconds
from repro.frameworks.base import DeployedModel
from repro.engine.roofline import (
    FABRIC_SPILL_BANDWIDTH_FACTOR,
    ON_CHIP_BANDWIDTH_MULTIPLIER,
    OpTiming,
    RooflineInputs,
    time_ops,
)
from repro.graphs.tensor import DType


@dataclass(frozen=True)
class EngineConfig:
    """Engine switches for batching and for the ablation studies.

    The defaults model the paper's setting: single-batch inference with the
    full roofline (compute AND memory terms), framework overheads, and
    fusion respected.  Each switch corresponds to one of DESIGN.md's
    ablation candidates.

    Attributes:
        batch_size: inputs processed per invocation.  Batching amortizes
            weight traffic, dispatch and session overhead across the batch
            and enlarges per-op work (filling wide units) — the multi-batch
            cloud regime the paper contrasts with edge inference.
        include_memory_term: ablation 1 — set False for a pure-FLOP model.
        include_framework_overheads: ablation 2 — set False to drop session
            and per-op framework bookkeeping (hardware dispatch remains).
        respect_fusion: ablation 4 — set False to dispatch and materialize
            every fused-away op as if no fusion had happened.
    """

    batch_size: int = 1
    include_memory_term: bool = True
    include_framework_overheads: bool = True
    respect_fusion: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


class _PlanTotals(NamedTuple):
    """Aggregates over a plan's timings, computed in one pass."""

    compute_s: float
    memory_s: float
    dispatch_s: float
    roofline_s: float
    op_latency_s: float
    bound_roofline_s: dict[str, float]


@dataclass
class ExecutionPlan:
    """Per-op timings plus aggregate decomposition for one inference.

    Aggregates are summed once on first access and cached; ``timings`` must
    not be mutated after that (plans from the memoization layer are shared,
    so treat them as immutable anyway).
    """

    timings: list[OpTiming] = field(default_factory=list)
    session_overhead_s: float = 0.0
    input_transfer_s: float = 0.0

    @cached_property
    def _totals(self) -> _PlanTotals:
        compute = memory = dispatch = roofline = op_latency = 0.0
        bound = {"compute": 0.0, "memory": 0.0}
        for t in self.timings:
            roof = t.roofline_s
            compute += t.compute_s
            memory += t.memory_s
            dispatch += t.dispatch_s
            roofline += roof
            op_latency += t.latency_s
            bound[t.bound] += roof
        return _PlanTotals(compute, memory, dispatch, roofline, op_latency, bound)

    @property
    def compute_s(self) -> float:
        return self._totals.compute_s

    @property
    def memory_s(self) -> float:
        return self._totals.memory_s

    @property
    def dispatch_s(self) -> float:
        return self._totals.dispatch_s

    @property
    def roofline_s(self) -> float:
        return self._totals.roofline_s

    @property
    def latency_s(self) -> float:
        return self.session_overhead_s + self.input_transfer_s + self._totals.op_latency_s

    def bound_fraction(self, bound: str) -> float:
        """Fraction of roofline time spent in ``"compute"``/``"memory"``-bound ops."""
        totals = self._totals
        if totals.roofline_s == 0:
            return 0.0
        return totals.bound_roofline_s.get(bound, 0.0) / totals.roofline_s


@dataclass(frozen=True)
class PlanSpec:
    """Everything needed to price one (deployment, config) pair.

    The resolution work — op schedule, per-op kernel efficiencies, roofline
    constants, framework overheads — is separated from the arithmetic so
    the sweep compiler (:mod:`repro.engine.compile`) can gather many specs
    and lower them through one array program.  ``plan_from_spec`` is the
    single-spec path the session uses; both produce bit-identical plans.
    """

    ops: tuple
    inputs: RooflineInputs
    efficiencies: tuple[float, ...]
    exploit_sparsity: bool
    per_op_overhead_s: float
    batch_size: int
    include_memory_term: bool
    session_overhead_s: float
    input_transfer_s: float


def check_batch_memory(deployed: DeployedModel, batch_size: int) -> None:
    """Batched activations must still fit; deployment only checked batch 1
    (the edge regime)."""
    if batch_size == 1:
        return
    footprint = (
        deployed.footprint_bytes()
        + (batch_size - 1) * deployed.peak_activation_bytes()
    )
    usable = deployed.device.memory.usable_bytes
    if footprint > usable:
        raise OutOfMemoryError(
            f"batch {batch_size} of {deployed.graph.name} needs "
            f"{footprint / 2**20:.0f} MiB on {deployed.device.name} "
            f"({usable / 2**20:.0f} MiB usable)",
            required_bytes=footprint,
            available_bytes=usable,
        )


def resolve_roofline_inputs(deployed: DeployedModel) -> RooflineInputs:
    """Device-side roofline constants for one deployment (pure)."""
    unit = deployed.unit
    memory = deployed.device.memory
    dtype = deployed.weight_dtype
    peak = unit.peak(dtype) if unit.supports(dtype) else unit.peak(DType.FP32)

    bandwidth = memory.bandwidth_bytes_per_s
    weight_bandwidth = bandwidth
    total_weights = deployed.weight_bytes()
    if deployed.storage_mode == "paged":
        # Dynamic-graph fallback: weights stream from backing store every
        # inference — the order-of-magnitude penalty of Table V.
        weight_bandwidth = memory.storage_bandwidth_bytes_per_s
    elif deployed.storage_mode == "fabric_spill":
        # Un-ported models stream every tile through host DDR3 with the
        # overlay stalled on it: bandwidth collapses and the GEMM core
        # runs at a fraction of its ported efficiency (Table V ^^).
        bandwidth *= FABRIC_SPILL_BANDWIDTH_FACTOR
        weight_bandwidth = bandwidth
    elif unit.on_chip_buffer_bytes and total_weights <= unit.on_chip_buffer_bytes:
        # The whole model lives in the accelerator scratchpad (EdgeTPU
        # running MobileNet-class networks): weights AND the activation
        # working set stay on-chip.
        bandwidth *= ON_CHIP_BANDWIDTH_MULTIPLIER
        weight_bandwidth = bandwidth
    return RooflineInputs(
        peak_macs_per_s=peak,
        memory_bandwidth_bytes_per_s=bandwidth,
        weight_bandwidth_bytes_per_s=weight_bandwidth,
        dispatch_overhead_s=unit.dispatch_overhead_s,
    )


def resolve_plan_spec(deployed: DeployedModel, config: EngineConfig,
                      efficiency_scale: float) -> PlanSpec:
    """Resolve the op schedule, efficiencies and overheads for one plan."""
    from repro.graphs.ops import Input

    inputs = resolve_roofline_inputs(deployed)
    framework = deployed.framework
    session_overhead = deployed.session_overhead_s / config.batch_size
    if not config.include_framework_overheads:
        session_overhead = 0.0

    input_transfer_s = 0.0
    if deployed.device.transfer is not None:
        input_bytes = sum(op.output_bytes() for op in deployed.graph.inputs)
        output_bytes = sum(op.output_bytes() for op in deployed.graph.outputs)
        input_transfer_s = deployed.device.transfer.transfer_time_s(
            input_bytes + output_bytes
        )

    if config.respect_fusion:
        ops = deployed.graph.schedulable_ops()
    else:
        ops = [op for op in deployed.graph.ops if not isinstance(op, Input)]
    per_op_overhead = deployed.per_op_overhead_s
    if not config.include_framework_overheads:
        per_op_overhead = 0.0
    spill_penalty = 0.5 if deployed.storage_mode == "fabric_spill" else 1.0
    efficiencies = tuple(
        framework.kernel_efficiency(
            op, deployed.unit, deployed.weight_dtype, deployed.graph,
            batch_size=config.batch_size,
        ) * efficiency_scale * spill_penalty
        for op in ops
    )
    return PlanSpec(
        ops=tuple(ops),
        inputs=inputs,
        efficiencies=efficiencies,
        exploit_sparsity=deployed.exploit_sparsity,
        per_op_overhead_s=per_op_overhead,
        batch_size=config.batch_size,
        include_memory_term=config.include_memory_term,
        session_overhead_s=session_overhead,
        input_transfer_s=input_transfer_s,
    )


def plan_from_spec(spec: PlanSpec) -> ExecutionPlan:
    """Price one resolved spec through the vectorized roofline."""
    timings = time_ops(
        spec.ops,
        spec.inputs,
        spec.efficiencies,
        exploit_sparsity=spec.exploit_sparsity,
        per_op_overhead_s=spec.per_op_overhead_s,
        batch_size=spec.batch_size,
        include_memory_term=spec.include_memory_term,
    )
    return ExecutionPlan(
        timings=timings,
        session_overhead_s=spec.session_overhead_s,
        input_transfer_s=spec.input_transfer_s,
    )


def plan_utilization(plan: ExecutionPlan) -> float:
    """Compute-unit busy fraction for one executed plan, in [0, 1].

    Memory-bound phases keep the unit partially busy (prefetch + arithmetic
    on the streaming data), overheads leave it idle.
    """
    latency = plan.latency_s
    if latency == 0:
        return 0.0
    busy = sum(
        t.compute_s if t.bound == "compute" else 0.65 * t.roofline_s
        for t in plan.timings
    )
    return min(1.0, busy / latency)


def deployed_init_time_s(deployed: DeployedModel) -> float:
    """One-time setup cost of a deployment (outside the timed loop)."""
    return (
        deployed.library_load_s
        + deployed.graph_setup_s
        + deployed.weight_load_s
        + deployed.transfer_setup_s
        + deployed.device_staging_s
    )


class InferenceSession:
    """Single-batch inference of one deployed model.

    Args:
        deployed: output of :meth:`Framework.deploy`.
        efficiency_scale: calibration multiplier on kernel efficiency; the
            default ``None`` resolves the one-point anchor calibration for
            the (framework, device) pair.
    """

    def __init__(self, deployed: DeployedModel, efficiency_scale: float | None = None,
                 config: EngineConfig | None = None):
        self.deployed = deployed
        self.config = config or EngineConfig()
        if efficiency_scale is None:
            from repro.engine.calibration import efficiency_scale as resolve

            efficiency_scale = resolve(deployed.framework.name, deployed.device.name)
        self.efficiency_scale = efficiency_scale
        check_batch_memory(deployed, self.config.batch_size)
        self.plan = self._build_plan()

    # -- plan construction -------------------------------------------------
    def _roofline_inputs(self) -> RooflineInputs:
        return resolve_roofline_inputs(self.deployed)

    def _build_plan(self) -> ExecutionPlan:
        from repro.engine import cache as engine_cache

        key = engine_cache.plan_key(self.deployed, self.config, self.efficiency_scale)
        if key is None:
            return self._compute_plan()
        return engine_cache.PLAN_CACHE.get_or_build(key, self._compute_plan)

    def _compute_plan(self) -> ExecutionPlan:
        return plan_from_spec(
            resolve_plan_spec(self.deployed, self.config, self.efficiency_scale))

    # -- user-facing quantities ---------------------------------------------
    @property
    def latency_s(self) -> float:
        """Steady-state time per single-batch inference (seconds)."""
        return self.plan.latency_s

    @property
    def init_time_s(self) -> float:
        """One-time setup cost, excluded from the paper's timing loop."""
        return deployed_init_time_s(self.deployed)

    @property
    def utilization(self) -> float:
        """Compute-unit busy fraction during an inference, in [0, 1]."""
        return plan_utilization(self.plan)

    def run(self, n_inferences: int) -> list[Seconds]:
        """Simulate ``n_inferences`` timed runs, returning per-run seconds.

        Deterministic: the measurement layer adds instrument noise.
        """
        if n_inferences <= 0:
            raise ValueError(f"n_inferences must be positive, got {n_inferences}")
        return [Seconds(self.latency_s)] * n_inferences

    def describe(self) -> str:
        plan = self.plan
        return (
            f"{self.deployed.describe()}: {plan.latency_s * 1e3:.1f} ms/inference "
            f"(compute {plan.compute_s * 1e3:.1f} ms, memory {plan.memory_s * 1e3:.1f} ms, "
            f"dispatch {plan.dispatch_s * 1e3:.1f} ms, "
            f"session {plan.session_overhead_s * 1e3:.2f} ms)"
        )
