"""One-point anchor calibration.

The paper's absolute numbers depend on testbed constants we cannot know
(library versions, DVFS states, kernel selections).  We therefore calibrate
ONE efficiency multiplier per (framework, device) pair against ONE anchor
latency read from the paper's figures; every other model on that pair is a
pure prediction of the roofline + overhead model.  Anchors and their figure
sources are listed below and cross-referenced in EXPERIMENTS.md.

The fit is exact where reachable: the per-op compute terms scale as ``1/s``
while memory terms and overheads are fixed, so the anchor latency is solved
by bisection on ``s``.  If the anchor is faster than the memory/overhead
floor the scale clamps at ``MAX_SCALE`` (recorded by ``calibration_report``).
"""

from __future__ import annotations

from functools import lru_cache

MIN_SCALE = 1e-4
MAX_SCALE = 100.0

#: (framework, device) -> (anchor model, paper latency in seconds, source).
ANCHORS: dict[tuple[str, str], tuple[str, float, str]] = {
    ("TensorFlow", "Raspberry Pi 3B"): ("ResNet-18", 0.99, "Fig. 8"),
    ("TFLite", "Raspberry Pi 3B"): ("ResNet-18", 0.87, "Fig. 2/8"),
    ("PyTorch", "Raspberry Pi 3B"): ("ResNet-18", 6.57, "Fig. 8"),
    ("Caffe", "Raspberry Pi 3B"): ("MobileNet-v2", 2.27, "Sec. VI-B1"),
    ("DarkNet", "Raspberry Pi 3B"): ("ResNet-50", 4.0, "Fig. 3 (approx.)"),
    ("PyTorch", "Jetson TX2"): ("ResNet-18", 0.0265, "Fig. 2"),
    ("TensorFlow", "Jetson TX2"): ("ResNet-18", 0.0583, "Fig. 4 (approx.)"),
    ("Caffe", "Jetson TX2"): ("ResNet-18", 0.0424, "Fig. 4 (approx.)"),
    ("DarkNet", "Jetson TX2"): ("ResNet-18", 0.0477, "Fig. 4 (approx.)"),
    ("TensorRT", "Jetson Nano"): ("ResNet-18", 0.023, "Fig. 7"),
    ("PyTorch", "Jetson Nano"): ("ResNet-18", 0.1413, "Fig. 7"),
    ("TFLite", "EdgeTPU"): ("MobileNet-v2", 0.0029, "Fig. 2"),
    ("NCSDK", "Movidius NCS"): ("MobileNet-v2", 0.051, "Fig. 2"),
    ("TVM VTA", "PYNQ-Z1"): ("ResNet-18", 0.1861, "Fig. 2 (approx.)"),
    ("FINN", "PYNQ-Z1"): ("CifarNet 32x32", 0.0055, "FINN paper-scale anchor"),
    ("PyTorch", "Xeon E5-2696 v4"): ("ResNet-18", 0.035, "Fig. 9/10 (approx.)"),
    ("PyTorch", "GTX Titan X"): ("ResNet-50", 0.020, "Fig. 6 (approx.)"),
    ("TensorFlow", "GTX Titan X"): ("ResNet-50", 0.030, "Fig. 6 (approx.)"),
    ("PyTorch", "Titan Xp"): ("ResNet-18", 0.0055, "Fig. 10 (approx.)"),
    ("PyTorch", "RTX 2080"): ("ResNet-18", 0.0032, "Fig. 10 (approx.)"),
}

#: frameworks sharing another framework's kernels when unanchored.
_SCALE_DELEGATES = {"Keras": "TensorFlow"}


def _latency_components(framework_name: str, device_name: str, model_name: str):
    """Build an uncalibrated session and return its scale-dependent pieces."""
    from repro.engine.executor import InferenceSession
    from repro.frameworks import load_framework
    from repro.hardware import load_device
    from repro.models import load_model

    framework = load_framework(framework_name)
    device = load_device(device_name)
    deployed = framework.deploy(load_model(model_name), device)
    session = InferenceSession(deployed, efficiency_scale=1.0)
    fixed = session.plan.session_overhead_s + session.plan.input_transfer_s
    terms = [(t.compute_s, t.memory_s, t.dispatch_s) for t in session.plan.timings]
    return fixed, terms


def _latency_at(scale: float, fixed: float, terms) -> float:
    return fixed + sum(max(c / scale, m) + d for c, m, d in terms)


@lru_cache(maxsize=None)
def _fit(framework_name: str, device_name: str) -> float:
    anchor = ANCHORS.get((framework_name, device_name))
    if anchor is None:
        delegate = _SCALE_DELEGATES.get(framework_name)
        if delegate is not None and (delegate, device_name) in ANCHORS:
            # Same engine, same device: inherit the exact fitted scale.
            return _fit(delegate, device_name)
        return _fallback_scale(framework_name)
    model_name, target_s, _source = anchor
    fixed, terms = _latency_components(framework_name, device_name, model_name)
    if _latency_at(MAX_SCALE, fixed, terms) >= target_s:
        return MAX_SCALE  # memory/overhead floor above the anchor
    lo, hi = MIN_SCALE, MAX_SCALE
    for _ in range(80):
        mid = (lo * hi) ** 0.5  # bisect in log space
        if _latency_at(mid, fixed, terms) > target_s:
            lo = mid
        else:
            hi = mid
    return (lo * hi) ** 0.5


def _fallback_scale(framework_name: str) -> float:
    """Scale for unanchored pairs: delegate, else mean of the framework's
    fitted scales, else the structured default of 1.0."""
    delegate = _SCALE_DELEGATES.get(framework_name)
    if delegate is not None:
        framework_name = delegate
    fitted = [
        _fit(fw, dev) for (fw, dev) in ANCHORS if fw == framework_name
    ]
    if fitted:
        return sum(fitted) / len(fitted)
    return 1.0


def efficiency_scale(framework_name: str, device_name: str) -> float:
    """Calibrated efficiency multiplier for a (framework, device) pair."""
    return _fit(framework_name, device_name)


def calibration_report() -> list[dict]:
    """Fit every anchor and report achieved vs target latency."""
    report = []
    for (framework_name, device_name), (model_name, target_s, source) in ANCHORS.items():
        scale = _fit(framework_name, device_name)
        fixed, terms = _latency_components(framework_name, device_name, model_name)
        achieved = _latency_at(scale, fixed, terms)
        report.append(
            {
                "framework": framework_name,
                "device": device_name,
                "model": model_name,
                "source": source,
                "target_s": target_s,
                "achieved_s": achieved,
                "scale": scale,
                "clamped": scale >= MAX_SCALE,
            }
        )
    return report
