"""Batched sweep compiler: lower a scenario grid into array programs.

The harness's figures and sweeps price the same (model, device, framework)
pipeline cell by cell, each cell walking graph -> deploy -> plan through
Python objects.  This module takes the whole grid of
:class:`repro.runtime.Scenario` cells at once and compiles it:

* **gather** — walk the cells in order, deduplicating deployments (by
  deploy key and power mode) and plan specs (by deployment and batch
  size), recording the same deploy-cache outcome sequence the scalar
  Runner would have produced and re-using plan-cache entries where they
  already exist;
* **lower** — concatenate every unresolved spec's per-op quantities
  (MACs, weight bytes, activation I/O, kernel efficiency) into parallel
  float64 arrays and evaluate the roofline for the entire grid through
  ONE call to :func:`repro.engine.roofline.lower_rooflines_s`, then split
  the result back into per-spec :class:`ExecutionPlan`s (written through
  to the plan cache when caching is enabled);
* **scatter** — derive the per-cell quantities a
  :class:`repro.runtime.RunRecord` carries (plan latency, utilization,
  power draw, init time, weight bytes) once per unique plan and fan them
  back out to every cell that shares it.

Every float comes out of the identical IEEE-754 operations in the
identical order as the scalar path, so compiled grids are bit-identical
to per-cell :meth:`Runner.run` — the equivalence suite diffs them at
zero tolerance.

Purity contract (enforced as ARCH005): this module never constructs
sessions or timers, never draws random numbers — even seeded — and never
reads the wall clock.  Measurement noise is applied by the runtime layer
on top of the compiled latencies; the wall-clock fields of
:class:`CompileStats` are stamped by the (impure) driver after the fact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.engine import cache as engine_cache
from repro.engine.executor import (
    EngineConfig,
    ExecutionPlan,
    PlanSpec,
    check_batch_memory,
    deployed_init_time_s,
    plan_utilization,
    resolve_plan_spec,
)
from repro.engine.roofline import OpTiming, lower_rooflines_s
from repro.runtime.scenario import Scenario


@dataclass
class CompileStats:
    """Counters for one compiled grid (or the process-wide accumulation).

    ``macs_lowered`` / ``bytes_lowered`` are the global FLOP and traffic
    counters over everything the array program priced: MACs and (weight +
    activation) bytes summed across every op of every plan built.  The
    ``*_s`` wall-clock fields are stamped by the runtime driver — the
    compiler itself never reads a clock.
    """

    cells: int = 0
    unique_deploys: int = 0
    deploy_failures: int = 0
    unique_plans: int = 0
    plan_cache_hits: int = 0
    array_programs: int = 0
    ops_lowered: int = 0
    macs_lowered: float = 0.0
    bytes_lowered: float = 0.0
    gather_s: float = 0.0
    lower_s: float = 0.0
    scatter_s: float = 0.0
    timer_s: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """Cells priced per plan actually built (1.0 = nothing shared).

        A fully warm grid builds no plans at all; it counts as maximally
        shared rather than dividing by zero.
        """
        if self.unique_plans:
            return self.cells / self.unique_plans
        return float(self.cells) if self.cells else 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells": self.cells,
            "unique_deploys": self.unique_deploys,
            "deploy_failures": self.deploy_failures,
            "unique_plans": self.unique_plans,
            "plan_cache_hits": self.plan_cache_hits,
            "dedup_ratio": self.dedup_ratio,
            "array_programs": self.array_programs,
            "ops_lowered": self.ops_lowered,
            "macs_lowered": self.macs_lowered,
            "bytes_lowered": self.bytes_lowered,
            "gather_s": self.gather_s,
            "lower_s": self.lower_s,
            "scatter_s": self.scatter_s,
            "timer_s": self.timer_s,
        }


@dataclass
class CompiledCell:
    """The pure (noise-free) outcome of one grid cell.

    Exactly one of two shapes: ``error`` set and every other field None
    (a Table V-style failure), or ``error`` None and every quantity the
    runtime layer needs to assemble a ``RunRecord`` populated.  Latency
    here is the bare-metal plan latency; container taxes and timing-loop
    noise are applied by the runtime layer.
    """

    scenario: Scenario
    cache_outcome: str
    error: ReproError | None = None
    plan: ExecutionPlan | None = None
    latency_s: float | None = None
    init_time_s: float | None = None
    utilization: float | None = None
    power_w: float | None = None
    weight_bytes: int | None = None
    cpu_scale: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _PlanEntry:
    """One unique (deployment, batch size) the grid prices."""

    deployed: Any = None
    error: ReproError | None = None
    spec: PlanSpec | None = None
    plan: ExecutionPlan | None = None
    plan_key: tuple | None = None
    # scatter memos (shared by every cell referencing this entry):
    latency_s: float | None = None
    init_time_s: float | None = None
    utilization: float | None = None
    power_w: float | None = None
    weight_bytes: int | None = None


@dataclass
class GridProgram:
    """The compiled form of one scenario grid between the phases."""

    cells: list[tuple[Scenario, str, Any]] = field(default_factory=list)
    plans: dict[Any, _PlanEntry] = field(default_factory=dict)
    stats: CompileStats = field(default_factory=CompileStats)


def _deploy(scenario: Scenario):
    """Deploy one unique cell, mirroring ``Runner.deploy`` exactly."""
    if scenario.is_default_runtime:
        return engine_cache.cached_deploy(
            scenario.model, scenario.device, scenario.framework,
            dtype=scenario.dtype)
    from repro.hardware import apply_operating_point, load_device
    from repro.frameworks import load_framework
    from repro.models import load_model

    device = apply_operating_point(load_device(scenario.device),
                                   scenario.power_mode)
    return load_framework(scenario.framework).deploy(
        load_model(scenario.model), device, dtype=scenario.dtype)


def gather(scenarios: Sequence[Scenario]) -> GridProgram:
    """Phase 1: dedup deployments and plan specs across the grid.

    Cells are visited in input order and the recorded deploy-cache
    outcomes reproduce the scalar Runner's sequence: the first cell to
    need a deployment sees a ``"miss"`` (or ``"hit"`` when a previous
    grid or scalar run already cached it), every later cell sharing it
    sees a ``"hit"``, and uncacheable cells see ``"bypass"``.
    """
    from repro.engine.calibration import efficiency_scale as resolve_scale

    program = GridProgram()
    stats = program.stats
    stats.cells = len(scenarios)
    deploys: dict[Any, _PlanEntry] = {}

    for scenario in scenarios:
        dkey = (scenario.deploy_key, scenario.power_mode.lower())
        cacheable = scenario.is_default_runtime and engine_cache.caching_enabled()
        if not cacheable:
            outcome = "bypass"
        elif engine_cache.DEPLOY_CACHE.contains(scenario.deploy_key):
            outcome = "hit"
        else:
            outcome = "miss"

        if dkey not in deploys:
            stats.unique_deploys += 1
            entry = _PlanEntry()
            try:
                entry.deployed = _deploy(scenario)
            except ReproError as error:
                entry.error = error
                stats.deploy_failures += 1
            deploys[dkey] = entry
        base = deploys[dkey]

        skey = (dkey, scenario.batch_size)
        if skey not in program.plans:
            program.plans[skey] = _resolve_entry(base, scenario.batch_size,
                                                 resolve_scale, stats)
        program.cells.append((scenario, outcome, skey))
    return program


def _resolve_entry(base: _PlanEntry, batch_size: int, resolve_scale,
                   stats: CompileStats) -> _PlanEntry:
    """Resolve one unique (deployment, batch) into a plan or a spec.

    Mirrors ``InferenceSession.__init__`` step for step: calibration
    resolution, then the batch memory check, then the plan-cache lookup,
    and only then spec resolution for plans the lowering phase must build.
    """
    if base.error is not None:
        return base if batch_size == 1 else _PlanEntry(error=base.error)
    deployed = base.deployed
    entry = _PlanEntry(deployed=deployed)
    config = EngineConfig(batch_size=batch_size)
    scale = resolve_scale(deployed.framework.name, deployed.device.name)
    try:
        check_batch_memory(deployed, batch_size)
    except ReproError as error:
        entry.deployed = None
        entry.error = error
        return entry
    pkey = engine_cache.plan_key(deployed, config, scale)
    if pkey is not None:
        found, plan = engine_cache.PLAN_CACHE.cached_value(pkey)
        if found:
            entry.plan = plan
            stats.plan_cache_hits += 1
            return entry
        entry.plan_key = pkey
    entry.spec = resolve_plan_spec(deployed, config, scale)
    stats.unique_plans += 1
    return entry


def lower(program: GridProgram) -> None:
    """Phase 2: price every unresolved spec through one array program.

    Per-op quantities from every pending spec are concatenated into
    parallel (ops x cells) arrays, evaluated elementwise in a single
    :func:`lower_rooflines_s` call, and split back into per-spec
    :class:`ExecutionPlan`s — bit-identical to pricing each spec alone,
    since the program is elementwise.  Plans with a cacheable key are
    written through to the shared plan cache.
    """
    pending = [entry for entry in program.plans.values()
               if entry.spec is not None]
    if not pending:
        return
    macs_parts, eff_parts, weight_parts, io_parts = [], [], [], []
    peak_parts, batch_parts, wbw_parts, bw_parts, overhead_parts = [], [], [], [], []
    counts = []
    for entry in pending:
        spec = entry.spec
        ops = spec.ops
        n = len(ops)
        counts.append(n)
        sparsity = spec.exploit_sparsity
        macs_parts.append(np.array([op.effective_macs(sparsity) for op in ops],
                                   dtype=np.float64))
        eff_parts.append(np.asarray(spec.efficiencies, dtype=np.float64))
        if spec.include_memory_term:
            weight_parts.append(np.array(
                [op.traffic_weight_bytes(sparsity) for op in ops],
                dtype=np.float64))
            io_parts.append(np.array(
                [op.input_bytes() + op.output_bytes() for op in ops],
                dtype=np.float64))
        else:
            # Zero traffic makes the memory quotient exactly 0.0, the same
            # as the scalar path's ablation branch.
            weight_parts.append(np.zeros(n))
            io_parts.append(np.zeros(n))
        inputs = spec.inputs
        peak_parts.append(np.full(n, inputs.peak_macs_per_s))
        batch_parts.append(np.full(n, spec.batch_size, dtype=np.float64))
        wbw_parts.append(np.full(n, inputs.weight_bandwidth_bytes_per_s))
        bw_parts.append(np.full(n, inputs.memory_bandwidth_bytes_per_s))
        overhead_parts.append(np.full(
            n, inputs.dispatch_overhead_s + spec.per_op_overhead_s))

    macs = np.concatenate(macs_parts) if macs_parts else np.zeros(0)
    efficiency = np.concatenate(eff_parts) if eff_parts else np.zeros(0)
    if macs.size and np.any(efficiency <= 0):
        worst = float(efficiency.min())
        raise ValueError(f"efficiency must be positive, got {worst}")
    compute_s, memory_s, dispatch_s = lower_rooflines_s(
        macs,
        efficiency,
        np.concatenate(peak_parts) if peak_parts else np.zeros(0),
        np.concatenate(weight_parts) if weight_parts else np.zeros(0),
        np.concatenate(io_parts) if io_parts else np.zeros(0),
        np.concatenate(batch_parts) if batch_parts else np.ones(0),
        np.concatenate(wbw_parts) if wbw_parts else np.ones(0),
        np.concatenate(bw_parts) if bw_parts else np.ones(0),
        np.concatenate(overhead_parts) if overhead_parts else np.zeros(0),
    )
    stats = program.stats
    stats.array_programs += 1
    stats.ops_lowered += int(macs.size)
    stats.macs_lowered += float(macs.sum())
    stats.bytes_lowered += float(
        np.concatenate(weight_parts).sum() + np.concatenate(io_parts).sum()
    ) if weight_parts else 0.0

    compute_list = compute_s.tolist()
    memory_list = memory_s.tolist()
    dispatch_list = dispatch_s.tolist()
    offset = 0
    for entry, n in zip(pending, counts):
        spec = entry.spec
        timings = [
            OpTiming(op=op, compute_s=c, memory_s=m, dispatch_s=d)
            for op, c, m, d in zip(
                spec.ops,
                compute_list[offset:offset + n],
                memory_list[offset:offset + n],
                dispatch_list[offset:offset + n],
            )
        ]
        offset += n
        plan = ExecutionPlan(
            timings=timings,
            session_overhead_s=spec.session_overhead_s,
            input_transfer_s=spec.input_transfer_s,
        )
        if entry.plan_key is not None:
            plan = engine_cache.PLAN_CACHE.store(entry.plan_key, plan)
        entry.plan = plan
        entry.spec = None


def scatter(program: GridProgram) -> list[CompiledCell]:
    """Phase 3: fan per-plan quantities back out to every cell."""
    cells: list[CompiledCell] = []
    for scenario, outcome, skey in program.cells:
        entry = program.plans[skey]
        if entry.error is not None:
            cells.append(CompiledCell(scenario=scenario, cache_outcome="none",
                                      error=entry.error))
            continue
        if entry.latency_s is None:
            plan = entry.plan
            deployed = entry.deployed
            entry.latency_s = plan.latency_s
            entry.utilization = plan_utilization(plan)
            entry.power_w = deployed.device.power.power(entry.utilization)
            entry.init_time_s = deployed_init_time_s(deployed)
            entry.weight_bytes = deployed.weight_bytes()
        cells.append(CompiledCell(
            scenario=scenario,
            cache_outcome=outcome,
            plan=entry.plan,
            latency_s=entry.latency_s,
            init_time_s=entry.init_time_s,
            utilization=entry.utilization,
            power_w=entry.power_w,
            weight_bytes=entry.weight_bytes,
            cpu_scale=entry.deployed.cpu_scale,
        ))
    return cells


def compile_cells(scenarios: Sequence[Scenario],
                  ) -> tuple[list[CompiledCell], CompileStats]:
    """Gather, lower and scatter one grid in a single call.

    Drivers that want per-phase wall times (``Runner.run_grid``) call the
    phases themselves and stamp the stats afterwards.
    """
    program = gather(list(scenarios))
    lower(program)
    return scatter(program), program.stats


# -- process-wide stats plumbing (engine.cache style) ----------------------
_LOCK = threading.Lock()
_TOTALS = CompileStats()
_GRIDS = 0


def record_compile(stats: CompileStats) -> None:
    """Fold one grid's counters into the process-wide accumulator."""
    global _GRIDS
    with _LOCK:
        _GRIDS += 1
        _TOTALS.cells += stats.cells
        _TOTALS.unique_deploys += stats.unique_deploys
        _TOTALS.deploy_failures += stats.deploy_failures
        _TOTALS.unique_plans += stats.unique_plans
        _TOTALS.plan_cache_hits += stats.plan_cache_hits
        _TOTALS.array_programs += stats.array_programs
        _TOTALS.ops_lowered += stats.ops_lowered
        _TOTALS.macs_lowered += stats.macs_lowered
        _TOTALS.bytes_lowered += stats.bytes_lowered
        _TOTALS.gather_s += stats.gather_s
        _TOTALS.lower_s += stats.lower_s
        _TOTALS.scatter_s += stats.scatter_s
        _TOTALS.timer_s += stats.timer_s


def compile_stats() -> dict[str, Any]:
    """JSON-safe snapshot of every grid compiled in this process."""
    with _LOCK:
        snapshot = _TOTALS.as_dict()
        snapshot["grids"] = _GRIDS
    return snapshot


def reset_compile_stats() -> None:
    """Zero the process-wide accumulator (benchmarks, tests)."""
    global _TOTALS, _GRIDS
    with _LOCK:
        _TOTALS = CompileStats()
        _GRIDS = 0


__all__ = [
    "CompileStats",
    "CompiledCell",
    "GridProgram",
    "compile_cells",
    "compile_stats",
    "gather",
    "lower",
    "record_compile",
    "reset_compile_stats",
    "scatter",
]
