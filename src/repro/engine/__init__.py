"""Analytical execution engine.

Turns a :class:`~repro.frameworks.base.DeployedModel` into per-op and
per-inference latency via a roofline model (compute term vs memory term per
op, plus dispatch and framework overheads).  Per-(framework, device)
efficiencies are one-point calibrated against paper anchors
(:mod:`repro.engine.calibration`); every other (model, framework, device)
combination is a prediction.
"""

from repro.engine.executor import EngineConfig, ExecutionPlan, InferenceSession, OpTiming
from repro.engine.roofline import RooflineInputs, time_op, time_ops
from repro.engine.calibration import ANCHORS, efficiency_scale
from repro.engine.cache import (
    cache_stats,
    cached_deploy,
    cached_graph,
    caching_disabled,
    caching_enabled,
    clear_caches,
    set_caching,
)

__all__ = [
    "ANCHORS",
    "EngineConfig",
    "ExecutionPlan",
    "InferenceSession",
    "OpTiming",
    "RooflineInputs",
    "cache_stats",
    "cached_deploy",
    "cached_graph",
    "caching_disabled",
    "caching_enabled",
    "clear_caches",
    "efficiency_scale",
    "set_caching",
    "time_op",
    "time_ops",
]
