"""Analytical execution engine.

Turns a :class:`~repro.frameworks.base.DeployedModel` into per-op and
per-inference latency via a roofline model (compute term vs memory term per
op, plus dispatch and framework overheads).  Per-(framework, device)
efficiencies are one-point calibrated against paper anchors
(:mod:`repro.engine.calibration`); every other (model, framework, device)
combination is a prediction.

Whole scenario grids compile through :mod:`repro.engine.compile`, which
dedups the deploy/plan pipeline across cells and lowers every roofline
into one array program.
"""

from repro.engine.executor import EngineConfig, ExecutionPlan, InferenceSession, OpTiming
from repro.engine.roofline import RooflineInputs, lower_rooflines_s, time_op, time_ops
from repro.engine.calibration import ANCHORS, efficiency_scale
from repro.engine.cache import (
    cache_stats,
    cached_deploy,
    cached_graph,
    caching_disabled,
    caching_enabled,
    clear_caches,
    set_caching,
)
# compile imports repro.runtime.scenario, which may re-enter this package
# mid-initialization — everything it needs is bound above, so keep it last.
from repro.engine.compile import (
    CompiledCell,
    CompileStats,
    compile_cells,
    compile_stats,
    reset_compile_stats,
)

__all__ = [
    "ANCHORS",
    "CompileStats",
    "CompiledCell",
    "EngineConfig",
    "ExecutionPlan",
    "InferenceSession",
    "OpTiming",
    "RooflineInputs",
    "cache_stats",
    "cached_deploy",
    "cached_graph",
    "caching_disabled",
    "caching_enabled",
    "clear_caches",
    "compile_cells",
    "compile_stats",
    "efficiency_scale",
    "lower_rooflines_s",
    "reset_compile_stats",
    "set_caching",
    "time_op",
    "time_ops",
]
