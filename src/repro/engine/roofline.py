"""Per-op roofline timing.

Each op's latency is ``max(compute term, memory term) + dispatch``:

* compute term — effective MACs over the unit's peak at the deployment
  datatype, derated by the framework's kernel efficiency;
* memory term — weight traffic (weights are re-streamed every single-batch
  inference; there is no batch reuse, the core reason the paper studies
  single-batch separately) plus activation input/output traffic, over the
  bandwidth the storage mode dictates (DRAM, on-chip buffer, or the SD-card
  paging path of the Table V dynamic-graph fallback).

This is intentionally a first-order model: it reproduces which of the
paper's workloads are compute- versus memory-bound, which is what drives
every cross-platform shape in the evaluation (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.ops import Op

# On-chip scratchpads run an order of magnitude faster than edge DRAM.
ON_CHIP_BANDWIDTH_MULTIPLIER = 10.0
# DDR access through an FPGA overlay contends with the fabric (Table V ^^).
FABRIC_SPILL_BANDWIDTH_FACTOR = 0.25


@dataclass(frozen=True)
class RooflineInputs:
    """Device-side constants resolved once per deployment."""

    peak_macs_per_s: float
    memory_bandwidth_bytes_per_s: float
    weight_bandwidth_bytes_per_s: float
    dispatch_overhead_s: float

    def __post_init__(self) -> None:
        for name in ("peak_macs_per_s", "memory_bandwidth_bytes_per_s",
                     "weight_bandwidth_bytes_per_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class OpTiming:
    """Timing decomposition of one op for one inference."""

    op: Op
    compute_s: float
    memory_s: float
    dispatch_s: float

    @property
    def roofline_s(self) -> float:
        return max(self.compute_s, self.memory_s)

    @property
    def latency_s(self) -> float:
        return self.roofline_s + self.dispatch_s

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.memory_s else "memory"


def time_op(
    op: Op,
    inputs: RooflineInputs,
    efficiency: float,
    exploit_sparsity: bool = False,
    per_op_overhead_s: float = 0.0,
    batch_size: int = 1,
    include_memory_term: bool = True,
) -> OpTiming:
    """Time one op under the roofline model, PER INFERENCE.

    Args:
        op: the graph op (fused-away ops should be filtered by the caller).
        inputs: resolved device constants.
        efficiency: fraction of peak the kernel achieves (framework
            kernel quality x calibration x batch-fill), must be positive.
        exploit_sparsity: whether pruned weights skip compute/traffic.
        per_op_overhead_s: framework dispatch cost above the kernel launch.
        batch_size: weights are read once per *batch* and the kernel is
            launched once per batch, so both amortize across the batch;
            compute and activation traffic scale with it and cancel out.
        include_memory_term: ablation switch for the pure-FLOP model.
    """
    if efficiency <= 0:
        raise ValueError(f"efficiency must be positive, got {efficiency}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    macs = op.effective_macs(exploit_sparsity)
    compute_s = macs / (inputs.peak_macs_per_s * efficiency) if macs else 0.0

    if include_memory_term:
        weight_bytes = op.traffic_weight_bytes(exploit_sparsity)
        io_bytes = op.input_bytes() + op.output_bytes()
        # Absorbed followers' outputs are produced in-register by the fused
        # kernel, but the final output of the chain still hits memory once;
        # the anchor op's own output_bytes already covers that.
        memory_s = (
            weight_bytes / batch_size / inputs.weight_bandwidth_bytes_per_s
            + io_bytes / inputs.memory_bandwidth_bytes_per_s
        )
    else:
        memory_s = 0.0
    dispatch_s = (inputs.dispatch_overhead_s + per_op_overhead_s) / batch_size
    return OpTiming(op=op, compute_s=compute_s, memory_s=memory_s, dispatch_s=dispatch_s)


def lower_rooflines_s(
    macs,
    efficiency,
    peak_macs_per_s,
    weight_bytes,
    io_bytes,
    batch_size,
    weight_bandwidth_bytes_per_s,
    memory_bandwidth_bytes_per_s,
    overhead_s,
):
    """The roofline array program: elementwise timing over parallel arrays.

    Every argument broadcasts, so the same program prices one plan (scalar
    device constants against per-op arrays) or a whole scenario grid
    (per-op arrays for every quantity, concatenated across plans).  Each
    element goes through the identical IEEE-754 double operations as
    :func:`time_op`, in the same order, so results are bit-identical to
    the scalar path no matter how ops are batched.

    Args:
        macs / efficiency / weight_bytes / io_bytes: per-op gathers.
            Callers ablating the memory term pass zero byte arrays — the
            quotient is then exactly ``0.0``, matching the scalar branch.
        peak_macs_per_s / batch_size / weight_bandwidth_bytes_per_s /
            memory_bandwidth_bytes_per_s / overhead_s: device/plan
            constants, scalar or expanded per op.  ``overhead_s`` is the
            dispatch overhead plus the framework's per-op overhead.

    Returns:
        ``(compute_s, memory_s, dispatch_s)`` with the argument broadcast
        shape.
    """
    compute_s = macs / (peak_macs_per_s * efficiency)
    memory_s = (
        weight_bytes / batch_size / weight_bandwidth_bytes_per_s
        + io_bytes / memory_bandwidth_bytes_per_s
    )
    dispatch_s = overhead_s / batch_size
    return compute_s, memory_s, dispatch_s


def time_ops(
    ops: Sequence[Op],
    inputs: RooflineInputs,
    efficiencies: Sequence[float],
    exploit_sparsity: bool = False,
    per_op_overhead_s: float = 0.0,
    batch_size: int = 1,
    include_memory_term: bool = True,
) -> list[OpTiming]:
    """Vectorized :func:`time_op`: the whole plan's roofline in one pass.

    Gathers (MACs, weight bytes, activation bytes, efficiency) into numpy
    arrays and evaluates the per-op formula elementwise instead of once per
    op in Python.  Every intermediate uses the same IEEE-754 double
    operations in the same order as the scalar path, so the returned
    timings agree with ``time_op`` **exactly** (bit-identical), which the
    property suite asserts.

    Args:
        ops: schedulable ops in plan order.
        efficiencies: per-op positive efficiency, aligned with ``ops``.
        (remaining arguments as in :func:`time_op`)
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if len(efficiencies) != len(ops):
        raise ValueError(
            f"got {len(efficiencies)} efficiencies for {len(ops)} ops"
        )
    if not ops:
        return []
    efficiency = np.asarray(efficiencies, dtype=np.float64)
    if np.any(efficiency <= 0):
        worst = float(efficiency.min())
        raise ValueError(f"efficiency must be positive, got {worst}")
    macs = np.array([op.effective_macs(exploit_sparsity) for op in ops],
                    dtype=np.float64)
    if include_memory_term:
        weight_bytes = np.array(
            [op.traffic_weight_bytes(exploit_sparsity) for op in ops],
            dtype=np.float64)
        io_bytes = np.array([op.input_bytes() + op.output_bytes() for op in ops],
                            dtype=np.float64)
    else:
        # Zero traffic makes the quotient exactly 0.0 — the scalar branch.
        weight_bytes = io_bytes = np.zeros(len(ops))
    # 0 MACs / positive peak is exactly 0.0, matching the scalar short-circuit.
    compute_s, memory_s, dispatch_s = lower_rooflines_s(
        macs,
        efficiency,
        inputs.peak_macs_per_s,
        weight_bytes,
        io_bytes,
        batch_size,
        inputs.weight_bandwidth_bytes_per_s,
        inputs.memory_bandwidth_bytes_per_s,
        inputs.dispatch_overhead_s + per_op_overhead_s,
    )
    return [
        OpTiming(op=op, compute_s=c, memory_s=m, dispatch_s=dispatch_s)
        for op, c, m in zip(ops, compute_s.tolist(), memory_s.tolist())
    ]
