"""Per-framework software-stack bucket builders (Figure 5).

Maps engine quantities onto the function groups the paper's cProfile runs
surface: TensorFlow's ``base_layer`` / ``TF_SessionRunCallable`` family and
PyTorch's ``conv2d`` / ``_C._TensorBase.to()`` family.  Frameworks outside
Figure 5 get a generic breakdown with the same group vocabulary.
"""

from __future__ import annotations

from repro.engine.executor import InferenceSession
from repro.graphs.ops import Conv2D, Conv3D, Dense, BatchNorm, Activation, DepthwiseConv2D
from repro.profiling.profiler import StackProfile

# How TensorFlow's one-time graph work splits across profile buckets.
_TF_SETUP_SPLIT = {
    "base_layer": 0.70,
    "_initialize_variable": 0.15,
    "TF_SessionMakeCallable": 0.08,
    "session.__init__": 0.07,
}
# PyTorch's dynamic construction splits between module init and weight init.
_PT_SETUP_SPLIT = {"model.__init__": 0.6, "randn": 0.4}


def profile_stack(session: InferenceSession, n_inferences: int) -> StackProfile:
    """Profile ``n_inferences`` runs the way the paper's cProfile pass does."""
    if n_inferences <= 0:
        raise ValueError(f"n_inferences must be positive, got {n_inferences}")
    framework_name = session.deployed.framework.name
    if framework_name in ("TensorFlow", "Keras", "TFLite"):
        return _tensorflow_stack(session, n_inferences)
    if framework_name == "PyTorch":
        return _pytorch_stack(session, n_inferences)
    return _generic_stack(session, n_inferences)


def _new_profile(session: InferenceSession, n_inferences: int) -> StackProfile:
    deployed = session.deployed
    return StackProfile(
        framework=deployed.framework.name,
        device=deployed.device.name,
        model=deployed.graph.name,
        n_inferences=n_inferences,
    )


def _tensorflow_stack(session: InferenceSession, n: int) -> StackProfile:
    profile = _new_profile(session, n)
    deployed = session.deployed
    profile.add("Library Loading", "one-time", deployed.library_load_s)
    setup = deployed.graph_setup_s + deployed.device_staging_s
    for bucket, share in _TF_SETUP_SPLIT.items():
        profile.add(bucket, "one-time", setup * share)
    profile.add(
        "layers & weights",
        "one-time",
        deployed.weight_load_s + deployed.transfer_setup_s,
    )
    run_time = session.latency_s * n
    profile.add("TF_SessionRunCallable", "per-inference", run_time, calls=n)
    return profile


def _pytorch_stack(session: InferenceSession, n: int) -> StackProfile:
    profile = _new_profile(session, n)
    deployed = session.deployed
    profile.add("<built-in import>", "one-time", deployed.library_load_s)
    for bucket, share in _PT_SETUP_SPLIT.items():
        extra = deployed.weight_load_s if bucket == "randn" else 0.0
        profile.add(bucket, "one-time", deployed.graph_setup_s * share + extra)
    staging = deployed.device_staging_s + deployed.transfer_setup_s
    if staging:
        profile.add("_C._TensorBase.to()", "one-time", staging)

    buckets: dict[str, float] = {}
    other = 0.0
    for timing in session.plan.timings:
        op = timing.op
        if isinstance(op, (Conv2D, DepthwiseConv2D, Conv3D)):
            buckets["conv2d"] = buckets.get("conv2d", 0.0) + timing.roofline_s
        elif isinstance(op, Dense):
            buckets["linear"] = buckets.get("linear", 0.0) + timing.roofline_s
        elif isinstance(op, BatchNorm):
            buckets["batch_norm"] = buckets.get("batch_norm", 0.0) + timing.roofline_s
        elif isinstance(op, Activation):
            buckets["activation"] = buckets.get("activation", 0.0) + timing.roofline_s
        else:
            other += timing.roofline_s
    dispatch = sum(t.dispatch_s for t in session.plan.timings)
    forward = other + dispatch + session.plan.session_overhead_s + session.plan.input_transfer_s
    for bucket, per_inference in buckets.items():
        profile.add(bucket, "per-inference", per_inference * n, calls=n)
    profile.add("forward", "per-inference", forward * n, calls=n)
    return profile


def _generic_stack(session: InferenceSession, n: int) -> StackProfile:
    profile = _new_profile(session, n)
    deployed = session.deployed
    profile.add("library loading", "one-time", deployed.library_load_s)
    profile.add("model build", "one-time",
                deployed.graph_setup_s + deployed.device_staging_s)
    profile.add("weight load", "one-time",
                deployed.weight_load_s + deployed.transfer_setup_s)
    run_time = session.latency_s * n
    profile.add("inference", "per-inference", run_time, calls=n)
    return profile
