"""Software-stack profiling (Section VI-B3, Figure 5)."""

from repro.profiling.profiler import ProfileEntry, StackProfile
from repro.profiling.stacks import profile_stack

__all__ = ["ProfileEntry", "StackProfile", "profile_stack"]
