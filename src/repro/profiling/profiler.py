"""cProfile-style aggregation of simulated software stacks.

The paper profiles 30 (RPi) / 1000 (TX2) inferences with Python's cProfile
and groups low-level functions into task buckets (Figure 5).  Our engine
computes those components individually; this module assembles them into the
same grouped view so fractions can be compared one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProfileEntry:
    """One grouped row of the profile."""

    function: str  # the bucket label the paper uses (e.g. "conv2d")
    group: str  # "one-time" | "per-inference"
    total_s: float
    calls: int = 1

    @property
    def per_call_s(self) -> float:
        return self.total_s / max(1, self.calls)


@dataclass
class StackProfile:
    """A full profile of one (framework, device, model, n_inferences) run."""

    framework: str
    device: str
    model: str
    n_inferences: int
    entries: list[ProfileEntry] = field(default_factory=list)

    def add(self, function: str, group: str, total_s: float, calls: int = 1) -> None:
        if total_s < 0:
            raise ValueError(f"negative time for {function}: {total_s}")
        if total_s == 0:
            return  # cProfile would not show an unexecuted function
        self.entries.append(ProfileEntry(function, group, total_s, calls))

    @property
    def total_s(self) -> float:
        return sum(entry.total_s for entry in self.entries)

    def fractions(self) -> dict[str, float]:
        """Bucket -> fraction of total profiled time (the pie of Figure 5)."""
        total = self.total_s
        if total == 0:
            return {}
        return {entry.function: entry.total_s / total for entry in self.entries}

    def fraction(self, function: str) -> float:
        return self.fractions().get(function, 0.0)

    def top(self, n: int = 5) -> list[ProfileEntry]:
        return sorted(self.entries, key=lambda e: e.total_s, reverse=True)[:n]

    def render(self) -> str:
        lines = [
            f"Stack profile: {self.model} / {self.framework} / {self.device} "
            f"({self.n_inferences} inferences, total {self.total_s:.1f} s)"
        ]
        for entry in self.top(len(self.entries)):
            lines.append(
                f"  {entry.function:28s} {entry.total_s:9.2f} s "
                f"({entry.total_s / self.total_s:6.1%})  [{entry.group}]"
            )
        return "\n".join(lines)
