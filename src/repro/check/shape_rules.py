"""Per-op shape/cost transfer functions for the shapes pass.

Every op class in :mod:`repro.graphs.ops` gets a *transfer function*: an
independent re-derivation of the op's output shape, MAC count and parameter
count from its hyperparameters and its (possibly symbolic) input shapes.  The
shapes pass (:mod:`repro.check.shapes`) propagates these derivations
topologically and compares them against the values the op constructors
stored — a second implementation of the paper's Table I accounting that the
first one must agree with at zero tolerance.

Declaring a transfer function
-----------------------------

Two equivalent spellings:

* **Table entry** (how every built-in op is declared here): register a
  function with ``@transfer(OpClass)``.  The function receives the op and a
  tuple of batch-free input :class:`TensorShape`\\ s and returns a
  :class:`Derived`.  Lookup walks the MRO, so subclasses inherit their base
  class's rule (``DepthwiseConv2D`` reuses ``Conv2D``'s) unless they register
  their own.
* **On the op class** (for ops defined outside :mod:`repro.graphs.ops`, e.g.
  a future ONNX importer): define a static/class method ``shape_transfer(op,
  inputs)`` with the same contract.  It takes precedence over the table.

Transfer functions must stay *symbolic-capable*: dims may be
:class:`~repro.graphs.symbolic.SymDim` expressions, so use the dim-generic
helpers (``shape.numel``, :func:`~repro.graphs.symbolic.floor_div`) rather
than raw ``//`` / ``%`` on dims.  Signal structural problems by raising
:class:`TransferError` with the SHAPE rule that describes them; plain
``ValueError`` from shape arithmetic (e.g. a collapsed conv output) is
translated to SHAPE006 by :func:`apply_transfer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs import ops as O
from repro.graphs.symbolic import Dim, floor_div, is_concrete, prod_dims
from repro.graphs.tensor import TensorShape, conv_output_length, pool_output_length

__all__ = [
    "Derived",
    "TransferError",
    "apply_transfer",
    "transfer",
    "transfer_for",
]


@dataclass(frozen=True)
class Derived:
    """What a transfer function re-derives for one op."""

    shape: TensorShape
    macs: Dim = 0
    params: Dim = 0


class TransferError(Exception):
    """A transfer function found the op structurally inapplicable.

    ``rule`` names the SHAPE rule the violation falls under (SHAPE003 for
    rank/broadcast mismatches, SHAPE004 for numel non-conservation, SHAPE006
    for infeasible conv/pool arithmetic).
    """

    def __init__(self, rule: str, message: str):
        super().__init__(message)
        self.rule = rule
        self.message = message


TransferFn = Callable[[O.Op, tuple[TensorShape, ...]], Derived]

#: op class -> transfer function; looked up along the MRO.
TRANSFERS: dict[type, TransferFn] = {}


def transfer(*op_types: type) -> Callable[[TransferFn], TransferFn]:
    """Register a transfer function for one or more op classes."""

    def register(fn: TransferFn) -> TransferFn:
        for op_type in op_types:
            TRANSFERS[op_type] = fn
        return fn

    return register


def transfer_for(op: O.Op) -> TransferFn | None:
    """Resolve the transfer function for an op instance (or None)."""
    declared = getattr(type(op), "shape_transfer", None)
    if declared is not None:
        return lambda op, inputs: declared(op, inputs)
    for klass in type(op).__mro__:
        if klass in TRANSFERS:
            return TRANSFERS[klass]
    return None


def apply_transfer(op: O.Op, inputs: tuple[TensorShape, ...],
                   batch: Dim | None = None) -> Derived:
    """Run an op's transfer function, optionally under a leading batch dim.

    With ``batch`` set, every input must be ``(batch, *per_sample)``; the
    per-sample derivation is then re-prefixed with the batch dim and MACs
    scale linearly — the batch semantics the execution engine assumes
    (``check_batch_memory`` / per-op ``batch_size`` cost scaling).  Params
    are per-model and never scale.
    """
    fn = transfer_for(op)
    if fn is None:
        raise TransferError(
            "SHAPE001", f"no shape transfer function for op class "
                        f"{type(op).__name__}")
    if batch is None:
        return _run(fn, op, inputs)
    per_sample = []
    for shape in inputs:
        if shape.rank < 2 or shape.dims[0] != batch:
            raise TransferError(
                "SHAPE007", f"batched input lost its leading batch dim: {shape}")
        per_sample.append(TensorShape(*shape.dims[1:]))
    derived = _run(fn, op, tuple(per_sample))
    return Derived(shape=TensorShape(batch, *derived.shape.dims),
                   macs=derived.macs * batch, params=derived.params)


def _run(fn: TransferFn, op: O.Op, inputs: tuple[TensorShape, ...]) -> Derived:
    try:
        return fn(op, inputs)
    except TransferError:
        raise
    except ValueError as exc:  # collapsed conv/pool output, non-positive dim
        raise TransferError("SHAPE006", str(exc)) from exc


def _one(op: O.Op, inputs: tuple[TensorShape, ...], rank: int | None = None
         ) -> TensorShape:
    if len(inputs) != 1:
        raise TransferError(
            "SHAPE003", f"{type(op).__name__} expects exactly one input, "
                        f"got {len(inputs)}")
    shape = inputs[0]
    if rank is not None and shape.rank != rank:
        raise TransferError(
            "SHAPE003", f"{type(op).__name__} needs a rank-{rank} input, "
                        f"got {shape}")
    return shape


# --------------------------------------------------------------------------
# the built-in op registry's transfer functions
# --------------------------------------------------------------------------


@transfer(O.Input)
def _input(op: O.Op, inputs: tuple[TensorShape, ...]) -> Derived:
    # Inputs are sources: the stored shape *is* the specification.
    return Derived(shape=op.output_shape)


@transfer(O.Conv2D)  # DepthwiseConv2D inherits via the MRO
def _conv2d(op: O.Conv2D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=3)
    in_channels, in_h, in_w = source.dims
    kh, kw = op.kernel
    sh, sw = op.stride
    if is_concrete(in_channels) and in_channels % op.groups:
        raise TransferError(
            "SHAPE006", f"groups={op.groups} does not divide "
                        f"in_channels={in_channels}")
    if op.out_channels % op.groups:
        raise TransferError(
            "SHAPE006", f"groups={op.groups} does not divide "
                        f"out_channels={op.out_channels}")
    out_h = conv_output_length(in_h, kh, sh, op.padding, op.dilation)
    out_w = conv_output_length(in_w, kw, sw, op.padding, op.dilation)
    weights = kh * kw * floor_div(in_channels, op.groups) * op.out_channels
    bias = op.out_channels if op.use_bias else 0
    return Derived(shape=TensorShape(op.out_channels, out_h, out_w),
                   macs=weights * out_h * out_w, params=weights + bias)


@transfer(O.Conv3D)
def _conv3d(op: O.Conv3D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=4)
    in_channels, in_t, in_h, in_w = source.dims
    kt, kh, kw = op.kernel
    st, sh, sw = op.stride
    out_t = conv_output_length(in_t, kt, st, op.padding)
    out_h = conv_output_length(in_h, kh, sh, op.padding)
    out_w = conv_output_length(in_w, kw, sw, op.padding)
    weights = kt * kh * kw * in_channels * op.out_channels
    bias = op.out_channels if op.use_bias else 0
    return Derived(shape=TensorShape(op.out_channels, out_t, out_h, out_w),
                   macs=weights * out_t * out_h * out_w, params=weights + bias)


@transfer(O.Dense)
def _dense(op: O.Dense, inputs: tuple[TensorShape, ...]) -> Derived:
    in_features = _one(op, inputs).numel
    bias = op.units if op.use_bias else 0
    return Derived(shape=TensorShape(op.units),
                   macs=in_features * op.units,
                   params=in_features * op.units + bias)


@transfer(O.BatchNorm)
def _batchnorm(op: O.BatchNorm, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs)
    return Derived(shape=source, macs=source.numel, params=2 * source.channels)


@transfer(O.Activation)
def _activation(op: O.Activation, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs)
    return Derived(shape=source, macs=source.numel)


@transfer(O.Pool2D)
def _pool2d(op: O.Pool2D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=3)
    channels, in_h, in_w = source.dims
    kh, kw = op.kernel
    sh, sw = op.stride
    out_h = pool_output_length(in_h, kh, sh, op.padding, op.ceil_mode)
    out_w = pool_output_length(in_w, kw, sw, op.padding, op.ceil_mode)
    return Derived(shape=TensorShape(channels, out_h, out_w),
                   macs=out_h * out_w * channels * kh * kw)


@transfer(O.Pool3D)
def _pool3d(op: O.Pool3D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=4)
    channels, in_t, in_h, in_w = source.dims
    kt, kh, kw = op.kernel
    st, sh, sw = op.stride
    out_t = pool_output_length(in_t, kt, st, op.padding, op.ceil_mode)
    out_h = pool_output_length(in_h, kh, sh, op.padding, op.ceil_mode)
    out_w = pool_output_length(in_w, kw, sw, op.padding, op.ceil_mode)
    return Derived(shape=TensorShape(channels, out_t, out_h, out_w),
                   macs=out_t * out_h * out_w * channels * kt * kh * kw)


@transfer(O.GlobalPool2D)
def _global_pool(op: O.GlobalPool2D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs)
    return Derived(shape=TensorShape(source.channels), macs=source.numel)


@transfer(O.Add)
def _add(op: O.Add, inputs: tuple[TensorShape, ...]) -> Derived:
    if len(inputs) < 2:
        raise TransferError("SHAPE003", "Add needs at least two inputs")
    first = inputs[0]
    for shape in inputs[1:]:
        if shape.dims != first.dims:
            raise TransferError(
                "SHAPE003", f"Add inputs disagree: {first} vs {shape}")
    return Derived(shape=first, macs=first.numel * (len(inputs) - 1))


@transfer(O.Concat)
def _concat(op: O.Concat, inputs: tuple[TensorShape, ...]) -> Derived:
    if len(inputs) < 2:
        raise TransferError("SHAPE003", "Concat needs at least two inputs")
    spatial = inputs[0].spatial
    for shape in inputs[1:]:
        if shape.spatial != spatial:
            raise TransferError(
                "SHAPE003", f"Concat inputs disagree on spatial dims: "
                            f"{inputs[0]} vs {shape}")
    channels: Dim = 0
    for shape in inputs:
        channels = channels + shape.channels
    return Derived(shape=TensorShape(channels, *spatial))


@transfer(O.Flatten)
def _flatten(op: O.Flatten, inputs: tuple[TensorShape, ...]) -> Derived:
    return Derived(shape=TensorShape(_one(op, inputs).numel))


@transfer(O.Reshape)
def _reshape(op: O.Reshape, inputs: tuple[TensorShape, ...]) -> Derived:
    # The stored output shape *is* the op's target parameter; the law to
    # verify is element conservation between it and the (possibly symbolic)
    # input — structural equality, so a target that only matches at the
    # baked-in binding fails under symbolic dims.
    source = _one(op, inputs)
    target = op.output_shape
    if prod_dims(target.dims) != source.numel:
        raise TransferError(
            "SHAPE004", f"reshape does not conserve elements: "
                        f"{source} ({source.numel}) -> {target} ({target.numel})")
    return Derived(shape=target)


@transfer(O.Dropout)
def _dropout(op: O.Dropout, inputs: tuple[TensorShape, ...]) -> Derived:
    return Derived(shape=_one(op, inputs))


@transfer(O.Softmax)
def _softmax(op: O.Softmax, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs)
    return Derived(shape=source, macs=5 * source.numel)


@transfer(O.LocalResponseNorm)
def _lrn(op: O.LocalResponseNorm, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs)
    return Derived(shape=source, macs=source.numel * op.size)


@transfer(O.Upsample2D)
def _upsample(op: O.Upsample2D, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=3)
    channels, in_h, in_w = source.dims
    return Derived(shape=TensorShape(channels, in_h * op.factor,
                                     in_w * op.factor))


@transfer(O.Pad)
def _pad(op: O.Pad, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=3)
    channels, in_h, in_w = source.dims
    return Derived(shape=TensorShape(channels, in_h + 2 * op.pad[0],
                                     in_w + 2 * op.pad[1]))


@transfer(O.Embedding)
def _embedding(op: O.Embedding, inputs: tuple[TensorShape, ...]) -> Derived:
    seq_len = _one(op, inputs, rank=1).dims[0]
    return Derived(shape=TensorShape(seq_len, op.dim),
                   params=op.vocab_size * op.dim)


@transfer(O._RecurrentLayer)  # LSTM and GRU inherit via the MRO
def _recurrent(op: O._RecurrentLayer, inputs: tuple[TensorShape, ...]) -> Derived:
    source = _one(op, inputs, rank=2)
    seq_len, features = source.dims
    hidden, gates = op.hidden, type(op).GATES
    params = gates * (features * hidden + hidden * hidden + hidden)
    per_step = gates * hidden * (features + hidden) + 4 * hidden
    shape = (TensorShape(seq_len, hidden) if op.return_sequences
             else TensorShape(hidden))
    return Derived(shape=shape, macs=seq_len * per_step, params=params)


@transfer(O.LastTimestep)
def _last_timestep(op: O.LastTimestep, inputs: tuple[TensorShape, ...]) -> Derived:
    return Derived(shape=TensorShape(_one(op, inputs, rank=2).dims[1]))


@transfer(O.DetectionOutput)
def _detection(op: O.DetectionOutput, inputs: tuple[TensorShape, ...]) -> Derived:
    if not inputs:
        raise TransferError("SHAPE003", "DetectionOutput needs at least one input")
    return Derived(shape=TensorShape(op.num_anchors, 6),
                   macs=op.num_anchors * op.MACS_PER_ANCHOR)
