"""Structured findings and the shared reporter for `repro check`.

Every verification pass (IR, tables, architecture) reports through the same
vocabulary: a :class:`Finding` carries a stable rule id, a severity, a
location string and a human-readable message.  The CLI renders findings as
text or JSON and applies per-rule suppression, so CI can run
``repro check --strict`` and fail on any finding while a developer can
silence one rule (``--ignore IR008``) during an investigation.

Location strings are pass-specific but follow one scheme:

* ``graph:<model>[@<transform>]/<op>`` for IR findings,
* ``device:<name>`` / ``framework:<name>`` / ``calibration:<fw>@<dev>`` /
  ``tableV:<device>`` for table findings,
* ``<path>:<line>`` for architectural findings.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is; ``--strict`` treats every level as fatal."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation reported by a verification pass."""

    rule: str
    severity: Severity
    location: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.severity.value:7s} {self.rule}  {self.location}: {self.message}"


def suppress(findings: Iterable[Finding], rules: Sequence[str]) -> list[Finding]:
    """Drop findings whose rule id is in ``rules`` (exact, case-insensitive)."""
    ignored = {rule.upper() for rule in rules}
    return [f for f in findings if f.rule.upper() not in ignored]


def count_by_severity(findings: Sequence[Finding]) -> dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    counts = count_by_severity(findings)
    if findings:
        lines.append(
            f"{len(findings)} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


#: ``<path>:<line>`` locations (arch/units findings) map onto GitHub file
#: annotations; other location schemes render as bare annotations.
_FILE_LOCATION_RE = re.compile(r"^(?P<file>[^:]+\.py):(?P<line>\d+)$")

_GITHUB_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "notice",
}


def _escape_github(text: str) -> str:
    """Escape the characters the workflow-command parser treats specially."""
    return (text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A"))


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions annotations (``::error file=...,line=...::message``).

    Findings whose location is a ``path:line`` pair annotate that file in
    the PR diff; table/graph findings (non-file locations) still surface as
    run-level annotations with the location folded into the message.
    """
    lines = []
    for finding in findings:
        level = _GITHUB_LEVELS[finding.severity]
        match = _FILE_LOCATION_RE.match(finding.location)
        message = _escape_github(f"{finding.rule}: {finding.message}")
        if match:
            lines.append(f"::{level} file={match['file']},line={match['line']},"
                         f"title={finding.rule}::{message}")
        else:
            location = _escape_github(finding.location)
            lines.append(f"::{level} title={finding.rule}::{location}: {message}")
    counts = count_by_severity(findings)
    if findings:
        lines.append(
            f"{len(findings)} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema for the CI gate)."""
    payload = {
        "version": 1,
        "counts": count_by_severity(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=1)
