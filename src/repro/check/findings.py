"""Structured findings and the shared reporter for `repro check`.

Every verification pass (IR, tables, architecture) reports through the same
vocabulary: a :class:`Finding` carries a stable rule id, a severity, a
location string and a human-readable message.  The CLI renders findings as
text or JSON and applies per-rule suppression, so CI can run
``repro check --strict`` and fail on any finding while a developer can
silence one rule (``--ignore IR008``) during an investigation.

Location strings are pass-specific but follow one scheme:

* ``graph:<model>[@<transform>]/<op>`` for IR findings,
* ``device:<name>`` / ``framework:<name>`` / ``calibration:<fw>@<dev>`` /
  ``tableV:<device>`` for table findings,
* ``<path>:<line>`` for architectural findings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is; ``--strict`` treats every level as fatal."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation reported by a verification pass."""

    rule: str
    severity: Severity
    location: str
    message: str

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.severity.value:7s} {self.rule}  {self.location}: {self.message}"


def suppress(findings: Iterable[Finding], rules: Sequence[str]) -> list[Finding]:
    """Drop findings whose rule id is in ``rules`` (exact, case-insensitive)."""
    ignored = {rule.upper() for rule in rules}
    return [f for f in findings if f.rule.upper() not in ignored]


def count_by_severity(findings: Sequence[Finding]) -> dict[str, int]:
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    counts = count_by_severity(findings)
    if findings:
        lines.append(
            f"{len(findings)} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema for the CI gate)."""
    payload = {
        "version": 1,
        "counts": count_by_severity(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=1)
