"""`repro.check`: static verification over the graph IR, data tables and
runtime-layer architecture.

Five passes, one vocabulary (:class:`~repro.check.findings.Finding`):

* ``ir`` — re-verifies every zoo graph and every transform output
  (well-formedness + conservation invariants), rules ``IR0xx``/``IR1xx``.
* ``tables`` — cross-validates device specs, framework capability tables,
  calibration anchors and the Table V declarations, rules ``TABxxx``.
* ``arch`` — `ast` lint of ``src/repro`` enforcing the runtime-layer
  contracts, rules ``ARCHxxx``.
* ``units`` — `ast` dimensional analysis of the quantity dataflow
  (seconds vs milliseconds, energy vs power), rules ``UNITxxx``.
* ``effects`` — interprocedural effect inference over the package call
  graph: parallel-path race rules (``RACExxx``), cache-key soundness
  (``KEYxxx``) and cached-value escape analysis (``ALIASxxx``).

``python -m repro check --strict`` runs all five and exits non-zero on any
finding; see ``docs/checks.md`` for the full rule catalog and the
suppression syntax.
"""

from __future__ import annotations

from typing import Sequence

from repro.check import arch, effects, ir, tables, units
from repro.check.findings import (
    Finding,
    Severity,
    count_by_severity,
    render_github,
    render_json,
    render_text,
    suppress,
)

#: pass name -> entry point, in report order.
PASSES = {
    "ir": ir.run,
    "tables": tables.run,
    "arch": arch.run,
    "units": units.run,
    "effects": effects.run,
}

PASS_NAMES = tuple(PASSES)


def rule_catalog() -> dict[str, tuple[Severity, str]]:
    """Every known rule id -> (severity, description), across all passes."""
    catalog: dict[str, tuple[Severity, str]] = {}
    for module in (ir, tables, arch, units, effects):
        catalog.update(module.RULES)
    return catalog


def run_checks(passes: Sequence[str] | None = None,
               ignore: Sequence[str] = ()) -> list[Finding]:
    """Run the requested passes (default: all) and apply rule suppression."""
    selected = PASS_NAMES if not passes else tuple(passes)
    unknown = [name for name in selected if name not in PASSES]
    if unknown:
        raise ValueError(f"unknown check pass(es) {unknown}; "
                         f"known: {', '.join(PASS_NAMES)}")
    findings: list[Finding] = []
    for name in selected:
        findings += PASSES[name]()
    return suppress(findings, ignore)


__all__ = [
    "Finding",
    "PASSES",
    "PASS_NAMES",
    "Severity",
    "arch",
    "count_by_severity",
    "effects",
    "ir",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_checks",
    "suppress",
    "tables",
    "units",
]
