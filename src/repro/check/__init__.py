"""`repro.check`: static verification over the graph IR, data tables and
runtime-layer architecture.

Six passes, one vocabulary (:class:`~repro.check.findings.Finding`):

* ``ir`` — re-verifies every zoo graph and every transform output
  (well-formedness + conservation invariants), rules ``IR0xx``/``IR1xx``.
* ``shapes`` — symbolic shape & dtype abstract interpreter: re-derives every
  op's output shape, MACs, params and bytes from per-op transfer functions
  and compares against the stored accounting at zero tolerance, including
  under symbolic batch/sequence dims, rules ``SHAPExxx``.
* ``tables`` — cross-validates device specs, framework capability tables,
  calibration anchors and the Table V declarations, rules ``TABxxx``.
* ``arch`` — `ast` lint of ``src/repro`` enforcing the runtime-layer
  contracts, rules ``ARCHxxx``.
* ``units`` — `ast` dimensional analysis of the quantity dataflow
  (seconds vs milliseconds, energy vs power), rules ``UNITxxx``.
* ``effects`` — interprocedural effect inference over the package call
  graph: parallel-path race rules (``RACExxx``), cache-key soundness
  (``KEYxxx``) and cached-value escape analysis (``ALIASxxx``).

``python -m repro check --strict`` runs all six in one invocation — the three
source passes (``arch``/``units``/``effects``) share a single
:class:`~repro.check.astutil.SourceModule` parse of the package — and exits
non-zero on any finding; ``--stats`` adds per-pass wall times.  See
``docs/checks.md`` for the full rule catalog and the suppression syntax.
"""

from __future__ import annotations

import time
from typing import MutableMapping, Sequence

from repro.check import arch, astutil, effects, ir, shapes, tables, units
from repro.check.findings import (
    Finding,
    Severity,
    count_by_severity,
    render_github,
    render_json,
    render_text,
    suppress,
)

#: pass name -> entry point, in report order.
PASSES = {
    "ir": ir.run,
    "shapes": shapes.run,
    "tables": tables.run,
    "arch": arch.run,
    "units": units.run,
    "effects": effects.run,
}

PASS_NAMES = tuple(PASSES)

#: passes that interpret the package source and accept a shared parse.
_SOURCE_PASSES = frozenset(("arch", "units", "effects"))


def rule_catalog() -> dict[str, tuple[Severity, str]]:
    """Every known rule id -> (severity, description), across all passes."""
    catalog: dict[str, tuple[Severity, str]] = {}
    for module in (ir, shapes, tables, arch, units, effects):
        catalog.update(module.RULES)
    return catalog


def run_checks(passes: Sequence[str] | None = None,
               ignore: Sequence[str] = (),
               timings: MutableMapping[str, float] | None = None) -> list[Finding]:
    """Run the requested passes (default: all) and apply rule suppression.

    The package source is parsed once and shared across every selected
    source pass.  With ``timings`` supplied, each pass's wall time in
    seconds is recorded under its name (``--stats`` in the CLI).
    """
    selected = PASS_NAMES if not passes else tuple(passes)
    unknown = [name for name in selected if name not in PASSES]
    if unknown:
        raise ValueError(f"unknown check pass(es) {unknown}; "
                         f"known: {', '.join(PASS_NAMES)}")
    modules = None
    findings: list[Finding] = []
    for name in selected:
        started = time.perf_counter()
        if name in _SOURCE_PASSES:
            if modules is None:
                modules = astutil.load_package()
            findings += PASSES[name](modules=modules)
        else:
            findings += PASSES[name]()
        if timings is not None:
            timings[name] = time.perf_counter() - started
    return suppress(findings, ignore)


__all__ = [
    "Finding",
    "PASSES",
    "PASS_NAMES",
    "Severity",
    "arch",
    "count_by_severity",
    "effects",
    "ir",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_checks",
    "shapes",
    "suppress",
    "tables",
    "units",
]
