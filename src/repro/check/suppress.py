"""Suppression comments shared by the source-level check passes.

Both `ast`-based passes (the architectural linter and the units checker)
honor the same two comment forms:

* same-line — silences the named rule(s) for that one line::

      session = InferenceSession(deployed)  # repro: allow[ARCH001] simulation

* file-level — silences the named rule(s) for the whole module; put it on
  its own line near the top with a justification::

      # repro: allow-file[UNIT007] legacy column names predate the convention

Each comment names the rule(s) it silences (comma-separated); any other
rule on the same line or in the same file still reports.
"""

from __future__ import annotations

import re
from pathlib import Path

_LINE_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_FILE_RE = re.compile(r"#\s*repro:\s*allow-file\[([A-Za-z0-9_,\s]+)\]")


def relative_parts(path: str) -> tuple[str, ...]:
    """Path components below the last ``repro`` package directory."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1:]
    return parts


def display_path(path: str) -> str:
    """Package-relative display form used in finding locations."""
    rel = relative_parts(path)
    if rel != Path(path).parts:
        return str(Path("repro", *rel))
    return path


def _rules_of(match: re.Match[str]) -> set[str]:
    return {entry.strip().upper() for entry in match.group(1).split(",")
            if entry.strip()}


class SuppressionIndex:
    """Per-module view of which (rule, line) pairs are suppressed."""

    def __init__(self, lines: list[str]):
        self.lines = lines
        self.file_rules: set[str] = set()
        for line in lines:
            match = _FILE_RE.search(line)
            if match:
                self.file_rules |= _rules_of(match)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        return cls(source.splitlines())

    def allows(self, rule: str, lineno: int) -> bool:
        """True when ``rule`` is silenced at ``lineno`` (or file-wide)."""
        rule = rule.upper()
        if rule in self.file_rules:
            return True
        if 1 <= lineno <= len(self.lines):
            match = _LINE_RE.search(self.lines[lineno - 1])
            if match and rule in _rules_of(match):
                return True
        return False
